//! Offline stand-in for the `rand_core` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of the `rand_core` 0.6 surface that the
//! Saiyan reproduction actually uses: the [`RngCore`] and [`SeedableRng`]
//! traits. Generators are deterministic and seeded explicitly everywhere in
//! the workspace, so no OS entropy source is required (or provided).

#![warn(missing_docs)]

/// The core of a random number generator: a source of random `u32`/`u64`
/// words and raw bytes.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed with
    /// SplitMix64 (the same scheme real `rand_core` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut state = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence, used to expand `u64` seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &1u64.to_le_bytes());
        assert_eq!(&buf[8..], &2u64.to_le_bytes()[..3]);
    }

    #[test]
    fn splitmix_expansion_is_deterministic() {
        struct Probe([u8; 32]);
        impl SeedableRng for Probe {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Probe(seed)
            }
        }
        let a = Probe::seed_from_u64(42);
        let b = Probe::seed_from_u64(42);
        let c = Probe::seed_from_u64(43);
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, c.0);
    }
}
