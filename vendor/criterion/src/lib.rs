//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of criterion 0.5: [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is real (monotonic-clock wall time with warm-up and an adaptive
//! iteration count) but there is no statistical analysis, plotting, or saved
//! baselines — each benchmark prints its mean time per iteration. The numbers
//! are honest enough to compare hot-path changes within one machine.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The stub accepts every variant
/// criterion defines and treats them identically (one setup per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: criterion would batch many per allocation.
    SmallInput,
    /// Large inputs: criterion would batch few per allocation.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Target accumulated measurement time per benchmark.
const TARGET_TIME: Duration = Duration::from_millis(200);
/// Warm-up time before measurement starts.
const WARM_UP_TIME: Duration = Duration::from_millis(50);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; the stub has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        self.benchmarks_run += 1;
        let per_iter = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iterations.max(1) as u32
        };
        println!(
            "bench: {:<50} {:>12} /iter ({} iters)",
            id.as_ref(),
            format_duration(per_iter),
            bencher.iterations,
        );
        self
    }
}

/// Measures closures; handed to the closure given to
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the accumulated
    /// measurement reaches the target time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP_TIME {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let chunk = chunk_size(per_iter);

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < TARGET_TIME {
            for _ in 0..chunk {
                black_box(routine());
            }
            iters += chunk;
        }
        self.iterations = iters;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs produced by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up with a handful of runs.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP_TIME {
            let input = setup();
            black_box(routine(black_box(input)));
            warm_iters += 1;
        }

        let target = TARGET_TIME;
        let mut measured = Duration::ZERO;
        let mut iters: u64 = 0;
        while measured < target && iters < warm_iters.max(1).saturating_mul(64) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(black_box(input)));
            measured += start.elapsed();
            iters += 1;
        }
        self.iterations = iters;
        self.elapsed = measured;
    }
}

/// Picks how many calls to batch between clock reads so that cheap routines
/// are not dominated by timer overhead.
fn chunk_size(per_iter: Duration) -> u64 {
    let nanos = per_iter.as_nanos().max(1);
    (Duration::from_micros(50).as_nanos() / nanos).clamp(1, 10_000) as u64
}

/// Formats a duration with the precision benchmarks care about.
fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function that runs each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(format_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.00 ms");
    }
}
