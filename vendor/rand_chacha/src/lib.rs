//! Offline stand-in for the `rand_chacha` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of `rand_chacha` 0.3: a genuine ChaCha
//! stream cipher core (8 rounds) exposed as [`ChaCha8Rng`], seedable through
//! the re-exported [`rand_core`] traits. Output is a real ChaCha keystream —
//! deterministic per seed, statistically strong — though the word order is
//! not guaranteed to be bit-identical to the upstream crate.

#![warn(missing_docs)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;

/// A deterministic random number generator backed by the ChaCha stream
/// cipher with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, nonce.
    state: [u32; WORDS_PER_BLOCK],
    /// Current keystream block.
    buffer: [u32; WORDS_PER_BLOCK],
    /// Next unconsumed word in `buffer`; `WORDS_PER_BLOCK` forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Runs the 8-round ChaCha permutation to produce the next keystream
    /// block, then advances the 64-bit block counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" — the standard ChaCha constants.
        let mut state = [0u32; WORDS_PER_BLOCK];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter (words 12..14) and nonce (words 14..16) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first_block: Vec<u32> = (0..WORDS_PER_BLOCK).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..WORDS_PER_BLOCK).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    /// An independent copy of the textbook scalar double-round block,
    /// pinning the keystream word for word. Any future rewrite of `refill`
    /// (e.g. a SIMD row-vector formulation) must keep matching this
    /// reference exactly, or every seeded noise draw in the workspace
    /// changes.
    fn scalar_block(state: &[u32; WORDS_PER_BLOCK]) -> [u32; WORDS_PER_BLOCK] {
        fn qr(s: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
            s[a] = s[a].wrapping_add(s[b]);
            s[d] = (s[d] ^ s[a]).rotate_left(16);
            s[c] = s[c].wrapping_add(s[d]);
            s[b] = (s[b] ^ s[c]).rotate_left(12);
            s[a] = s[a].wrapping_add(s[b]);
            s[d] = (s[d] ^ s[a]).rotate_left(8);
            s[c] = s[c].wrapping_add(s[d]);
            s[b] = (s[b] ^ s[c]).rotate_left(7);
        }
        let mut w = *state;
        for _ in 0..4 {
            qr(&mut w, 0, 4, 8, 12);
            qr(&mut w, 1, 5, 9, 13);
            qr(&mut w, 2, 6, 10, 14);
            qr(&mut w, 3, 7, 11, 15);
            qr(&mut w, 0, 5, 10, 15);
            qr(&mut w, 1, 6, 11, 12);
            qr(&mut w, 2, 7, 8, 13);
            qr(&mut w, 3, 4, 9, 14);
        }
        let mut out = [0u32; WORDS_PER_BLOCK];
        for (o, (a, b)) in out.iter_mut().zip(w.iter().zip(state.iter())) {
            *o = a.wrapping_add(*b);
        }
        out
    }

    #[test]
    fn refill_matches_scalar_reference() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut reference_state = rng.state;
            for _ in 0..5 {
                let want = scalar_block(&reference_state);
                let got: Vec<u32> = (0..WORDS_PER_BLOCK).map(|_| rng.next_u32()).collect();
                assert_eq!(got, want, "seed {seed}");
                let (lo, carry) = reference_state[12].overflowing_add(1);
                reference_state[12] = lo;
                if carry {
                    reference_state[13] = reference_state[13].wrapping_add(1);
                }
            }
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        // Crude sanity check: bit balance over 4k words.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..4096).map(|_| rng.next_u32().count_ones()).sum();
        let total = 4096 * 32;
        let frac = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&frac), "bit balance {frac}");
    }
}
