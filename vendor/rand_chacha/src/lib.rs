//! Offline stand-in for the `rand_chacha` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of `rand_chacha` 0.3: a genuine ChaCha
//! stream cipher core (8 rounds) exposed as [`ChaCha8Rng`], seedable through
//! the re-exported [`rand_core`] traits. Output is a real ChaCha keystream —
//! deterministic per seed, statistically strong — though the word order is
//! not guaranteed to be bit-identical to the upstream crate.
//!
//! Beyond the `RngCore` surface this stand-in adds [`ChaCha8Rng::fill_u64s`],
//! a bulk draw API for block consumers (the workspace's AWGN fill): it emits
//! exactly the stream a `next_u64` loop would, but generates whole keystream
//! blocks straight into the caller's buffer — many blocks at a time through
//! lane-parallel cores on x86-64 (AVX-512: 16 blocks, AVX2: 8). ChaCha is
//! pure 32-bit integer arithmetic, so the wide cores are *exactly* equal to
//! the scalar one — no rounding contract is involved — and the tests pin
//! every core word-for-word against the textbook block function.

#![warn(missing_docs)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;
/// `u64` values served per keystream block.
const U64S_PER_BLOCK: usize = WORDS_PER_BLOCK / 2;

/// A deterministic random number generator backed by the ChaCha stream
/// cipher with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, nonce.
    state: [u32; WORDS_PER_BLOCK],
    /// Current keystream block.
    buffer: [u32; WORDS_PER_BLOCK],
    /// Next unconsumed word in `buffer`; `WORDS_PER_BLOCK` forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Runs the 8-round ChaCha permutation to produce the next keystream
    /// block, then advances the 64-bit block counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        self.advance_counter(1);
        self.index = 0;
    }

    /// Advances the 64-bit block counter (words 12..14) by `blocks`.
    /// Equivalent to `blocks` single increments with carry.
    #[inline]
    fn advance_counter(&mut self, blocks: u64) {
        let counter = ((self.state[13] as u64) << 32) | self.state[12] as u64;
        let counter = counter.wrapping_add(blocks);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }

    /// Fills `out` with exactly the values a `next_u64` loop would produce,
    /// advancing the generator state identically — but generating whole
    /// keystream blocks straight into `out`, skipping the per-call buffer
    /// bookkeeping and (on x86-64) running many blocks in parallel lanes.
    pub fn fill_u64s(&mut self, out: &mut [u64]) {
        let mut k = 0usize;
        // Drain the buffered block first. If the word cursor is odd (a
        // caller mixed in a lone `next_u32`), the pairing straddles block
        // boundaries forever: stay on the slow path, which is exact.
        while k < out.len() && (self.index < WORDS_PER_BLOCK || self.index % 2 == 1) {
            out[k] = self.next_u64();
            k += 1;
        }
        let blocks = (out.len() - k) / U64S_PER_BLOCK;
        if blocks > 0 {
            self.generate_blocks(blocks, &mut out[k..k + blocks * U64S_PER_BLOCK]);
            k += blocks * U64S_PER_BLOCK;
        }
        while k < out.len() {
            out[k] = self.next_u64();
            k += 1;
        }
    }

    /// Generates `blocks` whole keystream blocks into `out` (packed as
    /// little-endian word pairs, the `next_u64` order), advancing the
    /// counter per block. The buffered block is untouched.
    fn generate_blocks(&mut self, blocks: usize, out: &mut [u64]) {
        debug_assert_eq!(out.len(), blocks * U64S_PER_BLOCK);
        let mut done = 0usize;
        #[cfg(target_arch = "x86_64")]
        {
            if wide_lanes() >= 16 {
                while blocks - done >= 16 {
                    // SAFETY: AVX-512F presence established by wide_lanes().
                    unsafe {
                        blocks16_avx512(
                            &self.state,
                            &mut out[done * U64S_PER_BLOCK..(done + 16) * U64S_PER_BLOCK],
                        )
                    };
                    self.advance_counter(16);
                    done += 16;
                }
            }
            if wide_lanes() >= 8 {
                while blocks - done >= 8 {
                    // SAFETY: AVX2 presence established by wide_lanes().
                    unsafe {
                        blocks8_avx2(
                            &self.state,
                            &mut out[done * U64S_PER_BLOCK..(done + 8) * U64S_PER_BLOCK],
                        )
                    };
                    self.advance_counter(8);
                    done += 8;
                }
            }
        }
        while done < blocks {
            scalar_block_into(
                &self.state,
                &mut out[done * U64S_PER_BLOCK..(done + 1) * U64S_PER_BLOCK],
            );
            self.advance_counter(1);
            done += 1;
        }
    }
}

/// One keystream block for `state`, packed into eight `u64`s in the
/// `next_u64` pairing (word `2t` is the low half, word `2t+1` the high).
fn scalar_block_into(state: &[u32; WORDS_PER_BLOCK], out: &mut [u64]) {
    let mut working = *state;
    for _ in 0..4 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (t, o) in out.iter_mut().enumerate() {
        let lo = working[2 * t].wrapping_add(state[2 * t]) as u64;
        let hi = working[2 * t + 1].wrapping_add(state[2 * t + 1]) as u64;
        *o = (hi << 32) | lo;
    }
}

/// Widest usable lane count for the block cores: 16 (AVX-512F), 8 (AVX2) or
/// 0 (scalar only). Cached after the first query. No opt-out knob is needed:
/// the cores are integer-exact, so every path emits the identical keystream.
#[cfg(target_arch = "x86_64")]
fn wide_lanes() -> usize {
    use std::sync::OnceLock;
    static LANES: OnceLock<usize> = OnceLock::new();
    *LANES.get_or_init(|| {
        if std::arch::is_x86_feature_detected!("avx512f") {
            16
        } else if std::arch::is_x86_feature_detected!("avx2") {
            8
        } else {
            0
        }
    })
}

/// Per-lane counter words for `lanes` consecutive blocks starting at the
/// state's counter: lane `l` gets `counter + l`, split back into lo/hi.
#[cfg(target_arch = "x86_64")]
fn lane_counters<const LANES: usize>(
    state: &[u32; WORDS_PER_BLOCK],
) -> ([u32; LANES], [u32; LANES]) {
    let counter = ((state[13] as u64) << 32) | state[12] as u64;
    let mut lo = [0u32; LANES];
    let mut hi = [0u32; LANES];
    for l in 0..LANES {
        let c = counter.wrapping_add(l as u64);
        lo[l] = c as u32;
        hi[l] = (c >> 32) as u32;
    }
    (lo, hi)
}

/// Eight blocks in the eight 32-bit lanes of AVX2 vectors: vector `i` holds
/// state word `i` of all eight blocks, quarter rounds run lane-parallel,
/// and the final transpose packs each lane's block into `out`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn blocks8_avx2(state: &[u32; WORDS_PER_BLOCK], out: &mut [u64]) {
    use std::arch::x86_64::*;

    macro_rules! rotl {
        ($x:expr, $n:literal) => {
            _mm256_or_si256(
                _mm256_slli_epi32::<$n>($x),
                _mm256_srli_epi32::<{ 32 - $n }>($x),
            )
        };
    }
    macro_rules! qr {
        ($v:ident, $a:expr, $b:expr, $c:expr, $d:expr) => {
            $v[$a] = _mm256_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl!(_mm256_xor_si256($v[$d], $v[$a]), 16);
            $v[$c] = _mm256_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl!(_mm256_xor_si256($v[$b], $v[$c]), 12);
            $v[$a] = _mm256_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl!(_mm256_xor_si256($v[$d], $v[$a]), 8);
            $v[$c] = _mm256_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl!(_mm256_xor_si256($v[$b], $v[$c]), 7);
        };
    }

    let mut v: [__m256i; WORDS_PER_BLOCK] =
        std::array::from_fn(|i| _mm256_set1_epi32(state[i] as i32));
    let (lo, hi) = lane_counters::<8>(state);
    v[12] = _mm256_loadu_si256(lo.as_ptr().cast());
    v[13] = _mm256_loadu_si256(hi.as_ptr().cast());
    let initial = v;
    for _ in 0..4 {
        qr!(v, 0, 4, 8, 12);
        qr!(v, 1, 5, 9, 13);
        qr!(v, 2, 6, 10, 14);
        qr!(v, 3, 7, 11, 15);
        qr!(v, 0, 5, 10, 15);
        qr!(v, 1, 6, 11, 12);
        qr!(v, 2, 7, 8, 13);
        qr!(v, 3, 4, 9, 14);
    }
    let mut words = [[0u32; 8]; WORDS_PER_BLOCK];
    for i in 0..WORDS_PER_BLOCK {
        let sum = _mm256_add_epi32(v[i], initial[i]);
        _mm256_storeu_si256(words[i].as_mut_ptr().cast(), sum);
    }
    for lane in 0..8 {
        for t in 0..U64S_PER_BLOCK {
            let lo = words[2 * t][lane] as u64;
            let hi = words[2 * t + 1][lane] as u64;
            out[lane * U64S_PER_BLOCK + t] = (hi << 32) | lo;
        }
    }
}

/// Sixteen blocks in the sixteen 32-bit lanes of AVX-512 vectors, with the
/// native lane rotate.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn blocks16_avx512(state: &[u32; WORDS_PER_BLOCK], out: &mut [u64]) {
    use std::arch::x86_64::*;

    macro_rules! qr {
        ($v:ident, $a:expr, $b:expr, $c:expr, $d:expr) => {
            $v[$a] = _mm512_add_epi32($v[$a], $v[$b]);
            $v[$d] = _mm512_rol_epi32::<16>(_mm512_xor_si512($v[$d], $v[$a]));
            $v[$c] = _mm512_add_epi32($v[$c], $v[$d]);
            $v[$b] = _mm512_rol_epi32::<12>(_mm512_xor_si512($v[$b], $v[$c]));
            $v[$a] = _mm512_add_epi32($v[$a], $v[$b]);
            $v[$d] = _mm512_rol_epi32::<8>(_mm512_xor_si512($v[$d], $v[$a]));
            $v[$c] = _mm512_add_epi32($v[$c], $v[$d]);
            $v[$b] = _mm512_rol_epi32::<7>(_mm512_xor_si512($v[$b], $v[$c]));
        };
    }

    let mut v: [__m512i; WORDS_PER_BLOCK] =
        std::array::from_fn(|i| _mm512_set1_epi32(state[i] as i32));
    let (lo, hi) = lane_counters::<16>(state);
    v[12] = _mm512_loadu_si512(lo.as_ptr().cast());
    v[13] = _mm512_loadu_si512(hi.as_ptr().cast());
    let initial = v;
    for _ in 0..4 {
        qr!(v, 0, 4, 8, 12);
        qr!(v, 1, 5, 9, 13);
        qr!(v, 2, 6, 10, 14);
        qr!(v, 3, 7, 11, 15);
        qr!(v, 0, 5, 10, 15);
        qr!(v, 1, 6, 11, 12);
        qr!(v, 2, 7, 8, 13);
        qr!(v, 3, 4, 9, 14);
    }
    let mut words = [[0u32; 16]; WORDS_PER_BLOCK];
    for i in 0..WORDS_PER_BLOCK {
        let sum = _mm512_add_epi32(v[i], initial[i]);
        _mm512_storeu_si512(words[i].as_mut_ptr().cast(), sum);
    }
    for lane in 0..16 {
        for t in 0..U64S_PER_BLOCK {
            let lo = words[2 * t][lane] as u64;
            let hi = words[2 * t + 1][lane] as u64;
            out[lane * U64S_PER_BLOCK + t] = (hi << 32) | lo;
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" — the standard ChaCha constants.
        let mut state = [0u32; WORDS_PER_BLOCK];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter (words 12..14) and nonce (words 14..16) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first_block: Vec<u32> = (0..WORDS_PER_BLOCK).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..WORDS_PER_BLOCK).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    /// An independent copy of the textbook scalar double-round block,
    /// pinning the keystream word for word. Any future rewrite of `refill`
    /// (e.g. a SIMD row-vector formulation) must keep matching this
    /// reference exactly, or every seeded noise draw in the workspace
    /// changes.
    fn scalar_block(state: &[u32; WORDS_PER_BLOCK]) -> [u32; WORDS_PER_BLOCK] {
        fn qr(s: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
            s[a] = s[a].wrapping_add(s[b]);
            s[d] = (s[d] ^ s[a]).rotate_left(16);
            s[c] = s[c].wrapping_add(s[d]);
            s[b] = (s[b] ^ s[c]).rotate_left(12);
            s[a] = s[a].wrapping_add(s[b]);
            s[d] = (s[d] ^ s[a]).rotate_left(8);
            s[c] = s[c].wrapping_add(s[d]);
            s[b] = (s[b] ^ s[c]).rotate_left(7);
        }
        let mut w = *state;
        for _ in 0..4 {
            qr(&mut w, 0, 4, 8, 12);
            qr(&mut w, 1, 5, 9, 13);
            qr(&mut w, 2, 6, 10, 14);
            qr(&mut w, 3, 7, 11, 15);
            qr(&mut w, 0, 5, 10, 15);
            qr(&mut w, 1, 6, 11, 12);
            qr(&mut w, 2, 7, 8, 13);
            qr(&mut w, 3, 4, 9, 14);
        }
        let mut out = [0u32; WORDS_PER_BLOCK];
        for (o, (a, b)) in out.iter_mut().zip(w.iter().zip(state.iter())) {
            *o = a.wrapping_add(*b);
        }
        out
    }

    #[test]
    fn refill_matches_scalar_reference() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut reference_state = rng.state;
            for _ in 0..5 {
                let want = scalar_block(&reference_state);
                let got: Vec<u32> = (0..WORDS_PER_BLOCK).map(|_| rng.next_u32()).collect();
                assert_eq!(got, want, "seed {seed}");
                let (lo, carry) = reference_state[12].overflowing_add(1);
                reference_state[12] = lo;
                if carry {
                    reference_state[13] = reference_state[13].wrapping_add(1);
                }
            }
        }
    }

    #[test]
    fn fill_u64s_matches_next_u64_loop() {
        // Lengths crossing every path: drain-only, scalar blocks, one and
        // several wide groups, ragged tails.
        for &n in &[0usize, 1, 5, 8, 9, 63, 64, 65, 128, 129, 200, 1024, 1031] {
            // Pre-consume some u64s so the drain starts mid-block.
            for pre in [0usize, 1, 3, 8] {
                let mut a = ChaCha8Rng::seed_from_u64(0xF00D);
                let mut b = ChaCha8Rng::seed_from_u64(0xF00D);
                for _ in 0..pre {
                    assert_eq!(a.next_u64(), b.next_u64());
                }
                let want: Vec<u64> = (0..n).map(|_| a.next_u64()).collect();
                let mut got = vec![0u64; n];
                b.fill_u64s(&mut got);
                assert_eq!(got, want, "n={n} pre={pre}");
                // The generators stay in lockstep afterwards.
                assert_eq!(a.next_u64(), b.next_u64(), "n={n} pre={pre} post");
            }
        }
    }

    #[test]
    fn fill_u64s_handles_odd_word_alignment() {
        // A lone next_u32 misaligns the pairing; fill must stay exact.
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        assert_eq!(a.next_u32(), b.next_u32());
        let want: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let mut got = vec![0u64; 100];
        b.fill_u64s(&mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn scalar_block_into_matches_reference() {
        let rng = ChaCha8Rng::seed_from_u64(0xBEEF);
        let want = scalar_block(&rng.state);
        let mut got = [0u64; U64S_PER_BLOCK];
        scalar_block_into(&rng.state, &mut got);
        for t in 0..U64S_PER_BLOCK {
            let lo = got[t] as u32;
            let hi = (got[t] >> 32) as u32;
            assert_eq!([lo, hi], [want[2 * t], want[2 * t + 1]], "pair {t}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn wide_cores_match_scalar_blocks_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xCAFE);
        // Push the counter near the 32-bit carry to cover per-lane carries.
        rng.state[12] = u32::MAX - 5;
        let mut reference = rng.clone();
        let mut want = vec![0u64; 16 * U64S_PER_BLOCK];
        for blk in 0..16 {
            scalar_block_into(
                &reference.state,
                &mut want[blk * U64S_PER_BLOCK..(blk + 1) * U64S_PER_BLOCK],
            );
            reference.advance_counter(1);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            let mut got = vec![0u64; 8 * U64S_PER_BLOCK];
            unsafe { blocks8_avx2(&rng.state, &mut got) };
            assert_eq!(got, want[..8 * U64S_PER_BLOCK], "avx2");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            let mut got = vec![0u64; 16 * U64S_PER_BLOCK];
            unsafe { blocks16_avx512(&rng.state, &mut got) };
            assert_eq!(got, want, "avx512");
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        // Crude sanity check: bit balance over 4k words.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..4096).map(|_| rng.next_u32().count_ones()).sum();
        let total = 4096 * 32;
        let frac = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&frac), "bit balance {frac}");
    }
}
