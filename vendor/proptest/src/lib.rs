//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of proptest 1.x:
//!
//! * the [`strategy::Strategy`] trait with range strategies, [`strategy::Just`],
//!   [`prop_oneof!`] unions and [`collection::vec`];
//! * [`arbitrary::any`] for primitives and [`sample::Index`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest: cases are drawn from a fixed deterministic
//! seed (reproducible in CI by construction), there is **no shrinking** — a
//! failing case panics with the values visible via the assertion message —
//! and strategies are simple samplers rather than value trees.

#![warn(missing_docs)]

pub mod test_runner {
    //! The deterministic RNG driving every generated case.

    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Seed for the deterministic test RNG. Changing it reshuffles every
    /// property-test corpus, so treat it as part of the test suite.
    pub const TEST_RNG_SEED: u64 = 0x005a_19a9_2022;

    /// The random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub ChaCha8Rng);

    impl TestRng {
        /// A deterministic generator, optionally perturbed per test via
        /// `stream` (the hash of the test name keeps corpora independent).
        pub fn deterministic(stream: u64) -> Self {
            TestRng(ChaCha8Rng::seed_from_u64(TEST_RNG_SEED ^ stream))
        }
    }

    /// FNV-1a — used to derive a per-test RNG stream from the test name.
    pub fn hash_name(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1_0000_0000_01b3);
        }
        hash
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree or shrinking: a strategy
    /// is just a sampler.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f`, resampling otherwise
        /// (proptest's `prop_filter`; no shrinking, so this simply redraws —
        /// a filter that rejects too often panics with `whence`).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive draws: {}",
                self.whence
            );
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for core::ops::Range<$t> {
                    type Value = $t;

                    fn sample(&self, rng: &mut TestRng) -> $t {
                        rng.0.gen_range(self.clone())
                    }
                }

                impl Strategy for core::ops::RangeInclusive<$t> {
                    type Value = $t;

                    fn sample(&self, rng: &mut TestRng) -> $t {
                        rng.0.gen_range(self.clone())
                    }
                }
            )*
        };
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// A uniform choice between boxed strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over the given options. Panics if empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.0.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (helper for
    /// `prop_oneof!`).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — strategies for "any value of `T`".

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.0.gen()
                    }
                }
            )*
        };
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.0.gen()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.0.gen()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample::Index`).

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Projects the index into `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.0.gen())
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by the `vec` function.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-run configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod prop {
    //! Namespace mirror so `prop::sample::Index` resolves like upstream.

    pub use crate::sample;
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Builds a strategy choosing uniformly between the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strategy) ),+
        ])
    };
}

/// Asserts a property holds; panics with the formatted message otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two values are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Binds `pat in strategy` parameters sequentially (internal helper for
/// [`proptest!`]).
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:pat in $strategy:expr) => {
        let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut $rng);
    };
    ($rng:ident; $arg:pat in $strategy:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Declares property tests. Each `#[test] fn name(pat in strategy, ...)`
/// block becomes a `#[test]` that draws `cases` inputs from a deterministic
/// RNG stream (derived from the test name) and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $(
        $(#[$meta:meta])+
        fn $name:ident($($params:tt)*) $body:block
     )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let stream = $crate::test_runner::hash_name(stringify!($name));
                let mut rng = $crate::test_runner::TestRng::deterministic(stream);
                for _case in 0..config.cases {
                    $crate::__proptest_bind!(rng; $($params)*);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic(0);
        for _ in 0..500 {
            let v = (3u32..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = crate::test_runner::TestRng::deterministic(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let strat = collection::vec(any::<u8>(), 2..5);
        let mut rng = crate::test_runner::TestRng::deterministic(2);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn index_projects_into_len() {
        let mut rng = crate::test_runner::TestRng::deterministic(3);
        for _ in 0..100 {
            let idx = crate::sample::Index::arbitrary(&mut rng);
            assert!(idx.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn proptest_macro_draws_cases(
            x in 1u8..=8,
            data in collection::vec(any::<u8>(), 0..4),
        ) {
            prop_assert!((1..=8).contains(&x));
            prop_assert!(data.len() < 4);
        }
    }
}
