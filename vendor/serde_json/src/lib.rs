//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny subset of serde_json the workspace uses: the [`Value`] tree, the
//! [`json!`] constructor macro (flat objects, arrays, scalars),
//! [`to_string`] / [`to_string_pretty`], and — since the serving layer's
//! JSONL packet format must round-trip — a [`from_str`] parser with the
//! usual [`Value`] accessors (`get`, `as_f64`, …). There is no serde
//! derive integration.

#![warn(missing_docs)]

use std::fmt;

/// A JSON value tree. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as the originating Rust type's widening).
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer or finite float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integers (covers all unsigned sources the workspace uses).
    Int(i64),
    /// Floating-point numbers.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            // JSON has no Inf/NaN; serialise as null like serde_json does.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {
        $(
            impl From<$t> for Value {
                fn from(v: $t) -> Value {
                    Value::Number(Number::Int(v as i64))
                }
            }
        )*
    };
}

from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

impl Value {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen); `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Float(x)) => Some(*x),
            Value::Number(Number::Int(i)) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as an `i64`; `None` for floats and non-numbers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64`; `None` for negatives, floats and non-numbers.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as a string slice; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool; `None` for non-bools.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements; `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialisation / parse error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`]. Accepts exactly the dialect the
/// writers above emit (and standard JSON generally); trailing garbage after
/// the document is an error.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

/// A minimal recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let bytes = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated utf-8"))?;
                    let s = std::str::from_utf8(bytes).map_err(|_| Error::new("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|_| Error::new(format!("bad float '{text}'")))?;
            Ok(Value::Number(Number::Float(x)))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Number(Number::Int(i))),
                // Integers beyond i64 fall back to the float representation.
                Err(_) => {
                    let x: f64 = text
                        .parse()
                        .map_err(|_| Error::new(format!("bad number '{text}'")))?;
                    Ok(Value::Number(Number::Float(x)))
                }
            }
        }
    }
}

/// Length of the UTF-8 sequence introduced by its first byte.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Serialises a [`Value`] as pretty-printed JSON (two-space indent).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    Ok(out)
}

/// Serialises a [`Value`] as compact single-line JSON.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value_compact(&mut out, value);
    Ok(out)
}

fn write_value_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_value_compact(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_escaped(out, key);
                out.push_str(": ");
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from a JSON-shaped literal: `json!({"k": v, ...})`,
/// `json!([a, b])`, `json!(null)`, or `json!(expr)` for any `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::Value::from($val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_round_trips_through_pretty_printer() {
        let v = json!({
            "name": "saiyan",
            "k": 3u8,
            "ber": 0.0125f64,
            "ok": true,
        });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"name\": \"saiyan\""));
        assert!(text.contains("\"k\": 3"));
        assert!(text.contains("\"ber\": 0.0125"));
        assert!(text.contains("\"ok\": true"));
    }

    #[test]
    fn array_of_objects_nests() {
        let rows = vec![json!({"a": 1}), json!({"a": 2})];
        let v = json!(rows);
        match &v {
            Value::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
        let text = to_string_pretty(&v).unwrap();
        assert!(text.starts_with('['));
        assert!(text.trim_end().ends_with(']'));
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({"msg": "line\n\"quote\""});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("line\\n\\\"quote\\\""));
    }

    #[test]
    fn to_string_is_compact_single_line() {
        let v = json!({"a": 1, "b": json!([true, Value::Null]), "c": "x"});
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"a":1,"b":[true,null],"c":"x"}"#);
        assert!(!text.contains('\n'));
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Number::Float(5.0).to_string(), "5.0");
        assert_eq!(Number::Int(5).to_string(), "5");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let v = json!({
            "name": "sai\"yan\n",
            "k": 3u8,
            "neg": -17i64,
            "ber": 0.012_345_678_901_234_5f64,
            "whole": 5.0f64,
            "tiny": 1.0e-300f64,
            "ok": true,
            "nothing": Value::Null,
            "list": json!([1, "two", false]),
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let parsed = from_str(&text).unwrap();
            assert_eq!(parsed, v, "from: {text}");
        }
    }

    #[test]
    fn accessors_navigate_parsed_values() {
        let v = from_str(r#"{"a": {"b": [1, 2.5, "x"]}, "t": true}"#).unwrap();
        let list = v.get("a").and_then(|a| a.get("b")).unwrap();
        let items = list.as_array().unwrap();
        assert_eq!(items[0].as_i64(), Some(1));
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("x"));
        assert_eq!(v.get("t").and_then(Value::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn malformed_documents_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "{]}",
            "nul",
            "--3",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn exotic_floats_round_trip_bit_exactly() {
        for x in [
            f64::MIN_POSITIVE,
            f64::MAX,
            -0.0,
            1.0 / 3.0,
            6.626_070_15e-34,
        ] {
            let text = to_string(&Value::from(x)).unwrap();
            let back = from_str(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "via {text}");
        }
    }
}
