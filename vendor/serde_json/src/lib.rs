//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny subset of serde_json the experiment binaries use: the [`Value`]
//! tree, the [`json!`] constructor macro (flat objects, arrays, scalars), and
//! [`to_string_pretty`]. There is no serde integration and no parser — the
//! experiment harness only ever *writes* JSON result files.

#![warn(missing_docs)]

use std::fmt;

/// A JSON value tree. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as the originating Rust type's widening).
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer or finite float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integers (covers all unsigned sources the workspace uses).
    Int(i64),
    /// Floating-point numbers.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            // JSON has no Inf/NaN; serialise as null like serde_json does.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {
        $(
            impl From<$t> for Value {
                fn from(v: $t) -> Value {
                    Value::Number(Number::Int(v as i64))
                }
            }
        )*
    };
}

from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

/// Serialisation error. The stub's writer cannot actually fail; the type
/// exists so call sites match serde_json's `Result`-returning signature.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialisation error")
    }
}

impl std::error::Error for Error {}

/// Serialises a [`Value`] as pretty-printed JSON (two-space indent).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    Ok(out)
}

/// Serialises a [`Value`] as compact single-line JSON.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value_compact(&mut out, value);
    Ok(out)
}

fn write_value_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_value_compact(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_escaped(out, key);
                out.push_str(": ");
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from a JSON-shaped literal: `json!({"k": v, ...})`,
/// `json!([a, b])`, `json!(null)`, or `json!(expr)` for any `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::Value::from($val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_round_trips_through_pretty_printer() {
        let v = json!({
            "name": "saiyan",
            "k": 3u8,
            "ber": 0.0125f64,
            "ok": true,
        });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"name\": \"saiyan\""));
        assert!(text.contains("\"k\": 3"));
        assert!(text.contains("\"ber\": 0.0125"));
        assert!(text.contains("\"ok\": true"));
    }

    #[test]
    fn array_of_objects_nests() {
        let rows = vec![json!({"a": 1}), json!({"a": 2})];
        let v = json!(rows);
        match &v {
            Value::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
        let text = to_string_pretty(&v).unwrap();
        assert!(text.starts_with('['));
        assert!(text.trim_end().ends_with(']'));
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({"msg": "line\n\"quote\""});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("line\\n\\\"quote\\\""));
    }

    #[test]
    fn to_string_is_compact_single_line() {
        let v = json!({"a": 1, "b": json!([true, Value::Null]), "c": "x"});
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"a":1,"b":[true,null],"c":"x"}"#);
        assert!(!text.contains('\n'));
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Number::Float(5.0).to_string(), "5.0");
        assert_eq!(Number::Int(5).to_string(), "5");
    }
}
