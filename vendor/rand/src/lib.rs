//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of the `rand` 0.8 surface that the Saiyan
//! reproduction actually uses: the [`Rng`] extension trait with `gen`,
//! `gen_range` and `gen_bool`, backed by the [`distributions`] module.
//!
//! Uniform integer sampling uses Lemire's widening-multiply rejection method
//! so small ranges are unbiased; floats use the standard 53-bit mantissa
//! construction for `[0, 1)`.

#![warn(missing_docs)]
// The stub keeps the rand 0.8 method names (`gen`), which is a reserved
// keyword in edition 2024; this crate stays on edition 2021.

pub use rand_core::{RngCore, SeedableRng};

pub mod distributions {
    //! The subset of `rand::distributions` the workspace uses: the
    //! [`Standard`] distribution and the [`Distribution`] trait.

    use crate::RngCore;

    /// A distribution over a type `T`, sampleable from any [`RngCore`].
    pub trait Distribution<T> {
        /// Draws one value from the distribution.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: full range for integers, `[0, 1)` for
    /// floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {
            $(
                impl Distribution<$t> for Standard {
                    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )*
        };
    }

    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits scaled into [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

use distributions::{Distribution, Standard};

/// Types that can be drawn uniformly from a half-open or inclusive range.
pub trait SampleUniform: PartialOrd + Sized {
    /// Draws uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Draws uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Draws a `u64` below `span` without modulo bias (Lemire's method).
fn uniform_u64_below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let word = rng.next_u64();
        let (hi, lo) = {
            let wide = (word as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {
        $(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                    assert!(low < high, "gen_range called with empty range");
                    let span = (high as i128 - low as i128) as u64;
                    (low as i128 + uniform_u64_below(span, rng) as i128) as $t
                }

                fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                    assert!(low <= high, "gen_range called with empty range");
                    let span = (high as i128 - low as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (low as i128 + uniform_u64_below(span + 1, rng) as i128) as $t
                }
            }
        )*
    };
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {
        $(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                    assert!(low < high, "gen_range called with empty range");
                    let unit: $t = Standard.sample(rng);
                    let value = low + unit * (high - low);
                    // Guard against rounding up to the excluded endpoint.
                    if value < high { value } else { low }
                }

                fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                    assert!(low <= high, "gen_range called with empty range");
                    let unit: $t = Standard.sample(rng);
                    low + unit * (high - low)
                }
            }
        )*
    };
}

uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(low, high, rng)
    }
}

/// Extension methods for random number generators, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        T: SampleUniform,
        Ra: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }

    /// Draws a value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A weak but adequate xorshift generator for testing the trait plumbing.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = XorShift(0x1234_5678_9abc_def0);
        for _ in 0..2000 {
            let v: u32 = rng.gen_range(0..7);
            assert!(v < 7);
            let w: u8 = rng.gen_range(1..=255);
            assert!(w >= 1);
            let f: f64 = rng.gen_range(-2.5..3.5);
            assert!((-2.5..3.5).contains(&f));
        }
    }

    #[test]
    fn standard_f64_is_in_unit_interval() {
        let mut rng = XorShift(99);
        for _ in 0..2000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = XorShift(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
