//! Channel hopping under jamming (paper §5.3.2): a jammer sits on the tag's
//! channel; the access point notices the collapsed PRR and commands a hop,
//! which the tag can only obey because Saiyan lets it demodulate the command.
//!
//! Run with: `cargo run --release --example channel_hopping`
//!
//! The MAC-level jam-and-hop sequence is also a compile-checked doctest on
//! `saiyan_mac::HoppingController`, so the API it shows cannot drift.

use netsim::{median, ChannelHoppingStudy};
use saiyan_mac::{ChannelTable, Command, HoppingController, TagChannelState, TagId};

fn main() {
    // MAC-level view: the controller watches per-channel interference and
    // issues the hop command.
    let table = ChannelTable::paper_433mhz();
    let mut controller = HoppingController::new(table.clone(), 2, -70.0).expect("valid channel");
    let mut tag = TagChannelState::new(TagId(1), table, 2).expect("valid channel");
    println!("Tag starts on {:.1} MHz", tag.frequency() / 1e6);

    for ch in 0..5u8 {
        controller.record_interference(ch, -95.0).unwrap();
    }
    controller.record_interference(2, -42.0).unwrap(); // jammer appears
    if let Some(packet) = controller.maybe_hop() {
        if let Command::ChannelHop { channel } = packet.command {
            println!("AP detects jamming and broadcasts: hop to channel {channel}");
        }
        tag.apply(&packet).unwrap();
    }
    println!("Tag now on {:.1} MHz\n", tag.frequency() / 1e6);

    // Link-level view: the PRR trace of the Fig. 27 case study.
    let study = ChannelHoppingStudy::paper();
    let windows = study.run();
    let before: Vec<f64> = windows
        .iter()
        .filter(|w| !w.hopped)
        .map(|w| w.prr)
        .collect();
    let after: Vec<f64> = windows.iter().filter(|w| w.hopped).map(|w| w.prr).collect();
    println!(
        "PRR while jammed: median {:4.1}% over {} windows",
        median(&before) * 100.0,
        before.len()
    );
    println!(
        "PRR after hop:    median {:4.1}% over {} windows  (paper: 47% -> 92%)",
        median(&after) * 100.0,
        after.len()
    );
}
