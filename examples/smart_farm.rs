//! Smart-farm scenario (the paper's motivating deployment): backscatter soil
//! sensors deliver readings to a remote access point; lost packets are
//! recovered through Saiyan-enabled reactive retransmissions, and the access
//! point remotely disables a sensor, with the tags acknowledging over slotted
//! ALOHA.
//!
//! Run with: `cargo run --release --example smart_farm`

use netsim::{multi_tag_acknowledgement, RetransmissionStudy, Scenario, UplinkSystem};
use rfsim::units::Meters;

fn main() {
    println!("=== Smart farm: reactive retransmission ===");
    for system in [UplinkSystem::PLoRa, UplinkSystem::Aloba] {
        let study = RetransmissionStudy::paper(system);
        print!("{:>6}: PRR", system.name());
        for n in 0..=3u32 {
            print!("  {} retx: {:5.1}%", n, study.prr(n) * 100.0);
        }
        println!();
    }
    println!("Without the Saiyan downlink the tags would have to repeat every packet");
    println!("blindly; with it, only lost packets are retransmitted.\n");

    println!("=== Smart farm: remote sensor control with multi-tag ACK ===");
    for &distance in &[50.0, 100.0, 140.0] {
        let downlink = Scenario::outdoor_default(Meters(distance));
        let round = multi_tag_acknowledgement(20, &downlink, 32, 7);
        println!(
            "broadcast 'humidity sensor off' at {distance:>5.1} m: {} of 20 tags demodulated, \
             {} ACKs delivered, {} lost to collisions",
            round.demodulated, round.acked, round.collided
        );
    }
    println!("\nEach tag picks a random ALOHA slot for its acknowledgement, so most");
    println!("ACKs get through even for a broadcast command (paper §4.4, Fig. 15).");
}
