//! Quickstart: modulate a downlink command at the access point, push it
//! through the radio channel, and demodulate it on a Saiyan tag.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The round trip at the heart of this example is also a compile-checked
//! doctest on `saiyan::SaiyanDemodulator`, so the API it shows cannot drift.

use lora_phy::downlink::{bytes_to_symbols, symbols_for_bytes};
use lora_phy::modulator::{Alphabet, Modulator};
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use rfsim::channel::Channel;
use rfsim::link::paper_downlink;
use rfsim::noise::NoiseModel;
use rfsim::pathloss::{Environment, PathLossModel};
use rfsim::units::{Db, Hertz, Meters};
use saiyan::{SaiyanConfig, SaiyanDemodulator, Variant};
use saiyan_mac::{Addressing, Command, DownlinkPacket, TagId};

fn main() {
    // 1. The PHY configuration used throughout the paper's evaluation:
    //    SF7, 500 kHz, K = 2 bits per chirp, 433.5 MHz.
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).expect("valid K"),
    )
    .with_oversampling(8);

    // 2. The access point wants tag #7 to retransmit packet 42.
    let command = DownlinkPacket {
        addressing: Addressing::Unicast(TagId(7)),
        command: Command::Retransmit { sequence: 42 },
    };
    let payload = command.to_bytes();
    let symbols = bytes_to_symbols(&payload, lora.bits_per_chirp);
    println!(
        "Downlink command: {:?} -> {} bytes -> {} chirp symbols",
        command.command,
        payload.len(),
        symbols_for_bytes(payload.len(), lora.bits_per_chirp)
    );

    // 3. Modulate and send over a 40 m outdoor link. (The waveform-level
    //    receive chain demonstrates the mechanism at comfortable signal
    //    levels; the calibrated link-abstraction model in `netsim` covers the
    //    full 148.6 m evaluation range — see EXPERIMENTS.md.)
    let modulator = Modulator::new(lora);
    let (wave, layout) = modulator
        .packet_with_guard(&symbols, Alphabet::Downlink, 4)
        .expect("valid symbols");
    let path_loss = PathLossModel::for_environment(Environment::OutdoorLos, Hertz(lora.carrier_hz));
    let link = paper_downlink(path_loss, Meters(40.0));
    let channel = Channel::new(link, NoiseModel::new(Db(6.0), Hertz(lora.bw.hz())));
    println!(
        "Link: 40 m outdoors, RSS {} (sensitivity {} dBm), SNR {}",
        channel.received_power(),
        saiyan::SUPER_SAIYAN_SENSITIVITY_DBM,
        channel.snr()
    );
    let rx = channel.propagate(&wave);

    // 4. The tag demodulates with the full (Super Saiyan) receive chain.
    let config = SaiyanConfig::paper_default(lora, Variant::Super);
    let demod = SaiyanDemodulator::new(config);
    let result = demod
        .demodulate_aligned(&rx, layout.payload_start, symbols.len())
        .expect("demodulation succeeds at 40 m");
    let decoded_bytes = result.to_bytes(lora.bits_per_chirp, payload.len());
    let decoded = DownlinkPacket::from_bytes(&decoded_bytes).expect("valid packet");

    println!("Decoded command: {:?}", decoded.command);
    assert_eq!(decoded, command);
    println!("Round trip OK: the tag knows it must retransmit packet 42.");
}
