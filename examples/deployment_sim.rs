//! Whole-deployment discrete-event simulation: an access point and a fleet of
//! backscatter sensor tags exchange readings and feedback over time, with a
//! jammer appearing mid-run and the network hopping away from it.
//!
//! Run with: `cargo run --release --example deployment_sim`

use netsim::{DeploymentConfig, DeploymentSim, UplinkSystem};

fn report(label: &str, stats: &netsim::DeploymentStats) {
    println!("--- {label} ---");
    println!(
        "readings: {} generated, {} delivered ({:.1}% delivery)",
        stats.readings_generated,
        stats.readings_delivered,
        stats.delivery_ratio() * 100.0
    );
    println!(
        "uplink transmissions: {} ({:.2} per delivered reading)",
        stats.uplink_transmissions,
        stats.transmissions_per_delivery()
    );
    println!(
        "downlink commands: {} ({} retransmission requests, {} channel hops)",
        stats.downlink_commands, stats.retransmission_requests, stats.channel_hops
    );
    println!(
        "tag energy spent demodulating feedback: {:.2} mJ over {:.0} s\n",
        stats.tag_demodulation_energy_j * 1e3,
        stats.duration_s
    );
}

fn main() {
    // 1. A healthy PLoRa deployment: almost everything arrives first try.
    let clean = DeploymentSim::new(DeploymentConfig::default()).run();
    report("PLoRa uplink, clean channel", &clean);

    // 2. A lossy Aloba deployment: the feedback loop earns its keep.
    let lossy_cfg = DeploymentConfig {
        uplink_system: UplinkSystem::Aloba,
        uplink_tag_to_tx_m: 2.8,
        ..Default::default()
    };
    let with_arq = DeploymentSim::new(lossy_cfg.clone()).run();
    report("Aloba uplink, reactive retransmissions", &with_arq);
    let without_arq = DeploymentSim::new(DeploymentConfig {
        max_retries: 0,
        ..lossy_cfg
    })
    .run();
    report("Aloba uplink, no feedback (blind)", &without_arq);

    // 3. A jammer appears at t = 20 s; the AP notices and hops the network.
    let jammed = DeploymentSim::new(DeploymentConfig {
        jammer_at_s: Some(20.0),
        ..Default::default()
    })
    .run();
    report(
        "PLoRa uplink, jammer at t=20 s (with channel hopping)",
        &jammed,
    );

    println!("Takeaway: with Saiyan the tags can hear the access point, so lost packets");
    println!("are recovered on demand and the whole network escapes a jammed channel.");
}
