//! Rate adaptation over the feedback loop: the access point watches each
//! tag's link margin and commands the fastest bits-per-chirp the link can
//! sustain, trading throughput against range exactly as in Figs. 16–18.
//!
//! Run with: `cargo run --release --example rate_adaptation`

use lora_phy::params::BitsPerChirp;
use netsim::Scenario;
use rfsim::units::Meters;
use saiyan::metrics::throughput_bps;
use saiyan_mac::{apply_rate_command, RateAdapter, TagId};

fn main() {
    let mut adapter = RateAdapter::default();
    let tag = TagId(3);

    println!("distance   margin   commanded K   downlink rate   BER at that rate");
    for &distance in &[20.0, 60.0, 100.0, 130.0, 150.0, 170.0] {
        let scenario = Scenario::outdoor_default(Meters(distance));
        // Link margin relative to the K=1 sensitivity.
        let k1 = scenario
            .clone()
            .with_bits_per_chirp(BitsPerChirp::new(1).unwrap())
            .sensitivity_config()
            .sensitivity();
        let margin = scenario.effective_rss().value() - k1.value();

        let mut commanded = adapter.current_rate(tag);
        if let Some(packet) = adapter.update(tag, margin) {
            commanded = apply_rate_command(&packet, tag)
                .expect("valid command")
                .expect("addressed to us");
        }
        let at_rate = scenario.clone().with_bits_per_chirp(commanded);
        println!(
            "{:>6.0} m  {:>5.1} dB      K={}       {:>7.2} kbps        {:.2e}",
            distance,
            margin,
            commanded.bits(),
            throughput_bps(&at_rate.lora, 0.0) / 1000.0,
            at_rate.ber()
        );
    }
    println!("\nClose to the access point the link supports K=5 (~19.5 kbps); near the");
    println!("edge of the range the adapter falls back to K=1 to keep the BER below 1e-3.");
}
