//! Bit-reproducibility of the network engine: for a fixed seed, the whole
//! [`EngineReport`](netsim::engine::EngineReport) — every counter and every
//! latency sample — must be identical whatever the synthesis chunk size or
//! the gateway worker-thread count, and across repeated runs.

use netsim::engine::{EngineScenario, MacPolicy, NetworkEngine};
use saiyan::gateway::Gateway;

/// A scenario that exercises the full feedback loop: multiple tags and
/// channels, an injected loss in the middle of a tag's sequence (so the
/// following frame reveals the gap and ARQ downlinks plus a replay happen),
/// and per-packet power/CFO draws.
fn scenario() -> EngineScenario {
    let mut s = EngineScenario::grid(4, 4, 3).with_mac(MacPolicy::Hopping);
    s.drop_first_attempt = vec![(1, 1)];
    // Fix one feedback delay that satisfies the chunk-invariance bound for
    // the *largest* chunk size under test, so every run shares it.
    s.chunk_samples = 1 << 16;
    s.feedback_delay_s = s.min_feedback_delay_s();
    s
}

#[test]
fn waveform_reports_are_identical_across_chunk_sizes_and_worker_counts() {
    let base = scenario();
    let mut reports = Vec::new();
    for chunk_samples in [4096usize, 16384, 1 << 16] {
        for workers in [1usize, 2, 4] {
            let mut s = base.clone();
            s.chunk_samples = chunk_samples;
            let engine = NetworkEngine::new(s);
            let config = engine.default_gateway_config().with_worker_threads(workers);
            let out = engine.run_waveform_with(move |_spec| Box::new(Gateway::new(config.clone())));
            reports.push((chunk_samples, workers, out.report));
        }
    }
    let (c0, w0, reference) = &reports[0];
    assert!(reference.readings_delivered > 0, "{reference:?}");
    assert!(reference.retransmission_requests >= 1, "{reference:?}");
    for (c, w, report) in &reports[1..] {
        assert_eq!(
            report, reference,
            "chunk {c} x workers {w} diverged from chunk {c0} x workers {w0}"
        );
    }
}

#[test]
fn waveform_runs_are_reproducible_and_seed_sensitive() {
    // ALOHA draws its channels from the seeded MAC stream, so a different
    // seed reshuffles the collision pattern — a robust seed probe.
    let base = scenario().with_mac(MacPolicy::Aloha);
    let a = NetworkEngine::new(base.clone()).run_waveform();
    let b = NetworkEngine::new(base.clone()).run_waveform();
    assert_eq!(a.report, b.report);
    let c = NetworkEngine::new(base.with_seed(0xBEEF)).run_waveform();
    assert_ne!(a.report, c.report);
}

#[test]
fn analytic_runs_are_reproducible() {
    let base = scenario().with_mac(MacPolicy::Aloha);
    let a = NetworkEngine::new(base.clone()).run_analytic();
    let b = NetworkEngine::new(base).run_analytic();
    assert_eq!(a.report, b.report);
    assert!(a.report.collisions > 0 || a.report.readings_delivered > 0);
}

#[test]
fn analytic_and_waveform_agree_on_the_workload_shape() {
    // The two fidelity levels share traffic and MAC machinery: on a clean,
    // collision-free scenario they must agree on the integer workload
    // counters (readings, transmissions, deliveries) even though their PHY
    // models differ completely.
    let s = EngineScenario::grid(4, 4, 2);
    let analytic = NetworkEngine::new(s.clone()).run_analytic();
    let waveform = NetworkEngine::new(s).run_waveform();
    assert_eq!(
        analytic.report.readings_generated,
        waveform.report.readings_generated
    );
    assert_eq!(
        analytic.report.uplink_transmissions,
        waveform.report.uplink_transmissions
    );
    assert_eq!(
        analytic.report.readings_delivered,
        waveform.report.readings_delivered
    );
}
