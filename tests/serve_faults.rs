//! Table-driven fault injection against the serving daemon: for every
//! client misbehaviour in the table, a faulted stream and a clean stream
//! run concurrently on one shared daemon (with a receiver pool), and the
//! clean stream must decode **bit-identically** to an undisturbed reference
//! — per-stream isolation under fire. No fault may panic the daemon, and
//! every fault's damage must show up in the right telemetry counter.
//!
//! The same daemon and pool serve every row, so a fault in row N also
//! cannot poison the recycled receiver a later row checks out — the final
//! clean replay re-verifies the reference decode after the whole gauntlet.

use std::sync::Arc;

use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::longtrace::{generate_long_trace, random_payloads, LongTraceConfig, TracePacket};
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::{BoxedReceiver, PooledExecutor, StreamingDemodulator};
use saiyan_serve::{
    replay_with_fault, samples_to_bytes, Fault, ServeConfig, ServeDaemon, StreamReport,
};

const PAYLOAD_SYMBOLS: usize = 12;
const CHUNK_SAMPLES: usize = 2048;
const CHUNK_BYTES: usize = CHUNK_SAMPLES * saiyan_serve::wire::BYTES_PER_SAMPLE;

fn daemon_under_test() -> ServeDaemon {
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).expect("valid"),
    );
    let cfg = SaiyanConfig::paper_default(lora, Variant::Vanilla).high_throughput();
    let factory = Arc::new(move || {
        Box::new(StreamingDemodulator::new(cfg.clone(), PAYLOAD_SYMBOLS)) as BoxedReceiver
    });
    ServeDaemon::new(
        Arc::new(PooledExecutor::new(factory, 2)),
        ServeConfig::default(),
    )
}

/// The capture every client replays, as ingest bytes.
fn capture() -> Vec<u8> {
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).expect("valid"),
    );
    let payloads = random_payloads(3, PAYLOAD_SYMBOLS, lora.bits_per_chirp, 0xFA_171);
    let packets: Vec<TracePacket> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| TracePacket::new(p.clone(), -50.0, if i == 0 { 4.0 } else { 12.0 }))
        .collect();
    let config = LongTraceConfig::new(lora).with_noise(-80.0);
    let (trace, _) = generate_long_trace(&config, &packets);
    samples_to_bytes(&trace.samples)
}

#[test]
fn every_fault_degrades_gracefully_and_no_stream_bleeds_into_another() {
    let daemon = daemon_under_test();
    let bytes = Arc::new(capture());
    let n_chunks = bytes.len().div_ceil(CHUNK_BYTES);
    assert!(n_chunks >= 10, "trace long enough to fault mid-stream");

    // The undisturbed reference decode, served by the same daemon.
    let reference = replay_with_fault(&daemon, "reference", &bytes, CHUNK_BYTES, &Fault::None)
        .expect("clean replay reports");
    assert_eq!(
        reference.packets.len(),
        3,
        "the reference must decode every packet on the trace"
    );

    let table: Vec<Fault> = vec![
        Fault::Stall {
            before_chunk: 2,
            millis: 30,
        },
        // Cut inside the second packet's waveform: a mid-packet disconnect.
        Fault::DisconnectAfter {
            chunks: n_chunks / 2,
        },
        Fault::TruncateChunk {
            index: 1,
            drop_bytes: 5,
        },
        // Degenerate truncation: the chunk vanishes entirely.
        Fault::TruncateChunk {
            index: 3,
            drop_bytes: CHUNK_BYTES,
        },
        Fault::ZeroLengthChunk { every: 5 },
        Fault::NonFinite { index: 2 },
    ];

    let mut expected_streams = 1u64; // the reference
    for (row, fault) in table.iter().enumerate() {
        // Faulted and clean stream run concurrently on the shared daemon.
        let victim_name = format!("clean-{row}");
        let outcome: (Option<StreamReport>, StreamReport) = std::thread::scope(|scope| {
            let faulted = scope.spawn(|| {
                replay_with_fault(
                    &daemon,
                    &format!("faulted-{row}"),
                    &bytes,
                    CHUNK_BYTES,
                    fault,
                )
            });
            let clean = scope.spawn(|| {
                replay_with_fault(&daemon, &victim_name, &bytes, CHUNK_BYTES, &Fault::None)
                    .expect("clean replay reports")
            });
            (
                faulted.join().expect("faulted client must not panic"),
                clean.join().expect("clean client must not panic"),
            )
        });
        let (faulted, clean) = outcome;
        expected_streams += 2;

        // Isolation: the concurrent clean stream is bit-identical to the
        // reference regardless of what its neighbour did.
        assert_eq!(
            clean.packets,
            reference.packets,
            "fault {:?} (row {row}) corrupted an unrelated stream",
            fault.label()
        );
        assert_eq!(clean.binary, reference.binary);
        assert_eq!(clean.jsonl, reference.jsonl);
        assert!(!clean.disconnected);

        // Fault-specific degradation contract.
        match fault {
            Fault::None => unreachable!("not in the table"),
            Fault::Stall { .. } => {
                let report = faulted.expect("a stalled client still closes cleanly");
                assert_eq!(
                    report.packets, reference.packets,
                    "a stall delays the stream but loses nothing"
                );
                assert_eq!(report.stats.dropped_chunks, 0);
            }
            Fault::DisconnectAfter { .. } => {
                assert!(faulted.is_none(), "a vanished client has no report");
                // The client vanished but its worker may still be flushing;
                // wait for telemetry to show the stream finished (guaranteed
                // to happen — the queue is closed).
                let stream = loop {
                    let snap = daemon.poll();
                    let s = snap
                        .streams
                        .iter()
                        .find(|s| s.name == format!("faulted-{row}"))
                        .expect("disconnected stream is still visible in telemetry")
                        .clone();
                    if s.finished {
                        break s;
                    }
                    std::thread::yield_now();
                };
                assert!(stream.disconnected, "telemetry records the disconnect");
                assert!(
                    stream.packets as usize <= reference.packets.len(),
                    "a half-received stream cannot out-decode the full one"
                );
            }
            Fault::TruncateChunk { drop_bytes, .. } => {
                let report = faulted.expect("a torn write does not kill the stream");
                let dangling = (CHUNK_BYTES - drop_bytes) % 8;
                assert_eq!(
                    report.stats.malformed_bytes, dangling as u64,
                    "exactly the dangling tail is counted as malformed"
                );
                assert!(report.packets.len() <= reference.packets.len());
                assert!(!report.disconnected);
            }
            Fault::ZeroLengthChunk { .. } => {
                let report = faulted.expect("empty frames are no-ops, not errors");
                assert!(report.packets.len() <= reference.packets.len());
                assert!(!report.disconnected);
            }
            Fault::NonFinite { .. } => {
                let report = faulted.expect("sanitised NaN/Inf does not kill the stream");
                assert_eq!(
                    report.stats.sanitized_samples, 1,
                    "exactly the poisoned sample is sanitised"
                );
                assert!(!report.disconnected);
            }
        }
    }

    // After the whole gauntlet the pool's recycled receivers still decode
    // the reference bit-identically: no fault left residue behind.
    let after = replay_with_fault(&daemon, "post-gauntlet", &bytes, CHUNK_BYTES, &Fault::None)
        .expect("clean replay reports");
    assert_eq!(after.packets, reference.packets);
    expected_streams += 1;

    let final_snapshot = daemon.shutdown();
    assert_eq!(final_snapshot.streams_opened, expected_streams);
    assert_eq!(
        final_snapshot.streams_closed, expected_streams,
        "every stream — including the disconnected ones — ran to completion"
    );
    // Memory stayed bounded: nothing is still queued anywhere.
    assert!(final_snapshot.streams.iter().all(|s| s.finished));
}

/// Shutdown with streams still open must not hang or panic: open handles
/// turn into disconnects and their workers are joined.
#[test]
fn shutdown_with_open_streams_is_clean() {
    let daemon = daemon_under_test();
    let bytes = capture();
    let handle = daemon.open_stream("abandoned").expect("daemon running");
    handle
        .send_bytes(bytes[..CHUNK_BYTES].to_vec())
        .expect("stream open");
    let snapshot = daemon.shutdown();
    assert_eq!(snapshot.streams_opened, 1);
    assert_eq!(snapshot.streams_closed, 1);
    assert!(snapshot.streams[0].disconnected);
    // The handle is now dead; sends fail instead of hanging.
    assert!(handle.send_bytes(vec![0; 8]).is_err());
    // Reopening after shutdown is refused, not undefined.
    assert!(daemon.open_stream("late").is_none());
}
