//! End-to-end MAC behaviour of the discrete-event network engine: ARQ
//! recovery of injected losses, hopping-schedule conformance on the real
//! waveform path, jammer-driven channel hops, ALOHA collisions, and the
//! detection-only baseline backends.

use std::sync::{Arc, Mutex};

use baselines::{AlobaDetector, DetectionReceiver};
use lora_phy::iq::Iq;
use netsim::engine::{EngineScenario, JammerSpec, MacPolicy, NetworkEngine};
use saiyan::gateway::{Gateway, GatewayPacket};
use saiyan::receiver::Receiver;
use saiyan_mac::packet::UplinkPacket;

/// Wraps a receiver and logs every packet it releases, so tests can inspect
/// per-packet channels/times that the aggregate report does not carry.
struct Recording<R: Receiver> {
    inner: R,
    log: Arc<Mutex<Vec<GatewayPacket>>>,
}

impl<R: Receiver> Receiver for Recording<R> {
    fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }
    fn input_rate(&self) -> f64 {
        self.inner.input_rate()
    }
    fn feed(&mut self, chunk: &[Iq]) -> Vec<GatewayPacket> {
        let packets = self.inner.feed(chunk);
        self.log.lock().unwrap().extend(packets.iter().cloned());
        packets
    }
    fn flush(&mut self) -> Vec<GatewayPacket> {
        let packets = self.inner.flush();
        self.log.lock().unwrap().extend(packets.iter().cloned());
        packets
    }
    fn reset(&mut self) {
        self.inner.reset();
        self.log.lock().unwrap().clear();
    }
}

#[test]
fn arq_recovers_injected_losses_on_the_waveform_path() {
    let mut scenario = EngineScenario::grid(2, 4, 4);
    scenario.drop_first_attempt = vec![(0, 1)];
    let out = NetworkEngine::new(scenario.clone()).run_waveform();
    let r = &out.report;
    assert_eq!(r.readings_generated, 8);
    assert_eq!(r.suppressed_transmissions, 1, "the injected loss fired");
    assert!(
        r.retransmission_requests >= 1,
        "the gap raised an ARQ request"
    );
    assert_eq!(
        r.readings_delivered, 8,
        "ARQ recovered the dropped reading ({r:?})"
    );
    // The recovered reading paid the ARQ round trip: its latency clearly
    // exceeds the clean single-packet latency.
    let max_latency = r.latencies_s.iter().cloned().fold(0.0f64, f64::max);
    let min_latency = r.latencies_s.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max_latency > min_latency + scenario.feedback_delay_s,
        "recovered latency {max_latency} vs clean {min_latency}"
    );

    // The analytical backend recovers through the identical MAC machinery.
    let analytic = NetworkEngine::new(scenario).run_analytic();
    assert_eq!(analytic.report.readings_delivered, 8);
    assert!(analytic.report.retransmission_requests >= 1);
}

#[test]
fn hopping_policy_follows_the_rotation_schedule_on_air() {
    let scenario = EngineScenario::grid(4, 4, 3).with_mac(MacPolicy::Hopping);
    let engine = NetworkEngine::new(scenario.clone());
    let gateway_config = engine.default_gateway_config();
    let log = Arc::new(Mutex::new(Vec::new()));
    let log_handle = Arc::clone(&log);
    let out = engine.run_waveform_with(move |_spec| {
        Box::new(Recording {
            inner: Gateway::new(gateway_config),
            log: log_handle,
        })
    });
    assert_eq!(out.report.readings_delivered, 12, "{:?}", out.report);
    let packets = log.lock().unwrap();
    assert_eq!(packets.len(), 12);
    for p in packets.iter() {
        let bytes = p
            .result
            .to_bytes(scenario.lora.bits_per_chirp, scenario.frame_bytes());
        let frame = UplinkPacket::from_bytes(&bytes).expect("decoded frame parses");
        // Tag i starts on channel i % 4 and rotates by one channel per
        // transmission: its j-th packet must fly on (i + j) mod 4.
        let expected = (frame.source.0 as usize + frame.sequence as usize) % 4;
        assert_eq!(
            p.channel as usize, expected,
            "tag {} seq {} arrived on channel {}",
            frame.source.0, frame.sequence, p.channel
        );
    }
}

#[test]
fn a_jammer_triggers_a_hopping_controller_hop_and_recovery() {
    let mut scenario = EngineScenario::grid(1, 2, 12);
    scenario.jammer = Some(JammerSpec {
        at_s: 0.10,
        channel: 0,
        penalty_db: -60.0,
    });
    scenario.scan_interval_s = 0.05;
    let out = NetworkEngine::new(scenario.clone()).run_analytic();
    let r = &out.report;
    assert!(r.channel_hops >= 1, "no hop happened: {r:?}");
    assert!(
        r.prr() > 0.6,
        "the deployment should recover by hopping: {r:?}"
    );
    // Without the hop mechanism (no jammer detection possible on a one-scan
    // -free run), the same jam window would keep losing packets: check the
    // jammed window actually caused losses before the hop.
    assert!(
        r.readings_delivered < r.readings_generated || r.retransmission_requests > 0,
        "the jammer had no observable effect: {r:?}"
    );

    // The waveform path must hop too: the scan chain may not depend on the
    // event queue being momentarily non-empty between synthesis chunks.
    let wave = NetworkEngine::new(scenario).run_waveform();
    assert!(
        wave.report.channel_hops >= 1,
        "no hop on the waveform path: {:?}",
        wave.report
    );
    assert!(
        wave.report.prr() > 0.5,
        "waveform path should recover by hopping: {:?}",
        wave.report
    );
}

#[test]
fn aloha_random_channels_collide_while_fixed_stays_clean() {
    let base = EngineScenario::grid(8, 4, 3);
    let fixed = NetworkEngine::new(base.clone().with_mac(MacPolicy::Fixed)).run_analytic();
    let aloha = NetworkEngine::new(base.with_mac(MacPolicy::Aloha)).run_analytic();
    assert_eq!(fixed.report.collisions, 0);
    assert!(
        (fixed.report.prr() - 1.0).abs() < 1e-12,
        "{:?}",
        fixed.report
    );
    assert!(aloha.report.collisions > 0);
    assert!(
        aloha.report.prr() < fixed.report.prr(),
        "ALOHA {} vs fixed {}",
        aloha.report.prr(),
        fixed.report.prr()
    );
}

#[test]
fn detection_only_backends_count_detections_instead_of_deliveries() {
    let mut scenario = EngineScenario::grid(2, 1, 2);
    scenario.decimation = 1; // single channel at the channel rate
    scenario.feedback_delay_s = scenario.min_feedback_delay_s();
    // The detectors estimate their noise baselines from quiet stretches:
    // give the stream a realistic noise lead-in before the first packet.
    scenario.lead_in_s = 30.0 * scenario.lora.symbol_duration();
    let lora = scenario.lora;
    let engine = NetworkEngine::new(scenario);
    let out = engine.run_waveform_with(|spec| {
        assert!((spec.wideband_rate - lora.sample_rate()).abs() < 1e-6);
        Box::new(DetectionReceiver::new(AlobaDetector::new(lora), lora))
    });
    let r = &out.report;
    assert_eq!(r.backend, "Aloba");
    assert_eq!(r.readings_generated, 4);
    assert_eq!(
        r.detections, 4,
        "every packet on the air should be detected: {r:?}"
    );
    assert_eq!(r.readings_delivered, 0, "detectors cannot decode");
}
