//! Property tests pinning the waveform-synthesis fast path to its reference
//! implementations across randomised chunk partitions, CFO draws, power
//! spreads and channel offsets.
//!
//! Three layers, three contracts:
//!
//! * template packet assembly is **bit-identical** to modulate-then-scale;
//! * block AWGN is **bit-identical** to the per-sample draw loop, for any
//!   partition of the stream into fill calls;
//! * emission mixing is **bit-invariant** across chunk partitions, exact for
//!   unrotated emissions, and within a tight absolute bound of the exact
//!   per-sample phasor reference when CFO/channel rotation is in play.

use lora_phy::iq::Iq;
use lora_phy::modulator::{Alphabet, Modulator};
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use lora_phy::templates::PacketTemplates;
use netsim::synthesis::EmissionMixer;
use proptest::prelude::*;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfsim::noise::AwgnSource;

const FS: f64 = 3.0e6;

/// One synthetic emission: start sample, waveform, CFO and channel offset.
#[derive(Debug, Clone)]
struct TestEmission {
    start: u64,
    samples: Vec<Iq>,
    cfo_hz: f64,
    offset_hz: f64,
}

/// Draws one random emission: start, length, a ±12 dB power spread around a
/// −50 dBm-ish amplitude, a CFO draw (zero half the time, exercising the
/// plain-accumulate path) and a channel offset on the paper's 500 kHz grid.
/// The vendored proptest has no tuple strategies, so this samples directly.
struct EmissionStrategy;

impl Strategy for EmissionStrategy {
    type Value = TestEmission;

    fn sample(&self, rng: &mut proptest::test_runner::TestRng) -> TestEmission {
        let rng = &mut rng.0;
        let start = rng.gen_range(0u64..4096);
        let len = rng.gen_range(64usize..2048);
        let spread_db = rng.gen_range(-12.0f64..12.0);
        let scale = 1e-4 * 10f64.powf(spread_db / 20.0);
        let cfo_hz = if rng.gen_range(0u32..2) == 0 {
            0.0
        } else {
            rng.gen_range(-2_000.0f64..2_000.0)
        };
        let offset_hz = [0.0, -750e3, -250e3, 250e3, 750e3][rng.gen_range(0usize..5)];
        // Constant-envelope pseudo-waveform at the drawn power.
        let samples = (0..len)
            .map(|_| Iq::phasor(rng.gen::<f64>() * std::f64::consts::TAU).scale(scale))
            .collect();
        TestEmission {
            start,
            samples,
            cfo_hz,
            offset_hz,
        }
    }
}

/// Splits `total` samples into chunks drawn from `sizes` (cycled), covering
/// the stream exactly.
fn partition(total: usize, sizes: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut covered = 0;
    let mut i = 0;
    while covered < total {
        let n = sizes[i % sizes.len()].min(total - covered);
        out.push(n);
        covered += n;
        i += 1;
    }
    out
}

/// Streams all emissions through a fresh mixer over the given partition.
fn mix_stream(emissions: &[TestEmission], total: usize, chunks: &[usize]) -> Vec<Iq> {
    let mut sorted: Vec<&TestEmission> = emissions.iter().collect();
    sorted.sort_by_key(|e| e.start);
    let mut mixer = EmissionMixer::new();
    for e in &sorted {
        mixer.push(e.start, e.samples.clone(), e.cfo_hz, e.offset_hz, FS);
    }
    let mut stream = Vec::with_capacity(total);
    let mut pos = 0u64;
    for &n in chunks {
        let mut chunk = vec![Iq::ZERO; n];
        mixer.mix_into(&mut chunk, pos);
        pos += n as u64;
        stream.extend_from_slice(&chunk);
    }
    stream
}

/// The exact per-sample reference: each emission sample at absolute index
/// `i` is rotated by `phasor(cfo_step·(i − start) + chan_step·i)`.
fn reference_stream(emissions: &[TestEmission], total: usize) -> Vec<Iq> {
    let mut out = vec![Iq::ZERO; total];
    for e in emissions {
        let cfo_step = std::f64::consts::TAU * e.cfo_hz / FS;
        let chan_step = std::f64::consts::TAU * e.offset_hz / FS;
        for (k, &s) in e.samples.iter().enumerate() {
            let i = e.start + k as u64;
            if (i as usize) < total {
                out[i as usize] += s * Iq::phasor(cfo_step * k as f64 + chan_step * i as f64);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Template-cache packet assembly is bit-identical to the oscillator
    /// modulator followed by a scale, for any payload and power draw.
    #[test]
    fn template_assembly_matches_modulator_bit_exactly(
        k in 1u8..=3,
        symbol_seed in any::<u64>(),
        n_symbols in 1usize..24,
        spread_db in -12.0f64..12.0,
    ) {
        let k = BitsPerChirp::new(k).unwrap();
        let params = LoraParams::new(SpreadingFactor::Sf7, Bandwidth::Khz125, k)
            .with_oversampling(2);
        let mut rng = ChaCha8Rng::seed_from_u64(symbol_seed);
        let symbols: Vec<u32> =
            (0..n_symbols).map(|_| rng.gen_range(0..k.alphabet_size())).collect();
        let scale = 1e-4 * 10f64.powf(spread_db / 20.0);

        let (wave, ref_layout) =
            Modulator::new(params).packet(&symbols, Alphabet::Downlink).unwrap();
        let reference = wave.scaled(scale);

        let templates = PacketTemplates::new(params, Alphabet::Downlink);
        let mut fast = Vec::new();
        let layout = templates
            .assemble_scaled_extend(&symbols, scale, &mut fast)
            .unwrap();
        prop_assert_eq!(layout.payload_start, ref_layout.payload_start);
        prop_assert_eq!(fast.len(), reference.samples.len());
        for (i, (a, b)) in fast.iter().zip(&reference.samples).enumerate() {
            prop_assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "sample {i} differs: {a:?} vs {b:?}"
            );
        }
    }

    /// The block AWGN fill consumes the RNG exactly like the per-sample
    /// loop, so any partition of a stream into `add_noise_in_place` calls is
    /// bit-identical to sampling one value at a time.
    #[test]
    fn block_awgn_is_bit_identical_for_any_partition(
        seed in any::<u64>(),
        total in 0usize..2048,
        sizes in proptest::collection::vec(1usize..700, 1..6),
        log_variance in -30.0f64..-6.0,
    ) {
        let variance = log_variance.exp();
        let mut reference = AwgnSource::new(seed);
        let mut expected = vec![Iq::ONE; total];
        for s in expected.iter_mut() {
            *s += reference.sample(variance);
        }

        let mut block = AwgnSource::new(seed);
        let mut got = vec![Iq::ONE; total];
        let mut offset = 0;
        for n in partition(total, &sizes) {
            block.add_noise_in_place(&mut got[offset..offset + n], variance);
            offset += n;
        }
        for (i, (a, b)) in got.iter().zip(&expected).enumerate() {
            prop_assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "sample {i} differs: {a:?} vs {b:?}"
            );
        }
    }

    /// Mixing is bit-invariant across chunk partitions: the assembled stream
    /// does not depend on how the receiver slices it.
    #[test]
    fn mixing_is_bit_invariant_across_chunk_partitions(
        emissions in proptest::collection::vec(EmissionStrategy, 1..4),
        sizes_a in proptest::collection::vec(1usize..1500, 1..5),
        sizes_b in proptest::collection::vec(1usize..1500, 1..5),
    ) {
        let total = emissions
            .iter()
            .map(|e| e.start as usize + e.samples.len())
            .max()
            .unwrap()
            + 64;
        let a = mix_stream(&emissions, total, &partition(total, &sizes_a));
        let b = mix_stream(&emissions, total, &partition(total, &sizes_b));
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "sample {i} differs across partitions: {x:?} vs {y:?}"
            );
        }
    }

    /// Against the exact per-sample phasor reference the fast path is exact
    /// for unrotated emissions (cfo = 0, offset = 0 — plain accumulation)
    /// and within a tight absolute bound when the fused rotation runs.
    #[test]
    fn mixing_tracks_the_exact_phasor_reference(
        emissions in proptest::collection::vec(EmissionStrategy, 1..4),
        sizes in proptest::collection::vec(1usize..1500, 1..5),
    ) {
        let total = emissions
            .iter()
            .map(|e| e.start as usize + e.samples.len())
            .max()
            .unwrap()
            + 64;
        let fast = mix_stream(&emissions, total, &partition(total, &sizes));
        let exact = reference_stream(&emissions, total);
        let rotated = emissions.iter().any(|e| e.cfo_hz != 0.0 || e.offset_hz != 0.0);
        for (i, (a, b)) in fast.iter().zip(&exact).enumerate() {
            if rotated {
                prop_assert!(
                    (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9,
                    "sample {i} drifts from the exact reference: {a:?} vs {b:?}"
                );
            } else {
                prop_assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "unrotated sample {i} not bit-exact: {a:?} vs {b:?}"
                );
            }
        }
    }
}
