//! Integration test: the MAC-layer feedback loop built on top of Saiyan
//! (retransmission, channel hopping, rate adaptation, multi-tag ACK).

use lora_phy::params::BitsPerChirp;
use netsim::{
    multi_tag_acknowledgement, ChannelHoppingStudy, RetransmissionStudy, Scenario, UplinkSystem,
};
use rfsim::units::Meters;
use saiyan_mac::{
    apply_rate_command, ChannelTable, Command, HoppingController, RateAdapter, TagChannelState,
    TagId,
};

#[test]
fn retransmissions_recover_most_losses() {
    for system in [UplinkSystem::PLoRa, UplinkSystem::Aloba] {
        let study = RetransmissionStudy::paper(system);
        let base = study.prr(0);
        let with3 = study.prr(3);
        assert!(with3 > base, "{system:?}");
        assert!(
            with3 > 0.9,
            "{system:?} PRR after 3 retransmissions: {with3}"
        );
    }
}

#[test]
fn hopping_controller_and_tag_agree_on_the_new_channel() {
    let table = ChannelTable::paper_433mhz();
    let mut controller = HoppingController::new(table.clone(), 1, -70.0).unwrap();
    let mut tags: Vec<TagChannelState> = (0..5)
        .map(|i| TagChannelState::new(TagId(i), table.clone(), 1).unwrap())
        .collect();
    for ch in 0..5u8 {
        controller.record_interference(ch, -90.0).unwrap();
    }
    controller.record_interference(1, -30.0).unwrap();
    let packet = controller.maybe_hop().expect("controller hops");
    for tag in &mut tags {
        assert!(tag.apply(&packet).unwrap());
        assert_eq!(tag.current, controller.current);
    }
}

#[test]
fn channel_hopping_case_study_recovers_prr() {
    let windows = ChannelHoppingStudy::paper().run();
    let jammed: Vec<f64> = windows
        .iter()
        .filter(|w| !w.hopped)
        .map(|w| w.prr)
        .collect();
    let clean: Vec<f64> = windows.iter().filter(|w| w.hopped).map(|w| w.prr).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(mean(&clean) > mean(&jammed) + 0.3);
}

#[test]
fn rate_adaptation_tracks_link_margin_end_to_end() {
    let mut adapter = RateAdapter::default();
    let tag = TagId(8);
    let mut commanded = Vec::new();
    for distance in [20.0, 80.0, 140.0, 170.0] {
        let scenario = Scenario::outdoor_default(Meters(distance));
        let k1_sensitivity = scenario
            .clone()
            .with_bits_per_chirp(BitsPerChirp::new(1).unwrap())
            .sensitivity_config()
            .sensitivity();
        let margin = scenario.effective_rss().value() - k1_sensitivity.value();
        if let Some(packet) = adapter.update(tag, margin) {
            let k = apply_rate_command(&packet, tag).unwrap().unwrap();
            commanded.push(k.bits());
        } else {
            commanded.push(adapter.current_rate(tag).bits());
        }
        // The commanded rate must keep the BER at or below ~1e-3.
        let at_rate = scenario
            .clone()
            .with_bits_per_chirp(adapter.current_rate(tag));
        assert!(
            at_rate.ber() < 3e-3,
            "BER {} too high at {distance} m with K={}",
            at_rate.ber(),
            adapter.current_rate(tag).bits()
        );
    }
    // Rates must be non-increasing as the tag moves away.
    for w in commanded.windows(2) {
        assert!(w[1] <= w[0], "rates {commanded:?} not non-increasing");
    }
    assert!(
        commanded[0] >= 4,
        "close-in rate should be high: {commanded:?}"
    );
    assert!(
        *commanded.last().unwrap() <= 2,
        "far-out rate should be low"
    );
}

#[test]
fn broadcast_acknowledgement_scales_with_slot_count() {
    let downlink = Scenario::outdoor_default(Meters(60.0));
    let few = multi_tag_acknowledgement(16, &downlink, 8, 11);
    let many = multi_tag_acknowledgement(16, &downlink, 64, 11);
    assert!(many.acked >= few.acked);
    assert!(few.acked + few.collided == few.demodulated);
}

#[test]
fn downlink_commands_fit_in_a_handful_of_symbols() {
    // The whole point of the tiny MAC format: a command is only a few chirps
    // long even at K=1, so demodulating it costs the tag almost nothing.
    let cmd = saiyan_mac::DownlinkPacket {
        addressing: saiyan_mac::Addressing::Unicast(TagId(1)),
        command: Command::Retransmit { sequence: 3 },
    };
    let bytes = cmd.to_bytes();
    let symbols_k1 =
        lora_phy::downlink::symbols_for_bytes(bytes.len(), BitsPerChirp::new(1).unwrap());
    assert!(symbols_k1 <= 40);
    let symbols_k5 =
        lora_phy::downlink::symbols_for_bytes(bytes.len(), BitsPerChirp::new(5).unwrap());
    assert!(symbols_k5 <= 8);
}
