//! Property tests for the serving layer's wire formats: arbitrary packets
//! (including empty-payload detection markers) must round-trip bit-exactly
//! through both the length-prefixed binary format and JSONL, and the
//! decoders must reject — never panic on — arbitrary byte soup.

use proptest::prelude::*;
use saiyan::calibration::Thresholds;
use saiyan::demodulator::DemodResult;
use saiyan::gateway::GatewayPacket;
use saiyan_serve::{
    bytes_to_samples, decode_binary_stream, decode_jsonl_stream, decode_packet_binary,
    decode_packet_jsonl, encode_packet_binary, encode_packet_jsonl, samples_to_bytes,
};

/// Finite floats across magnitudes (JSON has no NaN/Inf; the binary format
/// is tested with them separately below).
fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        -1.0e-12f64..1.0e-12,
        -1.0f64..1.0,
        -1.0e9f64..1.0e9,
        Just(f64::MIN_POSITIVE),
        Just(1.0 / 3.0),
    ]
}

fn optional_time() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![Just(None), finite_f64().prop_map(Some)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn packets_round_trip_both_formats(
        channel in any::<u8>(),
        symbols in proptest::collection::vec(any::<u32>(), 0..24),
        peak_times in proptest::collection::vec(optional_time(), 0..24),
        correlation_scores in proptest::collection::vec(finite_f64(), 0..24),
        payload_start_time in finite_f64(),
        preamble_peaks in 0usize..64,
        high in finite_f64(),
        low in finite_f64(),
    ) {
        // Empty vectors occur naturally in the draw: an all-empty packet is
        // exactly a detection marker, and must survive both formats too.
        let packet = GatewayPacket {
            channel,
            result: DemodResult {
                symbols,
                peak_times,
                correlation_scores,
                payload_start_time,
                preamble_peaks,
                thresholds: Thresholds { high, low },
            },
        };

        let mut binary = Vec::new();
        encode_packet_binary(&packet, &mut binary);
        let (from_binary, consumed) = decode_packet_binary(&binary).unwrap();
        prop_assert_eq!(consumed, binary.len());
        prop_assert_eq!(&from_binary, &packet);

        let line = encode_packet_jsonl(&packet).unwrap();
        prop_assert!(!line.contains('\n'));
        let from_jsonl = decode_packet_jsonl(&line).unwrap();
        prop_assert_eq!(&from_jsonl, &packet);
    }

    #[test]
    fn packet_streams_round_trip_in_order(
        channels in proptest::collection::vec(any::<u8>(), 0..6),
        start in finite_f64(),
    ) {
        // A concatenated stream of minimal packets (detection markers on
        // varying channels) survives both stream decoders in order.
        let packets: Vec<GatewayPacket> = channels
            .iter()
            .map(|&channel| GatewayPacket {
                channel,
                result: DemodResult {
                    symbols: Vec::new(),
                    peak_times: Vec::new(),
                    correlation_scores: Vec::new(),
                    payload_start_time: start,
                    preamble_peaks: 0,
                    thresholds: Thresholds { high: 0.0, low: 0.0 },
                },
            })
            .collect();
        let mut binary = Vec::new();
        let mut jsonl = String::new();
        for p in &packets {
            encode_packet_binary(p, &mut binary);
            jsonl.push_str(&encode_packet_jsonl(p).unwrap());
            jsonl.push('\n');
        }
        prop_assert_eq!(&decode_binary_stream(&binary).unwrap(), &packets);
        prop_assert_eq!(&decode_jsonl_stream(&jsonl).unwrap(), &packets);
    }

    #[test]
    fn binary_decoder_never_panics_on_byte_soup(
        soup in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Any outcome is fine except a panic or a runaway allocation.
        let _ = decode_packet_binary(&soup);
    }

    #[test]
    fn jsonl_decoder_never_panics_on_arbitrary_text(
        soup in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let text = String::from_utf8_lossy(&soup);
        let _ = decode_packet_jsonl(&text);
    }

    #[test]
    fn truncating_a_valid_frame_yields_truncated_not_panic(
        symbols in proptest::collection::vec(any::<u32>(), 0..16),
        cut_fraction in 0.0f64..1.0,
    ) {
        let packet = GatewayPacket {
            channel: 1,
            result: DemodResult {
                symbols,
                peak_times: Vec::new(),
                correlation_scores: Vec::new(),
                payload_start_time: 0.5,
                preamble_peaks: 2,
                thresholds: Thresholds { high: 1.0, low: 0.5 },
            },
        };
        let mut binary = Vec::new();
        encode_packet_binary(&packet, &mut binary);
        let cut = ((binary.len() as f64) * cut_fraction) as usize;
        if cut < binary.len() {
            prop_assert!(decode_packet_binary(&binary[..cut]).is_err());
        }
    }

    #[test]
    fn iq_byte_framing_round_trips_f32_exactly(
        pairs in proptest::collection::vec(any::<u32>(), 0..64),
    ) {
        // Drive the f32 path with raw bit patterns, skipping non-finite
        // encodings (the daemon sanitises those separately).
        let samples: Vec<lora_phy::iq::Iq> = pairs
            .iter()
            .map(|&bits| {
                let v = f32::from_bits(bits);
                let v = if v.is_finite() { v as f64 } else { 0.0 };
                lora_phy::iq::Iq { re: v, im: -v }
            })
            .collect();
        let bytes = samples_to_bytes(&samples);
        let (back, dangling) = bytes_to_samples(&bytes);
        prop_assert_eq!(dangling, 0);
        prop_assert_eq!(&back, &samples);
    }
}

/// The binary format, unlike JSONL, must preserve non-finite floats
/// bit-for-bit (they can legitimately appear in internal archives).
#[test]
fn binary_preserves_non_finite_floats() {
    let packet = GatewayPacket {
        channel: 0,
        result: DemodResult {
            symbols: vec![1],
            peak_times: vec![Some(f64::NEG_INFINITY), None],
            correlation_scores: vec![f64::NAN],
            payload_start_time: f64::INFINITY,
            preamble_peaks: 1,
            thresholds: Thresholds {
                high: f64::NAN,
                low: 0.0,
            },
        },
    };
    let mut binary = Vec::new();
    encode_packet_binary(&packet, &mut binary);
    let (back, _) = decode_packet_binary(&binary).unwrap();
    assert_eq!(
        back.result.payload_start_time.to_bits(),
        f64::INFINITY.to_bits()
    );
    assert_eq!(
        back.result.peak_times[0].unwrap().to_bits(),
        f64::NEG_INFINITY.to_bits()
    );
    assert!(back.result.correlation_scores[0].is_nan());
    assert!(back.result.thresholds.high.is_nan());
    // ...and the JSONL encoder refuses the same packet instead of lying.
    assert!(encode_packet_jsonl(&packet).is_err());
}
