//! Multi-packet end-to-end test: N packets with inter-packet gaps and
//! per-packet receive powers (hence per-packet SNR) through the netsim
//! long-trace generator, decoded by the streaming receiver from the
//! continuous stream. Per-packet decode success must match the batch path
//! fed the same packets as the pre-cut captures its API expects.

use lora_phy::iq::SampleBuffer;
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::longtrace::{generate_long_trace, random_payloads, LongTraceConfig, TracePacket};
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::{SaiyanDemodulator, StreamingDemodulator};

const PAYLOAD_SYMBOLS: usize = 8;
const NOISE_DBM: f64 = -78.0;

fn lora() -> LoraParams {
    LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
}

/// Six packets: gaps of 14–20 symbols, powers −48 to −56 dBm (SNR sweep of
/// 8 dB against the fixed noise floor), and a small CFO on two of them.
fn packets() -> Vec<TracePacket> {
    let payloads = random_payloads(6, PAYLOAD_SYMBOLS, lora().bits_per_chirp, 0x6E2E);
    payloads
        .into_iter()
        .enumerate()
        .map(|(i, symbols)| {
            let mut p = TracePacket::new(
                symbols,
                -48.0 - 1.6 * i as f64,
                if i == 0 {
                    4.0
                } else {
                    14.0 + 2.0 * (i % 4) as f64
                },
            );
            if i % 3 == 1 {
                p.cfo_hz = 1_500.0;
            }
            p
        })
        .collect()
}

#[test]
fn streaming_decodes_every_packet_the_batch_path_decodes() {
    let config = LongTraceConfig::new(lora()).with_noise(NOISE_DBM);
    let specs = packets();
    let (trace, truth) = generate_long_trace(&config, &specs);
    let cfg = SaiyanConfig::paper_default(lora(), Variant::Super);
    let sps = lora().samples_per_symbol();

    // Streaming: one pass over the continuous trace in hardware-sized chunks.
    let mut streaming = StreamingDemodulator::new(cfg.clone(), PAYLOAD_SYMBOLS);
    let mut results = Vec::new();
    for chunk in trace.samples.chunks(4096) {
        results.extend(streaming.push_samples(chunk));
    }
    results.extend(streaming.finish());

    // Batch: each packet as its own pre-cut capture with guard symbols.
    let batch = SaiyanDemodulator::new(cfg);
    for (i, t) in truth.iter().enumerate() {
        let start = t.packet_start_sample.saturating_sub(sps);
        let end = (t.payload_start_sample + PAYLOAD_SYMBOLS * sps + sps).min(trace.len());
        let capture = SampleBuffer::new(trace.samples[start..end].to_vec(), trace.sample_rate);
        let batch_symbols = batch
            .demodulate(&capture, PAYLOAD_SYMBOLS)
            .map(|r| r.symbols);
        let expected_t = t.payload_start_sample as f64 / trace.sample_rate;
        let stream_symbols = results
            .iter()
            .find(|r| (r.payload_start_time - expected_t).abs() < lora().symbol_duration())
            .map(|r| r.symbols.clone());

        // At these SNRs both paths must decode every packet bit-exactly;
        // equal success per packet is the invariant the streaming refactor
        // must preserve.
        let batch_ok = matches!(&batch_symbols, Ok(s) if *s == t.symbols);
        let stream_ok = stream_symbols.as_deref() == Some(&t.symbols[..]);
        assert!(
            batch_ok,
            "packet {i} ({} dBm): batch decode failed: {batch_symbols:?} vs {:?}",
            t.rx_power_dbm, t.symbols
        );
        assert!(
            stream_ok,
            "packet {i} ({} dBm): streaming decode failed: {stream_symbols:?} vs {:?}",
            t.rx_power_dbm, t.symbols
        );
    }
    assert_eq!(results.len(), truth.len(), "spurious or missing packets");
}

#[test]
fn per_packet_power_is_tracked_across_the_stream() {
    // The decoded thresholds must follow each packet's receive power: the
    // comparator high threshold for the strongest packet must exceed the one
    // used for the weakest by roughly their power ratio.
    let config = LongTraceConfig::new(lora()).with_noise(NOISE_DBM);
    let specs = packets();
    let (trace, truth) = generate_long_trace(&config, &specs);
    // The shifting chain decodes the full 8 dB power sweep (the vanilla
    // detector loses the weakest packet to its own noise, as in the paper).
    let cfg = SaiyanConfig::paper_default(lora(), Variant::WithShifting);
    let results = StreamingDemodulator::new(cfg, PAYLOAD_SYMBOLS).run_to_end(&trace);
    assert_eq!(results.len(), truth.len());
    let first = results.first().expect("decoded").thresholds.high;
    let last = results.last().expect("decoded").thresholds.high;
    // 8 dB of power separation; allow generous slack for tracker dynamics
    // but require a clear monotonic adaptation.
    assert!(
        first > 2.0 * last,
        "thresholds did not adapt: first {first:.3e} vs last {last:.3e}"
    );
}
