//! End-to-end gateway test: a wideband capture carrying concurrent packets
//! from hopping tags on four LoRa channels, channelized and demodulated by
//! `saiyan::Gateway`, with the merged packet stream driving the MAC access
//! point (per-tag bookkeeping and loss-triggered retransmission requests).

use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::multichannel::{
    generate_multichannel_trace, hopping_traffic, HoppingTrafficConfig, MultiChannelConfig,
    MultiChannelPacket, MultiChannelTruth,
};
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::gateway::{Gateway, GatewayChannel, GatewayConfig, GatewayPacket};
use saiyan_mac::{AccessPoint, ChannelTable, Command, TagId, UplinkPacket};

/// Gateway channels: BW 250 kHz at 2x oversampling (500 ksps per channel)
/// on the paper's 500 kHz grid, so four channels fit in a 3 MHz wideband
/// capture (decimation 6) with 250 kHz guard bands.
///
/// 2x oversampling only supports the vanilla chain — the shifting chain's
/// intermediate frequency Δf = BW needs fs > 2·BW strictly — and it is the
/// cost point that keeps four concurrent channels at ≥1x realtime on a
/// single core (see `exp_gateway_throughput`). The narrow-band streaming
/// profile (`SaiyanConfig::narrowband_streaming`) adapts the threshold
/// tracker to the smaller SAW amplitude gap at 250 kHz. The shifting/super
/// variants are exercised through the channelizer at 4x oversampling below.
fn lora() -> LoraParams {
    LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz250,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(2)
}

const N_CHANNELS: usize = 4;
const DECIMATION: usize = 6;

fn trace_config() -> MultiChannelConfig {
    MultiChannelConfig::new(
        lora(),
        DECIMATION,
        MultiChannelConfig::grid_offsets(N_CHANNELS),
    )
    .with_noise(-85.0)
}

fn gateway_config(payload_symbols: usize, variant: Variant) -> GatewayConfig {
    let channels = MultiChannelConfig::grid_offsets(N_CHANNELS)
        .iter()
        .enumerate()
        .map(|(i, &offset)| {
            GatewayChannel::new(
                i as u8,
                offset,
                SaiyanConfig::narrowband_streaming(lora(), variant),
                payload_symbols,
            )
        })
        .collect();
    GatewayConfig::new(trace_config().wideband_rate(), channels)
}

/// Matches each ground-truth packet to a gateway packet on the same channel
/// within a symbol of its payload start; panics (with context) on a miss.
fn match_truth<'a>(
    truth: &MultiChannelTruth,
    packets: &'a [GatewayPacket],
    t_sym: f64,
) -> &'a GatewayPacket {
    packets
        .iter()
        .find(|p| {
            p.channel as usize == truth.channel
                && (p.result.payload_start_time - truth.payload_start_time).abs() < t_sym
        })
        .unwrap_or_else(|| {
            panic!(
                "tag {} packet on channel {} at t={:.4}s not decoded",
                truth.tag, truth.channel, truth.payload_start_time
            )
        })
}

fn workload(packets_per_tag: usize, payload_symbols: usize) -> Vec<MultiChannelPacket> {
    hopping_traffic(&HoppingTrafficConfig {
        n_tags: N_CHANNELS,
        packets_per_tag,
        n_channels: N_CHANNELS,
        payload_symbols,
        k: lora().bits_per_chirp,
        slot_symbols: payload_symbols as f64 + 20.0,
        lead_in_symbols: 4.0,
        base_power_dbm: -43.0,
        power_spread_db: 1.5,
        max_cfo_hz: 500.0,
        seed: 0x6A7E,
    })
}

#[test]
fn concurrent_packets_on_four_channels_all_decode() {
    let payload_symbols = 8;
    let packets = workload(2, payload_symbols);
    let (trace, truth) = generate_multichannel_trace(&trace_config(), &packets);
    assert_eq!(truth.len(), 8);
    // Every round carries four overlapping packets on four channels.
    let decoded = Gateway::run_trace(
        gateway_config(payload_symbols, Variant::Vanilla),
        &trace,
        8192,
    );
    let t_sym = lora().symbol_duration();
    for t in &truth {
        let p = match_truth(t, &decoded, t_sym);
        assert_eq!(
            p.result.symbols, t.symbols,
            "tag {} on channel {} decoded wrong symbols",
            t.tag, t.channel
        );
    }
    // The merged stream is ordered by payload start time.
    for pair in decoded.windows(2) {
        assert!(pair[0].result.payload_start_time <= pair[1].result.payload_start_time);
    }
}

#[test]
fn shifting_and_super_variants_decode_through_the_channelizer() {
    // Two 500 kHz channels at 4x oversampling with a 500 kHz guard between
    // them: the full shifting (and correlation) receive chain behind the
    // channelizer, at the paper's default PHY operating point.
    let wide_lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    );
    let payload_symbols = 8;
    let offsets = vec![-500_000.0, 500_000.0];
    let cfg = MultiChannelConfig::new(wide_lora, 2, offsets.clone()).with_noise(-85.0);
    let packets = hopping_traffic(&HoppingTrafficConfig {
        n_tags: 2,
        packets_per_tag: 2,
        n_channels: 2,
        payload_symbols,
        k: wide_lora.bits_per_chirp,
        slot_symbols: payload_symbols as f64 + 18.0,
        lead_in_symbols: 4.0,
        base_power_dbm: -50.0,
        power_spread_db: 2.0,
        max_cfo_hz: 1_000.0,
        seed: 0x51F7,
    });
    let (trace, truth) = generate_multichannel_trace(&cfg, &packets);
    for variant in [Variant::WithShifting, Variant::Super] {
        let channels = offsets
            .iter()
            .enumerate()
            .map(|(i, &offset)| {
                GatewayChannel::new(
                    i as u8,
                    offset,
                    SaiyanConfig::paper_default(wide_lora, variant),
                    payload_symbols,
                )
            })
            .collect();
        let decoded = Gateway::run_trace(
            GatewayConfig::new(cfg.wideband_rate(), channels),
            &trace,
            8192,
        );
        let t_sym = wide_lora.symbol_duration();
        for t in &truth {
            let p = match_truth(t, &decoded, t_sym);
            assert_eq!(
                p.result.symbols, t.symbols,
                "variant {variant:?}: tag {} on channel {}",
                t.tag, t.channel
            );
        }
    }
}

#[test]
fn gateway_feeds_the_access_point_with_per_tag_stats_and_arq() {
    let payload_symbols = 32; // 8 uplink-frame bytes at K = 2
    let k = lora().bits_per_chirp;
    let mut packets = workload(3, payload_symbols);
    // Re-encode each tag's packets as uplink MAC frames (seq = round index).
    let mut seq_per_tag = [0u8; N_CHANNELS];
    for p in &mut packets {
        let seq = seq_per_tag[p.tag as usize];
        seq_per_tag[p.tag as usize] += 1;
        let frame = UplinkPacket {
            source: TagId(p.tag),
            sequence: seq,
            is_ack: false,
            payload: vec![p.tag as u8, seq, 0xA5],
        };
        p.symbols = lora_phy::downlink::bytes_to_symbols(&frame.to_bytes(), k);
        assert_eq!(p.symbols.len(), payload_symbols);
    }
    let (trace, truth) = generate_multichannel_trace(&trace_config(), &packets);
    let decoded = Gateway::run_trace(
        gateway_config(payload_symbols, Variant::Vanilla),
        &trace,
        8192,
    );
    assert_eq!(decoded.len(), truth.len());

    let mut ap = AccessPoint::new(ChannelTable::paper_433mhz(), 0, 2).unwrap();
    let mut requests = Vec::new();
    for (i, p) in decoded.iter().enumerate() {
        // Drop tag 2's middle frame before it reaches the MAC: the gap must
        // surface as a retransmission request when the next frame arrives.
        let bytes = p.result.to_bytes(k, 8);
        let frame = UplinkPacket::from_bytes(&bytes).expect("well-formed frame");
        if frame.source == TagId(2) && frame.sequence == 1 {
            continue;
        }
        let report = ap
            .ingest_frame(p.channel, p.result.payload_start_time, &bytes)
            .unwrap_or_else(|e| panic!("frame {i} rejected: {e:?}"));
        requests.extend(report.retransmission_requests);
    }
    // All four tags are known; three frames each except the dropped one.
    assert_eq!(ap.tag_count(), 4);
    for tag in 0..4u16 {
        let stats = ap.tag_stats(TagId(tag)).expect("tag seen");
        let expected = if tag == 2 { 2 } else { 3 };
        assert_eq!(stats.frames, expected, "tag {tag}");
        assert_eq!(stats.duplicates, 0);
    }
    // The gap behind tag 2's missing sequence 1 triggered an ARQ request.
    assert!(
        requests.iter().any(|r| matches!(
            (r.addressing, r.command),
            (
                saiyan_mac::Addressing::Unicast(TagId(2)),
                Command::Retransmit { sequence: 1 }
            )
        )),
        "no retransmission request for the dropped frame: {requests:?}"
    );
    // Received payloads arrive in sequence order per tag.
    let payloads = ap.received_from(TagId(1));
    assert_eq!(payloads.len(), 3);
    for (seq, payload) in payloads.iter().enumerate() {
        assert_eq!(payload, &vec![1u8, seq as u8, 0xA5]);
    }
}
