//! The network engine's waveform synthesis is the `longtrace` golden path,
//! generalised: a single-tag, single-channel engine scenario must produce a
//! sample stream *bit-identical* to [`generate_long_trace`] on the matching
//! packet list and noise seed, and the streaming receiver must decode both
//! identically.

use std::sync::{Arc, Mutex};

use lora_phy::downlink::bytes_to_symbols;
use lora_phy::iq::Iq;
use netsim::engine::{EngineScenario, NetworkEngine, TrafficModel};
use netsim::longtrace::{generate_long_trace, LongTraceConfig, TracePacket};
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::gateway::GatewayPacket;
use saiyan::receiver::Receiver;
use saiyan::StreamingDemodulator;
use saiyan_mac::packet::{TagId, UplinkPacket};

/// Wraps the streaming demodulator, capturing both the raw samples the
/// engine feeds it and the packets it releases.
struct Tee {
    inner: StreamingDemodulator,
    samples: Arc<Mutex<Vec<Iq>>>,
    packets: Arc<Mutex<Vec<GatewayPacket>>>,
}

impl Receiver for Tee {
    fn backend_name(&self) -> &'static str {
        "tee"
    }
    fn input_rate(&self) -> f64 {
        Receiver::input_rate(&self.inner)
    }
    fn feed(&mut self, chunk: &[Iq]) -> Vec<GatewayPacket> {
        self.samples.lock().unwrap().extend_from_slice(chunk);
        let packets = Receiver::feed(&mut self.inner, chunk);
        self.packets.lock().unwrap().extend(packets.iter().cloned());
        packets
    }
    fn flush(&mut self) -> Vec<GatewayPacket> {
        let packets = Receiver::flush(&mut self.inner);
        self.packets.lock().unwrap().extend(packets.iter().cloned());
        packets
    }
    fn reset(&mut self) {
        Receiver::reset(&mut self.inner);
        self.samples.lock().unwrap().clear();
        self.packets.lock().unwrap().clear();
    }
}

#[test]
fn single_tag_engine_scenario_matches_the_longtrace_golden_path() {
    const READINGS: usize = 3;
    const INTERVAL_SYMBOLS: f64 = 64.0;

    // A deterministic single-tag, single-channel scenario with no random
    // PHY impairments: arrivals on an exact symbol grid, fixed power.
    let mut scenario = EngineScenario::grid(1, 1, READINGS);
    scenario.decimation = 1;
    scenario.power_spread_db = 0.0;
    scenario.max_cfo_hz = 0.0;
    scenario.noise_power_dbm = Some(-82.0);
    let t_sym = scenario.lora.symbol_duration();
    scenario.lead_in_s = 4.0 * t_sym;
    scenario.traffic = TrafficModel::Periodic {
        interval_s: INTERVAL_SYMBOLS * t_sym,
        jitter_s: 0.0,
    };
    scenario.feedback_delay_s = scenario.min_feedback_delay_s();
    let lora = scenario.lora;
    let k = lora.bits_per_chirp;
    let payload_symbols = scenario.payload_symbols();
    let rx_config = SaiyanConfig::narrowband_streaming(lora, Variant::Vanilla);

    // The longtrace reference: the exact frames the engine's tag will send,
    // at the exact gaps its periodic schedule produces.
    let frame = |seq: u8| UplinkPacket {
        source: TagId(0),
        sequence: seq,
        is_ack: false,
        payload: vec![0, 0, 0xA5],
    };
    let packet_symbols_duration = payload_symbols as f64 + 12.25; // preamble + sync
    let packets: Vec<TracePacket> = (0..READINGS as u8)
        .map(|seq| {
            let gap = if seq == 0 {
                4.0
            } else {
                INTERVAL_SYMBOLS - packet_symbols_duration
            };
            TracePacket::new(
                bytes_to_symbols(&frame(seq).to_bytes(), k),
                scenario.base_power_dbm,
                gap,
            )
        })
        .collect();
    let mut trace_config = LongTraceConfig::new(lora).with_noise(-82.0);
    trace_config.seed = scenario.seed;
    let (trace, truth) = generate_long_trace(&trace_config, &packets);
    assert_eq!(truth.len(), READINGS);
    let reference =
        StreamingDemodulator::new(rx_config.clone(), payload_symbols).run_to_end(&trace);
    assert_eq!(reference.len(), READINGS, "golden path decodes everything");

    // Run the engine, teeing the synthesized stream and decoded packets.
    let samples = Arc::new(Mutex::new(Vec::new()));
    let packets_log = Arc::new(Mutex::new(Vec::new()));
    let (samples_handle, packets_handle) = (Arc::clone(&samples), Arc::clone(&packets_log));
    let out = NetworkEngine::new(scenario).run_waveform_with(move |spec| {
        assert!((spec.wideband_rate - lora.sample_rate()).abs() < 1e-6);
        Box::new(Tee {
            inner: StreamingDemodulator::new(rx_config, payload_symbols),
            samples: samples_handle,
            packets: packets_handle,
        })
    });
    assert_eq!(out.report.readings_delivered, READINGS, "{:?}", out.report);

    // 1. The synthesized stream is bit-identical to the longtrace output
    //    over the longtrace's full length (the engine only appends extra
    //    flush tail beyond it).
    let stream = samples.lock().unwrap();
    assert!(
        stream.len() >= trace.len(),
        "engine stream {} shorter than the longtrace {}",
        stream.len(),
        trace.len()
    );
    assert_eq!(
        &stream[..trace.len()],
        &trace.samples[..],
        "engine synthesis diverged from generate_long_trace"
    );

    // 2. The streaming receiver decodes both streams identically.
    let decoded = packets_log.lock().unwrap();
    assert_eq!(decoded.len(), READINGS);
    for (packet, golden) in decoded.iter().zip(&reference) {
        assert_eq!(packet.channel, 0);
        assert_eq!(packet.result, *golden);
    }
    // And the decodes carry the transmitted frames.
    for (i, golden) in reference.iter().enumerate() {
        assert_eq!(golden.symbols, truth[i].symbols);
    }
}
