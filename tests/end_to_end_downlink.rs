//! Integration test: full access-point → channel → Saiyan-tag downlink.

use lora_phy::downlink::bytes_to_symbols;
use lora_phy::modulator::{Alphabet, Modulator};
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use rfsim::channel::Channel;
use rfsim::link::paper_downlink;
use rfsim::noise::NoiseModel;
use rfsim::pathloss::{Environment, PathLossModel};
use rfsim::units::{Db, Hertz, Meters};
use saiyan::{SaiyanConfig, SaiyanDemodulator, Variant};
use saiyan_mac::{Addressing, Command, DownlinkPacket, TagId};

fn lora(k: u8) -> LoraParams {
    LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(k).unwrap(),
    )
    .with_oversampling(8)
}

fn channel_at(distance_m: f64, lora: &LoraParams) -> Channel {
    let pl = PathLossModel::for_environment(Environment::OutdoorLos, Hertz(lora.carrier_hz));
    Channel::new(
        paper_downlink(pl, Meters(distance_m)),
        NoiseModel::new(Db(6.0), Hertz(lora.bw.hz())),
    )
}

/// Modulates a MAC command, sends it through the channel, demodulates it on
/// the tag, and returns the decoded command.
fn round_trip(
    command: DownlinkPacket,
    distance_m: f64,
    variant: Variant,
    k: u8,
    seed: u64,
) -> Option<DownlinkPacket> {
    let lora = lora(k);
    let payload = command.to_bytes();
    let symbols = bytes_to_symbols(&payload, lora.bits_per_chirp);
    let (wave, layout) = Modulator::new(lora)
        .packet_with_guard(&symbols, Alphabet::Downlink, 3)
        .unwrap();
    let channel = channel_at(distance_m, &lora).with_seed(seed);
    let rx = channel.propagate(&wave);
    let demod = SaiyanDemodulator::new(SaiyanConfig::paper_default(lora, variant));
    let result = demod
        .demodulate_aligned(&rx, layout.payload_start, symbols.len())
        .ok()?;
    DownlinkPacket::from_bytes(&result.to_bytes(lora.bits_per_chirp, payload.len())).ok()
}

#[test]
fn command_round_trip_all_variants() {
    let command = DownlinkPacket {
        addressing: Addressing::Unicast(TagId(11)),
        command: Command::ChannelHop { channel: 3 },
    };
    // 25 m is inside every variant's waveform-level budget; the full design
    // additionally works at 40 m (the vanilla chain's own range is ~40 m,
    // consistent with Fig. 25).
    for variant in [Variant::Vanilla, Variant::WithShifting, Variant::Super] {
        let decoded = round_trip(command, 25.0, variant, 2, 1).expect("decodes at 25 m");
        assert_eq!(decoded, command, "variant {variant:?}");
    }
    let decoded = round_trip(command, 40.0, Variant::Super, 2, 1).expect("decodes at 40 m");
    assert_eq!(decoded, command);
}

#[test]
fn command_round_trip_at_higher_rate_close_in() {
    let command = DownlinkPacket {
        addressing: Addressing::Broadcast,
        command: Command::SensorControl {
            sensor: 1,
            enable: false,
        },
    };
    let decoded = round_trip(command, 15.0, Variant::Super, 4, 2).expect("decodes at 15 m");
    assert_eq!(decoded, command);
}

#[test]
fn blind_demodulation_recovers_timing_and_payload() {
    let lora = lora(2);
    let payload = vec![0xDE, 0xAD, 0xBE, 0xEF];
    let symbols = bytes_to_symbols(&payload, lora.bits_per_chirp);
    let (wave, _) = Modulator::new(lora)
        .packet_with_guard(&symbols, Alphabet::Downlink, 5)
        .unwrap();
    let rx = channel_at(30.0, &lora).with_seed(3).propagate(&wave);
    let demod = SaiyanDemodulator::new(SaiyanConfig::paper_default(lora, Variant::WithShifting));
    let result = demod
        .demodulate(&rx, symbols.len())
        .expect("preamble found");
    assert!(result.preamble_peaks >= 5);
    assert_eq!(result.to_bytes(lora.bits_per_chirp, payload.len()), payload);
}

#[test]
fn the_standard_receiver_and_saiyan_agree_on_clean_packets() {
    // The access-point-grade dechirp+FFT receiver and the Saiyan tag receive
    // chain must decode the same clean packet identically.
    let lora = lora(2);
    let symbols = vec![0u32, 1, 2, 3, 2, 1, 0, 3, 1, 2];
    let (wave, layout) = Modulator::new(lora)
        .packet_with_guard(&symbols, Alphabet::Downlink, 2)
        .unwrap();
    let rx = channel_at(10.0, &lora).with_seed(4).propagate(&wave);

    let standard = lora_phy::StandardDemodulator::new(lora);
    let standard_result = standard
        .demodulate_payload(&rx, layout.payload_start, symbols.len(), Alphabet::Downlink)
        .unwrap();
    let saiyan_demod = SaiyanDemodulator::new(SaiyanConfig::paper_default(lora, Variant::Super));
    let saiyan_result = saiyan_demod
        .demodulate_aligned(&rx, layout.payload_start, symbols.len())
        .unwrap();

    assert_eq!(standard_result.symbols, symbols);
    assert_eq!(saiyan_result.symbols, symbols);
}

#[test]
fn demodulation_fails_gracefully_far_beyond_range() {
    let lora = lora(2);
    let symbols = bytes_to_symbols(&[0x42], lora.bits_per_chirp);
    let (wave, _) = Modulator::new(lora)
        .packet_with_guard(&symbols, Alphabet::Downlink, 3)
        .unwrap();
    // 2 km is far outside any configuration's range: the packet should either
    // fail preamble detection or decode incorrectly — but never panic.
    let rx = channel_at(2000.0, &lora).with_seed(5).propagate(&wave);
    let demod = SaiyanDemodulator::new(SaiyanConfig::paper_default(lora, Variant::Super));
    if let Ok(result) = demod.demodulate(&rx, symbols.len()) {
        // If something was "decoded", it must at least have the right length.
        assert_eq!(result.symbols.len(), symbols.len());
    }
}
