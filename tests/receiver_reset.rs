//! Pins the `Receiver::reset` contract for every backend: after decoding an
//! arbitrary stream and resetting, an instance must decode the next stream
//! *bit-identically* to a freshly constructed one. This is the invariant
//! the serving layer's receiver pool rests on — a recycled receiver must be
//! indistinguishable from a rebuild.

use baselines::{AlobaDetector, DetectionReceiver};
use lora_phy::iq::SampleBuffer;
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::longtrace::{generate_long_trace, random_payloads, LongTraceConfig, TracePacket};
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::gateway::{Gateway, GatewayConfig};
use saiyan::{BoxedReceiver, PooledExecutor, Receiver, ReceiverExecutor, StreamingDemodulator};
use std::sync::Arc;

const PAYLOAD_SYMBOLS: usize = 12;

fn lora() -> LoraParams {
    LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).expect("valid"),
    )
}

/// A multi-packet trace whose content is fully determined by `seed`.
fn trace(seed: u64) -> SampleBuffer {
    let lora = lora();
    let payloads = random_payloads(3, PAYLOAD_SYMBOLS, lora.bits_per_chirp, seed);
    let packets: Vec<TracePacket> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| TracePacket::new(p.clone(), -50.0, if i == 0 { 4.0 } else { 12.0 }))
        .collect();
    let config = LongTraceConfig::new(lora).with_noise(-80.0);
    generate_long_trace(&config, &packets).0
}

fn drive(rx: &mut dyn Receiver, samples: &[lora_phy::iq::Iq]) -> Vec<saiyan::GatewayPacket> {
    let mut out = Vec::new();
    for chunk in samples.chunks(2048) {
        out.extend(rx.feed(chunk));
    }
    out.extend(rx.flush());
    out
}

/// Decodes trace A, resets, decodes trace B; asserts the B decode equals a
/// fresh instance's, packet for packet, bit for bit.
fn assert_reset_is_pristine(mut make: impl FnMut() -> BoxedReceiver) {
    let a = trace(0xA11CE);
    let b = trace(0xB0B);
    let mut fresh = make();
    let reference = drive(fresh.as_mut(), &b.samples);
    assert!(
        !reference.is_empty(),
        "trace B must decode to at least one packet for the test to mean anything"
    );

    let mut reused = make();
    let warmup = drive(reused.as_mut(), &a.samples);
    assert!(!warmup.is_empty(), "trace A must exercise the receiver");
    reused.reset();
    let after_reset = drive(reused.as_mut(), &b.samples);
    assert_eq!(
        after_reset, reference,
        "a reset receiver must decode bit-identically to a fresh one"
    );
}

#[test]
fn streaming_demodulator_reset_is_pristine() {
    let cfg = SaiyanConfig::paper_default(lora(), Variant::Vanilla);
    assert_reset_is_pristine(|| {
        Box::new(StreamingDemodulator::new(cfg.clone(), PAYLOAD_SYMBOLS)) as BoxedReceiver
    });
}

#[test]
fn streaming_demodulator_reset_is_pristine_in_production_profile() {
    let cfg = SaiyanConfig::paper_default(lora(), Variant::Super).high_throughput();
    assert_reset_is_pristine(|| {
        Box::new(StreamingDemodulator::new(cfg.clone(), PAYLOAD_SYMBOLS)) as BoxedReceiver
    });
}

#[test]
fn gateway_reset_is_pristine() {
    let cfg = SaiyanConfig::paper_default(lora(), Variant::Vanilla);
    assert_reset_is_pristine(|| {
        Box::new(Gateway::new(GatewayConfig::single_channel(
            cfg.clone(),
            PAYLOAD_SYMBOLS,
        ))) as BoxedReceiver
    });
}

#[test]
fn detection_receiver_reset_is_pristine() {
    let lora = lora();
    assert_reset_is_pristine(|| {
        Box::new(DetectionReceiver::new(AlobaDetector::new(lora), lora)) as BoxedReceiver
    });
}

/// The pooled executor path end to end: the *same physical instance* is
/// checked out twice and must decode identically both times.
#[test]
fn pooled_executor_recycles_bit_identically() {
    let cfg = SaiyanConfig::paper_default(lora(), Variant::Vanilla);
    let payload = PAYLOAD_SYMBOLS;
    let factory = Arc::new(move || {
        Box::new(StreamingDemodulator::new(cfg.clone(), payload)) as BoxedReceiver
    });
    let pool = PooledExecutor::new(factory, 1);
    let a = trace(0xA11CE);
    let b = trace(0xB0B);

    let mut first = pool.checkout();
    let reference_b = {
        let mut fresh = pool.checkout(); // pool empty: freshly built
        drive(fresh.as_mut(), &b.samples)
    };
    drive(first.as_mut(), &a.samples);
    pool.checkin(first);
    assert_eq!(pool.idle(), 1, "instance parked for reuse");

    let mut recycled = pool.checkout();
    assert_eq!(pool.reused(), 1, "checkout came from the pool");
    let decoded_b = drive(recycled.as_mut(), &b.samples);
    assert_eq!(
        decoded_b, reference_b,
        "a recycled receiver must decode bit-identically to a fresh build"
    );
}
