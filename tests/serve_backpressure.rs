//! Backpressure semantics of the serving layer, proven deterministically
//! with a gated receiver double: the stream worker blocks inside `feed`
//! until the test releases a permit, so the test controls exactly when the
//! ingest queue fills and drains.
//!
//! * Drop-oldest sheds **exactly** at the bound — frame K+`depth`+1 is the
//!   first displaced — and the drop counters agree at every layer (push
//!   outcome, handle, stream stats, daemon telemetry).
//! * Blocking mode never drops anything, no matter how hard the producer
//!   pushes: every frame reaches the receiver, in order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use lora_phy::iq::Iq;
use saiyan::gateway::GatewayPacket;
use saiyan::{BoxedReceiver, FreshExecutor, Receiver};
use saiyan_serve::{BackpressurePolicy, PushOutcome, ServeConfig, ServeDaemon};

/// A permit gate: `feed` acquires one permit per frame, the test releases
/// them, so queue occupancy between release points is exact.
#[derive(Default)]
struct Gate {
    permits: Mutex<usize>,
    available: Condvar,
    entered: AtomicUsize,
}

impl Gate {
    fn release(&self, n: usize) {
        *self.permits.lock().unwrap() += n;
        self.available.notify_all();
    }

    fn acquire(&self) {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut permits = self.permits.lock().unwrap();
        while *permits == 0 {
            permits = self.available.wait(permits).unwrap();
        }
        *permits -= 1;
    }

    /// Spins until the worker has *entered* `n` feed calls (i.e. is parked
    /// inside the gate for the n-th). The condition is guaranteed to occur,
    /// so this wait changes when the test proceeds, never its outcome.
    fn await_entered(&self, n: usize) {
        while self.entered.load(Ordering::SeqCst) < n {
            std::thread::yield_now();
        }
    }
}

/// The receiver double: consumes permits and records the exact sample count
/// of every frame fed, in order.
struct GatedReceiver {
    gate: Arc<Gate>,
    fed: Arc<Mutex<Vec<usize>>>,
}

impl Receiver for GatedReceiver {
    fn backend_name(&self) -> &'static str {
        "gated-test-double"
    }

    fn input_rate(&self) -> f64 {
        1_000_000.0
    }

    fn feed(&mut self, chunk: &[Iq]) -> Vec<GatewayPacket> {
        self.gate.acquire();
        self.fed.lock().unwrap().push(chunk.len());
        Vec::new()
    }

    fn flush(&mut self) -> Vec<GatewayPacket> {
        Vec::new()
    }

    fn reset(&mut self) {}
}

fn gated_daemon(config: ServeConfig) -> (ServeDaemon, Arc<Gate>, Arc<Mutex<Vec<usize>>>) {
    let gate = Arc::new(Gate::default());
    let fed = Arc::new(Mutex::new(Vec::new()));
    let factory = {
        let gate = Arc::clone(&gate);
        let fed = Arc::clone(&fed);
        Arc::new(move || {
            Box::new(GatedReceiver {
                gate: Arc::clone(&gate),
                fed: Arc::clone(&fed),
            }) as BoxedReceiver
        })
    };
    let daemon = ServeDaemon::new(Arc::new(FreshExecutor::new(factory)), config);
    (daemon, gate, fed)
}

/// A frame of `n` zero samples — `n` is the frame's identity in the fed log.
fn frame(n: usize) -> Vec<Iq> {
    vec![Iq { re: 0.0, im: 0.0 }; n]
}

#[test]
fn drop_oldest_sheds_exactly_at_the_bound() {
    const DEPTH: usize = 4;
    const EXTRA: usize = 3;
    let (daemon, gate, fed) = gated_daemon(
        ServeConfig::default()
            .with_queue_depth(DEPTH)
            .with_policy(BackpressurePolicy::DropOldest),
    );
    let mut handle = daemon.open_stream("storm").expect("daemon running");

    // Frame 1 is popped by the worker, which then parks inside feed —
    // leaving the queue empty and the worker busy.
    assert_eq!(handle.send_samples(frame(1)), Ok(PushOutcome::Enqueued));
    gate.await_entered(1);

    // The next DEPTH frames fill the queue without loss...
    for n in 2..=1 + DEPTH {
        assert_eq!(
            handle.send_samples(frame(n)),
            Ok(PushOutcome::Enqueued),
            "frame of {n} samples is within the bound"
        );
    }
    assert_eq!(handle.dropped(), 0, "no drops below the bound");

    // ...and every frame past the bound displaces the oldest queued one.
    for (i, n) in (2 + DEPTH..2 + DEPTH + EXTRA).enumerate() {
        assert_eq!(
            handle.send_samples(frame(n)),
            Ok(PushOutcome::DisplacedOldest),
            "frame of {n} samples is past the bound"
        );
        assert_eq!(handle.dropped(), (i + 1) as u64);
    }

    // Drain everything: the worker feeds the in-flight frame plus the DEPTH
    // survivors. Close only once it has picked up the last one, so the End
    // marker meets an empty queue and cannot displace a data frame.
    gate.release(1 + DEPTH + EXTRA);
    gate.await_entered(1 + DEPTH);
    handle.close();
    let snapshot = daemon.shutdown();

    // The receiver saw: the in-flight frame, then the *newest* DEPTH frames.
    // The EXTRA oldest queued frames (sizes 2..=1+EXTRA) were displaced.
    let expected: Vec<usize> = std::iter::once(1)
        .chain(2 + EXTRA..2 + DEPTH + EXTRA)
        .collect();
    assert_eq!(*fed.lock().unwrap(), expected);
    assert_eq!(snapshot.dropped_chunks_total, EXTRA as u64);
    let stream = &snapshot.streams[0];
    assert_eq!(stream.dropped_chunks, EXTRA as u64);
    assert_eq!(
        stream.samples_in as usize,
        expected.iter().sum::<usize>(),
        "samples_in counts only frames that reached the receiver"
    );
}

#[test]
fn blocking_mode_never_drops_under_sustained_pressure() {
    const DEPTH: usize = 2;
    const FRAMES: usize = DEPTH + 9;
    let (daemon, gate, fed) = gated_daemon(
        ServeConfig::default()
            .with_queue_depth(DEPTH)
            .with_policy(BackpressurePolicy::Block),
    );
    let handle = daemon.open_stream("firehose").expect("daemon running");

    // The producer pushes far more frames than the queue holds; with a
    // parked worker it must block rather than shed.
    let producer = std::thread::spawn(move || {
        for n in 1..=FRAMES {
            match handle.send_samples(frame(n)) {
                Ok(PushOutcome::Enqueued) => {}
                other => panic!("blocking push must enqueue, got {other:?}"),
            }
        }
        handle.wait()
    });

    // Release permits one at a time; the producer advances exactly as room
    // appears.
    for done in 1..=FRAMES {
        gate.release(1);
        gate.await_entered(done.min(FRAMES));
    }
    let report = producer.join().expect("producer thread");

    assert_eq!(report.stats.dropped_chunks, 0, "blocking mode never drops");
    assert!(!report.disconnected);
    let sizes: Vec<usize> = (1..=FRAMES).collect();
    assert_eq!(
        *fed.lock().unwrap(),
        sizes,
        "every frame reached the receiver, in order"
    );
    let snapshot = daemon.shutdown();
    assert_eq!(snapshot.dropped_chunks_total, 0);
    assert_eq!(snapshot.samples_total as usize, sizes.iter().sum::<usize>());
}

#[test]
fn queue_depth_gauge_tracks_occupancy() {
    const DEPTH: usize = 5;
    let (daemon, gate, _fed) = gated_daemon(
        ServeConfig::default()
            .with_queue_depth(DEPTH)
            .with_policy(BackpressurePolicy::Block),
    );
    let mut handle = daemon.open_stream("gauge").expect("daemon running");
    handle.send_samples(frame(1)).unwrap();
    gate.await_entered(1);
    for _ in 0..3 {
        handle.send_samples(frame(1)).unwrap();
    }
    assert_eq!(handle.stats().snapshot().queue_depth, 3);
    gate.release(4);
    handle.close();
    daemon.shutdown();
}
