//! Property-based tests spanning the workspace's core invariants.

use lora_phy::downlink::{bytes_to_symbols, symbols_to_bytes};
use lora_phy::fec::{decode_payload, encode_payload};
use lora_phy::frame::{crc16, Frame, FrameFlags};
use lora_phy::params::{Bandwidth, BitsPerChirp, CodeRate, LoraParams, SpreadingFactor};
use proptest::prelude::*;
use rfsim::units::{Db, Dbm, Meters};

fn spreading_factor() -> impl Strategy<Value = SpreadingFactor> {
    prop_oneof![
        Just(SpreadingFactor::Sf7),
        Just(SpreadingFactor::Sf8),
        Just(SpreadingFactor::Sf9),
        Just(SpreadingFactor::Sf10),
        Just(SpreadingFactor::Sf11),
        Just(SpreadingFactor::Sf12),
    ]
}

fn code_rate() -> impl Strategy<Value = CodeRate> {
    prop_oneof![
        Just(CodeRate::Cr45),
        Just(CodeRate::Cr46),
        Just(CodeRate::Cr47),
        Just(CodeRate::Cr48),
    ]
}

fn bandwidth() -> impl Strategy<Value = Bandwidth> {
    prop_oneof![
        Just(Bandwidth::Khz125),
        Just(Bandwidth::Khz250),
        Just(Bandwidth::Khz500),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fec_chain_round_trips(
        data in proptest::collection::vec(any::<u8>(), 1..80),
        sf in spreading_factor(),
        cr in code_rate(),
    ) {
        let symbols = encode_payload(&data, sf, cr).unwrap();
        prop_assert!(symbols.iter().all(|&s| s < sf.chips_per_symbol()));
        let (decoded, stats) = decode_payload(&symbols, sf, cr, data.len()).unwrap();
        prop_assert_eq!(decoded, data);
        prop_assert_eq!(stats.detected, 0);
    }

    #[test]
    fn downlink_symbol_packing_round_trips(
        data in proptest::collection::vec(any::<u8>(), 0..64),
        k in 1u8..=8,
    ) {
        let k = BitsPerChirp::new(k).unwrap();
        let symbols = bytes_to_symbols(&data, k);
        prop_assert!(symbols.iter().all(|&s| s < k.alphabet_size()));
        let back = symbols_to_bytes(&symbols, k, data.len());
        prop_assert_eq!(back, data);
    }

    #[test]
    fn frame_serialisation_round_trips(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        cr in code_rate(),
        ack in any::<bool>(),
        ack_request in any::<bool>(),
    ) {
        let frame = Frame::new(
            payload,
            cr,
            FrameFlags { ack, ack_request, downlink: true },
        ).unwrap();
        let bytes = frame.to_bytes();
        let back = Frame::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn crc_detects_single_byte_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        idx in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut corrupted = payload.clone();
        let i = idx.index(corrupted.len());
        corrupted[i] ^= flip;
        prop_assert_ne!(crc16(&payload), crc16(&corrupted));
    }

    #[test]
    fn dbm_conversions_round_trip(power in -150.0f64..30.0) {
        let dbm = Dbm(power);
        let back = Dbm::from_milliwatts(dbm.milliwatts());
        prop_assert!((back.value() - power).abs() < 1e-9);
    }

    #[test]
    fn path_loss_is_monotone(
        d1 in 1.0f64..500.0,
        delta in 1.0f64..500.0,
        walls in 0u8..3,
    ) {
        let pl = rfsim::pathloss::PathLossModel::for_environment(
            rfsim::pathloss::Environment::Indoor { walls },
            rfsim::units::Hertz::from_mhz(434.0),
        );
        let near = pl.loss(Meters(d1)).value();
        let far = pl.loss(Meters(d1 + delta)).value();
        prop_assert!(far > near);
    }

    #[test]
    fn comparator_hysteresis_never_chatters_within_the_band(
        samples in proptest::collection::vec(0.45f64..0.55, 10..200),
    ) {
        // All samples strictly between U_L = 0.4 and U_H = 0.6: the output
        // must never change state.
        let cmp = analog::comparator::DoubleThresholdComparator::new(0.6, 0.4);
        let buf = analog::signal::RealBuffer::new(samples, 1000.0);
        let out = cmp.compare(&buf);
        prop_assert_eq!(out.transitions(), 0);
    }

    #[test]
    fn ber_model_is_monotone_in_rss(
        rss_lo in -120.0f64..-40.0,
        delta in 0.1f64..40.0,
        k in 1u8..=5,
    ) {
        let cfg = saiyan::SensitivityConfig {
            variant: saiyan::Variant::Super,
            sf: SpreadingFactor::Sf7,
            bw: Bandwidth::Khz500,
            k: BitsPerChirp::new(k).unwrap(),
        };
        let worse = cfg.ber(Dbm(rss_lo));
        let better = cfg.ber(Dbm(rss_lo + delta));
        prop_assert!(better <= worse + 1e-12);
    }

    #[test]
    fn sampling_rate_rule_always_exceeds_nyquist(
        sf in spreading_factor(),
        bw in bandwidth(),
        k in 1u8..=5,
    ) {
        let params = LoraParams::new(sf, bw, BitsPerChirp::new(k).unwrap());
        prop_assert!(params.practical_sampling_rate() > params.nyquist_sampling_rate());
        prop_assert!(params.nyquist_sampling_rate() > 0.0);
    }

    #[test]
    fn prr_with_retransmissions_is_monotone(
        p in 0.0f64..1.0,
        downlink in 0.5f64..1.0,
        n in 0u32..5,
    ) {
        let base = saiyan_mac::prr_with_retransmissions(p, n, downlink);
        let more = saiyan_mac::prr_with_retransmissions(p, n + 1, downlink);
        prop_assert!(more >= base - 1e-12);
        prop_assert!((0.0..=1.0).contains(&base));
    }

    #[test]
    fn aloha_success_probability_bounds(tags in 1u32..50, slots in 1u32..128) {
        let p = saiyan_mac::analytic_success_probability(tags, slots);
        prop_assert!((0.0..=1.0).contains(&p));
        // More slots never hurt.
        let p_more = saiyan_mac::analytic_success_probability(tags, slots + 1);
        prop_assert!(p_more >= p - 1e-12);
    }

    #[test]
    fn db_dbm_arithmetic_is_consistent(p in -100.0f64..20.0, g in -30.0f64..30.0) {
        let power = Dbm(p);
        let gain = Db(g);
        let through = power + gain - gain;
        prop_assert!((through.value() - p).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn saw_gain_is_monotone_across_the_critical_band(
        f1 in 433_500_000.0f64..434_000_000.0,
        delta in 1_000.0f64..400_000.0,
    ) {
        let saw = analog::saw::SawFilter::paper_b3790();
        let f2 = (f1 + delta).min(434_000_000.0);
        let g1 = saw.gain_at(rfsim::units::Hertz(f1)).value();
        let g2 = saw.gain_at(rfsim::units::Hertz(f2)).value();
        prop_assert!(g2 >= g1 - 1e-9, "gain fell from {g1} to {g2}");
    }

    #[test]
    fn downlink_peak_time_inversion_is_exact(
        k in 1u8..=5,
        sf in spreading_factor(),
        bw in bandwidth(),
        symbol_seed in any::<u32>(),
    ) {
        let k = BitsPerChirp::new(k).unwrap();
        let params = LoraParams::new(sf, bw, k);
        let symbol = symbol_seed % k.alphabet_size();
        let gen = lora_phy::ChirpGenerator::new(params);
        let peak = gen.downlink_peak_time(symbol).unwrap();
        prop_assert_eq!(
            lora_phy::downlink::symbol_from_peak_time(peak, &params),
            symbol
        );
    }

    #[test]
    fn interleaver_round_trips_for_any_geometry(
        rows in 1usize..=16,
        cols in 1usize..=16,
        seed in any::<u64>(),
    ) {
        use lora_phy::fec::interleaver::Interleaver;
        let il = Interleaver::new(rows, cols).unwrap();
        let mask = if cols == 16 { u16::MAX } else { (1u16 << cols) - 1 };
        let words: Vec<u16> = (0..rows * 3)
            .map(|i| ((seed >> (i % 48)) as u16 ^ (i as u16).wrapping_mul(2654)) & mask)
            .collect();
        let inter = il.interleave(&words);
        let back = il.deinterleave(&inter, words.len());
        prop_assert_eq!(back, words);
    }

    #[test]
    fn ideal_envelope_detector_is_scale_consistent(
        amp in 1e-6f64..1e-1,
        scale in 1.1f64..10.0,
    ) {
        use lora_phy::iq::{Iq, SampleBuffer};
        let det = analog::envelope::EnvelopeDetector::ideal();
        let small = det.detect(&SampleBuffer::new(vec![Iq::new(amp, 0.0); 4], 1e6));
        let big = det.detect(&SampleBuffer::new(vec![Iq::new(amp * scale, 0.0); 4], 1e6));
        // Square-law: output scales with the square of the amplitude ratio.
        let ratio = big.samples[0] / small.samples[0];
        prop_assert!((ratio - scale * scale).abs() / (scale * scale) < 1e-9);
    }

    #[test]
    fn scenario_ber_is_monotone_in_distance(
        d in 5.0f64..300.0,
        delta in 1.0f64..100.0,
        k in 1u8..=5,
    ) {
        use netsim::Scenario;
        use rfsim::units::Meters;
        let near = Scenario::outdoor_default(Meters(d))
            .with_bits_per_chirp(BitsPerChirp::new(k).unwrap());
        let far = Scenario::outdoor_default(Meters(d + delta))
            .with_bits_per_chirp(BitsPerChirp::new(k).unwrap());
        prop_assert!(far.ber() >= near.ber() - 1e-12);
    }

    #[test]
    fn gray_coded_downlink_symbols_differ_by_one_bit_for_adjacent_peaks(
        k in 2u8..=5,
        base in any::<u32>(),
    ) {
        // Adjacent peak positions map to Gray-adjacent symbol codes, so a
        // one-slot peak error costs exactly one bit.
        let k = BitsPerChirp::new(k).unwrap();
        let a = base % (k.alphabet_size() - 1);
        let ga = lora_phy::fec::gray_encode(a);
        let gb = lora_phy::fec::gray_encode(a + 1);
        prop_assert_eq!((ga ^ gb).count_ones(), 1);
    }
}
