//! Integration tests of the waveform-level receive chain's qualitative
//! properties: the correlator's low-SNR advantage, AGC-driven thresholding,
//! spectrum-sensing-driven hopping, and duty-cycle arithmetic.

use lora_phy::modulator::{Alphabet, Modulator};
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use rfsim::channel::dbm_to_buffer_power;
use rfsim::interference::Interferer;
use rfsim::noise::AwgnSource;
use rfsim::spectrum::SpectrumSensor;
use rfsim::units::{Dbm, Hertz};
use saiyan::metrics::ErrorCounts;
use saiyan::{Agc, AgcConfig, DutyCycleSchedule, SaiyanConfig, SaiyanDemodulator, Variant};

fn lora() -> LoraParams {
    LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(8)
}

/// Builds a noisy received packet at the given signal and noise powers.
fn noisy_packet(
    symbols: &[u32],
    signal_dbm: f64,
    noise_dbm: f64,
    seed: u64,
) -> (lora_phy::SampleBuffer, usize) {
    let (wave, layout) = Modulator::new(lora())
        .packet_with_guard(symbols, Alphabet::Downlink, 2)
        .unwrap();
    let target = dbm_to_buffer_power(Dbm(signal_dbm));
    let tx_power = wave.mean_power();
    let mut rx = wave.scaled((target / tx_power).sqrt());
    let mut awgn = AwgnSource::new(seed);
    awgn.add_to(&mut rx, dbm_to_buffer_power(Dbm(noise_dbm)));
    (rx, layout.payload_start)
}

#[test]
fn correlation_decoding_beats_peak_decoding_at_low_snr() {
    // At a marginal SNR the correlator (Super Saiyan) should make fewer symbol
    // errors than the comparator-only chain (shifting variant), which is the
    // mechanism behind the Fig. 25 correlation gain.
    let symbols: Vec<u32> = (0..24).map(|i| (i * 7 + 3) % 4).collect();
    let super_demod = SaiyanDemodulator::new(SaiyanConfig::paper_default(lora(), Variant::Super));
    let shifting_demod =
        SaiyanDemodulator::new(SaiyanConfig::paper_default(lora(), Variant::WithShifting));

    let mut super_counts = ErrorCounts::default();
    let mut shifting_counts = ErrorCounts::default();
    for seed in 0..6u64 {
        // -62 dBm signal with -70 dBm noise: only ~8 dB of SNR at the antenna.
        let (rx, payload_start) = noisy_packet(&symbols, -62.0, -70.0, 1000 + seed);
        let s = super_demod
            .demodulate_aligned(&rx, payload_start, symbols.len())
            .unwrap();
        let p = shifting_demod
            .demodulate_aligned(&rx, payload_start, symbols.len())
            .unwrap();
        super_counts.add_packet(&symbols, &s.symbols, 2);
        shifting_counts.add_packet(&symbols, &p.symbols, 2);
    }
    assert!(
        super_counts.ser() <= shifting_counts.ser(),
        "correlator SER {} vs peak-decoder SER {}",
        super_counts.ser(),
        shifting_counts.ser()
    );
    // And the correlator should still be mostly correct at this operating point.
    assert!(
        super_counts.ser() < 0.25,
        "correlator SER {}",
        super_counts.ser()
    );
}

#[test]
fn agc_thresholds_track_a_weakening_link() {
    // Feed the AGC envelopes from progressively weaker packets: the derived
    // comparator must keep producing one clean burst per preamble chirp.
    let demod = SaiyanDemodulator::new(SaiyanConfig::paper_default(lora(), Variant::Vanilla));
    let mut agc = Agc::new(AgcConfig::default());
    for (i, power) in [-45.0, -50.0, -55.0].into_iter().enumerate() {
        let (rx, _) = noisy_packet(&[0, 1, 2, 3], power, -100.0, 2000 + i as u64);
        let envelope = demod.process_envelope(&rx);
        agc.update(&envelope);
        let thresholds = agc.thresholds(&envelope);
        let stream = thresholds.comparator().compare(&agc.apply(&envelope));
        // At least the ten preamble peaks (plus possibly sync/payload bursts)
        // must be separable; chattering would produce hundreds of runs.
        let runs = stream.high_runs().len();
        assert!((4..60).contains(&runs), "power {power}: {runs} high runs");
    }
}

#[test]
fn spectrum_sensor_feeds_the_hopping_controller() {
    // A jammer on channel 0 of the 433 MHz plan is detected by the sensor and
    // the hopping controller moves the network off the jammed channel.
    let sensor = SpectrumSensor::paper_433mhz();
    let fs = 8.0e6;
    let jammer = Interferer {
        kind: rfsim::interference::InterferenceKind::ContinuousWave,
        received_power: Dbm(-55.0),
        offset: Hertz(-1.0e6), // 433.0 MHz when the capture is centred at 434.0 MHz
        seed: 7,
    };
    let mut capture = jammer.waveform(65_536, fs);
    let mut awgn = AwgnSource::new(8);
    awgn.add_to(&mut capture, dbm_to_buffer_power(Dbm(-110.0)));
    let scan = sensor.scan(&capture, Hertz::from_mhz(434.0));

    let mut controller = saiyan_mac::HoppingController::new(
        saiyan_mac::ChannelTable::paper_433mhz(),
        0,
        sensor.busy_threshold.value(),
    )
    .unwrap();
    for m in &scan {
        controller
            .record_interference(m.channel as u8, m.power.value().max(-200.0))
            .unwrap();
    }
    assert!(controller.current_channel_jammed());
    let hop = controller.maybe_hop().expect("controller should hop");
    match hop.command {
        saiyan_mac::Command::ChannelHop { channel } => assert_ne!(channel, 0),
        other => panic!("unexpected command {other:?}"),
    }
}

#[test]
fn duty_cycle_bounds_feedback_latency_and_power() {
    let params = lora();
    let schedule = DutyCycleSchedule::one_percent(&params);
    // The worst-case wait for a feedback window must still allow the Fig. 26
    // retransmission loop to finish within a few seconds.
    assert!(schedule.worst_case_latency() < 10.0);
    // A retransmission command packet fits in the listening window.
    assert!(schedule.window_s >= params.packet_duration(20));
    // And the schedule indeed spends ~1 % of the time listening.
    let listening: usize = (0..10_000)
        .filter(|i| schedule.is_listening(*i as f64 * schedule.period_s / 1000.0))
        .count();
    let fraction = listening as f64 / 10_000.0;
    assert!(
        (fraction - 0.01).abs() < 0.005,
        "listening fraction {fraction}"
    );
}
