//! Gateway determinism properties: an `N = 1` passthrough gateway is
//! bit-identical to the plain streaming receiver, and the merged multi-channel
//! packet sequence is identical whatever the worker-thread count or chunk
//! sizes (only the batching across `push_chunk` calls may vary).

use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::longtrace::{generate_long_trace, random_payloads, LongTraceConfig, TracePacket};
use netsim::multichannel::{
    generate_multichannel_trace, hopping_traffic, HoppingTrafficConfig, MultiChannelConfig,
};
use proptest::prelude::*;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::gateway::{Gateway, GatewayChannel, GatewayConfig, GatewayPacket};
use saiyan::StreamingDemodulator;

const PAYLOAD_SYMBOLS: usize = 8;

fn lora500() -> LoraParams {
    LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
}

/// A three-packet single-channel trace at the paper's default operating point.
fn single_channel_trace() -> lora_phy::iq::SampleBuffer {
    let payloads = random_payloads(3, PAYLOAD_SYMBOLS, lora500().bits_per_chirp, 0xE0);
    let packets: Vec<TracePacket> = payloads
        .into_iter()
        .enumerate()
        .map(|(i, p)| TracePacket::new(p, -50.0 - i as f64, if i == 0 { 4.0 } else { 15.0 }))
        .collect();
    generate_long_trace(&LongTraceConfig::new(lora500()).with_noise(-82.0), &packets).0
}

#[test]
fn n1_gateway_is_bit_identical_to_streaming_demodulator() {
    let trace = single_channel_trace();
    for variant in Variant::ALL {
        let cfg = SaiyanConfig::paper_default(lora500(), variant);
        let reference = StreamingDemodulator::new(cfg.clone(), PAYLOAD_SYMBOLS).run_to_end(&trace);
        assert_eq!(reference.len(), 3, "variant {variant:?}");
        for chunk_size in [997usize, 4096, trace.len()] {
            let packets = Gateway::run_trace(
                GatewayConfig::single_channel(cfg.clone(), PAYLOAD_SYMBOLS),
                &trace,
                chunk_size,
            );
            let results: Vec<_> = packets.iter().map(|p| p.result.clone()).collect();
            assert_eq!(
                results, reference,
                "variant {variant:?} chunk size {chunk_size}"
            );
        }
    }
}

#[test]
fn n1_gateway_streams_packets_before_finish() {
    // The watermark merge must release settled packets mid-stream, not hold
    // everything until the flush.
    let trace = single_channel_trace();
    let cfg = SaiyanConfig::paper_default(lora500(), Variant::Vanilla);
    let mut gateway = Gateway::new(GatewayConfig::single_channel(cfg, PAYLOAD_SYMBOLS));
    let mut streamed = 0usize;
    for chunk in trace.samples.chunks(4096) {
        streamed += gateway.push_chunk(chunk).len();
    }
    let trailing = gateway.finish();
    assert!(
        streamed >= 2,
        "only {streamed} of 3 packets released before finish"
    );
    assert_eq!(streamed + trailing.len(), 3);
}

/// The 4-channel workload of `tests/gateway_multichannel.rs`, kept small.
fn four_channel_setup() -> (MultiChannelConfig, Vec<GatewayChannel>) {
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz250,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(2);
    let offsets = MultiChannelConfig::grid_offsets(4);
    let trace_cfg = MultiChannelConfig::new(lora, 6, offsets.clone()).with_noise(-85.0);
    let channels = offsets
        .iter()
        .enumerate()
        .map(|(i, &offset)| {
            GatewayChannel::new(
                i as u8,
                offset,
                SaiyanConfig::narrowband_streaming(lora, Variant::Vanilla),
                PAYLOAD_SYMBOLS,
            )
        })
        .collect();
    (trace_cfg, channels)
}

#[test]
fn merged_ordering_is_deterministic_across_worker_counts_and_chunkings() {
    let (trace_cfg, channels) = four_channel_setup();
    let packets = hopping_traffic(&HoppingTrafficConfig {
        n_tags: 4,
        packets_per_tag: 2,
        n_channels: 4,
        payload_symbols: PAYLOAD_SYMBOLS,
        k: trace_cfg.lora.bits_per_chirp,
        slot_symbols: PAYLOAD_SYMBOLS as f64 + 20.0,
        lead_in_symbols: 4.0,
        base_power_dbm: -43.0,
        power_spread_db: 1.5,
        max_cfo_hz: 500.0,
        seed: 0xDE7,
    });
    let (trace, truth) = generate_multichannel_trace(&trace_cfg, &packets);

    let run = |workers: usize, chunking_seed: Option<u64>| -> Vec<GatewayPacket> {
        let config = GatewayConfig::new(trace_cfg.wideband_rate(), channels.clone())
            .with_worker_threads(workers);
        let mut gateway = Gateway::new(config);
        let mut out = Vec::new();
        match chunking_seed {
            None => {
                for chunk in trace.samples.chunks(8192) {
                    out.extend(gateway.push_chunk(chunk));
                }
            }
            Some(seed) => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut rest = &trace.samples[..];
                while !rest.is_empty() {
                    let n = rng.gen_range(1..20_000usize).min(rest.len());
                    out.extend(gateway.push_chunk(&rest[..n]));
                    rest = &rest[n..];
                }
            }
        }
        out.extend(gateway.finish());
        out
    };

    let reference = run(0, None); // one worker per channel
    assert_eq!(reference.len(), truth.len(), "all packets decode");
    for pair in reference.windows(2) {
        assert!(pair[0].result.payload_start_time <= pair[1].result.payload_start_time);
    }
    for workers in [1usize, 2, 3] {
        assert_eq!(run(workers, None), reference, "workers {workers}");
    }
    // Random chunk sizes with 2 workers: same merged sequence.
    assert_eq!(run(2, Some(0x77)), reference, "random chunking");
}

proptest! {
    // Each case streams the full single-channel trace through a gateway;
    // keep the corpus small enough for debug-mode CI (the multi-channel
    // analogue above covers worker-count determinism deterministically).
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The gateway analogue of `streaming_equivalence`'s chunking proptest:
    /// whatever cycle of chunk sizes feeds `push_chunk` — single samples,
    /// primes, blocks longer than a packet, empty chunks interleaved — the
    /// decoded packet sequence is bit-identical to a whole-buffer run.
    #[test]
    fn gateway_output_is_invariant_under_random_chunkings(
        variant in prop_oneof![
            Just(Variant::Vanilla),
            Just(Variant::WithShifting),
            Just(Variant::Super),
        ],
        // Sizes start at 7: a cycle of 1-sample chunks would funnel ~100k
        // worker-queue round trips through the gateway per case, which is
        // prohibitive in debug-mode CI (the plain streaming proptest covers
        // the 1-sample case without threads).
        chunk_cycle in proptest::collection::vec(
            prop_oneof![Just(0usize), Just(7), Just(131), Just(997), Just(8192)],
            1..4,
        ).prop_filter("needs a non-empty chunk size", |c| c.iter().any(|&s| s > 0)),
    ) {
        let trace = single_channel_trace();
        let cfg = SaiyanConfig::paper_default(lora500(), variant);
        let whole = Gateway::run_trace(
            GatewayConfig::single_channel(cfg.clone(), PAYLOAD_SYMBOLS),
            &trace,
            trace.len(),
        );
        prop_assert_eq!(whole.len(), 3, "whole-buffer run decodes all packets");
        let mut gateway =
            Gateway::new(GatewayConfig::single_channel(cfg, PAYLOAD_SYMBOLS));
        let mut out = Vec::new();
        let mut offset = 0usize;
        let mut i = 0usize;
        while offset < trace.len() {
            let size = chunk_cycle[i % chunk_cycle.len()];
            let end = (offset + size).min(trace.len());
            out.extend(gateway.push_chunk(&trace.samples[offset..end]));
            offset = end;
            i += 1;
        }
        out.extend(gateway.finish());
        prop_assert_eq!(&out, &whole, "chunk cycle {:?}", chunk_cycle);
    }
}
