//! Streaming-vs-batch equivalence: the streaming demodulator's output is a
//! function of the sample stream alone, never of how the stream is chunked.
//!
//! "Batch" here is the whole-buffer run of the same pipeline (the trace
//! pushed as a single chunk) — the reference every chunked run must equal
//! *bit-exactly*, including floating-point times, peak positions, correlation
//! scores, and thresholds. A deterministic test pins the acceptance-criteria
//! chunk sizes {1, 7, 64, 4096, whole-buffer}; a property test then fuzzes
//! random chunk partitions, payloads, and SF/BW/variant configurations.

use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::longtrace::{generate_long_trace, random_payloads, LongTraceConfig, TracePacket};
use proptest::prelude::*;
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::demodulator::DemodResult;
use saiyan::StreamingDemodulator;

fn run_chunked(
    cfg: &SaiyanConfig,
    payload_symbols: usize,
    trace: &lora_phy::SampleBuffer,
    chunk_sizes: &[usize],
) -> Vec<DemodResult> {
    let mut demod = StreamingDemodulator::new(cfg.clone(), payload_symbols);
    let mut results = Vec::new();
    let mut offset = 0usize;
    let mut i = 0usize;
    while offset < trace.len() {
        let size = chunk_sizes[i % chunk_sizes.len()].max(1);
        let end = (offset + size).min(trace.len());
        results.extend(demod.push_samples(&trace.samples[offset..end]));
        offset = end;
        i += 1;
    }
    results.extend(demod.finish());
    results
}

#[test]
fn acceptance_chunk_sizes_are_bit_identical() {
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    );
    let payloads = random_payloads(2, 6, lora.bits_per_chirp, 0xACCE);
    let packets = vec![
        TracePacket::new(payloads[0].clone(), -50.0, 3.0),
        TracePacket::new(payloads[1].clone(), -52.0, 16.0),
    ];
    let (trace, truth) =
        generate_long_trace(&LongTraceConfig::new(lora).with_noise(-80.0), &packets);
    for variant in Variant::ALL {
        let cfg = SaiyanConfig::paper_default(lora, variant);
        let whole = StreamingDemodulator::new(cfg.clone(), 6).run_to_end(&trace);
        // The reference run must actually decode both packets — equality of
        // empty outputs would be a vacuous pass.
        assert_eq!(whole.len(), truth.len(), "variant {variant:?} decoded");
        for (r, t) in whole.iter().zip(&truth) {
            assert_eq!(r.symbols, t.symbols, "variant {variant:?} symbols");
        }
        for chunk_size in [1usize, 7, 64, 4096] {
            let chunked = run_chunked(&cfg, 6, &trace, &[chunk_size]);
            assert_eq!(
                chunked, whole,
                "variant {variant:?}, chunk size {chunk_size}"
            );
        }
    }
}

fn spreading_factor() -> impl Strategy<Value = SpreadingFactor> {
    prop_oneof![Just(SpreadingFactor::Sf7), Just(SpreadingFactor::Sf8)]
}

fn bandwidth() -> impl Strategy<Value = Bandwidth> {
    prop_oneof![Just(Bandwidth::Khz250), Just(Bandwidth::Khz500)]
}

fn variant() -> impl Strategy<Value = Variant> {
    prop_oneof![
        Just(Variant::Vanilla),
        Just(Variant::WithShifting),
        Just(Variant::Super),
    ]
}

proptest! {
    // Each case streams a full waveform through the receive chain three
    // times; keep the corpus small enough for debug-mode CI.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn streaming_equals_batch_for_random_chunkings(
        sf in spreading_factor(),
        bw in bandwidth(),
        k in 1u8..=3,
        variant in variant(),
        payload_seed in any::<u32>(),
        n_symbols in 4usize..=8,
        // A cycle of chunk sizes covering the pathological cases: single
        // samples, primes, and larger-than-packet blocks.
        chunk_cycle in proptest::collection::vec(
            prop_oneof![Just(1usize), Just(7), Just(131), Just(997), Just(8192)],
            1..4,
        ),
        rx_power in -55.0f64..-45.0,
    ) {
        let k = BitsPerChirp::new(k).unwrap();
        let lora = LoraParams::new(sf, bw, k);
        let payload = random_payloads(1, n_symbols, k, payload_seed as u64)
            .pop()
            .unwrap();
        let packets = vec![TracePacket::new(payload, rx_power, 3.0)];
        let (trace, _) = generate_long_trace(
            &LongTraceConfig::new(lora).with_noise(-82.0),
            &packets,
        );
        let cfg = SaiyanConfig::paper_default(lora, variant);
        let whole = StreamingDemodulator::new(cfg.clone(), n_symbols).run_to_end(&trace);
        let chunked = run_chunked(&cfg, n_symbols, &trace, &chunk_cycle);
        prop_assert_eq!(&chunked, &whole, "chunk cycle {:?}", chunk_cycle);
        // And the degenerate all-singles partition.
        let singles = run_chunked(&cfg, n_symbols, &trace, &[1]);
        prop_assert_eq!(&singles, &whole);
    }
}

#[test]
fn preamble_split_across_a_chunk_boundary_is_not_lost() {
    // Cut the stream exactly in the middle of the preamble: the carried
    // state must bridge the boundary with no packet loss and a bit-identical
    // result.
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    );
    let payload = vec![2u32, 0, 3, 1, 1, 3];
    let packets = vec![TracePacket::new(payload.clone(), -50.0, 3.0)];
    let (trace, truth) =
        generate_long_trace(&LongTraceConfig::new(lora).with_noise(-80.0), &packets);
    let cfg = SaiyanConfig::paper_default(lora, Variant::WithShifting);
    let whole = StreamingDemodulator::new(cfg.clone(), payload.len()).run_to_end(&trace);
    assert_eq!(whole.len(), 1);
    assert_eq!(whole[0].symbols, payload);

    // Boundary in the middle of the 10-symbol preamble (5 symbols in).
    let sps = lora.samples_per_symbol();
    let split = truth[0].packet_start_sample + 5 * sps + sps / 3;
    let mut demod = StreamingDemodulator::new(cfg, payload.len());
    let mut results = demod.push_samples(&trace.samples[..split]);
    results.extend(demod.push_samples(&trace.samples[split..]));
    results.extend(demod.finish());
    assert_eq!(results, whole);
}
