//! Workspace smoke test: catches manifest/re-export regressions at `cargo
//! test` time rather than `cargo build` time.
//!
//! 1. Every crate must stay reachable through the `saiyan_suite` umbrella
//!    re-exports (so examples and downstream users never need per-crate
//!    dependencies).
//! 2. One end-to-end downlink round-trip must decode: modulate a short
//!    packet, push it through the Saiyan receiver at a strong RSS, and get
//!    the same symbols back.

use saiyan_suite::lora_phy::modulator::{Alphabet, Modulator};
use saiyan_suite::lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use saiyan_suite::saiyan::{SaiyanConfig, SaiyanDemodulator, Variant};

#[test]
fn umbrella_reexports_resolve() {
    // Touch one public item per re-exported crate; failures here are compile
    // errors, which is the point — the test pins the umbrella surface.
    let params = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    );
    let _ = saiyan_suite::lora_phy::ChirpGenerator::new(params);
    let _ = saiyan_suite::rfsim::units::Dbm(-60.0);
    let _ = saiyan_suite::analog::saw::SawFilter::paper_b3790();
    let _ = saiyan_suite::saiyan::SaiyanConfig::paper_default(params, Variant::Super);
    let _ = saiyan_suite::baselines::EnvelopeReceiver::new(params);
    let _ = saiyan_suite::saiyan_mac::analytic_success_probability(10, 16);
    let _ =
        saiyan_suite::netsim::Scenario::outdoor_default(saiyan_suite::rfsim::units::Meters(50.0));
}

#[test]
fn end_to_end_downlink_round_trip_decodes() {
    let params = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(8);
    let symbols = vec![0u32, 3, 1, 2, 2, 1, 3, 0];

    let (wave, layout) = Modulator::new(params)
        .packet_with_guard(&symbols, Alphabet::Downlink, 2)
        .expect("modulation succeeds");

    let config = SaiyanConfig::paper_default(params, Variant::Super);
    let demod = SaiyanDemodulator::new(config);
    let result = demod
        .demodulate_aligned(&wave, layout.payload_start, symbols.len())
        .expect("clean capture demodulates");

    assert_eq!(result.symbols, symbols);
}
