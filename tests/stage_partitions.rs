//! Chunk-partition invariance for every block-pipeline stage.
//!
//! One shared harness feeds each stage of the analog chain (SAW FIR, raw
//! complex FIR, channelizer, LNA, envelope detector, shifter chain,
//! comparator, IF amplifier, low-pass cascade, full streaming front end)
//! through deterministic chunk partitions — sizes {1, 7, 64, whole} with
//! empty chunks interleaved — and through proptest-generated random
//! partitions, asserting the concatenated output is *bit-identical* to
//! whole-buffer processing. This is the contract [`analog::stage`] writes
//! down; the macro below is the single place it is enforced for all stages.

use analog::channelizer::ChannelizerSpec;
use analog::envelope::EnvelopeDetector;
use analog::filters::{IfAmplifier, LowPassFilter};
use analog::lna::Lna;
use analog::saw::SawFilter;
use analog::shifting::{CyclicFrequencyShifter, ShiftingConfig};
use analog::stage::{BlockStage, InPlaceStage};
use analog::ComplexFirState;
use lora_phy::iq::Iq;
use proptest::prelude::*;
use rfsim::units::Hertz;
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::Frontend;

const FS: f64 = 2.0e6;

/// A deterministic, spectrally busy complex test signal.
fn iq_input(n: usize) -> Vec<Iq> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Iq::from_polar(1e-4 * (1.0 + (i % 89) as f64 / 89.0), 0.013 * t)
                + Iq::from_polar(5e-5, 0.217 * t)
        })
        .collect()
}

/// A deterministic real test signal.
fn real_input(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (0.031 * i as f64).sin() * (1.0 + 0.5 * (0.0007 * i as f64).cos()))
        .collect()
}

/// Splits `input` by cycling through `sizes` (0 = an empty chunk, exercised
/// deliberately) and runs the stage chunk by chunk.
fn run_block_partition<S: BlockStage>(
    stage: &mut S,
    input: &[S::In],
    sizes: &[usize],
) -> Vec<S::Out> {
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    let mut offset = 0usize;
    let mut i = 0usize;
    while offset < input.len() {
        let size = sizes[i % sizes.len()];
        let end = (offset + size).min(input.len());
        stage.process_into(&input[offset..end], &mut scratch);
        out.extend_from_slice(&scratch);
        offset = end;
        i += 1;
    }
    out
}

fn run_in_place_partition<S: InPlaceStage>(
    stage: &mut S,
    input: &[f64],
    sizes: &[usize],
) -> Vec<f64> {
    let mut data = input.to_vec();
    let mut offset = 0usize;
    let mut i = 0usize;
    while offset < data.len() {
        let size = sizes[i % sizes.len()];
        let end = (offset + size).min(data.len());
        stage.process_in_place(&mut data[offset..end]);
        offset = end;
        i += 1;
    }
    data
}

/// The deterministic acceptance partitions: single samples, a prime, a block
/// size, the whole buffer — each with empty chunks interleaved.
fn acceptance_partitions(whole: usize) -> Vec<Vec<usize>> {
    vec![
        vec![1],
        vec![0, 1],
        vec![7, 0, 7],
        vec![64],
        vec![0, whole],
        vec![whole],
    ]
}

/// Proptest strategy: a short cycle of chunk sizes, empties included.
fn partition_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(
        prop_oneof![
            Just(0usize),
            Just(1),
            Just(7),
            Just(64),
            Just(997),
            Just(8192)
        ],
        1..5,
    )
    .prop_filter("at least one non-empty chunk size", |sizes| {
        sizes.iter().any(|&s| s > 0)
    })
}

/// Generates the invariance tests for one block stage: deterministic
/// acceptance partitions plus a proptest over random partitions, both
/// compared bit-exactly against whole-buffer processing of a fresh stage.
macro_rules! block_stage_partition_tests {
    ($det:ident, $prop:ident, $make:expr, $input:expr) => {
        #[test]
        fn $det() {
            let input = $input;
            let mut whole = Vec::new();
            ($make)().process_into(&input, &mut whole);
            for sizes in acceptance_partitions(input.len()) {
                let mut stage = ($make)();
                let out = run_block_partition(&mut stage, &input, &sizes);
                assert_eq!(out, whole, "partition {sizes:?}");
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn $prop(sizes in partition_strategy()) {
                let input = $input;
                let mut whole = Vec::new();
                ($make)().process_into(&input, &mut whole);
                let mut stage = ($make)();
                let out = run_block_partition(&mut stage, &input, &sizes);
                prop_assert_eq!(out, whole, "partition {:?}", sizes);
            }
        }
    };
}

macro_rules! in_place_stage_partition_tests {
    ($det:ident, $prop:ident, $make:expr, $input:expr) => {
        #[test]
        fn $det() {
            let input = $input;
            let mut whole = input.clone();
            ($make)().process_in_place(&mut whole);
            for sizes in acceptance_partitions(input.len()) {
                let mut stage = ($make)();
                let out = run_in_place_partition(&mut stage, &input, &sizes);
                assert_eq!(out, whole, "partition {sizes:?}");
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn $prop(sizes in partition_strategy()) {
                let input = $input;
                let mut whole = input.clone();
                ($make)().process_in_place(&mut whole);
                let mut stage = ($make)();
                let out = run_in_place_partition(&mut stage, &input, &sizes);
                prop_assert_eq!(out, whole, "partition {:?}", sizes);
            }
        }
    };
}

block_stage_partition_tests!(
    saw_fir_partitions,
    saw_fir_random_partitions,
    || SawFilter::paper_b3790().streaming_fir(Hertz::from_mhz(433.5), FS, 128),
    iq_input(6_000)
);

block_stage_partition_tests!(
    complex_fir_partitions,
    complex_fir_random_partitions,
    || {
        ComplexFirState::new(
            (0..37)
                .map(|i| Iq::from_polar(1.0 / (1.0 + i as f64), 0.4 * i as f64))
                .collect(),
        )
    },
    iq_input(5_000)
);

block_stage_partition_tests!(
    channelizer_partitions,
    channelizer_random_partitions,
    || ChannelizerSpec::for_channel(-250_000.0, 125_000.0, 6)
        .with_taps(64)
        .streaming(FS),
    iq_input(9_000)
);

block_stage_partition_tests!(
    channelizer_fast_phasor_partitions,
    channelizer_fast_phasor_random_partitions,
    || ChannelizerSpec::for_channel(250_000.0, 125_000.0, 4)
        .with_taps(64)
        .with_fast_phasor(true)
        .streaming(FS),
    iq_input(9_000)
);

block_stage_partition_tests!(
    lna_partitions,
    lna_random_partitions,
    || Lna::paper_cglna(Hertz::from_khz(500.0)).streaming(),
    iq_input(5_000)
);

block_stage_partition_tests!(
    envelope_partitions,
    envelope_random_partitions,
    || EnvelopeDetector::default().with_seed(0xBEE).streaming(FS),
    iq_input(5_000)
);

block_stage_partition_tests!(
    shifter_partitions,
    shifter_random_partitions,
    || {
        CyclicFrequencyShifter::new(
            ShiftingConfig::for_bandwidth(500_000.0),
            EnvelopeDetector::default(),
        )
        .streaming(FS, true)
    },
    iq_input(5_000)
);

block_stage_partition_tests!(
    shifter_fast_clock_partitions,
    shifter_fast_clock_random_partitions,
    || {
        CyclicFrequencyShifter::new(
            ShiftingConfig::for_bandwidth(500_000.0),
            EnvelopeDetector::default(),
        )
        .streaming(FS, true)
        .with_fast_clock(true)
    },
    iq_input(5_000)
);

block_stage_partition_tests!(
    comparator_partitions,
    comparator_random_partitions,
    || analog::DoubleThresholdComparator::new(0.4, 0.1).streaming(),
    real_input(5_000)
);

in_place_stage_partition_tests!(
    lowpass_partitions,
    lowpass_random_partitions,
    || LowPassFilter::new(100_000.0, 3).streaming(FS),
    real_input(5_000)
);

in_place_stage_partition_tests!(
    if_amplifier_partitions,
    if_amplifier_random_partitions,
    || IfAmplifier::paper_2n222(500_000.0, 125_000.0).streaming(FS),
    real_input(5_000)
);

/// The composed streaming front end (SAW FIR → LNA → shifter) behaves as one
/// big block stage; its scratch arenas must not leak state across chunks.
struct FrontendStage(saiyan::StreamingFrontend);

impl BlockStage for FrontendStage {
    type In = Iq;
    type Out = f64;
    fn process_into(&mut self, input: &[Iq], out: &mut Vec<f64>) {
        self.0.process_chunk_into(input, out);
    }
}

block_stage_partition_tests!(
    frontend_partitions,
    frontend_random_partitions,
    || {
        let lora = lora_phy::params::LoraParams::new(
            lora_phy::params::SpreadingFactor::Sf7,
            lora_phy::params::Bandwidth::Khz500,
            lora_phy::params::BitsPerChirp::new(2).unwrap(),
        );
        let cfg = SaiyanConfig::paper_default(lora, Variant::WithShifting);
        FrontendStage(Frontend::paper(&cfg).streaming(lora.sample_rate()))
    },
    iq_input(5_000)
);
