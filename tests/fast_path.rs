//! The high-throughput fast paths against the exact defaults.
//!
//! The phasor-recurrence oscillator (`SaiyanConfig::fast_oscillator`) and the
//! production profile (`SaiyanConfig::high_throughput`) trade bit-stability
//! for speed: envelopes differ from the exact path by a few ULPs per block.
//! These tests pin what must survive that trade — every golden-trace packet
//! still decodes to the same symbols — and that the default configuration
//! keeps the fast paths *off*, so the bit-exact golden suite stays meaningful.

use netsim::golden_fixture_set;
use netsim::longtrace::read_golden;
use saiyan::config::SaiyanConfig;
use saiyan::StreamingDemodulator;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn fast_paths_default_to_off() {
    let fixture = &golden_fixture_set()[0];
    let cfg = SaiyanConfig::paper_default(fixture.lora, fixture.variant);
    assert!(!cfg.fast_oscillator);
    assert!(cfg.analog_noise);
    let fast = cfg.clone().high_throughput();
    assert!(fast.fast_oscillator);
    assert!(!fast.analog_noise);
}

#[test]
fn fast_oscillator_decodes_all_golden_traces_to_the_same_symbols() {
    for name in golden_fixture_set().iter().map(|f| f.name.clone()) {
        let fixture = read_golden(&golden_dir(), &name).expect("fixture loads");
        let n_symbols = fixture.truth[0].symbols.len();
        let exact_cfg = SaiyanConfig::paper_default(fixture.lora, fixture.variant);
        let fast_cfg = exact_cfg.clone().with_fast_oscillator(true);
        let exact = StreamingDemodulator::new(exact_cfg, n_symbols).run_to_end(&fixture.trace);
        let fast = StreamingDemodulator::new(fast_cfg, n_symbols).run_to_end(&fixture.trace);
        assert_eq!(exact.len(), fixture.truth.len(), "{name}: exact decode");
        assert_eq!(fast.len(), exact.len(), "{name}: packet count");
        for (i, (f, e)) in fast.iter().zip(&exact).enumerate() {
            assert_eq!(f.symbols, e.symbols, "{name}: packet {i} symbols");
            assert!(
                (f.payload_start_time - e.payload_start_time).abs()
                    < fixture.lora.symbol_duration() / 2.0,
                "{name}: packet {i} timing moved"
            );
        }
    }
}

#[test]
fn production_profile_decodes_all_golden_traces_correctly() {
    // The full production profile additionally drops the receiver's own
    // analog-noise model, so it is compared against the transmitted ground
    // truth rather than the exact decode.
    for name in golden_fixture_set().iter().map(|f| f.name.clone()) {
        let fixture = read_golden(&golden_dir(), &name).expect("fixture loads");
        let n_symbols = fixture.truth[0].symbols.len();
        let cfg = SaiyanConfig::paper_default(fixture.lora, fixture.variant).high_throughput();
        let results = StreamingDemodulator::new(cfg, n_symbols).run_to_end(&fixture.trace);
        assert_eq!(results.len(), fixture.truth.len(), "{name}: packet count");
        for (i, truth) in fixture.truth.iter().enumerate() {
            let expected_t = truth.payload_start_sample as f64 / fixture.trace.sample_rate;
            let result = results
                .iter()
                .find(|r| {
                    (r.payload_start_time - expected_t).abs() < fixture.lora.symbol_duration()
                })
                .unwrap_or_else(|| panic!("{name}: no decode near packet {i}"));
            assert_eq!(result.symbols, truth.symbols, "{name}: packet {i} symbols");
        }
    }
}
