//! The sharded analytic engine at scale: collision accounting against a
//! brute-force oracle, calendar-queue vs. binary-heap equivalence, traffic
//! monotonicity, and partition/worker invariance of the merged report.

use netsim::engine::occupancy::ChannelOccupancy;
use netsim::engine::scheduler::{CalendarQueue, EventQueue};
use netsim::engine::{EngineScenario, MacPolicy, NetworkEngine, TrafficModel};
use proptest::prelude::*;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Three tags on one channel, phased within a fraction of one packet
/// airtime: a triple overlap. Every party must die — three collisions, not
/// two (the latest-ending-only tracker this suite regressed on would lose
/// one) — and exactly once each.
#[test]
fn a_triple_overlap_on_one_channel_kills_all_three() {
    let mut s = EngineScenario::grid(3, 1, 1);
    // Phases spread over one traffic interval; squeeze the interval well
    // under a packet airtime so all three transmissions overlap.
    s.traffic = TrafficModel::Periodic {
        interval_s: 0.1 * s.packet_duration_s(),
        jitter_s: 0.0,
    };
    let out = NetworkEngine::new(s).run_analytic();
    let r = &out.report;
    assert_eq!(r.readings_generated, 3);
    assert_eq!(r.uplink_transmissions, 3);
    assert_eq!(r.collisions, 3, "every overlapped party dies exactly once");
    assert_eq!(r.readings_delivered, 0);
    assert!(r.latencies_s.is_empty());
}

/// For a fixed seed the sharded engine must produce the *same report* as
/// the single-cell engine wherever cells are physically independent — on
/// the collision-free staggered grid, every counter, latency sample and
/// duration is partition-invariant.
#[test]
fn a_sharded_run_matches_the_single_cell_report() {
    let base = EngineScenario::grid(512, 4, 3);
    let single = NetworkEngine::new(base.clone().with_cells(1)).run_analytic();
    assert_eq!(single.report.readings_delivered, 512 * 3);
    for cells in [2usize, 8, 64] {
        let sharded = NetworkEngine::new(base.clone().with_cells(cells)).run_analytic();
        assert_eq!(
            sharded.report, single.report,
            "{cells} cells diverged from the single-cell engine"
        );
    }
}

/// The merged report must be bit-identical whatever the worker count —
/// cells share no mutable state inside a lookahead window, so threading is
/// purely a wall-clock lever. ALOHA keeps per-cell RNG streams hot.
#[test]
fn worker_counts_do_not_change_the_report() {
    let base = EngineScenario::grid(2048, 4, 2)
        .with_mac(MacPolicy::Aloha)
        .with_cells(16);
    let reference = NetworkEngine::new(base.clone().with_workers(1)).run_analytic();
    assert!(reference.report.collisions > 0, "ALOHA should collide");
    assert!(reference.report.readings_delivered > 0);
    for workers in [2usize, 4] {
        let out = NetworkEngine::new(base.clone().with_workers(workers)).run_analytic();
        assert_eq!(
            out.report, reference.report,
            "{workers} workers diverged from the single-worker run"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The in-flight occupancy tracker agrees with a brute-force O(n²)
    /// interval-overlap oracle on heterogeneous packet durations — and
    /// marks each collided transmission exactly once.
    #[test]
    fn collision_marking_matches_the_interval_overlap_oracle(
        starts in collection::vec(0.0f64..10.0, 1..40),
        durs in collection::vec(0.01f64..3.0, 1..40),
    ) {
        let n = starts.len().min(durs.len());
        let mut txs: Vec<(f64, f64)> = (0..n)
            .map(|i| (starts[i], starts[i] + durs[i]))
            .collect();
        // The engine registers transmissions in event-time order.
        txs.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut chan = ChannelOccupancy::new();
        let mut dead = vec![false; n];
        let mut marks = vec![0usize; n];
        let mut newly = Vec::new();
        for (i, &(s, e)) in txs.iter().enumerate() {
            newly.clear();
            if chan.begin(s, e, i as u32, &mut newly) {
                dead[i] = true;
                marks[i] += 1;
            }
            for &v in &newly {
                dead[v as usize] = true;
                marks[v as usize] += 1;
            }
        }

        for (i, &(si, ei)) in txs.iter().enumerate() {
            let overlapped = txs
                .iter()
                .enumerate()
                .any(|(j, &(sj, ej))| j != i && si < ej && sj < ei);
            prop_assert_eq!(
                dead[i], overlapped,
                "tx {} [{}, {}) vs oracle", i, si, ei
            );
            prop_assert!(marks[i] <= 1, "tx {} marked {} times", i, marks[i]);
        }
    }

    /// The calendar queue and the reference binary heap pop identical
    /// `(time, payload)` sequences — including FIFO tie order and
    /// `pop_before` horizon cuts — under interleaved push/pop traffic
    /// (pushes landing behind the drain cursor included).
    #[test]
    fn the_calendar_queue_matches_the_heap(
        raw_times in collection::vec(0.0f64..100.0, 2..120),
        horizons in collection::vec(0.0f64..130.0, 1..5),
    ) {
        // Quantize so duplicate timestamps (FIFO ties) actually occur.
        let times: Vec<f64> = raw_times.iter().map(|t| (t * 4.0).round() / 4.0).collect();
        let mut heap = EventQueue::new();
        let mut calendar = CalendarQueue::for_span(0.0, 40.0, 64);

        let split = times.len() / 2;
        for (i, &t) in times[..split].iter().enumerate() {
            heap.push(t, i);
            calendar.push(t, i);
        }
        // Drain a prefix, then push the rest — some of it behind the
        // calendar's drain cursor.
        for _ in 0..split / 2 {
            prop_assert_eq!(calendar.pop(), heap.pop());
        }
        for (i, &t) in times[split..].iter().enumerate() {
            heap.push(t, split + i);
            calendar.push(t, split + i);
        }
        let mut sorted_horizons = horizons;
        sorted_horizons.sort_by(f64::total_cmp);
        for h in sorted_horizons {
            loop {
                let a = calendar.pop_before(h);
                let b = heap.pop_before(h);
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
        while !heap.is_empty() {
            prop_assert_eq!(calendar.pop(), heap.pop());
        }
        prop_assert!(calendar.is_empty());
    }

    /// Bursty arrivals stay strictly monotone under adversarial
    /// burst-span/inter-burst-gap ratios (the regression: an exponential
    /// inter-burst draw shorter than the previous burst's intra-burst span
    /// walked time backwards).
    #[test]
    fn bursty_arrivals_stay_monotone_under_adversarial_ratios(
        burst in 1usize..6,
        intra_gap in 0.0f64..10.0,
        mean_interval in 0.001f64..1.0,
        readings in 1usize..30,
        seed in any::<u64>(),
    ) {
        let model = TrafficModel::Bursty {
            burst,
            intra_gap_s: intra_gap,
            mean_burst_interval_s: mean_interval,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let times = model.arrivals(readings, 0.5, &mut rng);
        prop_assert_eq!(times.len(), readings);
        for pair in times.windows(2) {
            prop_assert!(
                pair[1] > pair[0],
                "arrivals regressed: {} then {} (burst={}, intra={}, mean={})",
                pair[0], pair[1], burst, intra_gap, mean_interval
            );
        }
    }
}
