//! Integration test: the evaluation machinery is internally consistent and
//! anchored to the paper's headline numbers.

use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::{
    detection_range, paper_demodulation_range, run_link_trials, run_waveform_trials, Scenario,
    TrialConfig,
};
use rfsim::units::{Dbm, Meters};
use saiyan::{SaiyanConfig, Variant};

#[test]
fn headline_numbers_are_within_fifteen_percent_of_the_paper() {
    // Outdoor demodulation range of the full design (paper: 148.6 m).
    let outdoor = paper_demodulation_range(&Scenario::outdoor_default(Meters(1.0))).value();
    assert!(
        (outdoor - 148.6).abs() / 148.6 < 0.15,
        "outdoor range {outdoor}"
    );

    // Indoor NLOS detection range (paper: 44.2 m behind one wall).
    let indoor = detection_range(
        &Scenario::indoor(Meters(1.0), 1),
        Dbm(saiyan::SUPER_SAIYAN_SENSITIVITY_DBM),
    )
    .value();
    assert!((indoor - 44.2).abs() / 44.2 < 0.3, "indoor range {indoor}");

    // Baseline detection ranges (paper: 42.4 m PLoRa, 30.6 m Aloba).
    let plora = detection_range(
        &Scenario::outdoor_default(Meters(1.0)),
        Dbm(baselines::PLORA_DETECTION_SENSITIVITY_DBM),
    )
    .value();
    let aloba = detection_range(
        &Scenario::outdoor_default(Meters(1.0)),
        Dbm(baselines::ALOBA_DETECTION_SENSITIVITY_DBM),
    )
    .value();
    assert!((plora - 42.4).abs() / 42.4 < 0.15, "PLoRa range {plora}");
    assert!((aloba - 30.6).abs() / 30.6 < 0.15, "Aloba range {aloba}");
}

#[test]
fn ber_trends_match_fig16() {
    // BER grows with the coding rate at a fixed distance…
    let at_100m = |k: u8| {
        Scenario::outdoor_default(Meters(100.0))
            .with_bits_per_chirp(BitsPerChirp::new(k).unwrap())
            .ber()
    };
    assert!(at_100m(5) > at_100m(1));
    // …and with distance at a fixed coding rate.
    let cr5 = |d: f64| {
        Scenario::outdoor_default(Meters(d))
            .with_bits_per_chirp(BitsPerChirp::new(5).unwrap())
            .ber()
    };
    assert!(cr5(150.0) > cr5(10.0));
    // The CR5 spread at 10 m vs 150 m covers roughly the paper's 0.1‰ → 4.4‰.
    assert!(cr5(10.0) < 5e-4);
    assert!(cr5(150.0) > 2e-3);
}

#[test]
fn monte_carlo_agrees_with_the_analytic_model() {
    let scenario = Scenario::outdoor_default(Meters(130.0));
    let analytic = scenario.ber();
    let counts = run_link_trials(
        &scenario,
        &TrialConfig {
            packets: 4000,
            payload_symbols: 32,
            seed: 99,
        },
    );
    let simulated = counts.ber();
    assert!(
        (simulated - analytic).abs() < analytic * 0.25 + 1e-4,
        "simulated {simulated} vs analytic {analytic}"
    );
}

#[test]
fn waveform_chain_decodes_cleanly_well_inside_the_link_budget() {
    // The waveform-level pipeline is not calibrated to the paper's absolute
    // sensitivity (see DESIGN.md), but well inside the budget it must agree
    // with the link abstraction that the link is clean.
    let scenario = Scenario::outdoor_default(Meters(20.0));
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(8);
    let counts = run_waveform_trials(
        &scenario,
        &SaiyanConfig::paper_default(lora, Variant::Super),
        &TrialConfig {
            packets: 4,
            payload_symbols: 16,
            seed: 5,
        },
    );
    assert_eq!(counts.packets_total, 4);
    assert!(counts.ber() < 0.02, "waveform BER {}", counts.ber());
    assert!(scenario.ber() < 1e-4);
}

#[test]
fn range_scales_with_environment_bandwidth_and_variant_in_the_right_order() {
    let base = Scenario::outdoor_default(Meters(1.0));
    let outdoor = paper_demodulation_range(&base).value();
    let wall = paper_demodulation_range(&Scenario::indoor(Meters(1.0), 1)).value();
    let narrow = paper_demodulation_range(&base.clone().with_lora(LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz125,
        BitsPerChirp::new(2).unwrap(),
    )))
    .value();
    let vanilla = paper_demodulation_range(&base.clone().with_variant(Variant::Vanilla)).value();
    assert!(outdoor > wall);
    assert!(outdoor > narrow);
    assert!(outdoor > vanilla);
}
