//! Golden-trace regression suite.
//!
//! The fixtures under `tests/golden/` are committed IQ traces (f32 LE pairs)
//! plus manifests with the transmitted symbol sequences. Three invariants are
//! pinned here:
//!
//! 1. the fixture *generator* is stable — regenerating every fixture in
//!    memory reproduces the committed files byte-for-byte (if you changed the
//!    modulator/channel models intentionally, rerun
//!    `cargo run -p saiyan_bench --bin gen_golden_traces` and commit);
//! 2. the *batch* receiver decodes each packet, cut from the trace the way
//!    its API expects (one pre-cut capture per packet), bit-exactly;
//! 3. the *streaming* receiver decodes the same packets from the continuous
//!    trace — chunked and whole-buffer — bit-exactly.

use std::path::PathBuf;

use lora_phy::iq::SampleBuffer;
use netsim::golden_fixture_set;
use netsim::longtrace::{manifest_to_string, read_golden, trace_to_bytes, GoldenFixture};
use saiyan::config::SaiyanConfig;
use saiyan::{SaiyanDemodulator, StreamingDemodulator};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn config(fixture: &GoldenFixture) -> SaiyanConfig {
    SaiyanConfig::paper_default(fixture.lora, fixture.variant)
}

#[test]
fn committed_fixtures_match_the_generator() {
    // Byte-exact regeneration leans on the platform libm: chirp synthesis
    // and the AWGN source go through f64 transcendentals (cos/sin/ln/powf)
    // whose last-ulp behaviour can differ across libc/arch. The committed
    // fixtures were generated on Linux/glibc x86-64 (the CI platform). If
    // this assertion fails elsewhere while the two decode tests below still
    // pass, suspect a libm difference, not a regression.
    for fixture in golden_fixture_set() {
        let dir = golden_dir();
        let iq = std::fs::read(dir.join(format!("{}.iq", fixture.name)))
            .unwrap_or_else(|e| panic!("missing committed {}.iq: {e}", fixture.name));
        assert_eq!(
            iq,
            trace_to_bytes(&fixture.trace),
            "{}.iq drifted from the generator — rerun gen_golden_traces if intentional",
            fixture.name
        );
        let manifest = std::fs::read_to_string(dir.join(format!("{}.manifest", fixture.name)))
            .unwrap_or_else(|e| panic!("missing committed {}.manifest: {e}", fixture.name));
        assert_eq!(
            manifest,
            manifest_to_string(&fixture),
            "{}.manifest drifted from the generator",
            fixture.name
        );
    }
}

#[test]
fn batch_demodulation_reproduces_golden_symbols() {
    for fixture in golden_fixture_set().iter().map(|f| &f.name) {
        let fixture = read_golden(&golden_dir(), fixture).expect("fixture loads");
        let cfg = config(&fixture);
        let demod = SaiyanDemodulator::new(cfg.clone());
        let sps = fixture.lora.samples_per_symbol();
        for (i, truth) in fixture.truth.iter().enumerate() {
            // Cut the capture the way the batch API expects: one packet with
            // a symbol of guard on each side.
            let start = truth.packet_start_sample.saturating_sub(sps);
            let end = (truth.payload_start_sample + truth.symbols.len() * sps + sps)
                .min(fixture.trace.len());
            let capture = SampleBuffer::new(
                fixture.trace.samples[start..end].to_vec(),
                fixture.trace.sample_rate,
            );
            let result = demod
                .demodulate(&capture, truth.symbols.len())
                .unwrap_or_else(|e| {
                    panic!("{}: batch decode of packet {i} failed: {e}", fixture.name)
                });
            assert_eq!(
                result.symbols, truth.symbols,
                "{}: batch symbols for packet {i}",
                fixture.name
            );
        }
    }
}

#[test]
fn streaming_demodulation_reproduces_golden_symbols() {
    for name in golden_fixture_set().iter().map(|f| f.name.clone()) {
        let fixture = read_golden(&golden_dir(), &name).expect("fixture loads");
        let cfg = config(&fixture);
        let n_symbols = fixture.truth[0].symbols.len();
        let whole = StreamingDemodulator::new(cfg.clone(), n_symbols).run_to_end(&fixture.trace);
        for chunk_size in [2048usize, usize::MAX] {
            let mut demod = StreamingDemodulator::new(cfg.clone(), n_symbols);
            let mut results = Vec::new();
            for chunk in fixture
                .trace
                .samples
                .chunks(chunk_size.min(fixture.trace.len()))
            {
                results.extend(demod.push_samples(chunk));
            }
            results.extend(demod.finish());
            assert_eq!(
                results, whole,
                "{name}: chunked vs whole-buffer runs differ"
            );
        }
        assert_eq!(
            whole.len(),
            fixture.truth.len(),
            "{name}: packet count (decoded {whole:?})"
        );
        for (i, truth) in fixture.truth.iter().enumerate() {
            let expected_t = truth.payload_start_sample as f64 / fixture.trace.sample_rate;
            let result = whole
                .iter()
                .find(|r| {
                    (r.payload_start_time - expected_t).abs() < fixture.lora.symbol_duration()
                })
                .unwrap_or_else(|| panic!("{name}: no decode near packet {i}"));
            assert_eq!(
                result.symbols, truth.symbols,
                "{name}: streaming symbols for packet {i}"
            );
        }
    }
}
