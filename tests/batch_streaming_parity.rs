//! Batch == streaming, stage by stage, on a golden fixture.
//!
//! The block-pipeline refactor left exactly one implementation per analog
//! stage: every batch entry point (`Lna::amplify`, `EnvelopeDetector::detect`,
//! `CyclicFrequencyShifter::process`, `IfAmplifier::amplify`,
//! `LowPassFilter::filter`, `DoubleThresholdComparator::compare`) delegates to
//! its streaming state run over the whole buffer at once. These tests pin the
//! consequence — batch output is bit-identical to chunked streaming output on
//! a committed golden trace — so the delegation can never silently fork
//! again. The SAW stage is the one deliberate exception (zero-phase
//! frequency-domain batch model vs causal FIR streaming approximation), so
//! the full-front-end parity check runs on the post-SAW chain.

use analog::envelope::EnvelopeDetector;
use analog::filters::{IfAmplifier, LowPassFilter};
use analog::lna::Lna;
use analog::shifting::{CyclicFrequencyShifter, ShiftingConfig};
use analog::signal::RealBuffer;
use lora_phy::iq::SampleBuffer;
use netsim::longtrace::read_golden;
use rfsim::units::Hertz;
use saiyan::config::SaiyanConfig;
use saiyan::Frontend;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// A slice of the shifting golden fixture, SAW-transformed so the post-SAW
/// stages see realistic amplitudes.
fn fixture_rf() -> (SampleBuffer, SaiyanConfig) {
    let fixture = read_golden(&golden_dir(), "dual_sf7_bw500_k2_shifting").expect("fixture loads");
    let cfg = SaiyanConfig::paper_default(fixture.lora, fixture.variant);
    let fe = Frontend::paper(&cfg);
    // Keep the parity check fast: two symbols past the first packet start.
    let n = (4 * fixture.lora.samples_per_symbol()).min(fixture.trace.len());
    let cut = SampleBuffer::new(
        fixture.trace.samples[..n].to_vec(),
        fixture.trace.sample_rate,
    );
    (fe.saw.apply(&cut, fe.carrier), cfg)
}

fn chunkings() -> [usize; 4] {
    [1, 7, 997, usize::MAX]
}

#[test]
fn lna_batch_equals_chunked_streaming_on_golden_fixture() {
    let (rf, cfg) = fixture_rf();
    let lna = Lna::paper_cglna(Hertz(cfg.lora.bw.hz()));
    let batch = lna.amplify(&rf);
    for chunk_size in chunkings() {
        let mut state = lna.streaming();
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for chunk in rf.samples.chunks(chunk_size.min(rf.len())) {
            state.amplify_chunk_into(chunk, &mut scratch);
            out.extend_from_slice(&scratch);
        }
        assert_eq!(out, batch.samples, "chunk size {chunk_size}");
    }
}

#[test]
fn detector_batch_equals_chunked_streaming_on_golden_fixture() {
    let (rf, _) = fixture_rf();
    let det = EnvelopeDetector::default().with_seed(0x60_1D);
    let batch = det.detect(&rf);
    for chunk_size in chunkings() {
        let mut state = det.streaming(rf.sample_rate);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for chunk in rf.samples.chunks(chunk_size.min(rf.len())) {
            state.detect_chunk_into(chunk, &mut scratch);
            out.extend_from_slice(&scratch);
        }
        assert_eq!(out, batch.samples, "chunk size {chunk_size}");
    }
}

#[test]
fn shifter_batch_equals_chunked_streaming_on_golden_fixture() {
    let (rf, cfg) = fixture_rf();
    for use_shifting in [true, false] {
        let shifter = CyclicFrequencyShifter::new(
            ShiftingConfig::for_bandwidth(cfg.lora.bw.hz()),
            EnvelopeDetector::default(),
        );
        let batch = if use_shifting {
            shifter.process(&rf)
        } else {
            shifter.process_without_shifting(&rf)
        };
        for chunk_size in chunkings() {
            let mut state = shifter.streaming(rf.sample_rate, use_shifting);
            let mut out = Vec::new();
            let mut scratch = Vec::new();
            for chunk in rf.samples.chunks(chunk_size.min(rf.len())) {
                state.process_chunk_into(chunk, &mut scratch);
                out.extend_from_slice(&scratch);
            }
            assert_eq!(
                out, batch.samples,
                "shifting={use_shifting} chunk size {chunk_size}"
            );
        }
    }
}

#[test]
fn real_filters_batch_equal_chunked_streaming_on_golden_envelope() {
    let (rf, cfg) = fixture_rf();
    let envelope = EnvelopeDetector::ideal().detect(&rf);
    let bw = cfg.lora.bw.hz();
    // IF amplifier.
    let amp = IfAmplifier::paper_2n222(bw, bw / 4.0);
    let batch = amp.amplify(&envelope);
    for chunk_size in chunkings() {
        let mut state = amp.streaming(envelope.sample_rate);
        let mut out = envelope.samples.clone();
        for chunk in out.chunks_mut(chunk_size.min(envelope.len())) {
            state.process_chunk(chunk);
        }
        assert_eq!(out, batch.samples, "if chunk size {chunk_size}");
    }
    // Low-pass cascade.
    let lpf = LowPassFilter::new(bw / 5.0, 2);
    let batch = lpf.filter(&envelope);
    for chunk_size in chunkings() {
        let mut state = lpf.streaming(envelope.sample_rate);
        let mut out = envelope.samples.clone();
        for chunk in out.chunks_mut(chunk_size.min(envelope.len())) {
            state.process_chunk(chunk);
        }
        assert_eq!(out, batch.samples, "lpf chunk size {chunk_size}");
    }
}

#[test]
fn comparator_batch_equals_chunked_streaming_on_golden_envelope() {
    let (rf, _) = fixture_rf();
    let envelope = EnvelopeDetector::ideal().detect(&rf);
    let peak = envelope.max();
    let cmp = analog::DoubleThresholdComparator::new(peak * 0.7, peak * 0.3);
    let batch = cmp.compare(&envelope);
    for chunk_size in chunkings() {
        let mut state = cmp.streaming();
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for chunk in envelope.samples.chunks(chunk_size.min(envelope.len())) {
            state.compare_chunk_into(chunk, &mut scratch);
            out.extend_from_slice(&scratch);
        }
        assert_eq!(out, batch.bits, "chunk size {chunk_size}");
    }
}

#[test]
fn full_batch_front_end_equals_saw_plus_streamed_chain_on_golden_fixture() {
    // Frontend::process = batch SAW, then the streaming implementations of
    // LNA + shifter run whole-buffer. Recomposing those pieces by hand must
    // reproduce it bit-exactly — the "single source of truth per stage"
    // regression gate.
    let fixture = read_golden(&golden_dir(), "dual_sf7_bw500_k2_shifting").expect("fixture loads");
    let cfg = SaiyanConfig::paper_default(fixture.lora, fixture.variant);
    let fe = Frontend::paper(&cfg);
    let n = (4 * fixture.lora.samples_per_symbol()).min(fixture.trace.len());
    let cut = SampleBuffer::new(
        fixture.trace.samples[..n].to_vec(),
        fixture.trace.sample_rate,
    );
    let batch: RealBuffer = fe.process(&cut);

    let transformed = fe.saw.apply(&cut, fe.carrier);
    let mut lna_state = fe.lna.streaming();
    let mut shifter_state = fe
        .shifter
        .streaming(cut.sample_rate, fe.variant.uses_shifting());
    let mut amplified = Vec::new();
    let mut out = Vec::new();
    lna_state.amplify_chunk_into(&transformed.samples, &mut amplified);
    shifter_state.process_chunk_into(&amplified, &mut out);
    assert_eq!(out, batch.samples);
}
