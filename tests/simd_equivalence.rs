//! Backend-equivalence matrix for every `analog::simd` kernel.
//!
//! The SIMD dispatch contract (`docs/ARCHITECTURE.md` §4) is that every
//! backend computes the *same floating-point expression tree* as the scalar
//! reference, so outputs are bit-identical — not merely close — for every
//! kernel except none at all (the anchored oscillator fast path is also
//! bit-identical, because its wide lanes mirror the scalar recurrence order;
//! the ≤2-ULP allowance the contract grants it is never actually needed).
//! This suite enforces that: each proptest case runs one kernel under every
//! backend the CPU can execute and compares the raw bits against
//! [`Backend::Scalar`], including random chunk partitions for the kernels
//! that carry state across chunks, plus a forced-`SAIYAN_SIMD` child-process
//! smoke test for the env override.

use analog::simd::{self, Backend};
use analog::ComplexFirState;
use lora_phy::iq::Iq;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Every backend the running CPU can execute (always includes `Scalar`,
/// `Portable`, and on x86-64 `Sse2`).
fn backends() -> Vec<Backend> {
    Backend::ALL.into_iter().filter(|b| b.available()).collect()
}

fn bits(x: f64) -> u64 {
    x.to_bits()
}

fn iq_bits(v: &[Iq]) -> Vec<(u64, u64)> {
    v.iter().map(|s| (bits(s.re), bits(s.im))).collect()
}

/// A bounded, sign-mixed f64 that exercises rounding without overflow
/// (hand-rolled: the vendored proptest shim has no `prop_compose!`).
#[derive(Clone, Copy, Debug)]
struct SaneF64;

impl Strategy for SaneF64 {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let m = (-1000.0f64..1000.0).sample(rng);
        let e = (-8i32..8).sample(rng);
        m * 2f64.powi(e)
    }
}

fn sane_f64() -> SaneF64 {
    SaneF64
}

#[derive(Clone, Copy, Debug)]
struct SaneIq;

impl Strategy for SaneIq {
    type Value = Iq;

    fn sample(&self, rng: &mut TestRng) -> Iq {
        Iq::new(SaneF64.sample(rng), SaneF64.sample(rng))
    }
}

fn sane_iq() -> SaneIq {
    SaneIq
}

/// Splits `n` elements into a partition drawn from `cuts` (empty chunks
/// included when a cut repeats).
fn partition_from_cuts(n: usize, cuts: &[usize]) -> Vec<(usize, usize)> {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c % (n + 1)).collect();
    points.push(0);
    points.push(n);
    points.sort_unstable();
    points.windows(2).map(|w| (w[0], w[1])).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `convolve_block` (store and accumulate): every backend bit-identical
    /// to the scalar summation order for any tap count and output count,
    /// including `m` smaller than one lane and `m == 0`.
    #[test]
    fn convolve_matches_scalar(
        taps in collection::vec(sane_iq(), 1..70),
        body in collection::vec(sane_f64(), 0..160),
    ) {
        let l = taps.len();
        let m = body.len();
        let tr: Vec<f64> = taps.iter().map(|t| t.re).collect();
        let ti: Vec<f64> = taps.iter().map(|t| t.im).collect();
        // Workspace: history prefix of zeros + body, as the FIR state lays out.
        let mut buf_re = vec![0.0; l - 1];
        let mut buf_im = vec![0.0; l - 1];
        buf_re.extend(body.iter().copied());
        buf_im.extend(body.iter().map(|x| x * 0.5 - 1.0));
        let mut ref_re = vec![0.1; m];
        let mut ref_im = vec![-0.2; m];
        simd::convolve_block::<true>(Backend::Scalar, &tr, &ti, &buf_re, &buf_im, &mut ref_re, &mut ref_im, m);
        for b in backends() {
            let mut out_re = vec![0.1; m];
            let mut out_im = vec![-0.2; m];
            simd::convolve_block::<true>(b, &tr, &ti, &buf_re, &buf_im, &mut out_re, &mut out_im, m);
            prop_assert_eq!(out_re.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            ref_re.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            "convolve accum re, backend {}", b.name());
            prop_assert_eq!(out_im.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            ref_im.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            "convolve accum im, backend {}", b.name());
            let mut s_re = vec![9.0; m];
            let mut s_im = vec![9.0; m];
            simd::convolve_block::<false>(b, &tr, &ti, &buf_re, &buf_im, &mut s_re, &mut s_im, m);
            let mut r_re = vec![7.0; m];
            let mut r_im = vec![7.0; m];
            simd::convolve_block::<false>(Backend::Scalar, &tr, &ti, &buf_re, &buf_im, &mut r_re, &mut r_im, m);
            prop_assert_eq!(s_re.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            r_re.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            "convolve store re, backend {}", b.name());
            prop_assert_eq!(s_im.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            r_im.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            "convolve store im, backend {}", b.name());
        }
    }

    /// The oscillator fast path (`rotate_chains_into`): every backend runs
    /// the exact scalar phasor recurrence per chain, so agreement is
    /// bit-identical (well inside the ≤2-ULP contract).
    #[test]
    fn rotate_chains_matches_scalar(
        anchors in collection::vec(sane_iq(), 1..20),
        theta in -3.0f64..3.0,
        block in 0usize..70,
    ) {
        let a_re: Vec<f64> = anchors.iter().map(|a| a.re).collect();
        let a_im: Vec<f64> = anchors.iter().map(|a| a.im).collect();
        let (s_im, s_re) = theta.sin_cos();
        let mut reference = vec![0.0; anchors.len() * block];
        simd::rotate_chains_into(Backend::Scalar, &a_re, &a_im, s_re, s_im, block, &mut reference);
        for b in backends() {
            let mut out = vec![0.0; anchors.len() * block];
            simd::rotate_chains_into(b, &a_re, &a_im, s_re, s_im, block, &mut out);
            prop_assert_eq!(out.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            reference.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            "rotate_chains, backend {}", b.name());
        }
    }

    /// The channelizer's anchored-table rotation: bit-identical across
    /// backends, and chunk-invariant (rotating a split of the block with the
    /// matching table slices equals rotating it whole).
    #[test]
    fn rotate_by_table_matches_scalar_and_chunking(
        data in collection::vec(sane_iq(), 0..120),
        anchor in sane_iq(),
        theta in -3.0f64..3.0,
        cuts in collection::vec(0usize..200, 0..4),
    ) {
        let n = data.len();
        let table: Vec<Iq> = (0..n).map(|t| Iq::phasor(theta * t as f64)).collect();
        let mut reference = data.clone();
        simd::rotate_by_table_in_place(Backend::Scalar, &mut reference, anchor, &table);
        for b in backends() {
            let mut whole = data.clone();
            simd::rotate_by_table_in_place(b, &mut whole, anchor, &table);
            prop_assert_eq!(iq_bits(&whole), iq_bits(&reference), "rotate_by_table, backend {}", b.name());
            let mut split = data.clone();
            for &(lo, hi) in &partition_from_cuts(n, &cuts) {
                simd::rotate_by_table_in_place(b, &mut split[lo..hi], anchor, &table[lo..hi]);
            }
            prop_assert_eq!(iq_bits(&split), iq_bits(&reference), "rotate_by_table split, backend {}", b.name());
        }
    }

    /// Elementwise mixer/envelope/LNA kernels: bit-identical per backend.
    #[test]
    fn elementwise_kernels_match_scalar(
        samples in collection::vec(sane_iq(), 0..130),
        clock_seed in collection::vec(-1.0f64..1.0, 0..130),
        feedthrough in sane_f64(),
        gain in sane_f64(),
        dc in sane_f64(),
    ) {
        let n = samples.len().min(clock_seed.len());
        let samples = &samples[..n];
        let clock = &clock_seed[..n];
        for b in backends() {
            // RF mixer.
            let mut reference = Vec::new();
            simd::rf_mix_into(Backend::Scalar, samples, clock, feedthrough, gain, &mut reference);
            let mut out = Vec::new();
            simd::rf_mix_into(b, samples, clock, feedthrough, gain, &mut out);
            prop_assert_eq!(iq_bits(&out), iq_bits(&reference), "rf_mix, backend {}", b.name());
            // Baseband mixer.
            let mut reference: Vec<f64> = samples.iter().map(|s| s.re).collect();
            simd::bb_mix_in_place(Backend::Scalar, &mut reference, clock, gain);
            let mut data: Vec<f64> = samples.iter().map(|s| s.re).collect();
            simd::bb_mix_in_place(b, &mut data, clock, gain);
            prop_assert_eq!(data.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            reference.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            "bb_mix, backend {}", b.name());
            // Envelope (noiseless square law).
            let mut reference = Vec::new();
            simd::envelope_noiseless_into(Backend::Scalar, samples, gain, dc, &mut reference);
            let mut out = Vec::new();
            simd::envelope_noiseless_into(b, samples, gain, dc, &mut out);
            prop_assert_eq!(out.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            reference.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            "envelope, backend {}", b.name());
            // LNA quiet path (compression amplitude low enough that both
            // branches — pass-through and scalar tanh patch — are taken).
            let mut reference = Vec::new();
            simd::lna_quiet_into(Backend::Scalar, samples, 2.0, 800.0, &mut reference);
            let mut out = Vec::new();
            simd::lna_quiet_into(b, samples, 2.0, 800.0, &mut out);
            prop_assert_eq!(iq_bits(&out), iq_bits(&reference), "lna, backend {}", b.name());
        }
    }

    /// Split-complex de/interleave: pure data movement, bit-identical, and
    /// append semantics preserved (existing plane contents untouched).
    #[test]
    fn deinterleave_interleave_match_scalar(
        samples in collection::vec(sane_iq(), 0..130),
        prefix in collection::vec(sane_f64(), 0..9),
    ) {
        for b in backends() {
            let mut re = prefix.clone();
            let mut im = prefix.clone();
            simd::deinterleave_extend(b, &samples, &mut re, &mut im);
            let mut ref_re = prefix.clone();
            let mut ref_im = prefix.clone();
            simd::deinterleave_extend(Backend::Scalar, &samples, &mut ref_re, &mut ref_im);
            prop_assert_eq!(re.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            ref_re.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            "deinterleave re, backend {}", b.name());
            prop_assert_eq!(im.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            ref_im.iter().map(|&x| bits(x)).collect::<Vec<_>>(),
                            "deinterleave im, backend {}", b.name());
            // Round trip back through interleave_extend.
            let mut round = vec![Iq::new(3.0, 4.0)];
            simd::interleave_extend(b, &re[prefix.len()..], &im[prefix.len()..], &mut round);
            prop_assert_eq!(iq_bits(&round[1..]), iq_bits(&samples), "interleave, backend {}", b.name());
            prop_assert_eq!(iq_bits(&round[..1]), iq_bits(&[Iq::new(3.0, 4.0)]), "interleave prefix, backend {}", b.name());
        }
    }

    /// Double-threshold comparator scan: identical decisions and final state
    /// per backend, for whole buffers and across random chunk partitions
    /// with the hysteresis state threaded through.
    #[test]
    fn hysteresis_matches_scalar_and_chunking(
        values in collection::vec(-2.0f64..2.0, 0..200),
        high in 0.0f64..1.0,
        margin in 0.0f64..1.0,
        start in any::<bool>(),
        cuts in collection::vec(0usize..300, 0..4),
    ) {
        let low = high - margin;
        let mut reference = Vec::new();
        let ref_state = simd::hysteresis_scan(Backend::Scalar, &values, high, low, start, &mut reference);
        for b in backends() {
            let mut out = Vec::new();
            let state = simd::hysteresis_scan(b, &values, high, low, start, &mut out);
            prop_assert_eq!(&out, &reference, "hysteresis, backend {}", b.name());
            prop_assert_eq!(state, ref_state, "hysteresis state, backend {}", b.name());
            // Random partition with carried state.
            let mut split = Vec::new();
            let mut st = start;
            for &(lo, hi) in &partition_from_cuts(values.len(), &cuts) {
                st = simd::hysteresis_scan(b, &values[lo..hi], high, low, st, &mut split);
            }
            prop_assert_eq!(&split, &reference, "hysteresis split, backend {}", b.name());
            prop_assert_eq!(st, ref_state, "hysteresis split state, backend {}", b.name());
            // Word-mask variant against per-sample thresholds.
            let highs = vec![high; values.len()];
            let lows = vec![low; values.len()];
            let mut words = Vec::new();
            let wstate = simd::hysteresis_words(b, &values, &highs, &lows, start, &mut words);
            prop_assert_eq!(wstate, ref_state, "hysteresis_words state, backend {}", b.name());
            for (i, &decision) in reference.iter().enumerate() {
                let bit = (words[i / 64] >> (i % 64)) & 1 == 1;
                prop_assert_eq!(bit, decision, "hysteresis_words bit {}, backend {}", i, b.name());
            }
        }
    }

    /// The full FIR state over random chunk partitions reproduces the
    /// per-sample scalar reference (`push_and_convolve`) bit-exactly under
    /// the active backend — the stage-level face of the kernel contract.
    #[test]
    fn fir_chunking_matches_push_reference(
        taps in collection::vec(sane_iq(), 1..40),
        input in collection::vec(sane_iq(), 0..150),
        cuts in collection::vec(0usize..200, 0..5),
    ) {
        let mut reference_state = ComplexFirState::new(taps.clone());
        let reference: Vec<Iq> = input.iter().map(|&x| reference_state.push_and_convolve(x)).collect();
        let mut chunked = ComplexFirState::new(taps);
        let mut got = Vec::new();
        let mut scratch = Vec::new();
        for &(lo, hi) in &partition_from_cuts(input.len(), &cuts) {
            chunked.filter_chunk_into(&input[lo..hi], &mut scratch);
            got.extend_from_slice(&scratch);
        }
        prop_assert_eq!(iq_bits(&got), iq_bits(&reference));
    }
}

/// Forced-backend smoke test: respawns this test binary once per available
/// backend with `SAIYAN_SIMD` set, and the child asserts the dispatcher
/// honoured the override.
#[test]
fn forced_backend_env_override() {
    if std::env::var("SIMD_EQUIVALENCE_CHILD").is_ok() {
        let want = std::env::var(simd::BACKEND_ENV).expect("child has the override set");
        let report = simd::simd_report();
        assert_eq!(
            report.backend,
            want,
            "dispatcher ignored {}",
            simd::BACKEND_ENV
        );
        assert!(report.forced, "override not reported as forced");
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    for b in backends() {
        let status = std::process::Command::new(&exe)
            .args(["forced_backend_env_override", "--exact"])
            .env("SIMD_EQUIVALENCE_CHILD", "1")
            .env(simd::BACKEND_ENV, b.name())
            .status()
            .expect("spawn child test");
        assert!(status.success(), "forced backend {:?} failed", b.name());
    }
}
