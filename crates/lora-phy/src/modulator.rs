//! LoRa packet modulator.
//!
//! Produces the complex-baseband waveform of a complete LoRa transmission:
//! a preamble of identical up-chirps, a 2.25-symbol sync/SFD section, and the
//! payload chirps. Both the standard uplink alphabet (`2^SF` symbols) and the
//! Saiyan downlink alphabet (`2^K` symbols) are supported.

use crate::chirp::{ChirpDirection, ChirpGenerator};
use crate::error::PhyError;
use crate::iq::SampleBuffer;
use crate::params::{LoraParams, PREAMBLE_UPCHIRPS};

/// Which symbol alphabet the payload uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alphabet {
    /// Standard LoRa: `2^SF` symbols per chirp.
    Standard,
    /// Saiyan downlink: `2^K` symbols per chirp (K = bits per chirp).
    Downlink,
}

/// Structural description of a modulated packet, useful for tests and for
/// receivers that need ground truth about where the payload starts.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketLayout {
    /// Number of preamble up-chirps.
    pub preamble_symbols: usize,
    /// Number of waveform samples occupied by the preamble.
    pub preamble_samples: usize,
    /// Number of waveform samples occupied by the sync/SFD section.
    pub sync_samples: usize,
    /// Number of payload symbols.
    pub payload_symbols: usize,
    /// Sample index where the payload begins.
    pub payload_start: usize,
    /// Total number of samples.
    pub total_samples: usize,
}

/// LoRa packet modulator.
#[derive(Debug, Clone)]
pub struct Modulator {
    params: LoraParams,
    generator: ChirpGenerator,
}

impl Modulator {
    /// Creates a modulator for the given parameters.
    pub fn new(params: LoraParams) -> Self {
        Modulator {
            generator: ChirpGenerator::new(params),
            params,
        }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &LoraParams {
        &self.params
    }

    /// The underlying chirp generator.
    pub fn generator(&self) -> &ChirpGenerator {
        &self.generator
    }

    /// Modulates the preamble: [`PREAMBLE_UPCHIRPS`] identical base up-chirps.
    pub fn preamble(&self) -> SampleBuffer {
        let base = self.generator.base_upchirp();
        let mut out = SampleBuffer::new(Vec::new(), base.sample_rate);
        for _ in 0..PREAMBLE_UPCHIRPS {
            out.append(&base);
        }
        out
    }

    /// Modulates the sync section: 2 down-chirps plus a quarter down-chirp
    /// (the 2.25 symbols the paper's decoder waits out, Fig. 8).
    pub fn sync(&self) -> SampleBuffer {
        let down = self.generator.base_downchirp();
        let mut out = SampleBuffer::new(Vec::new(), down.sample_rate);
        out.append(&down);
        out.append(&down);
        let quarter = down.samples.len() / 4;
        let q = SampleBuffer::new(down.samples[..quarter].to_vec(), down.sample_rate);
        out.append(&q);
        out
    }

    /// Modulates a sequence of payload symbols using the chosen alphabet.
    pub fn payload(&self, symbols: &[u32], alphabet: Alphabet) -> Result<SampleBuffer, PhyError> {
        let fs = self.params.sample_rate();
        let mut out = SampleBuffer::new(Vec::new(), fs);
        for &sym in symbols {
            let chirp = match alphabet {
                Alphabet::Standard => self.generator.symbol_chirp(sym, ChirpDirection::Up)?,
                Alphabet::Downlink => self.generator.downlink_chirp(sym)?,
            };
            out.append(&chirp);
        }
        Ok(out)
    }

    /// Modulates a complete packet (preamble + sync + payload) and returns the
    /// waveform together with its layout.
    pub fn packet(
        &self,
        symbols: &[u32],
        alphabet: Alphabet,
    ) -> Result<(SampleBuffer, PacketLayout), PhyError> {
        let preamble = self.preamble();
        let sync = self.sync();
        let payload = self.payload(symbols, alphabet)?;

        let layout = PacketLayout {
            preamble_symbols: PREAMBLE_UPCHIRPS,
            preamble_samples: preamble.len(),
            sync_samples: sync.len(),
            payload_symbols: symbols.len(),
            payload_start: preamble.len() + sync.len(),
            total_samples: preamble.len() + sync.len() + payload.len(),
        };

        let mut wave = preamble;
        wave.append(&sync);
        wave.append(&payload);
        Ok((wave, layout))
    }

    /// Modulates a packet and prepends/appends `guard_symbols` of silence on
    /// each side, which is how most experiments feed the channel model.
    pub fn packet_with_guard(
        &self,
        symbols: &[u32],
        alphabet: Alphabet,
        guard_symbols: usize,
    ) -> Result<(SampleBuffer, PacketLayout), PhyError> {
        let (wave, mut layout) = self.packet(symbols, alphabet)?;
        let guard_len = guard_symbols * self.params.samples_per_symbol();
        let fs = wave.sample_rate;
        let mut out = SampleBuffer::zeros(guard_len, fs);
        out.append(&wave);
        out.append(&SampleBuffer::zeros(guard_len, fs));
        layout.payload_start += guard_len;
        layout.total_samples = out.len();
        Ok((out, layout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bandwidth, BitsPerChirp, SpreadingFactor};

    fn params() -> LoraParams {
        LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(2).unwrap(),
        )
    }

    #[test]
    fn preamble_length() {
        let m = Modulator::new(params());
        let p = m.preamble();
        assert_eq!(p.len(), PREAMBLE_UPCHIRPS * params().samples_per_symbol());
    }

    #[test]
    fn sync_is_2_25_symbols() {
        let m = Modulator::new(params());
        let s = m.sync();
        let sps = params().samples_per_symbol();
        assert_eq!(s.len(), 2 * sps + sps / 4);
    }

    #[test]
    fn packet_layout_is_consistent() {
        let m = Modulator::new(params());
        let symbols = vec![0, 1, 2, 3];
        let (wave, layout) = m.packet(&symbols, Alphabet::Downlink).unwrap();
        assert_eq!(wave.len(), layout.total_samples);
        assert_eq!(
            layout.payload_start,
            layout.preamble_samples + layout.sync_samples
        );
        assert_eq!(layout.payload_symbols, 4);
        let expected_payload = 4 * params().samples_per_symbol();
        assert_eq!(
            layout.total_samples - layout.payload_start,
            expected_payload
        );
    }

    #[test]
    fn guard_offsets_payload_start() {
        let m = Modulator::new(params());
        let (wave, layout) = m.packet_with_guard(&[0, 1], Alphabet::Downlink, 3).unwrap();
        let guard = 3 * params().samples_per_symbol();
        assert_eq!(wave.len(), layout.total_samples);
        assert!(layout.payload_start > guard);
        // The guard sections must be silent.
        assert!(wave.samples[..guard].iter().all(|s| s.abs() == 0.0));
    }

    #[test]
    fn invalid_symbol_rejected() {
        let m = Modulator::new(params());
        assert!(m.payload(&[4], Alphabet::Downlink).is_err());
        assert!(m.payload(&[200], Alphabet::Standard).is_err());
    }

    #[test]
    fn waveform_is_constant_envelope() {
        let m = Modulator::new(params());
        let (wave, _) = m.packet(&[0, 3, 1, 2], Alphabet::Downlink).unwrap();
        for s in &wave.samples {
            assert!((s.abs() - 1.0).abs() < 1e-9);
        }
    }
}
