//! Runtime-dispatched SIMD kernels for the DSP hot loops.
//!
//! The streaming receiver spends almost all of its cycles in three loops: the
//! split-complex FIR / polyphase inner product (`analog::fir`), the
//! oscillator/mixer chain of the frequency shifter (`analog::oscillator`,
//! `analog::mixer`) and the envelope + double-threshold comparator scan
//! (`analog::envelope`, `analog::comparator`). Each of those stages keeps
//! its original scalar implementation **verbatim** as the golden reference and
//! forwards to a kernel in this module when a wide backend is active. The
//! module lives here — at the bottom of the crate graph — so the noise and
//! waveform-synthesis hot loops in `rfsim`/`netsim` and the serving layer's
//! ingest path dispatch through the same backend selection; `analog::simd`
//! re-exports it under its original path.
//!
//! # Backend selection
//!
//! A backend is selected once per process, on first use:
//!
//! 1. If the [`BACKEND_ENV`] environment variable (`SAIYAN_SIMD`) is set to
//!    `scalar`, `portable`, `sse2`, `avx2` or `avx512`, that backend is forced
//!    (and the process panics early if the CPU cannot run it — a forced
//!    backend silently falling back would defeat its testing purpose).
//! 2. Otherwise the widest backend the CPU supports is picked via
//!    `is_x86_feature_detected!`: AVX-512F → AVX2 → SSE2 on `x86_64`, and the
//!    portable tile everywhere else.
//!
//! [`simd_report`] exposes the decision (backend name, f64 lane count,
//! whether it was forced) so benchmark snapshots can record the ISA they were
//! measured on.
//!
//! # The summation-order contract
//!
//! Every kernel here is **bit-identical** to its scalar reference, for any
//! input and any chunking. That is only possible because the scalar kernels
//! fix a per-output operation order that is independent of how many outputs
//! are computed at once:
//!
//! * The FIR tile (`analog::fir`) accumulates each output into **two partial
//!   sums by tap parity** (`ar0`/`ar1`), adds an odd trailing tap into partial
//!   0, and finishes with `ar0 + ar1`. A wide backend computes `LANES` outputs
//!   per tile with output `q` living in lane `q`; the per-lane order of
//!   multiplies, subtracts and adds is exactly the scalar order, so lane width
//!   does not change a single rounding. Fused multiply-add is **forbidden**
//!   everywhere in this module — an FMA contracts two roundings into one and
//!   breaks the contract.
//! * The phasor recurrence re-anchors on a fixed 256-sample absolute grid
//!   (`analog::oscillator`), which makes consecutive blocks independent
//!   rotation chains; a wide backend runs `LANES` chains in parallel, one per
//!   lane, each performing the scalar rotation sequence.
//! * Elementwise stages (mixers, noiseless envelope) use the scalar's exact
//!   per-sample expression tree per lane.
//! * The comparator's hysteresis bit `s_n = (v_n ≥ U_H) | ((v_n ≥ U_L) & s_{n-1})`
//!   is resolved per 64-sample word from two vector-compare masks with a
//!   log-step carry (Kogge–Stone) chain — no per-sample branch, identical
//!   booleans.
//!
//! # Adding a lane width
//!
//! Implement the tile shape for the new width (see the `convolve_*` kernels:
//! broadcast tap, load `LANES` contiguous samples per parity, `add(acc,
//! sub(mul, mul))`), keep the scalar-order tail for `m % LANES` outputs, add
//! the variant to [`Backend`] with its feature detection, and extend the
//! `tests/simd_equivalence.rs` matrix — the proptests there are
//! backend-parametric and will pin the new width against the scalar reference
//! automatically.

use crate::iq::Iq;
use std::sync::OnceLock;

/// Environment variable that forces a specific kernel backend
/// (`scalar` | `portable` | `sse2` | `avx2` | `avx512`).
pub const BACKEND_ENV: &str = "SAIYAN_SIMD";

/// A kernel backend. `Scalar` means "use the stage's original loop"; the
/// others select a wide implementation in this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The original per-stage scalar loops (the golden reference).
    Scalar,
    /// The portable fixed-width tile ([`F64x4`]/[`F32x8`]): plain arrays the
    /// autovectorizer widens, available on every architecture.
    Portable,
    /// `std::arch` SSE2 intrinsics, 2 × f64 lanes (x86-64 baseline).
    Sse2,
    /// `std::arch` AVX2 intrinsics, 4 × f64 lanes.
    Avx2,
    /// `std::arch` AVX-512F intrinsics, 8 × f64 lanes.
    Avx512,
}

impl Backend {
    /// Every backend, in widening order. Used by the equivalence-test matrix.
    pub const ALL: [Backend; 5] = [
        Backend::Scalar,
        Backend::Portable,
        Backend::Sse2,
        Backend::Avx2,
        Backend::Avx512,
    ];

    /// Stable lower-case name, matching the [`BACKEND_ENV`] syntax.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Portable => "portable",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
        }
    }

    /// Number of `f64` lanes a convolution tile computes at once.
    pub fn f64_lanes(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Sse2 => 2,
            Backend::Portable | Backend::Avx2 => 4,
            Backend::Avx512 => 8,
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn available(self) -> bool {
        match self {
            Backend::Scalar | Backend::Portable => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => true, // architectural baseline on x86-64
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "portable" => Some(Backend::Portable),
            "sse2" => Some(Backend::Sse2),
            "avx2" => Some(Backend::Avx2),
            "avx512" => Some(Backend::Avx512),
            _ => None,
        }
    }
}

fn best_available() -> Backend {
    for b in [Backend::Avx512, Backend::Avx2, Backend::Sse2] {
        if b.available() {
            return b;
        }
    }
    Backend::Portable
}

fn selection() -> (Backend, bool) {
    static SEL: OnceLock<(Backend, bool)> = OnceLock::new();
    *SEL.get_or_init(|| match std::env::var(BACKEND_ENV) {
        Ok(v) => {
            let b = Backend::parse(&v).unwrap_or_else(|| {
                panic!("{BACKEND_ENV}={v:?}: expected scalar|portable|sse2|avx2|avx512")
            });
            assert!(
                b.available(),
                "{BACKEND_ENV}={v:?}: backend {} is not available on this CPU",
                b.name()
            );
            (b, true)
        }
        Err(_) => (best_available(), false),
    })
}

/// The backend every dispatching stage uses, selected once per process
/// (environment override first, then CPU feature detection).
pub fn active_backend() -> Backend {
    selection().0
}

/// How the active backend was chosen, for bench/experiment metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdReport {
    /// Stable name of the selected backend (`"avx512"`, `"scalar"`, …).
    pub backend: &'static str,
    /// `f64` lanes per convolution tile for that backend.
    pub f64_lanes: usize,
    /// `true` when the backend was forced via [`BACKEND_ENV`] rather than
    /// auto-detected.
    pub forced: bool,
}

/// Reports the selected backend (triggering selection if it has not run yet).
pub fn simd_report() -> SimdReport {
    let (backend, forced) = selection();
    SimdReport {
        backend: backend.name(),
        f64_lanes: backend.f64_lanes(),
        forced,
    }
}

impl std::fmt::Display for SimdReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} x f64, {})",
            self.backend,
            self.f64_lanes,
            if self.forced { "forced" } else { "auto" }
        )
    }
}

// ---------------------------------------------------------------------------
// Portable tile abstraction
// ---------------------------------------------------------------------------

/// A fixed-width lane tile: the portable backend's unit of work.
///
/// Implementations are plain arrays with elementwise ops written so LLVM can
/// widen them on any target; the `std::arch` backends replace the whole tile
/// loop with intrinsics instead of going through this trait.
pub trait Tile: Copy {
    /// Element type of one lane.
    type Elem: Copy;
    /// Lane count.
    const LANES: usize;
    /// Broadcasts one value into every lane.
    fn splat(x: Self::Elem) -> Self;
    /// Loads `LANES` consecutive elements (panics if `src` is shorter).
    fn load(src: &[Self::Elem]) -> Self;
    /// Stores `LANES` consecutive elements (panics if `dst` is shorter).
    fn store(self, dst: &mut [Self::Elem]);
    /// Lanewise addition.
    fn add(self, rhs: Self) -> Self;
    /// Lanewise subtraction.
    fn sub(self, rhs: Self) -> Self;
    /// Lanewise multiplication.
    fn mul(self, rhs: Self) -> Self;
}

macro_rules! array_tile {
    ($name:ident, $elem:ty, $lanes:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub struct $name(pub [$elem; $lanes]);

        impl Tile for $name {
            type Elem = $elem;
            const LANES: usize = $lanes;
            #[inline(always)]
            fn splat(x: $elem) -> Self {
                $name([x; $lanes])
            }
            #[inline(always)]
            fn load(src: &[$elem]) -> Self {
                let mut out = [0.0; $lanes];
                out.copy_from_slice(&src[..$lanes]);
                $name(out)
            }
            #[inline(always)]
            fn store(self, dst: &mut [$elem]) {
                dst[..$lanes].copy_from_slice(&self.0);
            }
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
                    *o += *r;
                }
                $name(out)
            }
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
                    *o -= *r;
                }
                $name(out)
            }
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
                    *o *= *r;
                }
                $name(out)
            }
        }
    };
}

array_tile!(
    F64x4,
    f64,
    4,
    "Four `f64` lanes — the portable backend's double-precision tile."
);
array_tile!(
    F32x8,
    f32,
    8,
    "Eight `f32` lanes — the portable single-precision tile (same width in \
     bytes as [`F64x4`]; provided for future f32 pipelines)."
);

/// Reinterprets a slice of [`Iq`] as its interleaved `re,im,re,im,…` lanes.
/// Sound because `Iq` is `repr(C)` over two `f64`s.
#[inline]
pub fn iq_lanes(samples: &[Iq]) -> &[f64] {
    // SAFETY: Iq is repr(C) { re: f64, im: f64 } — size 16, align 8, no
    // padding — so n samples are exactly 2n contiguous f64s.
    unsafe { std::slice::from_raw_parts(samples.as_ptr().cast::<f64>(), samples.len() * 2) }
}

/// Mutable variant of [`iq_lanes`].
#[inline]
pub fn iq_lanes_mut(samples: &mut [Iq]) -> &mut [f64] {
    // SAFETY: see iq_lanes.
    unsafe { std::slice::from_raw_parts_mut(samples.as_mut_ptr().cast::<f64>(), samples.len() * 2) }
}

// ---------------------------------------------------------------------------
// Split-complex convolution
// ---------------------------------------------------------------------------

/// One output in the scalar reference order: two partials by tap parity, odd
/// trailing tap into partial 0, `partial0 + partial1` at the end. This is the
/// same order as `fir::dot_window` and is used for every `m % LANES` tail.
#[inline]
fn dot_scalar_order(tr: &[f64], ti: &[f64], wr: &[f64], wi: &[f64]) -> (f64, f64) {
    let l = tr.len();
    let mut ar = [0.0f64; 2];
    let mut ai = [0.0f64; 2];
    let mut j = 0usize;
    while j + 2 <= l {
        for p in 0..2 {
            let t_re = tr[j + p];
            let t_im = ti[j + p];
            let s_re = wr[j + p];
            let s_im = wi[j + p];
            ar[p] += t_re * s_re - t_im * s_im;
            ai[p] += t_re * s_im + t_im * s_re;
        }
        j += 2;
    }
    if j < l {
        let (t_re, t_im, s_re, s_im) = (tr[j], ti[j], wr[j], wi[j]);
        ar[0] += t_re * s_re - t_im * s_im;
        ai[0] += t_re * s_im + t_im * s_re;
    }
    (ar[0] + ar[1], ai[0] + ai[1])
}

#[inline]
fn store_or_accum<const ACCUM: bool>(slot_re: &mut f64, slot_im: &mut f64, re: f64, im: f64) {
    if ACCUM {
        *slot_re += re;
        *slot_im += im;
    } else {
        *slot_re = re;
        *slot_im = im;
    }
}

/// `m` consecutive outputs of the split-complex convolution, output `i`
/// reading `buf[i .. i + taps]`, dispatched to `backend`'s tile. With `ACCUM`
/// the results are added to the output planes instead of stored (the
/// polyphase decimator's cross-phase fold).
///
/// Bit-identical to the scalar tile in `fir.rs` for every backend; the caller
/// keeps using its own scalar loop for [`Backend::Scalar`], but this function
/// accepts it too (running the scalar-order tail over all outputs).
///
/// # Panics
///
/// If the workspace planes are shorter than `m - 1 + taps` or the output
/// planes shorter than `m`.
#[allow(clippy::too_many_arguments)]
pub fn convolve_block<const ACCUM: bool>(
    backend: Backend,
    tr: &[f64],
    ti: &[f64],
    buf_re: &[f64],
    buf_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    m: usize,
) {
    let l = tr.len();
    assert_eq!(ti.len(), l);
    if m == 0 {
        return;
    }
    assert!(buf_re.len() >= m - 1 + l && buf_im.len() >= m - 1 + l);
    assert!(out_re.len() >= m && out_im.len() >= m);
    let m_wide = match backend {
        Backend::Scalar => 0,
        Backend::Portable => {
            let mw = m & !(F64x4::LANES - 1);
            convolve_tiles::<F64x4, ACCUM>(tr, ti, buf_re, buf_im, out_re, out_im, mw);
            mw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => {
            let mw = m & !1;
            // SAFETY: SSE2 is the x86-64 baseline; bounds asserted above.
            unsafe { convolve_sse2::<ACCUM>(tr, ti, buf_re, buf_im, out_re, out_im, mw) };
            mw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            let mw = m & !3;
            // SAFETY: the backend is only selected when AVX2 is detected;
            // bounds asserted above.
            unsafe { convolve_avx2::<ACCUM>(tr, ti, buf_re, buf_im, out_re, out_im, mw) };
            mw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => {
            let mw = m & !7;
            // SAFETY: the backend is only selected when AVX-512F is detected;
            // bounds asserted above.
            unsafe { convolve_avx512::<ACCUM>(tr, ti, buf_re, buf_im, out_re, out_im, mw) };
            mw
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => 0,
    };
    for i in m_wide..m {
        let (re, im) = dot_scalar_order(tr, ti, &buf_re[i..i + l], &buf_im[i..i + l]);
        store_or_accum::<ACCUM>(&mut out_re[i], &mut out_im[i], re, im);
    }
}

/// The tile loop over the portable abstraction: `T::LANES` outputs per tile,
/// scalar summation order per lane.
fn convolve_tiles<T: Tile<Elem = f64>, const ACCUM: bool>(
    tr: &[f64],
    ti: &[f64],
    buf_re: &[f64],
    buf_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    m_wide: usize,
) {
    let l = tr.len();
    let l2 = l & !1;
    let mut i = 0usize;
    while i < m_wide {
        let mut ar0 = T::splat(0.0);
        let mut ar1 = T::splat(0.0);
        let mut ai0 = T::splat(0.0);
        let mut ai1 = T::splat(0.0);
        let mut j = 0usize;
        while j < l2 {
            {
                let t_re = T::splat(tr[j]);
                let t_im = T::splat(ti[j]);
                let s_re = T::load(&buf_re[i + j..]);
                let s_im = T::load(&buf_im[i + j..]);
                ar0 = ar0.add(t_re.mul(s_re).sub(t_im.mul(s_im)));
                ai0 = ai0.add(t_re.mul(s_im).add(t_im.mul(s_re)));
            }
            {
                let t_re = T::splat(tr[j + 1]);
                let t_im = T::splat(ti[j + 1]);
                let s_re = T::load(&buf_re[i + j + 1..]);
                let s_im = T::load(&buf_im[i + j + 1..]);
                ar1 = ar1.add(t_re.mul(s_re).sub(t_im.mul(s_im)));
                ai1 = ai1.add(t_re.mul(s_im).add(t_im.mul(s_re)));
            }
            j += 2;
        }
        if j < l {
            let t_re = T::splat(tr[j]);
            let t_im = T::splat(ti[j]);
            let s_re = T::load(&buf_re[i + j..]);
            let s_im = T::load(&buf_im[i + j..]);
            ar0 = ar0.add(t_re.mul(s_re).sub(t_im.mul(s_im)));
            ai0 = ai0.add(t_re.mul(s_im).add(t_im.mul(s_re)));
        }
        let res_re = ar0.add(ar1);
        let res_im = ai0.add(ai1);
        if ACCUM {
            let prev_re = T::load(&out_re[i..]);
            let prev_im = T::load(&out_im[i..]);
            prev_re.add(res_re).store(&mut out_re[i..]);
            prev_im.add(res_im).store(&mut out_im[i..]);
        } else {
            res_re.store(&mut out_re[i..]);
            res_im.store(&mut out_im[i..]);
        }
        i += T::LANES;
    }
}

/// Generates one `std::arch` convolution kernel: the same tile loop as
/// [`convolve_tiles`] with the lane ops spelled as intrinsics (broadcast tap,
/// unaligned lane load per parity, `add(acc, sub(mul, mul))` — never FMA).
#[cfg(target_arch = "x86_64")]
macro_rules! x86_convolve {
    ($name:ident, $feature:literal, $lanes:expr, $vec:ty,
     $set1:ident, $loadu:ident, $storeu:ident, $add:ident, $sub:ident, $mul:ident) => {
        #[target_feature(enable = $feature)]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $name<const ACCUM: bool>(
            tr: &[f64],
            ti: &[f64],
            buf_re: &[f64],
            buf_im: &[f64],
            out_re: &mut [f64],
            out_im: &mut [f64],
            m_wide: usize,
        ) {
            use std::arch::x86_64::*;
            let l = tr.len();
            let l2 = l & !1;
            let br = buf_re.as_ptr();
            let bi = buf_im.as_ptr();
            let or = out_re.as_mut_ptr();
            let oi = out_im.as_mut_ptr();
            let mut i = 0usize;
            while i < m_wide {
                let mut ar0: $vec = $set1(0.0);
                let mut ar1: $vec = $set1(0.0);
                let mut ai0: $vec = $set1(0.0);
                let mut ai1: $vec = $set1(0.0);
                let mut j = 0usize;
                while j < l2 {
                    {
                        let t_re = $set1(*tr.get_unchecked(j));
                        let t_im = $set1(*ti.get_unchecked(j));
                        let s_re = $loadu(br.add(i + j));
                        let s_im = $loadu(bi.add(i + j));
                        ar0 = $add(ar0, $sub($mul(t_re, s_re), $mul(t_im, s_im)));
                        ai0 = $add(ai0, $add($mul(t_re, s_im), $mul(t_im, s_re)));
                    }
                    {
                        let t_re = $set1(*tr.get_unchecked(j + 1));
                        let t_im = $set1(*ti.get_unchecked(j + 1));
                        let s_re = $loadu(br.add(i + j + 1));
                        let s_im = $loadu(bi.add(i + j + 1));
                        ar1 = $add(ar1, $sub($mul(t_re, s_re), $mul(t_im, s_im)));
                        ai1 = $add(ai1, $add($mul(t_re, s_im), $mul(t_im, s_re)));
                    }
                    j += 2;
                }
                if j < l {
                    let t_re = $set1(*tr.get_unchecked(j));
                    let t_im = $set1(*ti.get_unchecked(j));
                    let s_re = $loadu(br.add(i + j));
                    let s_im = $loadu(bi.add(i + j));
                    ar0 = $add(ar0, $sub($mul(t_re, s_re), $mul(t_im, s_im)));
                    ai0 = $add(ai0, $add($mul(t_re, s_im), $mul(t_im, s_re)));
                }
                let mut res_re = $add(ar0, ar1);
                let mut res_im = $add(ai0, ai1);
                if ACCUM {
                    res_re = $add($loadu(or.add(i)), res_re);
                    res_im = $add($loadu(oi.add(i)), res_im);
                }
                $storeu(or.add(i), res_re);
                $storeu(oi.add(i), res_im);
                i += $lanes;
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
x86_convolve!(
    convolve_sse2,
    "sse2",
    2,
    std::arch::x86_64::__m128d,
    _mm_set1_pd,
    _mm_loadu_pd,
    _mm_storeu_pd,
    _mm_add_pd,
    _mm_sub_pd,
    _mm_mul_pd
);
#[cfg(target_arch = "x86_64")]
x86_convolve!(
    convolve_avx2,
    "avx2",
    4,
    std::arch::x86_64::__m256d,
    _mm256_set1_pd,
    _mm256_loadu_pd,
    _mm256_storeu_pd,
    _mm256_add_pd,
    _mm256_sub_pd,
    _mm256_mul_pd
);
#[cfg(target_arch = "x86_64")]
x86_convolve!(
    convolve_avx512,
    "avx512f",
    8,
    std::arch::x86_64::__m512d,
    _mm512_set1_pd,
    _mm512_loadu_pd,
    _mm512_storeu_pd,
    _mm512_add_pd,
    _mm512_sub_pd,
    _mm512_mul_pd
);

// ---------------------------------------------------------------------------
// Phasor rotation chains (oscillator fast path)
// ---------------------------------------------------------------------------

/// Runs `anchors.len()` independent phasor rotation chains of `block` samples
/// each, writing the cosine (real) component: `out[c * block + t]` receives
/// chain `c`'s value after `t` rotations of its anchor.
///
/// Per chain the operation sequence is exactly the scalar recurrence in
/// `Oscillator::values_into_recurrence` — emit `z.re`, then
/// `z ← (z.re·step_re − z.im·step_im, z.re·step_im + z.im·step_re)` — so any
/// lane width is bit-identical to the scalar chain.
///
/// # Panics
///
/// If `anchor_re`/`anchor_im` lengths differ or `out` is shorter than
/// `anchors.len() * block`.
pub fn rotate_chains_into(
    backend: Backend,
    anchor_re: &[f64],
    anchor_im: &[f64],
    step_re: f64,
    step_im: f64,
    block: usize,
    out: &mut [f64],
) {
    let chains = anchor_re.len();
    assert_eq!(anchor_im.len(), chains);
    assert!(out.len() >= chains * block);
    let wide = match backend {
        Backend::Scalar => 0,
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if Backend::Avx2.available() => {
            let cw = chains & !3;
            // SAFETY: AVX2 availability checked in the guard; bounds above.
            unsafe {
                rotate_chains_avx2(
                    &anchor_re[..cw],
                    &anchor_im[..cw],
                    step_re,
                    step_im,
                    block,
                    out,
                )
            };
            cw
        }
        _ => {
            let cw = chains & !3;
            rotate_chains_portable(
                &anchor_re[..cw],
                &anchor_im[..cw],
                step_re,
                step_im,
                block,
                out,
            );
            cw
        }
    };
    // Remaining chains: the scalar rotation, one chain at a time.
    for c in wide..chains {
        let mut z_re = anchor_re[c];
        let mut z_im = anchor_im[c];
        for t in 0..block {
            out[c * block + t] = z_re;
            let re = z_re * step_re - z_im * step_im;
            z_im = z_re * step_im + z_im * step_re;
            z_re = re;
        }
    }
}

/// Four chains per tile on the portable abstraction.
fn rotate_chains_portable(
    anchor_re: &[f64],
    anchor_im: &[f64],
    step_re: f64,
    step_im: f64,
    block: usize,
    out: &mut [f64],
) {
    let sre = F64x4::splat(step_re);
    let sim = F64x4::splat(step_im);
    for g in (0..anchor_re.len()).step_by(4) {
        let mut z_re = F64x4::load(&anchor_re[g..]);
        let mut z_im = F64x4::load(&anchor_im[g..]);
        for t in 0..block {
            for lane in 0..4 {
                out[(g + lane) * block + t] = z_re.0[lane];
            }
            let re = z_re.mul(sre).sub(z_im.mul(sim));
            z_im = z_re.mul(sim).add(z_im.mul(sre));
            z_re = re;
        }
    }
}

/// Four chains per tile with AVX2 intrinsics (no FMA).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rotate_chains_avx2(
    anchor_re: &[f64],
    anchor_im: &[f64],
    step_re: f64,
    step_im: f64,
    block: usize,
    out: &mut [f64],
) {
    use std::arch::x86_64::*;
    let sre = _mm256_set1_pd(step_re);
    let sim = _mm256_set1_pd(step_im);
    let optr = out.as_mut_ptr();
    for g in (0..anchor_re.len()).step_by(4) {
        let mut z_re = _mm256_loadu_pd(anchor_re.as_ptr().add(g));
        let mut z_im = _mm256_loadu_pd(anchor_im.as_ptr().add(g));
        for t in 0..block {
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), z_re);
            for (lane, v) in lanes.iter().enumerate() {
                *optr.add((g + lane) * block + t) = *v;
            }
            let re = _mm256_sub_pd(_mm256_mul_pd(z_re, sre), _mm256_mul_pd(z_im, sim));
            z_im = _mm256_add_pd(_mm256_mul_pd(z_re, sim), _mm256_mul_pd(z_im, sre));
            z_re = re;
        }
    }
}

/// Rotates every sample by a tabulated phasor: `out[k] *= anchor · table[k]`,
/// with both complex products evaluated in the scalar [`Iq`] multiply order
/// (`re·re − im·im`, `re·im + im·re`). The channelizer's fast-phasor path
/// calls this once per anchor-interval run: `anchor` is the exact phasor at
/// the interval's base output and `table[k]` the `k`-th power of the
/// per-output step, so the value rotated in depends only on the absolute
/// output index — chunk invariant, and bit-identical on every backend because
/// the wide paths mirror the scalar expression tree lane for lane.
///
/// # Panics
///
/// If `table` is shorter than `out`.
pub fn rotate_by_table_in_place(backend: Backend, out: &mut [Iq], anchor: Iq, table: &[Iq]) {
    assert!(table.len() >= out.len());
    let n = out.len();
    let n_wide = match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if Backend::Avx512.available() => {
            let nw = n & !3;
            // SAFETY: AVX-512F availability checked in the guard; `table` is
            // at least as long as `out`.
            unsafe {
                rotate_table_avx512(iq_lanes_mut(out), anchor.re, anchor.im, iq_lanes(table), nw)
            };
            nw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if Backend::Avx2.available() => {
            let nw = n & !1;
            // SAFETY: AVX2 availability checked in the guard; bounds above.
            unsafe {
                rotate_table_avx2(iq_lanes_mut(out), anchor.re, anchor.im, iq_lanes(table), nw)
            };
            nw
        }
        _ => 0,
    };
    for k in n_wide..n {
        let c = anchor * table[k];
        out[k] *= c;
    }
}

/// Four complex samples per iteration. `addsub` is emulated by flipping the
/// sign bit of the even lanes (IEEE `x − y` ≡ `x + (−y)`, so the emulation is
/// exact).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn rotate_table_avx512(
    flat_out: &mut [f64],
    anchor_re: f64,
    anchor_im: f64,
    flat_table: &[f64],
    n_wide: usize,
) {
    use std::arch::x86_64::*;
    let arv = _mm512_set1_pd(anchor_re);
    let aiv = _mm512_set1_pd(anchor_im);
    let neg_even = _mm512_castsi512_pd(_mm512_setr_epi64(
        i64::MIN,
        0,
        i64::MIN,
        0,
        i64::MIN,
        0,
        i64::MIN,
        0,
    ));
    let tp = flat_table.as_ptr();
    let op = flat_out.as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let w = _mm512_loadu_pd(tp.add(2 * k));
        // c = anchor · w: even lanes ar·wr − ai·wi, odd lanes ar·wi + ai·wr.
        let t1 = _mm512_mul_pd(arv, w);
        let t2 = _mm512_mul_pd(aiv, _mm512_permute_pd::<0b0101_0101>(w));
        let c = _mm512_add_pd(t1, _mm512_xor_pd(t2, neg_even));
        // y · c via two swapped products folded per pair.
        let v = _mm512_loadu_pd(op.add(2 * k));
        let p1 = _mm512_mul_pd(v, c);
        let p2 = _mm512_mul_pd(v, _mm512_permute_pd::<0b0101_0101>(c));
        let e = _mm512_sub_pd(p1, _mm512_permute_pd::<0b0101_0101>(p1));
        let o = _mm512_add_pd(p2, _mm512_permute_pd::<0b0101_0101>(p2));
        let res = _mm512_mask_blend_pd(0b1010_1010, e, _mm512_permute_pd::<0b0101_0101>(o));
        _mm512_storeu_pd(op.add(2 * k), res);
        k += 4;
    }
}

/// Two complex samples per iteration (native `addsub`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rotate_table_avx2(
    flat_out: &mut [f64],
    anchor_re: f64,
    anchor_im: f64,
    flat_table: &[f64],
    n_wide: usize,
) {
    use std::arch::x86_64::*;
    let arv = _mm256_set1_pd(anchor_re);
    let aiv = _mm256_set1_pd(anchor_im);
    let tp = flat_table.as_ptr();
    let op = flat_out.as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let w = _mm256_loadu_pd(tp.add(2 * k));
        let t1 = _mm256_mul_pd(arv, w);
        let t2 = _mm256_mul_pd(aiv, _mm256_permute_pd::<0b0101>(w));
        let c = _mm256_addsub_pd(t1, t2);
        let v = _mm256_loadu_pd(op.add(2 * k));
        let p1 = _mm256_mul_pd(v, c);
        let p2 = _mm256_mul_pd(v, _mm256_permute_pd::<0b0101>(c));
        let e = _mm256_sub_pd(p1, _mm256_permute_pd::<0b0101>(p1));
        let o = _mm256_add_pd(p2, _mm256_permute_pd::<0b0101>(p2));
        let res = _mm256_blend_pd::<0b1010>(e, _mm256_permute_pd::<0b0101>(o));
        _mm256_storeu_pd(op.add(2 * k), res);
        k += 2;
    }
}

// ---------------------------------------------------------------------------
// Emission mixing kernels (waveform synthesis fast path)
// ---------------------------------------------------------------------------

/// Slice accumulate: `out[k] += src[k]`, the scalar `Iq` add per component.
/// Elementwise and order-free, so every backend is trivially bit-identical;
/// this is the zero-rotation fast path of the emission mixer (no CFO, no
/// channel offset), where it must reproduce the reference per-sample
/// `chunk[i] += s` loop exactly.
///
/// # Panics
///
/// If the slice lengths differ.
pub fn accumulate_in_place(backend: Backend, out: &mut [Iq], src: &[Iq]) {
    assert_eq!(out.len(), src.len());
    let n = out.len();
    let n_wide = match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if Backend::Avx512.available() => {
            let nw = n & !3;
            // SAFETY: AVX-512F availability checked in the guard; equal
            // lengths asserted above.
            unsafe { accumulate_avx512(iq_lanes_mut(out), iq_lanes(src), nw) };
            nw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if Backend::Avx2.available() => {
            let nw = n & !1;
            // SAFETY: AVX2 availability checked in the guard; equal lengths
            // asserted above.
            unsafe { accumulate_avx2(iq_lanes_mut(out), iq_lanes(src), nw) };
            nw
        }
        _ => 0,
    };
    for k in n_wide..n {
        out[k] += src[k];
    }
}

/// Four `Iq` samples (eight f64 lanes) per iteration.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn accumulate_avx512(flat_out: &mut [f64], flat_src: &[f64], n_wide: usize) {
    use std::arch::x86_64::*;
    let op = flat_out.as_mut_ptr();
    let sp = flat_src.as_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let acc = _mm512_add_pd(
            _mm512_loadu_pd(op.add(2 * k)),
            _mm512_loadu_pd(sp.add(2 * k)),
        );
        _mm512_storeu_pd(op.add(2 * k), acc);
        k += 4;
    }
}

/// Two `Iq` samples (four f64 lanes) per iteration.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_avx2(flat_out: &mut [f64], flat_src: &[f64], n_wide: usize) {
    use std::arch::x86_64::*;
    let op = flat_out.as_mut_ptr();
    let sp = flat_src.as_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let acc = _mm256_add_pd(
            _mm256_loadu_pd(op.add(2 * k)),
            _mm256_loadu_pd(sp.add(2 * k)),
        );
        _mm256_storeu_pd(op.add(2 * k), acc);
        k += 2;
    }
}

/// Scaled elementwise product: `out[j] = k · (a[j] · b[j])`, or `+=` with
/// `ACCUM`. Elementwise with the scalar association order (`k * (a * b)`),
/// so every backend is bit-identical. This is the final stage of the block
/// AWGN fill: `a` holds Box–Muller radii, `b` the cosines, `k` the
/// per-component standard deviation, and `out` the flat `f64` lanes of the
/// complex buffer.
///
/// # Panics
///
/// If the slice lengths differ.
pub fn scaled_product<const ACCUM: bool>(
    backend: Backend,
    a: &[f64],
    b: &[f64],
    k: f64,
    out: &mut [f64],
) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    let n = out.len();
    let n_wide = match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if Backend::Avx512.available() => {
            let nw = n & !7;
            // SAFETY: AVX-512F availability checked in the guard; equal
            // lengths asserted above.
            unsafe { scaled_product_avx512::<ACCUM>(a, b, k, out, nw) };
            nw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if Backend::Avx2.available() => {
            let nw = n & !3;
            // SAFETY: AVX2 availability checked in the guard; equal lengths
            // asserted above.
            unsafe { scaled_product_avx2::<ACCUM>(a, b, k, out, nw) };
            nw
        }
        _ => 0,
    };
    for j in n_wide..n {
        let v = k * (a[j] * b[j]);
        if ACCUM {
            out[j] += v;
        } else {
            out[j] = v;
        }
    }
}

/// Eight f64 lanes per iteration.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn scaled_product_avx512<const ACCUM: bool>(
    a: &[f64],
    b: &[f64],
    k: f64,
    out: &mut [f64],
    n_wide: usize,
) {
    use std::arch::x86_64::*;
    let kv = _mm512_set1_pd(k);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = out.as_mut_ptr();
    let mut j = 0usize;
    while j < n_wide {
        let prod = _mm512_mul_pd(_mm512_loadu_pd(ap.add(j)), _mm512_loadu_pd(bp.add(j)));
        let mut v = _mm512_mul_pd(kv, prod);
        if ACCUM {
            v = _mm512_add_pd(_mm512_loadu_pd(op.add(j)), v);
        }
        _mm512_storeu_pd(op.add(j), v);
        j += 8;
    }
}

/// Four f64 lanes per iteration.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scaled_product_avx2<const ACCUM: bool>(
    a: &[f64],
    b: &[f64],
    k: f64,
    out: &mut [f64],
    n_wide: usize,
) {
    use std::arch::x86_64::*;
    let kv = _mm256_set1_pd(k);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = out.as_mut_ptr();
    let mut j = 0usize;
    while j < n_wide {
        let prod = _mm256_mul_pd(_mm256_loadu_pd(ap.add(j)), _mm256_loadu_pd(bp.add(j)));
        let mut v = _mm256_mul_pd(kv, prod);
        if ACCUM {
            v = _mm256_add_pd(_mm256_loadu_pd(op.add(j)), v);
        }
        _mm256_storeu_pd(op.add(j), v);
        j += 4;
    }
}

/// Fused rotate-accumulate: `out[k] += src[k] · (anchor · table[k])`, every
/// complex product in the scalar [`Iq`] multiply order and the final add in
/// the scalar `+=` order. This is one anchor-interval run of the emission
/// mixer: `anchor` is the exact phasor at the interval's base absolute
/// sample and `table[k]` the `k`-th power of the combined per-sample step
/// (CFO + channel offset), so the rotation depends only on the absolute
/// sample index — chunk-invariant by construction — and the emission's
/// source samples are read untouched (one fused pass, no staging copy).
///
/// # Panics
///
/// If the slice lengths differ or `table` is shorter than `out`.
pub fn rotate_table_accumulate(
    backend: Backend,
    out: &mut [Iq],
    src: &[Iq],
    anchor: Iq,
    table: &[Iq],
) {
    assert_eq!(out.len(), src.len());
    assert!(table.len() >= out.len());
    let n = out.len();
    let n_wide = match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if Backend::Avx512.available() => {
            let nw = n & !3;
            // SAFETY: AVX-512F availability checked in the guard; lengths
            // asserted above.
            unsafe {
                rotate_accumulate_avx512(
                    iq_lanes_mut(out),
                    iq_lanes(src),
                    anchor.re,
                    anchor.im,
                    iq_lanes(table),
                    nw,
                )
            };
            nw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if Backend::Avx2.available() => {
            let nw = n & !1;
            // SAFETY: AVX2 availability checked in the guard; lengths
            // asserted above.
            unsafe {
                rotate_accumulate_avx2(
                    iq_lanes_mut(out),
                    iq_lanes(src),
                    anchor.re,
                    anchor.im,
                    iq_lanes(table),
                    nw,
                )
            };
            nw
        }
        _ => 0,
    };
    for k in n_wide..n {
        let c = anchor * table[k];
        out[k] += src[k] * c;
    }
}

/// Four complex samples per iteration; the anchor·table product and the
/// src·rotation product both use the swapped-product/fold sequence of
/// [`rotate_by_table_in_place`]'s wide paths, followed by one vector add
/// into `out`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn rotate_accumulate_avx512(
    flat_out: &mut [f64],
    flat_src: &[f64],
    anchor_re: f64,
    anchor_im: f64,
    flat_table: &[f64],
    n_wide: usize,
) {
    use std::arch::x86_64::*;
    let arv = _mm512_set1_pd(anchor_re);
    let aiv = _mm512_set1_pd(anchor_im);
    let neg_even = _mm512_castsi512_pd(_mm512_setr_epi64(
        i64::MIN,
        0,
        i64::MIN,
        0,
        i64::MIN,
        0,
        i64::MIN,
        0,
    ));
    let tp = flat_table.as_ptr();
    let sp = flat_src.as_ptr();
    let op = flat_out.as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let w = _mm512_loadu_pd(tp.add(2 * k));
        // c = anchor · w: even lanes ar·wr − ai·wi, odd lanes ar·wi + ai·wr.
        let t1 = _mm512_mul_pd(arv, w);
        let t2 = _mm512_mul_pd(aiv, _mm512_permute_pd::<0b0101_0101>(w));
        let c = _mm512_add_pd(t1, _mm512_xor_pd(t2, neg_even));
        // p = src · c via two swapped products folded per pair.
        let v = _mm512_loadu_pd(sp.add(2 * k));
        let p1 = _mm512_mul_pd(v, c);
        let p2 = _mm512_mul_pd(v, _mm512_permute_pd::<0b0101_0101>(c));
        let e = _mm512_sub_pd(p1, _mm512_permute_pd::<0b0101_0101>(p1));
        let o = _mm512_add_pd(p2, _mm512_permute_pd::<0b0101_0101>(p2));
        let p = _mm512_mask_blend_pd(0b1010_1010, e, _mm512_permute_pd::<0b0101_0101>(o));
        let acc = _mm512_add_pd(_mm512_loadu_pd(op.add(2 * k)), p);
        _mm512_storeu_pd(op.add(2 * k), acc);
        k += 4;
    }
}

/// Two complex samples per iteration (native `addsub` for the anchor·table
/// product).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rotate_accumulate_avx2(
    flat_out: &mut [f64],
    flat_src: &[f64],
    anchor_re: f64,
    anchor_im: f64,
    flat_table: &[f64],
    n_wide: usize,
) {
    use std::arch::x86_64::*;
    let arv = _mm256_set1_pd(anchor_re);
    let aiv = _mm256_set1_pd(anchor_im);
    let tp = flat_table.as_ptr();
    let sp = flat_src.as_ptr();
    let op = flat_out.as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let w = _mm256_loadu_pd(tp.add(2 * k));
        let t1 = _mm256_mul_pd(arv, w);
        let t2 = _mm256_mul_pd(aiv, _mm256_permute_pd::<0b0101>(w));
        let c = _mm256_addsub_pd(t1, t2);
        let v = _mm256_loadu_pd(sp.add(2 * k));
        let p1 = _mm256_mul_pd(v, c);
        let p2 = _mm256_mul_pd(v, _mm256_permute_pd::<0b0101>(c));
        let e = _mm256_sub_pd(p1, _mm256_permute_pd::<0b0101>(p1));
        let o = _mm256_add_pd(p2, _mm256_permute_pd::<0b0101>(p2));
        let p = _mm256_blend_pd::<0b1010>(e, _mm256_permute_pd::<0b0101>(o));
        let acc = _mm256_add_pd(_mm256_loadu_pd(op.add(2 * k)), p);
        _mm256_storeu_pd(op.add(2 * k), acc);
        k += 2;
    }
}

// ---------------------------------------------------------------------------
// Elementwise mixer / envelope kernels
// ---------------------------------------------------------------------------

/// RF mixer: `out[k] = s·feedthrough + s·(gain·clock[k])` per component, the
/// exact expression tree of `RfMixer::mix_with_clock_into`.
///
/// # Panics
///
/// If `samples` and `clock` lengths differ.
pub fn rf_mix_into(
    backend: Backend,
    samples: &[Iq],
    clock: &[f64],
    feedthrough: f64,
    gain: f64,
    out: &mut Vec<Iq>,
) {
    assert_eq!(samples.len(), clock.len());
    out.clear();
    out.resize(samples.len(), Iq::ZERO);
    let n_wide = match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if Backend::Avx512.available() => {
            let nw = samples.len() & !3;
            // SAFETY: AVX-512F availability checked in the guard; `out` was
            // resized to `samples.len()` above.
            unsafe {
                rf_mix_avx512(
                    iq_lanes(samples),
                    clock,
                    feedthrough,
                    gain,
                    iq_lanes_mut(out),
                    nw,
                )
            };
            nw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if Backend::Avx2.available() => {
            let nw = samples.len() & !1;
            // SAFETY: AVX2 availability checked in the guard; `out` was
            // resized to `samples.len()` above.
            unsafe {
                rf_mix_avx2(
                    iq_lanes(samples),
                    clock,
                    feedthrough,
                    gain,
                    iq_lanes_mut(out),
                    nw,
                )
            };
            nw
        }
        _ => 0,
    };
    for k in n_wide..samples.len() {
        let s = samples[k];
        out[k] = s.scale(feedthrough) + s.scale(gain * clock[k]);
    }
}

/// Four `Iq` samples per iteration: the four `gain·clock` factors are
/// computed once in a 256-bit lane and spread to component pairs with one
/// permute.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn rf_mix_avx512(
    flat_in: &[f64],
    clock: &[f64],
    feedthrough: f64,
    gain: f64,
    flat_out: &mut [f64],
    n_wide: usize,
) {
    use std::arch::x86_64::*;
    let ft = _mm512_set1_pd(feedthrough);
    let g = _mm256_set1_pd(gain);
    let spread = _mm512_setr_epi64(0, 0, 1, 1, 2, 2, 3, 3);
    let ip = flat_in.as_ptr();
    let cp = clock.as_ptr();
    let op = flat_out.as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let v = _mm512_loadu_pd(ip.add(2 * k));
        let gc4 = _mm256_mul_pd(g, _mm256_loadu_pd(cp.add(k)));
        // Only lanes 0..4 of the widened register are read by the permute.
        let gc = _mm512_permutexvar_pd(spread, _mm512_castpd256_pd512(gc4));
        let res = _mm512_add_pd(_mm512_mul_pd(v, ft), _mm512_mul_pd(v, gc));
        _mm512_storeu_pd(op.add(2 * k), res);
        k += 4;
    }
}

/// Two `Iq` samples (four f64 lanes) per iteration.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rf_mix_avx2(
    flat_in: &[f64],
    clock: &[f64],
    feedthrough: f64,
    gain: f64,
    flat_out: &mut [f64],
    n_wide: usize,
) {
    use std::arch::x86_64::*;
    let ft = _mm256_set1_pd(feedthrough);
    let ip = flat_in.as_ptr();
    let op = flat_out.as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let v = _mm256_loadu_pd(ip.add(2 * k));
        let gc0 = gain * *clock.get_unchecked(k);
        let gc1 = gain * *clock.get_unchecked(k + 1);
        let gc = _mm256_set_pd(gc1, gc1, gc0, gc0);
        let res = _mm256_add_pd(_mm256_mul_pd(v, ft), _mm256_mul_pd(v, gc));
        _mm256_storeu_pd(op.add(2 * k), res);
        k += 2;
    }
}

/// Baseband mixer: `s[k] = (gain·s[k])·clock[k]` in place over the real
/// envelope — the exact expression tree of
/// `BasebandMixer::mix_with_clock_in_place`.
///
/// # Panics
///
/// If `data` and `clock` lengths differ.
pub fn bb_mix_in_place(backend: Backend, data: &mut [f64], clock: &[f64], gain: f64) {
    assert_eq!(data.len(), clock.len());
    let n = data.len();
    let n_wide = match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if Backend::Avx512.available() => {
            let nw = n & !7;
            // SAFETY: AVX-512F availability checked in the guard.
            unsafe { bb_mix_avx512(data, clock, gain, nw) };
            nw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if Backend::Avx2.available() => {
            let nw = n & !3;
            // SAFETY: AVX2 availability checked in the guard.
            unsafe { bb_mix_avx2(data, clock, gain, nw) };
            nw
        }
        _ => 0,
    };
    for k in n_wide..n {
        data[k] = gain * data[k] * clock[k];
    }
}

/// Eight lanes per iteration.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn bb_mix_avx512(data: &mut [f64], clock: &[f64], gain: f64, n_wide: usize) {
    use std::arch::x86_64::*;
    let g = _mm512_set1_pd(gain);
    let p = data.as_mut_ptr();
    let cp = clock.as_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let v = _mm512_loadu_pd(p.add(k));
        let c = _mm512_loadu_pd(cp.add(k));
        _mm512_storeu_pd(p.add(k), _mm512_mul_pd(_mm512_mul_pd(g, v), c));
        k += 8;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn bb_mix_avx2(data: &mut [f64], clock: &[f64], gain: f64, n_wide: usize) {
    use std::arch::x86_64::*;
    let g = _mm256_set1_pd(gain);
    let p = data.as_mut_ptr();
    let cp = clock.as_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let v = _mm256_loadu_pd(p.add(k));
        let c = _mm256_loadu_pd(cp.add(k));
        let res = _mm256_mul_pd(_mm256_mul_pd(g, v), c);
        _mm256_storeu_pd(p.add(k), res);
        k += 4;
    }
}

/// Noiseless square-law envelope: `out[k] = gain·(re² + im²) + dc`, the exact
/// expression tree of the detector's noiseless branch
/// (`gain * s.norm_sqr() + dc`).
pub fn envelope_noiseless_into(
    backend: Backend,
    samples: &[Iq],
    gain: f64,
    dc: f64,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.resize(samples.len(), 0.0);
    let n_wide = match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if Backend::Avx512.available() => {
            let nw = samples.len() & !7;
            // SAFETY: AVX-512F availability checked in the guard; out sized
            // above.
            unsafe { envelope_avx512(iq_lanes(samples), gain, dc, out, nw) };
            nw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if Backend::Avx2.available() => {
            let nw = samples.len() & !3;
            // SAFETY: AVX2 availability checked in the guard; out sized above.
            unsafe { envelope_avx2(iq_lanes(samples), gain, dc, out, nw) };
            nw
        }
        _ => 0,
    };
    for k in n_wide..samples.len() {
        out[k] = gain * samples[k].norm_sqr() + dc;
    }
}

/// Eight `Iq` samples per iteration: two cross-register permutes split the
/// components, then `re² + im²` per sample (the `norm_sqr` order) stays in
/// stream order with no unscramble.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn envelope_avx512(flat_in: &[f64], gain: f64, dc: f64, out: &mut [f64], n_wide: usize) {
    use std::arch::x86_64::*;
    let g = _mm512_set1_pd(gain);
    let d = _mm512_set1_pd(dc);
    let idx_re = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
    let idx_im = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
    let ip = flat_in.as_ptr();
    let op = out.as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let a = _mm512_loadu_pd(ip.add(2 * k));
        let b = _mm512_loadu_pd(ip.add(2 * k + 8));
        let re = _mm512_permutex2var_pd(a, idx_re, b);
        let im = _mm512_permutex2var_pd(a, idx_im, b);
        let ns = _mm512_add_pd(_mm512_mul_pd(re, re), _mm512_mul_pd(im, im));
        _mm512_storeu_pd(op.add(k), _mm512_add_pd(_mm512_mul_pd(g, ns), d));
        k += 8;
    }
}

/// Four `Iq` samples per iteration: square, horizontal-add re²+im² per
/// sample (the `norm_sqr` order), unscramble, `gain·x + dc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn envelope_avx2(flat_in: &[f64], gain: f64, dc: f64, out: &mut [f64], n_wide: usize) {
    use std::arch::x86_64::*;
    let g = _mm256_set1_pd(gain);
    let d = _mm256_set1_pd(dc);
    let ip = flat_in.as_ptr();
    let op = out.as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let v0 = _mm256_loadu_pd(ip.add(2 * k)); // re0 im0 re1 im1
        let v1 = _mm256_loadu_pd(ip.add(2 * k + 4)); // re2 im2 re3 im3
        let s0 = _mm256_mul_pd(v0, v0);
        let s1 = _mm256_mul_pd(v1, v1);
        // hadd lanes: [s0_0+s0_1, s1_0+s1_1, s0_2+s0_3, s1_2+s1_3]
        //           = [|z0|², |z2|², |z1|², |z3|²] — restore order with a permute.
        let h = _mm256_hadd_pd(s0, s1);
        let ns = _mm256_permute4x64_pd::<0b1101_1000>(h);
        let res = _mm256_add_pd(_mm256_mul_pd(g, ns), d);
        _mm256_storeu_pd(op.add(k), res);
        k += 4;
    }
}

/// Quiet-chain LNA: `out[k] = s·gain`, with the rare tanh soft limiter
/// applied to samples whose amplitude exceeds the compression point — the
/// exact expression tree of `LnaState::amplify_chunk_into` with the noise
/// draw disabled. The wide path computes gain and amplitude with vector ops
/// (the `norm_sqr` add order, then an IEEE `sqrt`) and compares against the
/// compression amplitude via vector masks; only flagged samples take the
/// scalar tanh branch.
pub fn lna_quiet_into(
    backend: Backend,
    samples: &[Iq],
    gain_amp: f64,
    comp_amp: f64,
    out: &mut Vec<Iq>,
) {
    out.clear();
    out.resize(samples.len(), Iq::ZERO);
    let n_wide = match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if Backend::Avx512.available() => {
            let nw = samples.len() & !7;
            // SAFETY: AVX-512F availability checked in the guard; out sized
            // above.
            unsafe { lna_quiet_avx512(samples, gain_amp, comp_amp, out, nw) };
            nw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if Backend::Avx2.available() => {
            let nw = samples.len() & !3;
            // SAFETY: AVX2 availability checked in the guard; out sized above.
            unsafe { lna_quiet_avx2(samples, gain_amp, comp_amp, out, nw) };
            nw
        }
        _ => 0,
    };
    for k in n_wide..samples.len() {
        let mut v = samples[k].scale(gain_amp);
        let a = v.abs();
        if a > comp_amp {
            let limited = comp_amp * (1.0 + (a / comp_amp - 1.0).tanh());
            v = v.scale(limited / a);
        }
        out[k] = v;
    }
}

/// Eight `Iq` samples per iteration; the amplitude check runs on
/// permute-split component planes (mask lane `i` is sample `k + i`, no
/// unscramble), and compressed samples are patched scalar afterwards.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn lna_quiet_avx512(
    samples: &[Iq],
    gain_amp: f64,
    comp_amp: f64,
    out: &mut [Iq],
    n_wide: usize,
) {
    use std::arch::x86_64::*;
    let g = _mm512_set1_pd(gain_amp);
    let ca = _mm512_set1_pd(comp_amp);
    let idx_re = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
    let idx_im = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
    let ip = iq_lanes(samples).as_ptr();
    let op = iq_lanes_mut(out).as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let v0 = _mm512_mul_pd(_mm512_loadu_pd(ip.add(2 * k)), g);
        let v1 = _mm512_mul_pd(_mm512_loadu_pd(ip.add(2 * k + 8)), g);
        _mm512_storeu_pd(op.add(2 * k), v0);
        _mm512_storeu_pd(op.add(2 * k + 8), v1);
        let re = _mm512_permutex2var_pd(v0, idx_re, v1);
        let im = _mm512_permutex2var_pd(v0, idx_im, v1);
        let a = _mm512_sqrt_pd(_mm512_add_pd(_mm512_mul_pd(re, re), _mm512_mul_pd(im, im)));
        let over = _mm512_cmp_pd_mask::<_CMP_GT_OQ>(a, ca);
        if over != 0 {
            for lane in 0..8usize {
                if over & (1 << lane) != 0 {
                    let idx = 2 * (k + lane);
                    let v = Iq::new(*op.add(idx), *op.add(idx + 1));
                    let amp = v.abs();
                    let limited = comp_amp * (1.0 + (amp / comp_amp - 1.0).tanh());
                    let v = v.scale(limited / amp);
                    *op.add(idx) = v.re;
                    *op.add(idx + 1) = v.im;
                }
            }
        }
        k += 8;
    }
}

/// Four `Iq` samples per iteration; compressed samples (amplitude above the
/// compression point) are patched scalar afterwards.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lna_quiet_avx2(
    samples: &[Iq],
    gain_amp: f64,
    comp_amp: f64,
    out: &mut [Iq],
    n_wide: usize,
) {
    use std::arch::x86_64::*;
    let g = _mm256_set1_pd(gain_amp);
    let ca = _mm256_set1_pd(comp_amp);
    let ip = iq_lanes(samples).as_ptr();
    let op = iq_lanes_mut(out).as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let v0 = _mm256_mul_pd(_mm256_loadu_pd(ip.add(2 * k)), g);
        let v1 = _mm256_mul_pd(_mm256_loadu_pd(ip.add(2 * k + 4)), g);
        _mm256_storeu_pd(op.add(2 * k), v0);
        _mm256_storeu_pd(op.add(2 * k + 4), v1);
        let s0 = _mm256_mul_pd(v0, v0);
        let s1 = _mm256_mul_pd(v1, v1);
        // [|z0|², |z2|², |z1|², |z3|²] per the hadd lane order.
        let h = _mm256_hadd_pd(s0, s1);
        let a = _mm256_sqrt_pd(h);
        let over = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(a, ca));
        if over != 0 {
            // Mask bit 0 → z0, 1 → z2, 2 → z1, 3 → z3 (hadd order).
            for (bit, lane) in [(0usize, 0usize), (1, 2), (2, 1), (3, 3)] {
                if over & (1 << bit) != 0 {
                    let idx = 2 * (k + lane);
                    let v = Iq::new(*op.add(idx), *op.add(idx + 1));
                    let amp = v.abs();
                    let limited = comp_amp * (1.0 + (amp / comp_amp - 1.0).tanh());
                    let v = v.scale(limited / amp);
                    *op.add(idx) = v.re;
                    *op.add(idx + 1) = v.im;
                }
            }
        }
        k += 4;
    }
}

// ---------------------------------------------------------------------------
// Split-complex de/interleave
// ---------------------------------------------------------------------------

/// Appends a chunk's components to separate real/imaginary planes — the split
/// step every FIR workspace performs per chunk. Pure data movement, so every
/// backend is bit-identical by construction; the wide paths exist because the
/// scalar `push` pair costs more than the convolution it feeds on short
/// filters.
pub fn deinterleave_extend(
    backend: Backend,
    samples: &[Iq],
    out_re: &mut Vec<f64>,
    out_im: &mut Vec<f64>,
) {
    let n = samples.len();
    let re_base = out_re.len();
    let im_base = out_im.len();
    out_re.resize(re_base + n, 0.0);
    out_im.resize(im_base + n, 0.0);
    let dst_re = &mut out_re[re_base..];
    let dst_im = &mut out_im[im_base..];
    let n_wide = match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if Backend::Avx512.available() => {
            let nw = n & !7;
            // SAFETY: AVX-512F availability checked in the guard; both
            // destination tails were resized to `n` above.
            unsafe { deinterleave_avx512(iq_lanes(samples), dst_re, dst_im, nw) };
            nw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if Backend::Avx2.available() => {
            let nw = n & !3;
            // SAFETY: AVX2 availability checked in the guard; tails sized above.
            unsafe { deinterleave_avx2(iq_lanes(samples), dst_re, dst_im, nw) };
            nw
        }
        _ => 0,
    };
    for k in n_wide..n {
        dst_re[k] = samples[k].re;
        dst_im[k] = samples[k].im;
    }
}

/// Eight `Iq` samples (two 512-bit loads) per iteration, split with two
/// cross-register permutes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn deinterleave_avx512(flat: &[f64], dst_re: &mut [f64], dst_im: &mut [f64], n_wide: usize) {
    use std::arch::x86_64::*;
    let idx_re = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
    let idx_im = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
    let ip = flat.as_ptr();
    let rp = dst_re.as_mut_ptr();
    let mp = dst_im.as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let a = _mm512_loadu_pd(ip.add(2 * k));
        let b = _mm512_loadu_pd(ip.add(2 * k + 8));
        _mm512_storeu_pd(rp.add(k), _mm512_permutex2var_pd(a, idx_re, b));
        _mm512_storeu_pd(mp.add(k), _mm512_permutex2var_pd(a, idx_im, b));
        k += 8;
    }
}

/// Four `Iq` samples per iteration: `unpacklo/hi` gathers same-component
/// pairs within 128-bit lanes, a cross-lane permute restores sample order.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn deinterleave_avx2(flat: &[f64], dst_re: &mut [f64], dst_im: &mut [f64], n_wide: usize) {
    use std::arch::x86_64::*;
    let ip = flat.as_ptr();
    let rp = dst_re.as_mut_ptr();
    let mp = dst_im.as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        // a = re0 im0 re1 im1, b = re2 im2 re3 im3; unpacklo gives
        // [re0 re2 re1 re3], lane permute [0,2,1,3] restores sample order.
        let a = _mm256_loadu_pd(ip.add(2 * k));
        let b = _mm256_loadu_pd(ip.add(2 * k + 4));
        let re = _mm256_permute4x64_pd::<0b11_01_10_00>(_mm256_unpacklo_pd(a, b));
        let im = _mm256_permute4x64_pd::<0b11_01_10_00>(_mm256_unpackhi_pd(a, b));
        _mm256_storeu_pd(rp.add(k), re);
        _mm256_storeu_pd(mp.add(k), im);
        k += 4;
    }
}

/// Appends `Iq::new(re[k], im[k])` for every `k` to `out` — the merge step
/// that turns a kernel's split-complex output planes back into samples. Pure
/// data movement; bit-identical on every backend.
///
/// # Panics
///
/// If the plane lengths differ.
pub fn interleave_extend(backend: Backend, re: &[f64], im: &[f64], out: &mut Vec<Iq>) {
    assert_eq!(re.len(), im.len());
    let n = re.len();
    let base = out.len();
    out.resize(base + n, Iq::ZERO);
    let dst = &mut out[base..];
    let n_wide = match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if Backend::Avx512.available() => {
            let nw = n & !7;
            // SAFETY: AVX-512F availability checked in the guard; `dst` holds
            // exactly `n` samples.
            unsafe { interleave_avx512(re, im, iq_lanes_mut(dst), nw) };
            nw
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if Backend::Avx2.available() => {
            let nw = n & !3;
            // SAFETY: AVX2 availability checked in the guard; dst sized above.
            unsafe { interleave_avx2(re, im, iq_lanes_mut(dst), nw) };
            nw
        }
        _ => 0,
    };
    for k in n_wide..n {
        dst[k] = Iq::new(re[k], im[k]);
    }
}

/// Eight `Iq` outputs per iteration via two cross-register permutes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn interleave_avx512(re: &[f64], im: &[f64], flat_out: &mut [f64], n_wide: usize) {
    use std::arch::x86_64::*;
    let idx_lo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
    let idx_hi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
    let rp = re.as_ptr();
    let mp = im.as_ptr();
    let op = flat_out.as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let r = _mm512_loadu_pd(rp.add(k));
        let i = _mm512_loadu_pd(mp.add(k));
        _mm512_storeu_pd(op.add(2 * k), _mm512_permutex2var_pd(r, idx_lo, i));
        _mm512_storeu_pd(op.add(2 * k + 8), _mm512_permutex2var_pd(r, idx_hi, i));
        k += 8;
    }
}

/// Four `Iq` outputs per iteration: `unpacklo/hi` pairs components within
/// 128-bit lanes, `permute2f128` splices the lanes into stream order.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn interleave_avx2(re: &[f64], im: &[f64], flat_out: &mut [f64], n_wide: usize) {
    use std::arch::x86_64::*;
    let rp = re.as_ptr();
    let mp = im.as_ptr();
    let op = flat_out.as_mut_ptr();
    let mut k = 0usize;
    while k < n_wide {
        let r = _mm256_loadu_pd(rp.add(k)); // re0 re1 re2 re3
        let i = _mm256_loadu_pd(mp.add(k)); // im0 im1 im2 im3
        let lo = _mm256_unpacklo_pd(r, i); // re0 im0 re2 im2
        let hi = _mm256_unpackhi_pd(r, i); // re1 im1 re3 im3
        _mm256_storeu_pd(op.add(2 * k), _mm256_permute2f128_pd::<0x20>(lo, hi));
        _mm256_storeu_pd(op.add(2 * k + 4), _mm256_permute2f128_pd::<0x31>(lo, hi));
        k += 4;
    }
}

// ---------------------------------------------------------------------------
// Double-threshold comparator scan
// ---------------------------------------------------------------------------

/// Resolves the hysteresis recurrence `s_i = a_i | (b_i & s_{i-1})` across one
/// 64-bit word (bit `i` = sample `i`), given the carry from the previous word.
/// `a` is the set mask (`v ≥ U_H`), `b` the hold mask (`v ≥ U_L`).
#[inline]
fn resolve_word(a: u64, b: u64, carry: bool) -> u64 {
    if a == b {
        // v ≥ U_H iff v ≥ U_L for every sample: s_i = a_i | (a_i & s_{i-1}) = a_i.
        return a;
    }
    // Kogge–Stone carry chain: fold the incoming carry into bit 0, then
    // double the propagation distance log₂(64) times.
    let mut g = a | (b & carry as u64);
    let mut p = b;
    for shift in [1u32, 2, 4, 8, 16, 32] {
        g |= p & (g << shift);
        p &= p << shift;
    }
    g
}

/// Builds one word of comparator masks with scalar compares (portable path).
#[inline]
fn mask_word_scalar(
    values: &[f64],
    highs: impl Fn(usize) -> f64,
    lows: impl Fn(usize) -> f64,
) -> (u64, u64) {
    let mut a = 0u64;
    let mut b = 0u64;
    for (i, &v) in values.iter().enumerate() {
        a |= ((v >= highs(i)) as u64) << i;
        b |= ((v >= lows(i)) as u64) << i;
    }
    (a, b)
}

/// Scans the double-threshold comparator over `values` with **per-sample**
/// thresholds, packing the output bits into 64-sample words (bit `i % 64` of
/// word `i / 64`). Returns the final comparator state. Words beyond the
/// sample count are zero-padded.
///
/// The recurrence per sample is exactly the scalar comparator's
/// `state = if state { v >= low } else { v >= high }`, which for `low ≤ high`
/// equals `state = (v ≥ high) | ((v ≥ low) & state)` — the form the vector
/// compare + mask-extraction path resolves per word. The caller must ensure
/// `low[i] ≤ high[i]` (both comparator constructions guarantee it).
///
/// # Panics
///
/// If `highs`/`lows` are shorter than `values`.
pub fn hysteresis_words(
    backend: Backend,
    values: &[f64],
    highs: &[f64],
    lows: &[f64],
    mut state: bool,
    words: &mut Vec<u64>,
) -> bool {
    assert!(highs.len() >= values.len() && lows.len() >= values.len());
    words.clear();
    words.reserve(values.len().div_ceil(64));
    let mut base = 0usize;
    while base < values.len() {
        let n = (values.len() - base).min(64);
        let (a, b) = match backend {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 if n == 64 && Backend::Avx512.available() => {
                // SAFETY: AVX-512F availability checked in the guard; the
                // slices all hold at least 64 elements from `base`.
                unsafe {
                    mask_word_avx512(
                        &values[base..base + 64],
                        &highs[base..base + 64],
                        &lows[base..base + 64],
                    )
                }
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 if n == 64 && Backend::Avx2.available() => {
                // SAFETY: AVX2 availability checked in the guard.
                unsafe {
                    mask_word_avx2(
                        &values[base..base + 64],
                        &highs[base..base + 64],
                        &lows[base..base + 64],
                    )
                }
            }
            _ => mask_word_scalar(
                &values[base..base + n],
                |i| highs[base + i],
                |i| lows[base + i],
            ),
        };
        let resolved = resolve_word(a, b, state);
        state = if n == 64 {
            resolved >> 63 != 0
        } else {
            resolved >> (n - 1) & 1 != 0
        };
        words.push(if n == 64 {
            resolved
        } else {
            resolved & ((1u64 << n) - 1)
        });
        base += n;
    }
    state
}

/// Fixed-threshold comparator scan producing the usual `Vec<bool>` output
/// (the streaming `ComparatorState` block path). Returns the final state.
///
/// # Panics
///
/// If `low > high` (callers must keep the scalar loop in that regime — the
/// mask identity only holds when `v ≥ high` implies `v ≥ low`).
pub fn hysteresis_scan(
    backend: Backend,
    values: &[f64],
    high: f64,
    low: f64,
    state: bool,
    out: &mut Vec<bool>,
) -> bool {
    assert!(low <= high);
    let mut base = 0usize;
    let mut st = state;
    out.reserve(values.len());
    while base < values.len() {
        let n = (values.len() - base).min(64);
        let (a, b) = match backend {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 if n == 64 && Backend::Avx512.available() => {
                // SAFETY: AVX-512F availability checked in the guard.
                unsafe { mask_word_fixed_avx512(&values[base..base + 64], high, low) }
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 if n == 64 && Backend::Avx2.available() => {
                // SAFETY: AVX2 availability checked in the guard.
                unsafe { mask_word_fixed_avx2(&values[base..base + 64], high, low) }
            }
            _ => mask_word_scalar(&values[base..base + n], |_| high, |_| low),
        };
        let resolved = resolve_word(a, b, st);
        st = resolved >> (n - 1) & 1 != 0;
        for i in 0..n {
            out.push(resolved >> i & 1 != 0);
        }
        base += n;
    }
    st
}

/// One 64-sample compare word with AVX2: 16 × 4-lane `≥` compares per mask.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mask_word_avx2(values: &[f64], highs: &[f64], lows: &[f64]) -> (u64, u64) {
    use std::arch::x86_64::*;
    let vp = values.as_ptr();
    let hp = highs.as_ptr();
    let lp = lows.as_ptr();
    let mut a = 0u64;
    let mut b = 0u64;
    for g in 0..16 {
        let v = _mm256_loadu_pd(vp.add(4 * g));
        let ca = _mm256_cmp_pd::<_CMP_GE_OQ>(v, _mm256_loadu_pd(hp.add(4 * g)));
        let cb = _mm256_cmp_pd::<_CMP_GE_OQ>(v, _mm256_loadu_pd(lp.add(4 * g)));
        a |= (_mm256_movemask_pd(ca) as u64) << (4 * g);
        b |= (_mm256_movemask_pd(cb) as u64) << (4 * g);
    }
    (a, b)
}

/// One 64-sample compare word with AVX-512: 8 × 8-lane mask compares.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mask_word_avx512(values: &[f64], highs: &[f64], lows: &[f64]) -> (u64, u64) {
    use std::arch::x86_64::*;
    let vp = values.as_ptr();
    let hp = highs.as_ptr();
    let lp = lows.as_ptr();
    let mut a = 0u64;
    let mut b = 0u64;
    for g in 0..8 {
        let v = _mm512_loadu_pd(vp.add(8 * g));
        let ca = _mm512_cmp_pd_mask::<_CMP_GE_OQ>(v, _mm512_loadu_pd(hp.add(8 * g)));
        let cb = _mm512_cmp_pd_mask::<_CMP_GE_OQ>(v, _mm512_loadu_pd(lp.add(8 * g)));
        a |= (ca as u64) << (8 * g);
        b |= (cb as u64) << (8 * g);
    }
    (a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mask_word_fixed_avx2(values: &[f64], high: f64, low: f64) -> (u64, u64) {
    use std::arch::x86_64::*;
    let vp = values.as_ptr();
    let h = _mm256_set1_pd(high);
    let l = _mm256_set1_pd(low);
    let mut a = 0u64;
    let mut b = 0u64;
    for g in 0..16 {
        let v = _mm256_loadu_pd(vp.add(4 * g));
        a |= (_mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(v, h)) as u64) << (4 * g);
        b |= (_mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(v, l)) as u64) << (4 * g);
    }
    (a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mask_word_fixed_avx512(values: &[f64], high: f64, low: f64) -> (u64, u64) {
    use std::arch::x86_64::*;
    let vp = values.as_ptr();
    let h = _mm512_set1_pd(high);
    let l = _mm512_set1_pd(low);
    let mut a = 0u64;
    let mut b = 0u64;
    for g in 0..8 {
        let v = _mm512_loadu_pd(vp.add(8 * g));
        a |= (_mm512_cmp_pd_mask::<_CMP_GE_OQ>(v, h) as u64) << (8 * g);
        b |= (_mm512_cmp_pd_mask::<_CMP_GE_OQ>(v, l) as u64) << (8 * g);
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide_backends() -> Vec<Backend> {
        Backend::ALL
            .iter()
            .copied()
            .filter(|b| *b != Backend::Scalar && b.available())
            .collect()
    }

    fn test_signal(n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut re = Vec::with_capacity(n);
        let mut im = Vec::with_capacity(n);
        let mut x = 0.37f64;
        for _ in 0..n {
            x = (x * 997.0 + 0.1234).fract();
            re.push(x * 2.0 - 1.0);
            x = (x * 997.0 + 0.1234).fract();
            im.push(x * 2.0 - 1.0);
        }
        (re, im)
    }

    #[test]
    fn report_is_consistent() {
        let r = simd_report();
        assert_eq!(r.backend, active_backend().name());
        assert_eq!(r.f64_lanes, active_backend().f64_lanes());
        assert!(!format!("{r}").is_empty());
    }

    #[test]
    fn tile_ops_elementwise() {
        let a = F64x4([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4::splat(2.0);
        assert_eq!(a.add(b).0, [3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sub(b).0, [-1.0, 0.0, 1.0, 2.0]);
        assert_eq!(a.mul(b).0, [2.0, 4.0, 6.0, 8.0]);
        let mut buf = [0.0; 4];
        a.store(&mut buf);
        assert_eq!(F64x4::load(&buf), a);
        let f = F32x8::splat(1.5).mul(F32x8::splat(2.0));
        assert_eq!(f.0, [3.0f32; 8]);
    }

    #[test]
    fn convolve_matches_scalar_order_every_backend() {
        for &taps in &[1usize, 2, 3, 7, 8, 64] {
            for &m in &[0usize, 1, 2, 3, 5, 8, 17, 64] {
                let (tr, ti) = test_signal(taps);
                let (br, bi) = test_signal(m + taps);
                let mut ref_re = vec![0.0; m];
                let mut ref_im = vec![0.0; m];
                for i in 0..m {
                    let (re, im) = dot_scalar_order(&tr, &ti, &br[i..i + taps], &bi[i..i + taps]);
                    ref_re[i] = re;
                    ref_im[i] = im;
                }
                for b in wide_backends() {
                    let mut out_re = vec![0.0; m];
                    let mut out_im = vec![0.0; m];
                    convolve_block::<false>(b, &tr, &ti, &br, &bi, &mut out_re, &mut out_im, m);
                    assert_eq!(out_re, ref_re, "{b:?} taps={taps} m={m}");
                    assert_eq!(out_im, ref_im, "{b:?} taps={taps} m={m}");
                    // ACCUM variant adds on top of a pre-filled plane.
                    let mut acc_re = vec![1.5; m];
                    let mut acc_im = vec![-0.5; m];
                    convolve_block::<true>(b, &tr, &ti, &br, &bi, &mut acc_re, &mut acc_im, m);
                    for i in 0..m {
                        assert_eq!(acc_re[i], 1.5 + ref_re[i], "{b:?} accum re {i}");
                        assert_eq!(acc_im[i], -0.5 + ref_im[i], "{b:?} accum im {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn rotate_chains_match_scalar() {
        let (are, aim) = test_signal(11);
        let (step_re, step_im) = (0.9f64.cos(), 0.9f64.sin());
        for &block in &[1usize, 3, 256] {
            let mut reference = vec![0.0; 11 * block];
            rotate_chains_into(
                Backend::Scalar,
                &are,
                &aim,
                step_re,
                step_im,
                block,
                &mut reference,
            );
            for b in wide_backends() {
                let mut got = vec![0.0; 11 * block];
                rotate_chains_into(b, &are, &aim, step_re, step_im, block, &mut got);
                assert_eq!(got, reference, "{b:?} block={block}");
            }
        }
    }

    #[test]
    fn elementwise_kernels_match_scalar() {
        let (re, im) = test_signal(37);
        let samples: Vec<Iq> = re.iter().zip(&im).map(|(&r, &i)| Iq::new(r, i)).collect();
        let (clock, _) = test_signal(37);
        for b in wide_backends() {
            let mut ref_out = Vec::new();
            rf_mix_into(Backend::Scalar, &samples, &clock, 1.0, 0.5, &mut ref_out);
            let mut got = Vec::new();
            rf_mix_into(b, &samples, &clock, 1.0, 0.5, &mut got);
            assert_eq!(got, ref_out, "{b:?} rf_mix");

            let mut ref_bb = re.clone();
            bb_mix_in_place(Backend::Scalar, &mut ref_bb, &clock, 0.8);
            let mut got_bb = re.clone();
            bb_mix_in_place(b, &mut got_bb, &clock, 0.8);
            assert_eq!(got_bb, ref_bb, "{b:?} bb_mix");

            let mut ref_env = Vec::new();
            envelope_noiseless_into(Backend::Scalar, &samples, 2.5, 0.01, &mut ref_env);
            let mut got_env = Vec::new();
            envelope_noiseless_into(b, &samples, 2.5, 0.01, &mut got_env);
            assert_eq!(got_env, ref_env, "{b:?} envelope");

            // Compression point chosen so some samples take the tanh branch.
            for comp in [0.3, 10.0] {
                let mut ref_lna = Vec::new();
                lna_quiet_into(Backend::Scalar, &samples, 2.0, comp, &mut ref_lna);
                let mut got_lna = Vec::new();
                lna_quiet_into(b, &samples, 2.0, comp, &mut got_lna);
                assert_eq!(got_lna, ref_lna, "{b:?} lna comp={comp}");
            }
        }
    }

    /// Serial reference for the hysteresis recurrence.
    fn hysteresis_serial(values: &[f64], highs: &[f64], lows: &[f64], mut st: bool) -> Vec<bool> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                st = if st { v >= lows[i] } else { v >= highs[i] };
                st
            })
            .collect()
    }

    #[test]
    fn comparator_words_match_serial() {
        for &n in &[0usize, 1, 5, 63, 64, 65, 200] {
            let (values, _) = test_signal(n);
            let highs = vec![0.4; n];
            let lows = vec![-0.2; n];
            for &init in &[false, true] {
                let expect = hysteresis_serial(&values, &highs, &lows, init);
                for b in Backend::ALL.iter().copied().filter(|b| b.available()) {
                    let mut words = Vec::new();
                    let fin = hysteresis_words(b, &values, &highs, &lows, init, &mut words);
                    let got: Vec<bool> =
                        (0..n).map(|i| words[i / 64] >> (i % 64) & 1 != 0).collect();
                    assert_eq!(got, expect, "{b:?} n={n} init={init}");
                    assert_eq!(fin, *expect.last().unwrap_or(&init), "{b:?} final");

                    let mut bools = Vec::new();
                    let fin2 = hysteresis_scan(b, &values, 0.4, -0.2, init, &mut bools);
                    assert_eq!(bools, expect, "{b:?} scan n={n}");
                    assert_eq!(fin2, fin);
                }
            }
        }
    }

    #[test]
    fn comparator_nan_stays_low() {
        let values = vec![f64::NAN; 70];
        let highs = vec![0.0; 70];
        let lows = vec![-1.0; 70];
        for b in Backend::ALL.iter().copied().filter(|b| b.available()) {
            let mut words = Vec::new();
            let fin = hysteresis_words(b, &values, &highs, &lows, true, &mut words);
            assert!(!fin, "{b:?}");
            assert!(words.iter().all(|w| *w == 0), "{b:?}");
        }
    }

    #[test]
    fn accumulate_matches_scalar_every_backend() {
        for &n in &[0usize, 1, 2, 3, 4, 5, 7, 8, 33, 256] {
            let (re, im) = test_signal(2 * n);
            let src: Vec<Iq> = (0..n).map(|i| Iq::new(re[i], im[i])).collect();
            let base: Vec<Iq> = (0..n).map(|i| Iq::new(re[n + i], im[n + i])).collect();
            let mut reference = base.clone();
            accumulate_in_place(Backend::Scalar, &mut reference, &src);
            for i in 0..n {
                assert_eq!(reference[i], base[i] + src[i]);
            }
            for b in wide_backends() {
                let mut got = base.clone();
                accumulate_in_place(b, &mut got, &src);
                assert_eq!(got, reference, "{b:?} n={n}");
            }
        }
    }

    #[test]
    fn scaled_product_matches_scalar_every_backend() {
        for &n in &[0usize, 1, 3, 4, 7, 8, 9, 64, 513] {
            let (a, b) = test_signal(n);
            let k = 0.031_7;
            let mut reference = vec![0.25; n];
            scaled_product::<false>(Backend::Scalar, &a, &b, k, &mut reference);
            for j in 0..n {
                assert_eq!(reference[j], k * (a[j] * b[j]));
            }
            let mut ref_acc = vec![0.25; n];
            scaled_product::<true>(Backend::Scalar, &a, &b, k, &mut ref_acc);
            for j in 0..n {
                assert_eq!(ref_acc[j], 0.25 + k * (a[j] * b[j]));
            }
            for backend in wide_backends() {
                let mut got = vec![0.0; n];
                scaled_product::<false>(backend, &a, &b, k, &mut got);
                assert_eq!(got, reference, "{backend:?} n={n}");
                let mut got_acc = vec![0.25; n];
                scaled_product::<true>(backend, &a, &b, k, &mut got_acc);
                assert_eq!(got_acc, ref_acc, "{backend:?} accum n={n}");
            }
        }
    }

    #[test]
    fn rotate_accumulate_matches_scalar_every_backend() {
        let anchor = Iq::phasor(0.7341);
        for &n in &[0usize, 1, 2, 3, 4, 5, 7, 8, 33, 256] {
            let (re, im) = test_signal(3 * n);
            let src: Vec<Iq> = (0..n).map(|i| Iq::new(re[i], im[i])).collect();
            let table: Vec<Iq> = (0..n).map(|i| Iq::new(re[n + i], im[n + i])).collect();
            let base: Vec<Iq> = (0..n)
                .map(|i| Iq::new(re[2 * n + i], im[2 * n + i]))
                .collect();
            let mut reference = base.clone();
            rotate_table_accumulate(Backend::Scalar, &mut reference, &src, anchor, &table);
            for i in 0..n {
                assert_eq!(reference[i], base[i] + src[i] * (anchor * table[i]));
            }
            for b in wide_backends() {
                let mut got = base.clone();
                rotate_table_accumulate(b, &mut got, &src, anchor, &table);
                assert_eq!(got, reference, "{b:?} n={n}");
            }
        }
    }

    #[test]
    fn rotate_accumulate_table_may_be_longer() {
        let (re, im) = test_signal(16);
        let src: Vec<Iq> = (0..4).map(|i| Iq::new(re[i], im[i])).collect();
        let table: Vec<Iq> = (0..8).map(|i| Iq::new(re[8 + i], im[8 + i])).collect();
        for b in Backend::ALL.iter().copied().filter(|b| b.available()) {
            let mut out = vec![Iq::ZERO; 4];
            rotate_table_accumulate(b, &mut out, &src, Iq::ONE, &table);
            for i in 0..4 {
                assert_eq!(out[i], src[i] * (Iq::ONE * table[i]), "{b:?}");
            }
        }
    }

    #[test]
    fn forced_env_parse() {
        assert_eq!(Backend::parse(" AVX2 "), Some(Backend::Avx2));
        assert_eq!(Backend::parse("scalar"), Some(Backend::Scalar));
        assert_eq!(Backend::parse("avx512"), Some(Backend::Avx512));
        assert_eq!(Backend::parse("neon"), None);
    }
}
