//! Saiyan downlink symbol mapping.
//!
//! The access point sends feedback packets to backscatter tags using chirps
//! drawn from a reduced alphabet of `2^K` initial frequency offsets (the
//! paper's "coding rate" K = 1–5). This module converts between byte payloads,
//! bit streams, and downlink symbol sequences, and carries the per-symbol
//! ground truth (peak positions) used by tests and experiment harnesses.

use crate::chirp::ChirpGenerator;
use crate::error::PhyError;
use crate::fec::gray::{gray_decode, gray_encode};
use crate::params::{BitsPerChirp, LoraParams};

/// Packs payload bits (MSB-first within each byte) into downlink symbols of
/// `k` bits each, Gray-coded so neighbouring peak positions differ in one bit.
pub fn bytes_to_symbols(data: &[u8], k: BitsPerChirp) -> Vec<u32> {
    let kbits = k.bits() as usize;
    let total_bits = data.len() * 8;
    let nsym = total_bits.div_ceil(kbits);
    let mut symbols = Vec::with_capacity(nsym);
    let mut acc: u32 = 0;
    let mut nacc = 0usize;
    for &byte in data {
        for bit in (0..8).rev() {
            acc = (acc << 1) | ((byte >> bit) & 1) as u32;
            nacc += 1;
            if nacc == kbits {
                symbols.push(gray_encode(acc));
                acc = 0;
                nacc = 0;
            }
        }
    }
    if nacc > 0 {
        // Left-align the remaining bits in the final symbol.
        acc <<= kbits - nacc;
        symbols.push(gray_encode(acc));
    }
    symbols
}

/// Unpacks downlink symbols back into bytes, reversing [`bytes_to_symbols`].
/// `payload_len` trims the output to the original byte count.
pub fn symbols_to_bytes(symbols: &[u32], k: BitsPerChirp, payload_len: usize) -> Vec<u8> {
    let kbits = k.bits() as usize;
    let mut bits = Vec::with_capacity(symbols.len() * kbits);
    for &s in symbols {
        let v = gray_decode(s);
        for bit in (0..kbits).rev() {
            bits.push(((v >> bit) & 1) as u8);
        }
    }
    let mut out = Vec::with_capacity(payload_len);
    for chunk in bits.chunks(8) {
        if chunk.len() < 8 {
            break;
        }
        let mut b = 0u8;
        for &bit in chunk {
            b = (b << 1) | bit;
        }
        out.push(b);
        if out.len() == payload_len {
            break;
        }
    }
    out.truncate(payload_len);
    out
}

/// Number of downlink symbols required to carry `payload_len` bytes at `k`
/// bits per chirp.
pub fn symbols_for_bytes(payload_len: usize, k: BitsPerChirp) -> usize {
    (payload_len * 8).div_ceil(k.bits() as usize)
}

/// Ground-truth description of a downlink symbol: its value and where in the
/// chirp the SAW-transformed amplitude peaks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownlinkSymbol {
    /// Symbol value in `0..2^K`.
    pub value: u32,
    /// Initial frequency offset above the carrier, Hz.
    pub f0_hz: f64,
    /// Time (seconds from symbol start) of the amplitude peak.
    pub peak_time: f64,
}

/// Expands a symbol sequence into per-symbol ground truth using the chirp
/// geometry of `params`.
pub fn describe_symbols(
    symbols: &[u32],
    params: &LoraParams,
) -> Result<Vec<DownlinkSymbol>, PhyError> {
    let gen = ChirpGenerator::new(*params);
    let alphabet = params.bits_per_chirp.alphabet_size();
    symbols
        .iter()
        .map(|&value| {
            if value >= alphabet {
                return Err(PhyError::SymbolOutOfRange {
                    symbol: value,
                    alphabet,
                });
            }
            let f0 = value as f64 / alphabet as f64 * params.bw.hz();
            Ok(DownlinkSymbol {
                value,
                f0_hz: f0,
                peak_time: gen.peak_time(f0),
            })
        })
        .collect()
}

/// Maps a measured peak time back to the most plausible symbol value — the
/// idealised inverse of [`describe_symbols`], used as a reference decoder in
/// tests (the real Saiyan decoder works from comparator output, see the
/// `saiyan` crate).
pub fn symbol_from_peak_time(peak_time: f64, params: &LoraParams) -> u32 {
    let alphabet = params.bits_per_chirp.alphabet_size();
    let t_sym = params.symbol_duration();
    // peak_time = (BW - f0)/slope = T_sym * (1 - value/alphabet)
    let frac = 1.0 - (peak_time / t_sym);
    let value = (frac * alphabet as f64).round() as i64;
    value.rem_euclid(alphabet as i64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bandwidth, SpreadingFactor};

    fn k(bits: u8) -> BitsPerChirp {
        BitsPerChirp::new(bits).unwrap()
    }

    #[test]
    fn byte_symbol_round_trip_all_k() {
        let data: Vec<u8> = (0..=255u8).step_by(7).collect();
        for bits in 1..=5u8 {
            let symbols = bytes_to_symbols(&data, k(bits));
            assert_eq!(symbols.len(), symbols_for_bytes(data.len(), k(bits)));
            assert!(symbols.iter().all(|&s| s < (1 << bits)));
            let back = symbols_to_bytes(&symbols, k(bits), data.len());
            assert_eq!(back, data, "K={bits}");
        }
    }

    #[test]
    fn symbols_for_bytes_matches_formula() {
        assert_eq!(symbols_for_bytes(4, k(1)), 32);
        assert_eq!(symbols_for_bytes(4, k(5)), 7); // ceil(32/5)
        assert_eq!(symbols_for_bytes(0, k(3)), 0);
    }

    #[test]
    fn describe_symbols_produces_distinct_peaks() {
        let params = LoraParams::new(SpreadingFactor::Sf7, Bandwidth::Khz500, k(2));
        let desc = describe_symbols(&[0, 1, 2, 3], &params).unwrap();
        // Peak times must be strictly decreasing with symbol value and spaced
        // by a quarter symbol for K=2.
        let t_sym = params.symbol_duration();
        for w in desc.windows(2) {
            let delta = w[0].peak_time - w[1].peak_time;
            assert!((delta - t_sym / 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn peak_time_inversion_recovers_symbols() {
        let params = LoraParams::new(SpreadingFactor::Sf9, Bandwidth::Khz250, k(3));
        let desc = describe_symbols(&[0, 1, 2, 3, 4, 5, 6, 7], &params).unwrap();
        for d in desc {
            assert_eq!(symbol_from_peak_time(d.peak_time, &params), d.value);
        }
    }

    #[test]
    fn out_of_range_symbol_rejected() {
        let params = LoraParams::new(SpreadingFactor::Sf7, Bandwidth::Khz500, k(2));
        assert!(describe_symbols(&[4], &params).is_err());
    }
}
