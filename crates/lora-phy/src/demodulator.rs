//! Standard (access-point grade) LoRa demodulator.
//!
//! This is the power-hungry reference receiver the paper contrasts Saiyan
//! against: down-convert, sample at (at least) the chirp bandwidth, dechirp by
//! multiplying with a conjugate base chirp, FFT, and pick the strongest bin
//! (§1, "the commercial LoRa receiver operates by ... FFT"). The access point
//! in the network simulator uses this demodulator for the backscatter uplink;
//! it also provides the ground-truth receiver used to validate the modulator.

use crate::chirp::ChirpGenerator;
use crate::error::PhyError;
use crate::fft::{argmax_bin, fft_padded, peak_to_mean_db};
use crate::iq::{Iq, SampleBuffer};
use crate::modulator::Alphabet;
use crate::params::{LoraParams, PREAMBLE_UPCHIRPS};

/// Result of demodulating one chirp symbol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolDecision {
    /// The decided symbol value.
    pub symbol: u32,
    /// Peak-to-mean ratio of the dechirped spectrum in dB (decision confidence).
    pub confidence_db: f64,
}

/// Result of demodulating a whole packet.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketDecision {
    /// Decided payload symbols.
    pub symbols: Vec<u32>,
    /// Per-symbol confidences (dB).
    pub confidences_db: Vec<f64>,
    /// Sample index where the payload was assumed to start.
    pub payload_start: usize,
}

/// Standard coherent LoRa demodulator (dechirp + FFT).
#[derive(Debug, Clone)]
pub struct StandardDemodulator {
    params: LoraParams,
    downchirp: Vec<Iq>,
}

impl StandardDemodulator {
    /// Creates a demodulator for the given parameter set.
    pub fn new(params: LoraParams) -> Self {
        let gen = ChirpGenerator::new(params);
        StandardDemodulator {
            params,
            downchirp: gen.base_downchirp().samples,
        }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &LoraParams {
        &self.params
    }

    /// Dechirps one symbol worth of samples and returns the power spectrum.
    fn dechirp_spectrum(&self, symbol_samples: &[Iq]) -> Vec<f64> {
        let n = symbol_samples.len().min(self.downchirp.len());
        let mixed: Vec<Iq> = symbol_samples[..n]
            .iter()
            .zip(&self.downchirp[..n])
            .map(|(a, b)| *a * *b)
            .collect();
        fft_padded(&mixed).iter().map(Iq::norm_sqr).collect()
    }

    /// Demodulates a single symbol starting at the beginning of
    /// `symbol_samples` (must contain at least one symbol of samples).
    pub fn demodulate_symbol(
        &self,
        symbol_samples: &[Iq],
        alphabet: Alphabet,
    ) -> Result<SymbolDecision, PhyError> {
        let sps = self.params.samples_per_symbol();
        if symbol_samples.len() < sps {
            return Err(PhyError::BufferTooShort {
                needed: sps,
                got: symbol_samples.len(),
            });
        }
        let spectrum = self.dechirp_spectrum(&symbol_samples[..sps]);
        let bin = argmax_bin(&spectrum);
        let confidence_db = peak_to_mean_db(&spectrum);

        // The dechirped tone frequency is f0 = symbol/2^SF * BW (or symbol/2^K
        // for the downlink alphabet). With oversampling the FFT length is
        // `sps` (padded to a power of two); map the bin back to a symbol.
        let fft_len = spectrum.len() as f64;
        let fs = self.params.sample_rate();
        let bin_freq = if (bin as f64) < fft_len / 2.0 {
            bin as f64 * fs / fft_len
        } else {
            (bin as f64 - fft_len) * fs / fft_len
        };
        // Negative frequencies correspond to wrapped chirps; fold into [0, BW).
        let bw = self.params.bw.hz();
        let mut freq = bin_freq;
        while freq < 0.0 {
            freq += bw;
        }
        while freq >= bw {
            freq -= bw;
        }
        let alphabet_size = match alphabet {
            Alphabet::Standard => self.params.chips_per_symbol(),
            Alphabet::Downlink => self.params.bits_per_chirp.alphabet_size(),
        };
        let symbol = ((freq / bw * alphabet_size as f64).round() as u32).rem_euclid(alphabet_size);
        Ok(SymbolDecision {
            symbol,
            confidence_db,
        })
    }

    /// Detects the start of the preamble in `buffer` by sliding a dechirp
    /// window and looking for consecutive windows whose spectra peak in the
    /// same bin with high confidence. Returns the sample index of the first
    /// preamble chirp.
    pub fn detect_preamble(&self, buffer: &SampleBuffer) -> Result<usize, PhyError> {
        let sps = self.params.samples_per_symbol();
        if buffer.len() < sps * (PREAMBLE_UPCHIRPS + 2) {
            return Err(PhyError::BufferTooShort {
                needed: sps * (PREAMBLE_UPCHIRPS + 2),
                got: buffer.len(),
            });
        }
        // Slide a symbol-length window in whole-symbol steps. Within the
        // preamble every window sees an identical up-chirp at the same
        // relative offset, so the dechirped tone lands in the same FFT bin
        // window after window. Four consecutive agreeing windows with a
        // confident peak mark the preamble.
        let step = sps;
        let mut candidate: Option<usize> = None;
        let mut streak = 0usize;
        let mut last_bin: Option<usize> = None;
        let mut offset = 0usize;
        while offset + sps <= buffer.len() {
            let spectrum = self.dechirp_spectrum(&buffer.samples[offset..offset + sps]);
            let bin = argmax_bin(&spectrum);
            let conf = peak_to_mean_db(&spectrum);
            let fft_len = spectrum.len();
            let bins_agree = match last_bin {
                None => true,
                Some(prev) => {
                    let diff = bin.abs_diff(prev);
                    diff <= 1 || diff >= fft_len - 1
                }
            };
            if conf > 8.0 && bins_agree {
                if streak == 0 {
                    candidate = Some(offset);
                }
                streak += 1;
                last_bin = Some(bin);
                if streak >= 4 {
                    return Ok(candidate.unwrap_or(offset));
                }
            } else {
                streak = 0;
                candidate = None;
                last_bin = None;
            }
            offset += step;
        }
        Err(PhyError::PreambleNotFound)
    }

    /// Demodulates a packet whose payload begins at `payload_start` (obtained
    /// from the modulator layout or from preamble detection + the 12.25-symbol
    /// offset).
    pub fn demodulate_payload(
        &self,
        buffer: &SampleBuffer,
        payload_start: usize,
        payload_symbols: usize,
        alphabet: Alphabet,
    ) -> Result<PacketDecision, PhyError> {
        let sps = self.params.samples_per_symbol();
        let needed = payload_start + payload_symbols * sps;
        if buffer.len() < needed {
            return Err(PhyError::BufferTooShort {
                needed,
                got: buffer.len(),
            });
        }
        let mut symbols = Vec::with_capacity(payload_symbols);
        let mut confidences = Vec::with_capacity(payload_symbols);
        for i in 0..payload_symbols {
            let start = payload_start + i * sps;
            let d = self.demodulate_symbol(&buffer.samples[start..start + sps], alphabet)?;
            symbols.push(d.symbol);
            confidences.push(d.confidence_db);
        }
        Ok(PacketDecision {
            symbols,
            confidences_db: confidences,
            payload_start,
        })
    }
}

/// Counts the number of differing symbols between two slices (for SER metrics).
pub fn symbol_errors(sent: &[u32], received: &[u32]) -> usize {
    sent.iter().zip(received).filter(|(a, b)| a != b).count() + sent.len().abs_diff(received.len())
}

/// Counts bit errors between two symbol streams given `bits_per_symbol`.
pub fn bit_errors(sent: &[u32], received: &[u32], bits_per_symbol: u32) -> usize {
    let common = sent.len().min(received.len());
    let mut errs = 0usize;
    for i in 0..common {
        errs += (sent[i] ^ received[i]).count_ones() as usize;
    }
    errs += sent.len().abs_diff(received.len()) * bits_per_symbol as usize;
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulator::Modulator;
    use crate::params::{Bandwidth, BitsPerChirp, SpreadingFactor};

    fn params() -> LoraParams {
        LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(3).unwrap(),
        )
    }

    #[test]
    fn clean_downlink_round_trip() {
        let p = params();
        let m = Modulator::new(p);
        let d = StandardDemodulator::new(p);
        let symbols = vec![0, 5, 7, 1, 3, 6, 2, 4];
        let (wave, layout) = m.packet(&symbols, Alphabet::Downlink).unwrap();
        let decision = d
            .demodulate_payload(
                &wave,
                layout.payload_start,
                symbols.len(),
                Alphabet::Downlink,
            )
            .unwrap();
        assert_eq!(decision.symbols, symbols);
        assert!(decision.confidences_db.iter().all(|&c| c > 20.0));
    }

    #[test]
    fn clean_standard_round_trip() {
        let p = params();
        let m = Modulator::new(p);
        let d = StandardDemodulator::new(p);
        let symbols = vec![0, 17, 64, 127, 90, 33];
        let (wave, layout) = m.packet(&symbols, Alphabet::Standard).unwrap();
        let decision = d
            .demodulate_payload(
                &wave,
                layout.payload_start,
                symbols.len(),
                Alphabet::Standard,
            )
            .unwrap();
        assert_eq!(decision.symbols, symbols);
    }

    #[test]
    fn preamble_detection_on_clean_packet() {
        let p = params();
        let m = Modulator::new(p);
        let d = StandardDemodulator::new(p);
        let (wave, _) = m
            .packet_with_guard(&[1, 2, 3, 4], Alphabet::Downlink, 2)
            .unwrap();
        let guard = 2 * p.samples_per_symbol();
        let found = d.detect_preamble(&wave).unwrap();
        // Detection should land within one symbol of the true preamble start.
        assert!(
            found.abs_diff(guard) <= p.samples_per_symbol(),
            "found {found}, expected near {guard}"
        );
    }

    #[test]
    fn buffer_too_short_is_reported() {
        let p = params();
        let d = StandardDemodulator::new(p);
        let buf = SampleBuffer::zeros(10, p.sample_rate());
        assert!(matches!(
            d.demodulate_symbol(&buf.samples, Alphabet::Downlink),
            Err(PhyError::BufferTooShort { .. })
        ));
    }

    #[test]
    fn error_counters() {
        assert_eq!(symbol_errors(&[1, 2, 3], &[1, 0, 3]), 1);
        assert_eq!(symbol_errors(&[1, 2, 3], &[1, 2]), 1);
        assert_eq!(bit_errors(&[0b11], &[0b00], 2), 2);
        assert_eq!(bit_errors(&[0b11, 0b01], &[0b11], 2), 2);
    }
}
