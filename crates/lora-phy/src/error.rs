//! Error types for the LoRa PHY substrate.

use std::fmt;

/// Errors produced by the LoRa PHY layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PhyError {
    /// The spreading factor is outside 7..=12.
    InvalidSpreadingFactor(u32),
    /// The bandwidth (kHz) is not one of 125/250/500.
    InvalidBandwidth(u32),
    /// The bits-per-chirp value is outside 1..=8.
    InvalidBitsPerChirp(u8),
    /// A symbol value exceeds the alphabet for the configured parameters.
    SymbolOutOfRange {
        /// The offending symbol value.
        symbol: u32,
        /// The number of valid symbols.
        alphabet: u32,
    },
    /// The provided buffer is too short for the requested operation.
    BufferTooShort {
        /// Samples required.
        needed: usize,
        /// Samples available.
        got: usize,
    },
    /// A frame failed its integrity check (CRC mismatch).
    CrcMismatch {
        /// CRC computed over the received payload.
        computed: u16,
        /// CRC carried in the frame.
        expected: u16,
    },
    /// A frame header could not be parsed.
    MalformedFrame(String),
    /// No preamble could be found in the provided samples.
    PreambleNotFound,
    /// FFT length was not a power of two.
    FftLengthNotPowerOfTwo(usize),
    /// Mismatched sample rates between two buffers.
    SampleRateMismatch {
        /// Sample rate of the first buffer.
        left: f64,
        /// Sample rate of the second buffer.
        right: f64,
    },
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::InvalidSpreadingFactor(v) => {
                write!(f, "invalid spreading factor {v}, expected 7..=12")
            }
            PhyError::InvalidBandwidth(v) => {
                write!(f, "invalid bandwidth {v} kHz, expected 125/250/500")
            }
            PhyError::InvalidBitsPerChirp(v) => {
                write!(f, "invalid bits-per-chirp {v}, expected 1..=8")
            }
            PhyError::SymbolOutOfRange { symbol, alphabet } => {
                write!(
                    f,
                    "symbol {symbol} out of range for alphabet size {alphabet}"
                )
            }
            PhyError::BufferTooShort { needed, got } => {
                write!(f, "buffer too short: needed {needed} samples, got {got}")
            }
            PhyError::CrcMismatch { computed, expected } => {
                write!(
                    f,
                    "CRC mismatch: computed {computed:#06x}, expected {expected:#06x}"
                )
            }
            PhyError::MalformedFrame(msg) => write!(f, "malformed frame: {msg}"),
            PhyError::PreambleNotFound => write!(f, "no LoRa preamble found in samples"),
            PhyError::FftLengthNotPowerOfTwo(n) => {
                write!(f, "FFT length {n} is not a power of two")
            }
            PhyError::SampleRateMismatch { left, right } => {
                write!(f, "sample rate mismatch: {left} Hz vs {right} Hz")
            }
        }
    }
}

impl std::error::Error for PhyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PhyError::SymbolOutOfRange {
            symbol: 9,
            alphabet: 8,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('8'));
        assert!(PhyError::PreambleNotFound.to_string().contains("preamble"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(PhyError::PreambleNotFound);
        assert!(!e.to_string().is_empty());
    }
}
