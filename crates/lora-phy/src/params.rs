//! LoRa physical-layer parameters.
//!
//! The paper evaluates Saiyan across spreading factors 7–12, bandwidths of
//! 125/250/500 kHz, and "coding rates" K = 1–5 where K is the number of bits
//! the downlink encodes in each chirp (the tag distinguishes `2^K` start
//! offsets). This module centralises those parameters and the derived
//! quantities (symbol duration, chips per symbol, data rate, Nyquist and
//! practical sampling rates) used throughout the workspace.

use crate::error::PhyError;

/// LoRa spreading factor (SF7–SF12).
///
/// A spreading factor of `SF` means each up-chirp sweeps the full bandwidth
/// over `2^SF` chips, and a standard LoRa symbol carries `SF` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpreadingFactor {
    /// SF7: 128 chips per symbol.
    Sf7,
    /// SF8: 256 chips per symbol.
    Sf8,
    /// SF9: 512 chips per symbol.
    Sf9,
    /// SF10: 1024 chips per symbol.
    Sf10,
    /// SF11: 2048 chips per symbol.
    Sf11,
    /// SF12: 4096 chips per symbol.
    Sf12,
}

impl SpreadingFactor {
    /// All spreading factors in ascending order.
    pub const ALL: [SpreadingFactor; 6] = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
        SpreadingFactor::Sf10,
        SpreadingFactor::Sf11,
        SpreadingFactor::Sf12,
    ];

    /// The numeric spreading factor (7–12).
    pub fn value(&self) -> u32 {
        match self {
            SpreadingFactor::Sf7 => 7,
            SpreadingFactor::Sf8 => 8,
            SpreadingFactor::Sf9 => 9,
            SpreadingFactor::Sf10 => 10,
            SpreadingFactor::Sf11 => 11,
            SpreadingFactor::Sf12 => 12,
        }
    }

    /// Builds a spreading factor from its numeric value.
    pub fn from_value(v: u32) -> Result<Self, PhyError> {
        match v {
            7 => Ok(SpreadingFactor::Sf7),
            8 => Ok(SpreadingFactor::Sf8),
            9 => Ok(SpreadingFactor::Sf9),
            10 => Ok(SpreadingFactor::Sf10),
            11 => Ok(SpreadingFactor::Sf11),
            12 => Ok(SpreadingFactor::Sf12),
            other => Err(PhyError::InvalidSpreadingFactor(other)),
        }
    }

    /// Chips per symbol, `2^SF`.
    pub fn chips_per_symbol(&self) -> u32 {
        1 << self.value()
    }
}

/// LoRa channel bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Bandwidth {
    /// 125 kHz.
    Khz125,
    /// 250 kHz.
    Khz250,
    /// 500 kHz.
    Khz500,
}

impl Bandwidth {
    /// All bandwidths in ascending order.
    pub const ALL: [Bandwidth; 3] = [Bandwidth::Khz125, Bandwidth::Khz250, Bandwidth::Khz500];

    /// The bandwidth in hertz.
    pub fn hz(&self) -> f64 {
        match self {
            Bandwidth::Khz125 => 125_000.0,
            Bandwidth::Khz250 => 250_000.0,
            Bandwidth::Khz500 => 500_000.0,
        }
    }

    /// The bandwidth in kilohertz.
    pub fn khz(&self) -> f64 {
        self.hz() / 1000.0
    }

    /// Builds a bandwidth from a kHz value (125/250/500).
    pub fn from_khz(khz: u32) -> Result<Self, PhyError> {
        match khz {
            125 => Ok(Bandwidth::Khz125),
            250 => Ok(Bandwidth::Khz250),
            500 => Ok(Bandwidth::Khz500),
            other => Err(PhyError::InvalidBandwidth(other)),
        }
    }
}

/// Standard LoRa forward-error-correction code rate (4/5 … 4/8), used by the
/// uplink frame coding chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CodeRate {
    /// 4/5: one parity bit per 4 data bits.
    Cr45,
    /// 4/6: two parity bits per 4 data bits.
    Cr46,
    /// 4/7: three parity bits per 4 data bits.
    Cr47,
    /// 4/8: four parity bits per 4 data bits (full Hamming(8,4)).
    Cr48,
}

impl CodeRate {
    /// All code rates.
    pub const ALL: [CodeRate; 4] = [
        CodeRate::Cr45,
        CodeRate::Cr46,
        CodeRate::Cr47,
        CodeRate::Cr48,
    ];

    /// The number of coded bits produced per 4 data bits (5–8).
    pub fn coded_bits(&self) -> usize {
        match self {
            CodeRate::Cr45 => 5,
            CodeRate::Cr46 => 6,
            CodeRate::Cr47 => 7,
            CodeRate::Cr48 => 8,
        }
    }

    /// The code-rate denominator as used by `4/denominator`.
    pub fn denominator(&self) -> usize {
        self.coded_bits()
    }

    /// The rate as a fraction (data bits / coded bits).
    pub fn rate(&self) -> f64 {
        4.0 / self.coded_bits() as f64
    }
}

/// Number of data bits the Saiyan downlink encodes in one chirp (K = 1–5).
///
/// The paper's evaluation calls this the "coding rate (CR)"; a chirp carries
/// K bits by choosing one of `2^K` evenly spaced initial frequency offsets,
/// which the tag distinguishes by the position of the amplitude peak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitsPerChirp(u8);

impl BitsPerChirp {
    /// The values swept in the paper (K = 1–5).
    pub const ALL: [BitsPerChirp; 5] = [
        BitsPerChirp(1),
        BitsPerChirp(2),
        BitsPerChirp(3),
        BitsPerChirp(4),
        BitsPerChirp(5),
    ];

    /// Creates a `BitsPerChirp`; valid values are 1..=8.
    pub fn new(k: u8) -> Result<Self, PhyError> {
        if (1..=8).contains(&k) {
            Ok(BitsPerChirp(k))
        } else {
            Err(PhyError::InvalidBitsPerChirp(k))
        }
    }

    /// The number of bits per chirp.
    pub fn bits(&self) -> u8 {
        self.0
    }

    /// The number of distinguishable symbols, `2^K`.
    pub fn alphabet_size(&self) -> u32 {
        1 << self.0
    }
}

/// Number of up-chirps in the standard LoRa preamble used by the paper.
pub const PREAMBLE_UPCHIRPS: usize = 10;

/// Number of symbol periods occupied by the sync word + start-of-frame
/// delimiter the tag waits out before the payload begins (2.25 symbols).
pub const SYNC_SYMBOLS: f64 = 2.25;

/// Payload length (in chirp symbols) used throughout the paper's evaluation.
pub const DEFAULT_PAYLOAD_SYMBOLS: usize = 32;

/// Complete parameter set describing one LoRa downlink configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoraParams {
    /// Spreading factor.
    pub sf: SpreadingFactor,
    /// Bandwidth.
    pub bw: Bandwidth,
    /// Bits encoded per chirp on the Saiyan downlink.
    pub bits_per_chirp: BitsPerChirp,
    /// Carrier centre frequency in Hz (the paper uses 433.5 MHz).
    pub carrier_hz: f64,
    /// Oversampling factor relative to the bandwidth for waveform simulation.
    pub oversampling: u32,
}

/// The carrier frequency used throughout the paper (433.5 MHz band edge).
pub const DEFAULT_CARRIER_HZ: f64 = 433.5e6;

impl Default for LoraParams {
    fn default() -> Self {
        LoraParams {
            sf: SpreadingFactor::Sf7,
            bw: Bandwidth::Khz500,
            bits_per_chirp: BitsPerChirp::new(2).expect("2 is a valid K"),
            carrier_hz: DEFAULT_CARRIER_HZ,
            oversampling: 4,
        }
    }
}

impl LoraParams {
    /// Creates a parameter set with the paper's default carrier and 4x oversampling.
    pub fn new(sf: SpreadingFactor, bw: Bandwidth, bits_per_chirp: BitsPerChirp) -> Self {
        LoraParams {
            sf,
            bw,
            bits_per_chirp,
            ..Default::default()
        }
    }

    /// Chips per symbol, `2^SF`.
    pub fn chips_per_symbol(&self) -> u32 {
        self.sf.chips_per_symbol()
    }

    /// Symbol (chirp) duration in seconds, `2^SF / BW`.
    pub fn symbol_duration(&self) -> f64 {
        self.chips_per_symbol() as f64 / self.bw.hz()
    }

    /// Waveform sample rate in Hz (`oversampling * BW`).
    pub fn sample_rate(&self) -> f64 {
        self.oversampling as f64 * self.bw.hz()
    }

    /// Number of waveform samples per symbol.
    pub fn samples_per_symbol(&self) -> usize {
        (self.symbol_duration() * self.sample_rate()).round() as usize
    }

    /// Chirp frequency slope in Hz/s (`BW / T_sym`).
    pub fn chirp_slope(&self) -> f64 {
        self.bw.hz() / self.symbol_duration()
    }

    /// Downlink data rate in bits per second: `K * BW / 2^SF`.
    pub fn downlink_data_rate(&self) -> f64 {
        self.bits_per_chirp.bits() as f64 * self.bw.hz() / self.chips_per_symbol() as f64
    }

    /// Standard (uplink) LoRa raw symbol rate in symbols per second.
    pub fn symbol_rate(&self) -> f64 {
        1.0 / self.symbol_duration()
    }

    /// Theoretical minimum (Nyquist) sampling rate of the Saiyan voltage
    /// sampler: `2 * BW / 2^(SF - K)` (paper §2.3).
    pub fn nyquist_sampling_rate(&self) -> f64 {
        2.0 * self.bw.hz()
            / 2.0_f64.powi(self.sf.value() as i32 - self.bits_per_chirp.bits() as i32)
    }

    /// Practical sampling rate adopted by Saiyan: `3.2 * BW / 2^(SF - K)`
    /// (paper §2.3, chosen to guarantee 99.9 % decoding accuracy).
    pub fn practical_sampling_rate(&self) -> f64 {
        3.2 * self.bw.hz()
            / 2.0_f64.powi(self.sf.value() as i32 - self.bits_per_chirp.bits() as i32)
    }

    /// Duration of a full downlink packet (preamble + sync + payload) in seconds.
    pub fn packet_duration(&self, payload_symbols: usize) -> f64 {
        (PREAMBLE_UPCHIRPS as f64 + SYNC_SYMBOLS + payload_symbols as f64) * self.symbol_duration()
    }

    /// Returns a copy with a different oversampling factor.
    pub fn with_oversampling(mut self, oversampling: u32) -> Self {
        self.oversampling = oversampling.max(1);
        self
    }

    /// Returns a copy with a different carrier frequency (Hz).
    pub fn with_carrier(mut self, carrier_hz: f64) -> Self {
        self.carrier_hz = carrier_hz;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_values_and_chips() {
        assert_eq!(SpreadingFactor::Sf7.chips_per_symbol(), 128);
        assert_eq!(SpreadingFactor::Sf12.chips_per_symbol(), 4096);
        assert_eq!(
            SpreadingFactor::from_value(9).unwrap(),
            SpreadingFactor::Sf9
        );
        assert!(SpreadingFactor::from_value(6).is_err());
    }

    #[test]
    fn bandwidth_conversions() {
        assert_eq!(Bandwidth::Khz125.hz(), 125_000.0);
        assert_eq!(Bandwidth::from_khz(500).unwrap(), Bandwidth::Khz500);
        assert!(Bandwidth::from_khz(200).is_err());
    }

    #[test]
    fn code_rate_fractions() {
        assert_eq!(CodeRate::Cr45.coded_bits(), 5);
        assert!((CodeRate::Cr48.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bits_per_chirp_bounds() {
        assert!(BitsPerChirp::new(0).is_err());
        assert!(BitsPerChirp::new(9).is_err());
        assert_eq!(BitsPerChirp::new(5).unwrap().alphabet_size(), 32);
    }

    #[test]
    fn symbol_duration_sf7_bw500() {
        let p = LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(2).unwrap(),
        );
        // 128 chips / 500 kHz = 256 microseconds.
        assert!((p.symbol_duration() - 256e-6).abs() < 1e-12);
        assert_eq!(p.samples_per_symbol(), 512);
    }

    #[test]
    fn downlink_data_rate_matches_formula() {
        let p = LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(5).unwrap(),
        );
        // 5 * 500000 / 128 = 19531.25 bps (paper reports ~19.6 Kbps at CR=5, 10 m).
        assert!((p.downlink_data_rate() - 19531.25).abs() < 1e-9);
    }

    #[test]
    fn sampling_rates_match_table1_examples() {
        // Table 1: SF=7, K=1 => 15.6 kHz theoretical. 2*500k/2^(7-1)=15.625 kHz.
        let p = LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(1).unwrap(),
        );
        assert!((p.nyquist_sampling_rate() - 15_625.0).abs() < 1e-9);
        // SF=12, K=5 => 2*500k/2^7 = 7.8125 kHz.
        let p2 = LoraParams::new(
            SpreadingFactor::Sf12,
            Bandwidth::Khz500,
            BitsPerChirp::new(5).unwrap(),
        );
        assert!((p2.nyquist_sampling_rate() - 7_812.5).abs() < 1e-9);
        assert!(p2.practical_sampling_rate() > p2.nyquist_sampling_rate());
    }

    #[test]
    fn packet_duration_includes_preamble_and_sync() {
        let p = LoraParams::default();
        let d = p.packet_duration(32);
        let expected = (10.0 + 2.25 + 32.0) * p.symbol_duration();
        assert!((d - expected).abs() < 1e-12);
    }
}
