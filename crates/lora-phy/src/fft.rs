//! A small self-contained radix-2 FFT.
//!
//! The standard LoRa receiver demodulates by dechirping and taking an FFT;
//! the correlator in Super Saiyan and several experiment harnesses also need
//! spectra. To keep the dependency set to the approved list we implement an
//! iterative radix-2 decimation-in-time FFT here. It is not the fastest FFT
//! in the world but it is allocation-free per call (aside from the output),
//! exact enough for simulation, and covered by round-trip tests.

use std::f64::consts::PI;

use crate::error::PhyError;
use crate::iq::Iq;

/// Returns `true` when `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Next power of two greater than or equal to `n`.
pub fn next_power_of_two(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let mut p = 1;
    while p < n {
        p <<= 1;
    }
    p
}

/// In-place iterative radix-2 FFT.
///
/// `inverse` selects the inverse transform; the inverse is scaled by `1/N` so
/// that `ifft(fft(x)) == x`.
fn fft_in_place(data: &mut [Iq], inverse: bool) -> Result<(), PhyError> {
    let n = data.len();
    if !is_power_of_two(n) {
        return Err(PhyError::FftLengthNotPowerOfTwo(n));
    }
    if n <= 1 {
        return Ok(());
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Iq::phasor(ang);
        let mut i = 0;
        while i < n {
            let mut w = Iq::ONE;
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }

    if inverse {
        let scale = 1.0 / n as f64;
        for x in data.iter_mut() {
            *x = x.scale(scale);
        }
    }
    Ok(())
}

/// Computes the forward FFT of `input`, returning a new vector.
///
/// The input length must be a power of two.
pub fn fft(input: &[Iq]) -> Result<Vec<Iq>, PhyError> {
    let mut data = input.to_vec();
    fft_in_place(&mut data, false)?;
    Ok(data)
}

/// Computes the inverse FFT of `input`, returning a new vector scaled by `1/N`.
pub fn ifft(input: &[Iq]) -> Result<Vec<Iq>, PhyError> {
    let mut data = input.to_vec();
    fft_in_place(&mut data, true)?;
    Ok(data)
}

/// Computes the FFT after zero-padding the input to the next power of two.
pub fn fft_padded(input: &[Iq]) -> Vec<Iq> {
    let n = next_power_of_two(input.len());
    let mut data = Vec::with_capacity(n);
    data.extend_from_slice(input);
    data.resize(n, Iq::ZERO);
    fft_in_place(&mut data, false).expect("padded length is a power of two");
    data
}

/// Returns the squared-magnitude spectrum of `input` (zero-padded as needed).
pub fn power_spectrum(input: &[Iq]) -> Vec<f64> {
    fft_padded(input).iter().map(Iq::norm_sqr).collect()
}

/// Index of the largest-magnitude FFT bin.
pub fn argmax_bin(spectrum: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_val = f64::NEG_INFINITY;
    for (i, &v) in spectrum.iter().enumerate() {
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    best
}

/// Ratio (in dB) between the strongest spectral bin and the mean of the rest;
/// a simple peak-to-noise-floor metric used by detection experiments.
pub fn peak_to_mean_db(spectrum: &[f64]) -> f64 {
    if spectrum.len() < 2 {
        return 0.0;
    }
    let peak_idx = argmax_bin(spectrum);
    let peak = spectrum[peak_idx];
    if peak <= 0.0 {
        // An all-zero (silent) spectrum has no peak at all.
        return 0.0;
    }
    let rest: f64 = spectrum
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != peak_idx)
        .map(|(_, v)| v)
        .sum::<f64>()
        / (spectrum.len() - 1) as f64;
    if rest <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * (peak / rest).log10()
}

/// Applies a Hann window to the samples in place (used before spectra for
/// display-oriented experiments such as Fig. 10).
pub fn hann_window(data: &mut [Iq]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    for (i, x) in data.iter_mut().enumerate() {
        let w = 0.5 * (1.0 - (2.0 * PI * i as f64 / (n - 1) as f64).cos());
        *x = x.scale(w);
    }
}

/// Circular cross-correlation of two equal-length sequences via FFT:
/// `corr[k] = sum_n a[n] * conj(b[n-k])`.
pub fn circular_cross_correlation(a: &[Iq], b: &[Iq]) -> Result<Vec<Iq>, PhyError> {
    if a.len() != b.len() {
        return Err(PhyError::BufferTooShort {
            needed: a.len(),
            got: b.len(),
        });
    }
    let n = next_power_of_two(a.len());
    let mut fa = a.to_vec();
    fa.resize(n, Iq::ZERO);
    let mut fb = b.to_vec();
    fb.resize(n, Iq::ZERO);
    fft_in_place(&mut fa, false)?;
    fft_in_place(&mut fb, false)?;
    let mut prod: Vec<Iq> = fa.iter().zip(&fb).map(|(x, y)| *x * y.conj()).collect();
    fft_in_place(&mut prod, true)?;
    prod.truncate(a.len());
    Ok(prod)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_helpers() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(12));
        assert_eq!(next_power_of_two(5), 8);
        assert_eq!(next_power_of_two(8), 8);
        assert_eq!(next_power_of_two(1), 1);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let data = vec![Iq::ONE; 12];
        assert!(fft(&data).is_err());
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut input = vec![Iq::ZERO; 64];
        input[0] = Iq::ONE;
        let out = fft(&input).unwrap();
        for bin in out {
            assert!((bin.re - 1.0).abs() < 1e-9 && bin.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_locates_tone() {
        let n = 256;
        let k = 37;
        let input: Vec<Iq> = (0..n)
            .map(|i| Iq::phasor(2.0 * PI * k as f64 * i as f64 / n as f64))
            .collect();
        let spec: Vec<f64> = fft(&input).unwrap().iter().map(Iq::norm_sqr).collect();
        assert_eq!(argmax_bin(&spec), k);
        assert!(peak_to_mean_db(&spec) > 40.0);
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 128;
        let input: Vec<Iq> = (0..n)
            .map(|i| Iq::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let back = ifft(&fft(&input).unwrap()).unwrap();
        for (a, b) in input.iter().zip(&back) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn correlation_peaks_at_lag_zero_for_identical_inputs() {
        let n = 128;
        let sig: Vec<Iq> = (0..n).map(|i| Iq::phasor(0.05 * (i * i) as f64)).collect();
        let corr = circular_cross_correlation(&sig, &sig).unwrap();
        let mags: Vec<f64> = corr.iter().map(Iq::abs).collect();
        assert_eq!(argmax_bin(&mags), 0);
        assert!((mags[0] - n as f64).abs() < 1e-6);
    }

    #[test]
    fn hann_window_zeroes_edges() {
        let mut data = vec![Iq::ONE; 32];
        hann_window(&mut data);
        assert!(data[0].abs() < 1e-12);
        assert!(data[31].abs() < 1e-12);
        assert!(data[16].abs() > 0.9);
    }
}
