//! Chirp generation: the fundamental LoRa waveform.
//!
//! A LoRa symbol is an up-chirp whose instantaneous frequency grows linearly
//! from an initial offset `f0` to the bandwidth edge, then wraps back to zero
//! and continues (paper Eq. 1 and Fig. 3(a)). The symbol value is encoded in
//! `f0`. The Saiyan downlink restricts the alphabet to `2^K` evenly spaced
//! offsets so that the amplitude peaks produced by the SAW transform are far
//! apart in time.

use std::f64::consts::PI;

use crate::error::PhyError;
use crate::iq::{Iq, SampleBuffer};
use crate::params::LoraParams;

/// Chirp direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChirpDirection {
    /// Frequency grows over the symbol (standard data/preamble chirp).
    Up,
    /// Frequency decreases over the symbol (used by the LoRa SFD).
    Down,
}

/// Generator for complex-baseband LoRa chirps.
///
/// The generator produces baseband IQ relative to the configured carrier, so a
/// symbol's instantaneous frequency sweeps `[0, BW)` Hz above the carrier. The
/// amplitude is unit by default and is scaled by the RF channel later.
#[derive(Debug, Clone)]
pub struct ChirpGenerator {
    params: LoraParams,
}

impl ChirpGenerator {
    /// Creates a generator for the given parameter set.
    pub fn new(params: LoraParams) -> Self {
        ChirpGenerator { params }
    }

    /// The parameters this generator was built with.
    pub fn params(&self) -> &LoraParams {
        &self.params
    }

    /// Generates a single chirp symbol.
    ///
    /// `symbol` selects the initial frequency offset `f0 = symbol / 2^SF * BW`
    /// for a standard LoRa symbol (`symbol` in `0..2^SF`).
    pub fn symbol_chirp(
        &self,
        symbol: u32,
        direction: ChirpDirection,
    ) -> Result<SampleBuffer, PhyError> {
        let chips = self.params.chips_per_symbol();
        if symbol >= chips {
            return Err(PhyError::SymbolOutOfRange {
                symbol,
                alphabet: chips,
            });
        }
        let f0 = symbol as f64 / chips as f64 * self.params.bw.hz();
        Ok(self.chirp_from_offset(f0, direction))
    }

    /// Generates a chirp whose initial frequency offset is `f0` Hz above the
    /// carrier. The frequency wraps to zero when it reaches the bandwidth.
    pub fn chirp_from_offset(&self, f0: f64, direction: ChirpDirection) -> SampleBuffer {
        let n = self.params.samples_per_symbol();
        let fs = self.params.sample_rate();
        let bw = self.params.bw.hz();
        let t_sym = self.params.symbol_duration();
        let slope = bw / t_sym;
        let mut samples = Vec::with_capacity(n);
        // Integrate the instantaneous frequency to obtain phase so the
        // waveform is continuous across the wrap point.
        let mut phase = 0.0_f64;
        for i in 0..n {
            let t = i as f64 / fs;
            let f = match direction {
                ChirpDirection::Up => {
                    let raw = f0 + slope * t;
                    if raw >= bw {
                        raw - bw
                    } else {
                        raw
                    }
                }
                ChirpDirection::Down => {
                    let raw = f0 - slope * t;
                    if raw < 0.0 {
                        raw + bw
                    } else {
                        raw
                    }
                }
            };
            samples.push(Iq::phasor(phase));
            phase += 2.0 * PI * f / fs;
        }
        SampleBuffer::new(samples, fs)
    }

    /// Generates a downlink chirp carrying `symbol` of an alphabet with
    /// `2^K` entries (K = bits per chirp).
    ///
    /// The offsets are spaced `BW / 2^K` apart so the amplitude-peak times
    /// produced by the SAW transform are maximally separated.
    pub fn downlink_chirp(&self, symbol: u32) -> Result<SampleBuffer, PhyError> {
        let alphabet = self.params.bits_per_chirp.alphabet_size();
        if symbol >= alphabet {
            return Err(PhyError::SymbolOutOfRange { symbol, alphabet });
        }
        let f0 = symbol as f64 / alphabet as f64 * self.params.bw.hz();
        Ok(self.chirp_from_offset(f0, ChirpDirection::Up))
    }

    /// Generates the base up-chirp (symbol 0), used by the preamble and as the
    /// dechirping reference.
    pub fn base_upchirp(&self) -> SampleBuffer {
        self.chirp_from_offset(0.0, ChirpDirection::Up)
    }

    /// Generates the base down-chirp (conjugate sweep), used by the SFD and by
    /// the standard receiver for dechirping.
    pub fn base_downchirp(&self) -> SampleBuffer {
        self.chirp_from_offset(0.0, ChirpDirection::Down)
    }

    /// The instantaneous frequency trajectory (Hz above carrier) of an
    /// up-chirp starting at offset `f0`, sampled at the waveform rate.
    ///
    /// This is the analytic counterpart of
    /// [`SampleBuffer::instantaneous_frequency`] and is used by analog models
    /// (e.g. the SAW filter) that need the true frequency rather than a
    /// phase-difference estimate.
    pub fn frequency_trajectory(&self, f0: f64) -> Vec<f64> {
        let n = self.params.samples_per_symbol();
        let fs = self.params.sample_rate();
        let bw = self.params.bw.hz();
        let slope = self.params.chirp_slope();
        (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let raw = f0 + slope * t;
                if raw >= bw {
                    raw - bw
                } else {
                    raw
                }
            })
            .collect()
    }

    /// Time (seconds from symbol start) at which an up-chirp that starts at
    /// offset `f0` reaches the bandwidth edge — i.e. where the SAW-transformed
    /// amplitude peaks (paper Fig. 3(b)).
    pub fn peak_time(&self, f0: f64) -> f64 {
        let bw = self.params.bw.hz();
        (bw - f0) / self.params.chirp_slope()
    }

    /// Peak time for a downlink symbol of the `2^K` alphabet.
    pub fn downlink_peak_time(&self, symbol: u32) -> Result<f64, PhyError> {
        let alphabet = self.params.bits_per_chirp.alphabet_size();
        if symbol >= alphabet {
            return Err(PhyError::SymbolOutOfRange { symbol, alphabet });
        }
        let f0 = symbol as f64 / alphabet as f64 * self.params.bw.hz();
        Ok(self.peak_time(f0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bandwidth, BitsPerChirp, SpreadingFactor};

    fn params() -> LoraParams {
        LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(2).unwrap(),
        )
    }

    #[test]
    fn base_chirp_has_unit_amplitude() {
        let gen = ChirpGenerator::new(params());
        let chirp = gen.base_upchirp();
        for s in &chirp.samples {
            assert!((s.abs() - 1.0).abs() < 1e-12);
        }
        assert_eq!(chirp.len(), params().samples_per_symbol());
    }

    #[test]
    fn upchirp_frequency_sweeps_bandwidth() {
        let gen = ChirpGenerator::new(params());
        let chirp = gen.base_upchirp();
        let freqs = chirp.instantaneous_frequency();
        // Early in the symbol the frequency should be near 0, late it should
        // approach BW (modulo aliasing of the estimator near fs/2).
        assert!(freqs[2].abs() < 20_000.0);
        let late = freqs[freqs.len() / 2];
        assert!(late > 200_000.0, "late frequency {late}");
    }

    #[test]
    fn symbol_out_of_range_is_rejected() {
        let gen = ChirpGenerator::new(params());
        assert!(gen.symbol_chirp(128, ChirpDirection::Up).is_err());
        assert!(gen.downlink_chirp(4).is_err());
        assert!(gen.downlink_chirp(3).is_ok());
    }

    #[test]
    fn peak_time_is_earlier_for_higher_symbols() {
        // A larger initial offset reaches the bandwidth edge sooner.
        let gen = ChirpGenerator::new(params());
        let t0 = gen.downlink_peak_time(0).unwrap();
        let t3 = gen.downlink_peak_time(3).unwrap();
        assert!(t3 < t0);
        // Symbol 0 peaks exactly at the symbol duration.
        assert!((t0 - params().symbol_duration()).abs() < 1e-12);
    }

    #[test]
    fn frequency_trajectory_wraps() {
        let gen = ChirpGenerator::new(params());
        let f0 = 400_000.0;
        let traj = gen.frequency_trajectory(f0);
        assert!((traj[0] - f0).abs() < 1.0);
        // Must wrap below BW at some point and never exceed it.
        assert!(traj.iter().all(|&f| (0.0..500_000.0 + 1.0).contains(&f)));
        assert!(traj.iter().any(|&f| f < f0));
    }

    #[test]
    fn downchirp_is_conjugate_sweep() {
        let gen = ChirpGenerator::new(params());
        let up = gen.base_upchirp();
        let down = gen.base_downchirp();
        // Multiplying an up-chirp by a down-chirp of the same slope yields an
        // (almost) constant-frequency product.
        let product: Vec<Iq> = up
            .samples
            .iter()
            .zip(&down.samples)
            .map(|(a, b)| *a * *b)
            .collect();
        let buf = SampleBuffer::new(product, up.sample_rate);
        let freqs = buf.instantaneous_frequency();
        let n = freqs.len();
        // Check a window away from the wrap discontinuity.
        let window = &freqs[n / 8..n / 4];
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        let var = window.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / window.len() as f64;
        assert!(var.sqrt() < 1_000.0, "std {} too high", var.sqrt());
    }
}
