//! Diagonal interleaving.
//!
//! LoRa interleaves the coded bits of a block across symbols so that a single
//! corrupted symbol spreads its damage over many code words, each of which the
//! Hamming code can then repair. We implement the classic diagonal
//! interleaver over a block of `SF` code words of `CR` coded bits each.

use crate::error::PhyError;

/// Interleaves a block of `rows` code words, each `cols` bits wide.
///
/// Input: `rows` code words (LSB-first bit significance), each holding `cols`
/// valid bits. Output: `cols` symbols of `rows` bits each, where output symbol
/// `j` bit `i` equals input word `i` bit `(i + j) mod cols` — the standard
/// diagonal pattern.
pub fn interleave_block(words: &[u16], cols: usize) -> Result<Vec<u16>, PhyError> {
    let rows = words.len();
    if rows == 0 || cols == 0 {
        return Err(PhyError::MalformedFrame(
            "interleaver block must be non-empty".to_string(),
        ));
    }
    if cols > 16 || rows > 16 {
        return Err(PhyError::MalformedFrame(
            "interleaver supports at most 16x16 blocks".to_string(),
        ));
    }
    let mut out = vec![0u16; cols];
    for (i, &word) in words.iter().enumerate() {
        for (j, slot) in out.iter_mut().enumerate() {
            let src_bit = (i + j) % cols;
            let bit = (word >> src_bit) & 1;
            *slot |= bit << i;
        }
    }
    Ok(out)
}

/// Reverses [`interleave_block`].
pub fn deinterleave_block(symbols: &[u16], rows: usize) -> Result<Vec<u16>, PhyError> {
    let cols = symbols.len();
    if rows == 0 || cols == 0 {
        return Err(PhyError::MalformedFrame(
            "deinterleaver block must be non-empty".to_string(),
        ));
    }
    if cols > 16 || rows > 16 {
        return Err(PhyError::MalformedFrame(
            "deinterleaver supports at most 16x16 blocks".to_string(),
        ));
    }
    let mut out = vec![0u16; rows];
    for (j, &sym) in symbols.iter().enumerate() {
        for (i, slot) in out.iter_mut().enumerate() {
            let bit = (sym >> i) & 1;
            let dst_bit = (i + j) % cols;
            *slot |= bit << dst_bit;
        }
    }
    Ok(out)
}

/// A convenience wrapper that interleaves a stream of code words in blocks of
/// `rows`, padding the final block with zero words.
#[derive(Debug, Clone)]
pub struct Interleaver {
    rows: usize,
    cols: usize,
}

impl Interleaver {
    /// Creates an interleaver for blocks of `rows` code words of `cols` bits.
    pub fn new(rows: usize, cols: usize) -> Result<Self, PhyError> {
        if rows == 0 || cols == 0 || rows > 16 || cols > 16 {
            return Err(PhyError::MalformedFrame(format!(
                "invalid interleaver geometry {rows}x{cols}"
            )));
        }
        Ok(Interleaver { rows, cols })
    }

    /// Rows (code words per block).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (coded bits per word; also bits per output symbol group).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Interleaves a whole stream, zero-padding the last block.
    pub fn interleave(&self, words: &[u16]) -> Vec<u16> {
        let mut out = Vec::with_capacity(words.len().div_ceil(self.rows) * self.cols);
        for chunk in words.chunks(self.rows) {
            let mut block: Vec<u16> = chunk.to_vec();
            block.resize(self.rows, 0);
            out.extend(interleave_block(&block, self.cols).expect("validated geometry"));
        }
        out
    }

    /// Deinterleaves a stream produced by [`Interleaver::interleave`].
    /// `original_len` trims the zero padding added to the final block.
    pub fn deinterleave(&self, symbols: &[u16], original_len: usize) -> Vec<u16> {
        let mut out = Vec::with_capacity(original_len);
        for chunk in symbols.chunks(self.cols) {
            if chunk.len() < self.cols {
                break;
            }
            out.extend(deinterleave_block(chunk, self.rows).expect("validated geometry"));
        }
        out.truncate(original_len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trip() {
        let words = vec![0b10110, 0b01101, 0b11000, 0b00111];
        let cols = 5;
        let inter = interleave_block(&words, cols).unwrap();
        assert_eq!(inter.len(), cols);
        let back = deinterleave_block(&inter, words.len()).unwrap();
        assert_eq!(back, words);
    }

    #[test]
    fn single_symbol_corruption_spreads_across_words() {
        let words = vec![0b1111, 0b0000, 0b1010, 0b0101];
        let cols = 4;
        let mut inter = interleave_block(&words, cols).unwrap();
        // Corrupt every bit of one interleaved symbol.
        inter[2] ^= 0b1111;
        let back = deinterleave_block(&inter, words.len()).unwrap();
        // Each original word should have exactly one flipped bit.
        for (orig, got) in words.iter().zip(&back) {
            assert_eq!((orig ^ got).count_ones(), 1);
        }
    }

    #[test]
    fn stream_round_trip_with_padding() {
        let il = Interleaver::new(7, 8).unwrap();
        let words: Vec<u16> = (0..23).map(|i| (i * 37 % 256) as u16).collect();
        let inter = il.interleave(&words);
        let back = il.deinterleave(&inter, words.len());
        assert_eq!(back, words);
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        assert!(Interleaver::new(0, 5).is_err());
        assert!(Interleaver::new(5, 0).is_err());
        assert!(Interleaver::new(17, 5).is_err());
        assert!(interleave_block(&[], 4).is_err());
    }
}
