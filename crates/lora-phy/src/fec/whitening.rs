//! Data whitening.
//!
//! LoRa XORs the payload with a pseudo-random sequence so long runs of
//! identical bits do not bias the modulated spectrum. Whitening is its own
//! inverse, which the tests exercise. We use a 9-bit LFSR (polynomial
//! x^9 + x^5 + 1, the sequence used by several LoRa PHY descriptions); the
//! precise polynomial does not matter for the simulation as long as both ends
//! agree.

/// Default seed loaded into the whitening LFSR at the start of every frame.
pub const DEFAULT_SEED: u16 = 0x1FF;

/// A 9-bit linear-feedback shift register producing the whitening sequence.
#[derive(Debug, Clone)]
pub struct Whitener {
    state: u16,
}

impl Default for Whitener {
    fn default() -> Self {
        Whitener::new(DEFAULT_SEED)
    }
}

impl Whitener {
    /// Creates a whitener with an explicit 9-bit seed (0 is replaced by the default).
    pub fn new(seed: u16) -> Self {
        let seed = seed & 0x1FF;
        Whitener {
            state: if seed == 0 { DEFAULT_SEED } else { seed },
        }
    }

    /// Produces the next whitening byte.
    pub fn next_byte(&mut self) -> u8 {
        let mut out = 0u8;
        for bit in 0..8 {
            let fb = ((self.state >> 8) ^ (self.state >> 4)) & 1;
            let lsb = (self.state >> 8) & 1;
            out |= (lsb as u8) << bit;
            self.state = ((self.state << 1) | fb) & 0x1FF;
        }
        out
    }

    /// Whitens (or de-whitens) a buffer in place.
    pub fn apply(&mut self, data: &mut [u8]) {
        for b in data.iter_mut() {
            *b ^= self.next_byte();
        }
    }
}

/// Convenience: returns a whitened copy of `data` using the default seed.
pub fn whiten(data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    Whitener::default().apply(&mut out);
    out
}

/// Convenience: de-whitens `data` (identical to [`whiten`], included for
/// readability at call sites).
pub fn dewhiten(data: &[u8]) -> Vec<u8> {
    whiten(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitening_is_an_involution() {
        let data: Vec<u8> = (0..200u8).collect();
        assert_eq!(dewhiten(&whiten(&data)), data);
    }

    #[test]
    fn whitening_changes_data() {
        let data = vec![0u8; 64];
        let w = whiten(&data);
        assert_ne!(w, data);
        // The whitening sequence should not be all zeros or all ones.
        assert!(w.iter().any(|&b| b != 0));
        assert!(w.iter().any(|&b| b != 0xFF));
    }

    #[test]
    fn sequence_has_no_short_period() {
        let mut w = Whitener::default();
        let seq: Vec<u8> = (0..64).map(|_| w.next_byte()).collect();
        // A maximal-length 9-bit LFSR has period 511 bits (~64 bytes); the
        // first and second halves of the byte sequence must differ.
        assert_ne!(&seq[..32], &seq[32..]);
    }

    #[test]
    fn zero_seed_is_replaced() {
        let mut a = Whitener::new(0);
        let mut b = Whitener::new(DEFAULT_SEED);
        assert_eq!(a.next_byte(), b.next_byte());
    }
}
