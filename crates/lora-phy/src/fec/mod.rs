//! LoRa coding chain: Gray mapping, Hamming FEC, whitening, and interleaving.
//!
//! The full uplink coding chain is
//! `bytes -> whitening -> Hamming nibble coding -> interleaving -> Gray -> symbols`
//! and the reverse on receive. The Saiyan downlink uses a reduced alphabet
//! (see [`crate::downlink`]) but reuses the whitening and Hamming stages.

pub mod gray;
pub mod hamming;
pub mod interleaver;
pub mod whitening;

pub use gray::{gray_decode, gray_encode, hamming_distance};
pub use hamming::{
    decode_bytes, decode_nibble, encode_bytes, encode_nibble, DecodeStats, NibbleDecode,
};
pub use interleaver::{deinterleave_block, interleave_block, Interleaver};
pub use whitening::{dewhiten, whiten, Whitener};

use crate::error::PhyError;
use crate::params::{CodeRate, SpreadingFactor};

/// Encodes payload bytes into LoRa symbol values using the full coding chain.
///
/// Returns symbol values in `0..2^SF`.
pub fn encode_payload(
    data: &[u8],
    sf: SpreadingFactor,
    cr: CodeRate,
) -> Result<Vec<u32>, PhyError> {
    let whitened = whiten(data);
    let coded = encode_bytes(&whitened, cr);
    let rows = sf.value() as usize;
    let cols = cr.coded_bits();
    let il = Interleaver::new(rows, cols)?;
    let words: Vec<u16> = coded.iter().map(|&c| c as u16).collect();
    let interleaved = il.interleave(&words);
    Ok(interleaved
        .iter()
        .map(|&s| gray_encode(s as u32) & ((1 << sf.value()) - 1))
        .collect())
}

/// Decodes LoRa symbol values back into payload bytes, reversing
/// [`encode_payload`]. `payload_len` is the expected number of data bytes.
pub fn decode_payload(
    symbols: &[u32],
    sf: SpreadingFactor,
    cr: CodeRate,
    payload_len: usize,
) -> Result<(Vec<u8>, DecodeStats), PhyError> {
    let rows = sf.value() as usize;
    let cols = cr.coded_bits();
    let il = Interleaver::new(rows, cols)?;
    let degray: Vec<u16> = symbols.iter().map(|&s| gray_decode(s) as u16).collect();
    let codewords = il.deinterleave(&degray, payload_len * 2);
    let codes: Vec<u8> = codewords.iter().map(|&w| w as u8).collect();
    let (whitened, stats) = decode_bytes(&codes, cr);
    let mut data = dewhiten(&whitened);
    data.truncate(payload_len);
    Ok((data, stats))
}

/// Number of chirp symbols required to carry `payload_len` bytes at the given
/// SF and code rate (including interleaver block padding).
pub fn symbols_for_payload(payload_len: usize, sf: SpreadingFactor, cr: CodeRate) -> usize {
    let codewords = payload_len * 2;
    let blocks = codewords.div_ceil(sf.value() as usize);
    blocks * cr.coded_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trip_all_sf_cr() {
        let data: Vec<u8> = (0..40u8)
            .map(|i| i.wrapping_mul(19).wrapping_add(3))
            .collect();
        for sf in SpreadingFactor::ALL {
            for cr in CodeRate::ALL {
                let symbols = encode_payload(&data, sf, cr).unwrap();
                assert_eq!(symbols.len(), symbols_for_payload(data.len(), sf, cr));
                assert!(symbols.iter().all(|&s| s < sf.chips_per_symbol()));
                let (back, stats) = decode_payload(&symbols, sf, cr, data.len()).unwrap();
                assert_eq!(back, data, "sf {sf:?} cr {cr:?}");
                assert_eq!(stats.detected, 0);
            }
        }
    }

    #[test]
    fn single_symbol_error_is_corrected_at_cr48() {
        let data: Vec<u8> = (0..16u8).collect();
        let sf = SpreadingFactor::Sf8;
        let cr = CodeRate::Cr48;
        let mut symbols = encode_payload(&data, sf, cr).unwrap();
        // Flip one bit in one symbol: the interleaver spreads this into single
        // bit errors in several code words, which Hamming(8,4) corrects.
        symbols[3] ^= 0b1;
        let (back, stats) = decode_payload(&symbols, sf, cr, data.len()).unwrap();
        assert_eq!(back, data);
        assert!(stats.corrected >= 1);
    }

    #[test]
    fn symbols_for_payload_scales_with_cr() {
        let n45 = symbols_for_payload(32, SpreadingFactor::Sf7, CodeRate::Cr45);
        let n48 = symbols_for_payload(32, SpreadingFactor::Sf7, CodeRate::Cr48);
        assert!(n48 > n45);
    }
}
