//! Gray coding of LoRa symbol values.
//!
//! LoRa maps coded bits onto chirp symbols through a Gray code so that a
//! ±1-bin error in the receiver's FFT peak produces only a single bit error.
//! The same property helps Saiyan's peak-position decoder: a peak detected one
//! sampling slot early or late flips one bit instead of many.

/// Encodes a binary value into its Gray-coded representation.
#[inline]
pub fn gray_encode(value: u32) -> u32 {
    value ^ (value >> 1)
}

/// Decodes a Gray-coded value back to binary.
#[inline]
pub fn gray_decode(gray: u32) -> u32 {
    let mut value = gray;
    let mut shift = 1;
    while (gray >> shift) != 0 && shift < 32 {
        value ^= gray >> shift;
        shift <<= 1;
    }
    // The loop above is a standard unrolled prefix XOR; recompute exactly.
    let mut v = gray;
    let mut g = gray >> 1;
    while g != 0 {
        v ^= g;
        g >>= 1;
    }
    let _ = value;
    v
}

/// Returns the number of differing bits between two values.
#[inline]
pub fn hamming_distance(a: u32, b: u32) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_round_trip() {
        for v in 0u32..4096 {
            assert_eq!(gray_decode(gray_encode(v)), v);
        }
    }

    #[test]
    fn adjacent_values_differ_in_one_bit() {
        for v in 0u32..4095 {
            let d = hamming_distance(gray_encode(v), gray_encode(v + 1));
            assert_eq!(d, 1, "gray codes of {v} and {} differ in {d} bits", v + 1);
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(gray_encode(0), 0);
        assert_eq!(gray_encode(1), 1);
        assert_eq!(gray_encode(2), 3);
        assert_eq!(gray_encode(3), 2);
        assert_eq!(gray_encode(7), 4);
    }
}
