//! LoRa Hamming forward error correction.
//!
//! LoRa protects each nibble (4 data bits) with 1–4 parity bits depending on
//! the code rate (4/5 … 4/8). CR 4/5 and 4/6 can only detect errors, CR 4/7
//! can correct one bit, and CR 4/8 (extended Hamming(8,4)) corrects one bit
//! and detects two. This module implements encode/decode for all four rates,
//! operating on nibble streams.

use crate::params::CodeRate;

/// Result of decoding one coded nibble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NibbleDecode {
    /// The recovered 4-bit data value.
    pub nibble: u8,
    /// Whether a single-bit error was corrected.
    pub corrected: bool,
    /// Whether an uncorrectable error was detected.
    pub error_detected: bool,
}

/// Parity bit p_i computed as XOR of selected data bits (d3 d2 d1 d0, with d0 LSB).
#[inline]
fn parity(nibble: u8, mask: u8) -> u8 {
    ((nibble & mask).count_ones() & 1) as u8
}

/// Encodes a 4-bit nibble at the given code rate.
///
/// Bit layout of the returned code word (LSB-first): data bits d0..d3 occupy
/// bits 0..=3, parity bits follow in bits 4.. (as many as the rate requires).
pub fn encode_nibble(nibble: u8, cr: CodeRate) -> u8 {
    let d = nibble & 0x0F;
    // Classic Hamming(7,4) parities over (d0,d1,d3), (d0,d2,d3), (d1,d2,d3),
    // plus an overall parity for the extended (8,4) code.
    let p0 = parity(d, 0b1011);
    let p1 = parity(d, 0b1101);
    let p2 = parity(d, 0b1110);
    let mut code = d;
    match cr {
        CodeRate::Cr45 => {
            // Single overall parity bit.
            let p = parity(d, 0b1111);
            code |= p << 4;
        }
        CodeRate::Cr46 => {
            code |= p0 << 4;
            code |= p1 << 5;
        }
        CodeRate::Cr47 => {
            code |= p0 << 4;
            code |= p1 << 5;
            code |= p2 << 6;
        }
        CodeRate::Cr48 => {
            code |= p0 << 4;
            code |= p1 << 5;
            code |= p2 << 6;
            let overall = parity(code, 0b0111_1111);
            code |= overall << 7;
        }
    }
    code
}

/// Decodes one coded nibble at the given code rate.
pub fn decode_nibble(code: u8, cr: CodeRate) -> NibbleDecode {
    let d = code & 0x0F;
    match cr {
        CodeRate::Cr45 => {
            let p = (code >> 4) & 1;
            let expect = parity(d, 0b1111);
            NibbleDecode {
                nibble: d,
                corrected: false,
                error_detected: p != expect,
            }
        }
        CodeRate::Cr46 => {
            let p0 = (code >> 4) & 1;
            let p1 = (code >> 5) & 1;
            let e0 = p0 != parity(d, 0b1011);
            let e1 = p1 != parity(d, 0b1101);
            NibbleDecode {
                nibble: d,
                corrected: false,
                error_detected: e0 || e1,
            }
        }
        CodeRate::Cr47 => decode_hamming74(code),
        CodeRate::Cr48 => decode_hamming84(code),
    }
}

/// Decodes a Hamming(7,4) word with single-bit correction.
fn decode_hamming74(code: u8) -> NibbleDecode {
    let d = code & 0x0F;
    let p0 = (code >> 4) & 1;
    let p1 = (code >> 5) & 1;
    let p2 = (code >> 6) & 1;
    let s0 = p0 ^ parity(d, 0b1011);
    let s1 = p1 ^ parity(d, 0b1101);
    let s2 = p2 ^ parity(d, 0b1110);
    let syndrome = (s2 << 2) | (s1 << 1) | s0;
    if syndrome == 0 {
        return NibbleDecode {
            nibble: d,
            corrected: false,
            error_detected: false,
        };
    }
    // Map syndrome to the erroneous bit position within the 7-bit word.
    // Syndromes: data bits participate in these parity sets:
    //   d0: p0,p1      -> s = 0b011
    //   d1: p0,p2      -> s = 0b101
    //   d2: p1,p2      -> s = 0b110
    //   d3: p0,p1,p2   -> s = 0b111
    //   p0 alone       -> s = 0b001
    //   p1 alone       -> s = 0b010
    //   p2 alone       -> s = 0b100
    let bit = match syndrome {
        0b011 => Some(0),
        0b101 => Some(1),
        0b110 => Some(2),
        0b111 => Some(3),
        0b001 => Some(4),
        0b010 => Some(5),
        0b100 => Some(6),
        _ => None,
    };
    match bit {
        Some(b) => {
            let fixed = code ^ (1 << b);
            NibbleDecode {
                nibble: fixed & 0x0F,
                corrected: true,
                error_detected: false,
            }
        }
        None => NibbleDecode {
            nibble: d,
            corrected: false,
            error_detected: true,
        },
    }
}

/// Decodes an extended Hamming(8,4) word: corrects single-bit errors and
/// detects (without mis-correcting) double-bit errors.
fn decode_hamming84(code: u8) -> NibbleDecode {
    let overall = parity(code, 0b1111_1111);
    let inner = decode_hamming74(code & 0x7F);
    let d = code & 0x0F;
    let p0 = (code >> 4) & 1;
    let p1 = (code >> 5) & 1;
    let p2 = (code >> 6) & 1;
    let s0 = p0 ^ parity(d, 0b1011);
    let s1 = p1 ^ parity(d, 0b1101);
    let s2 = p2 ^ parity(d, 0b1110);
    let syndrome_nonzero = (s0 | s1 | s2) != 0;

    if !syndrome_nonzero && overall == 0 {
        // No error.
        NibbleDecode {
            nibble: d,
            corrected: false,
            error_detected: false,
        }
    } else if overall == 1 {
        // Odd number of bit errors; assume single and correct via the inner code.
        if syndrome_nonzero {
            NibbleDecode {
                nibble: inner.nibble,
                corrected: true,
                error_detected: inner.error_detected,
            }
        } else {
            // The overall parity bit itself flipped; data is intact.
            NibbleDecode {
                nibble: d,
                corrected: true,
                error_detected: false,
            }
        }
    } else {
        // Even parity but non-zero syndrome: double error detected.
        NibbleDecode {
            nibble: d,
            corrected: false,
            error_detected: true,
        }
    }
}

/// Encodes a byte slice into a vector of coded nibbles (two code words per byte,
/// low nibble first).
pub fn encode_bytes(data: &[u8], cr: CodeRate) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 2);
    for &b in data {
        out.push(encode_nibble(b & 0x0F, cr));
        out.push(encode_nibble(b >> 4, cr));
    }
    out
}

/// Statistics from decoding a coded-nibble stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeStats {
    /// Number of code words where a single-bit error was corrected.
    pub corrected: usize,
    /// Number of code words with detected but uncorrectable errors.
    pub detected: usize,
}

/// Decodes a coded-nibble stream (as produced by [`encode_bytes`]) back into bytes.
///
/// An odd trailing nibble is ignored. Returns the data and decode statistics.
pub fn decode_bytes(codes: &[u8], cr: CodeRate) -> (Vec<u8>, DecodeStats) {
    let mut out = Vec::with_capacity(codes.len() / 2);
    let mut stats = DecodeStats::default();
    for pair in codes.chunks_exact(2) {
        let lo = decode_nibble(pair[0], cr);
        let hi = decode_nibble(pair[1], cr);
        for d in [&lo, &hi] {
            if d.corrected {
                stats.corrected += 1;
            }
            if d.error_detected {
                stats.detected += 1;
            }
        }
        out.push((hi.nibble << 4) | lo.nibble);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_all_rates() {
        for cr in CodeRate::ALL {
            for nibble in 0u8..16 {
                let code = encode_nibble(nibble, cr);
                let dec = decode_nibble(code, cr);
                assert_eq!(dec.nibble, nibble);
                assert!(!dec.corrected);
                assert!(!dec.error_detected, "rate {cr:?} nibble {nibble}");
            }
        }
    }

    #[test]
    fn cr47_corrects_any_single_bit_error() {
        for nibble in 0u8..16 {
            let code = encode_nibble(nibble, CodeRate::Cr47);
            for bit in 0..7 {
                let corrupted = code ^ (1 << bit);
                let dec = decode_nibble(corrupted, CodeRate::Cr47);
                assert_eq!(dec.nibble, nibble, "bit {bit} of nibble {nibble}");
                assert!(dec.corrected);
            }
        }
    }

    #[test]
    fn cr48_corrects_single_and_detects_double() {
        for nibble in 0u8..16 {
            let code = encode_nibble(nibble, CodeRate::Cr48);
            for bit in 0..8 {
                let corrupted = code ^ (1 << bit);
                let dec = decode_nibble(corrupted, CodeRate::Cr48);
                assert_eq!(dec.nibble, nibble, "single error bit {bit}");
            }
            for b1 in 0..8 {
                for b2 in (b1 + 1)..8 {
                    let corrupted = code ^ (1 << b1) ^ (1 << b2);
                    let dec = decode_nibble(corrupted, CodeRate::Cr48);
                    assert!(
                        dec.error_detected,
                        "double error {b1},{b2} of nibble {nibble} not detected"
                    );
                }
            }
        }
    }

    #[test]
    fn cr45_detects_single_bit_errors() {
        for nibble in 0u8..16 {
            let code = encode_nibble(nibble, CodeRate::Cr45);
            for bit in 0..5 {
                let dec = decode_nibble(code ^ (1 << bit), CodeRate::Cr45);
                assert!(dec.error_detected);
            }
        }
    }

    #[test]
    fn byte_stream_round_trip() {
        let data: Vec<u8> = (0..=255u8).collect();
        for cr in CodeRate::ALL {
            let coded = encode_bytes(&data, cr);
            assert_eq!(coded.len(), data.len() * 2);
            let (decoded, stats) = decode_bytes(&coded, cr);
            assert_eq!(decoded, data);
            assert_eq!(stats.corrected, 0);
            assert_eq!(stats.detected, 0);
        }
    }

    #[test]
    fn byte_stream_with_errors_is_corrected_at_cr48() {
        let data = vec![0xA5, 0x3C, 0x7E, 0x01];
        let mut coded = encode_bytes(&data, CodeRate::Cr48);
        // Flip one bit in every code word.
        for (i, c) in coded.iter_mut().enumerate() {
            *c ^= 1 << (i % 8);
        }
        let (decoded, stats) = decode_bytes(&coded, CodeRate::Cr48);
        assert_eq!(decoded, data);
        assert_eq!(stats.corrected, coded.len());
    }
}
