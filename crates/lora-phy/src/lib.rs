//! # lora-phy — LoRa CSS physical-layer substrate
//!
//! This crate provides the LoRa physical layer that every other crate in the
//! Saiyan reproduction builds on:
//!
//! * [`iq`] — complex baseband sample types and buffers;
//! * [`params`] — spreading factor, bandwidth, bits-per-chirp and derived
//!   quantities (symbol time, data rate, sampling-rate rules);
//! * [`chirp`] — chirp waveform generation and peak-time geometry;
//! * [`fft`] — a self-contained radix-2 FFT with spectrum helpers;
//! * [`fec`] — Gray mapping, Hamming FEC, whitening and interleaving;
//! * [`modulator`] / [`demodulator`] — packet modulation and the standard
//!   (access-point grade) dechirp + FFT receiver;
//! * [`frame`] — frame header, CRC and the byte↔symbol coding chain;
//! * [`downlink`] — the reduced `2^K`-symbol alphabet used by the Saiyan
//!   downlink and its peak-position ground truth;
//! * [`sync`] — carrier-frequency-offset estimation/correction for the
//!   standard receiver;
//! * [`simd`] — runtime-dispatched SIMD kernels shared by every hot loop in
//!   the workspace (backend selection, bit-identical wide tiles,
//!   `SAIYAN_SIMD` override). It lives here, at the bottom of the crate
//!   graph, so the RF channel models and the serving layer can reach the
//!   same dispatch as the receiver front end;
//! * [`templates`] — the per-parameter chirp template cache the waveform
//!   synthesis fast path assembles packets from.
//!
//! The paper this reproduces: *Saiyan: Design and Implementation of a
//! Low-power Demodulator for LoRa Backscatter Systems* (NSDI 2022).

#![warn(missing_docs)]

pub mod chirp;
pub mod demodulator;
pub mod downlink;
pub mod error;
pub mod fec;
pub mod fft;
pub mod frame;
pub mod iq;
pub mod modulator;
pub mod params;
pub mod simd;
pub mod sync;
pub mod templates;

pub use chirp::{ChirpDirection, ChirpGenerator};
pub use demodulator::{
    bit_errors, symbol_errors, PacketDecision, StandardDemodulator, SymbolDecision,
};
pub use error::PhyError;
pub use frame::{crc16, Frame, FrameFlags};
pub use iq::{db_to_lin, lin_to_db, Iq, SampleBuffer};
pub use modulator::{Alphabet, Modulator, PacketLayout};
pub use params::{
    Bandwidth, BitsPerChirp, CodeRate, LoraParams, SpreadingFactor, DEFAULT_CARRIER_HZ,
    DEFAULT_PAYLOAD_SYMBOLS, PREAMBLE_UPCHIRPS, SYNC_SYMBOLS,
};
pub use sync::{CfoEstimate, Synchronizer};
