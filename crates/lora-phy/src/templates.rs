//! Chirp template cache: packet assembly without per-sample oscillators.
//!
//! [`crate::modulator::Modulator::packet`] re-runs the chirp generator's
//! per-sample phase-integration loop (one `sin`/`cos` pair per sample) for
//! every packet it modulates, even though a parameter set only ever produces
//! a handful of distinct chirps: the base up-chirp (preamble), the base
//! down-chirp (sync), and one payload chirp per alphabet symbol. For a
//! waveform-path network scenario that re-modulates hundreds of packets from
//! the same alphabet, that loop is the single largest synthesis cost.
//!
//! [`PacketTemplates`] computes each distinct chirp **once** per parameter
//! set and assembles packets by `memcpy`-style copies out of the cache. The
//! assembled samples are **bit-identical** to [`Modulator::packet`]'s output:
//! the cached chirps are produced by the same [`ChirpGenerator`] calls, and
//! concatenation copies them verbatim in the same order (preamble ×
//! [`PREAMBLE_UPCHIRPS`], two down-chirps plus the quarter sync tail, then
//! the payload chirps). [`PacketTemplates::assemble_scaled_extend`] fuses the
//! per-packet power scale into the copy — `Iq::scale` per sample, the exact
//! operation [`SampleBuffer::scaled`] applies — so the fast synthesis path
//! needs no second pass over the waveform.
//!
//! [`Modulator::packet`]: crate::modulator::Modulator::packet
//! [`ChirpGenerator`]: crate::chirp::ChirpGenerator
//! [`SampleBuffer::scaled`]: crate::iq::SampleBuffer::scaled

use crate::chirp::{ChirpDirection, ChirpGenerator};
use crate::error::PhyError;
use crate::iq::Iq;
use crate::modulator::{Alphabet, PacketLayout};
use crate::params::{LoraParams, PREAMBLE_UPCHIRPS};

/// Cached IQ templates for every distinct chirp a packet can contain.
///
/// Build one per `(LoraParams, Alphabet)` pair per scenario; assembly is
/// then pure copy+scale. See the [module docs](self) for the bit-identity
/// contract with the oscillator-path modulator.
#[derive(Debug, Clone)]
pub struct PacketTemplates {
    params: LoraParams,
    alphabet: Alphabet,
    /// The base up-chirp (symbol 0), one symbol long.
    base_up: Vec<Iq>,
    /// The base down-chirp, one symbol long.
    base_down: Vec<Iq>,
    /// One payload chirp per alphabet symbol (`2^K` downlink entries or
    /// `2^SF` standard entries).
    payload: Vec<Vec<Iq>>,
}

impl PacketTemplates {
    /// Precomputes the chirp templates for one parameter set and payload
    /// alphabet. This is the only place the per-sample oscillator runs.
    pub fn new(params: LoraParams, alphabet: Alphabet) -> Self {
        let generator = ChirpGenerator::new(params);
        let alphabet_size = match alphabet {
            Alphabet::Standard => params.chips_per_symbol(),
            Alphabet::Downlink => params.bits_per_chirp.alphabet_size(),
        };
        let payload = (0..alphabet_size)
            .map(|sym| {
                let chirp = match alphabet {
                    Alphabet::Standard => generator
                        .symbol_chirp(sym, ChirpDirection::Up)
                        .expect("symbol below alphabet size"),
                    Alphabet::Downlink => generator
                        .downlink_chirp(sym)
                        .expect("symbol below alphabet size"),
                };
                chirp.samples
            })
            .collect();
        PacketTemplates {
            params,
            alphabet,
            base_up: generator.base_upchirp().samples,
            base_down: generator.base_downchirp().samples,
            payload,
        }
    }

    /// The parameter set the templates were built for.
    pub fn params(&self) -> &LoraParams {
        &self.params
    }

    /// The payload alphabet the templates cover.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// The packet layout for a payload of `payload_symbols` chirps, without
    /// assembling anything.
    pub fn layout(&self, payload_symbols: usize) -> PacketLayout {
        let sps = self.base_up.len();
        let preamble_samples = PREAMBLE_UPCHIRPS * sps;
        let sync_samples = 2 * sps + sps / 4;
        PacketLayout {
            preamble_symbols: PREAMBLE_UPCHIRPS,
            preamble_samples,
            sync_samples,
            payload_symbols,
            payload_start: preamble_samples + sync_samples,
            total_samples: preamble_samples + sync_samples + payload_symbols * sps,
        }
    }

    /// Total samples of a packet with `payload_symbols` payload chirps.
    pub fn packet_samples(&self, payload_symbols: usize) -> usize {
        self.layout(payload_symbols).total_samples
    }

    /// Appends one complete packet (preamble + sync + payload), scaling every
    /// sample by `scale` as it is copied. `scale == 1.0` still multiplies —
    /// `x * 1.0` is exact in IEEE arithmetic, so the output remains
    /// bit-identical to the unscaled assembly.
    ///
    /// Returns the layout of the appended packet; `payload_start` /
    /// `total_samples` are relative to the packet, not to `out`.
    pub fn assemble_scaled_extend(
        &self,
        symbols: &[u32],
        scale: f64,
        out: &mut Vec<Iq>,
    ) -> Result<PacketLayout, PhyError> {
        let alphabet_size = self.payload.len() as u32;
        if let Some(&bad) = symbols.iter().find(|&&s| s >= alphabet_size) {
            return Err(PhyError::SymbolOutOfRange {
                symbol: bad,
                alphabet: alphabet_size,
            });
        }
        let layout = self.layout(symbols.len());
        out.reserve(layout.total_samples);
        if scale == 1.0 {
            // Plain copies: bit-identical to `Modulator::packet`'s appends.
            for _ in 0..PREAMBLE_UPCHIRPS {
                out.extend_from_slice(&self.base_up);
            }
            out.extend_from_slice(&self.base_down);
            out.extend_from_slice(&self.base_down);
            out.extend_from_slice(&self.base_down[..self.base_down.len() / 4]);
            for &sym in symbols {
                out.extend_from_slice(&self.payload[sym as usize]);
            }
        } else {
            let scaled = |src: &[Iq], out: &mut Vec<Iq>| {
                out.extend(src.iter().map(|s| s.scale(scale)));
            };
            for _ in 0..PREAMBLE_UPCHIRPS {
                scaled(&self.base_up, out);
            }
            scaled(&self.base_down, out);
            scaled(&self.base_down, out);
            scaled(&self.base_down[..self.base_down.len() / 4], out);
            for &sym in symbols {
                scaled(&self.payload[sym as usize], out);
            }
        }
        Ok(layout)
    }

    /// Clears `out` and assembles one packet into it at unit scale —
    /// bit-identical to the sample vector of
    /// [`Modulator::packet`](crate::modulator::Modulator::packet).
    pub fn assemble_into(
        &self,
        symbols: &[u32],
        out: &mut Vec<Iq>,
    ) -> Result<PacketLayout, PhyError> {
        out.clear();
        self.assemble_scaled_extend(symbols, 1.0, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulator::Modulator;
    use crate::params::{Bandwidth, BitsPerChirp, SpreadingFactor};

    fn params() -> LoraParams {
        LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(2).expect("valid"),
        )
    }

    #[test]
    fn assembly_is_bit_identical_to_the_modulator() {
        for oversampling in [1u32, 2, 4] {
            let p = params().with_oversampling(oversampling);
            let templates = PacketTemplates::new(p, Alphabet::Downlink);
            let modulator = Modulator::new(p);
            let symbols = vec![0, 3, 1, 2, 2, 0];
            let (wave, layout) = modulator.packet(&symbols, Alphabet::Downlink).unwrap();
            let mut fast = Vec::new();
            let fast_layout = templates.assemble_into(&symbols, &mut fast).unwrap();
            assert_eq!(fast_layout, layout, "oversampling {oversampling}");
            assert_eq!(fast, wave.samples, "oversampling {oversampling}");
        }
    }

    #[test]
    fn standard_alphabet_assembly_matches_too() {
        let p = params();
        let templates = PacketTemplates::new(p, Alphabet::Standard);
        let modulator = Modulator::new(p);
        let symbols = vec![0, 127, 64, 5];
        let (wave, layout) = modulator.packet(&symbols, Alphabet::Standard).unwrap();
        let mut fast = Vec::new();
        let fast_layout = templates.assemble_into(&symbols, &mut fast).unwrap();
        assert_eq!(fast_layout, layout);
        assert_eq!(fast, wave.samples);
    }

    #[test]
    fn scaled_assembly_matches_scale_after_assembly() {
        let templates = PacketTemplates::new(params(), Alphabet::Downlink);
        let symbols = vec![1, 2, 3, 0];
        let scale = 0.003_162_277_660_168_379_4; // sqrt of a -50 dBm power
        let mut reference = Vec::new();
        templates.assemble_into(&symbols, &mut reference).unwrap();
        for s in &mut reference {
            *s = s.scale(scale);
        }
        let mut fused = Vec::new();
        templates
            .assemble_scaled_extend(&symbols, scale, &mut fused)
            .unwrap();
        assert_eq!(fused, reference);
    }

    #[test]
    fn extend_appends_after_existing_samples() {
        let templates = PacketTemplates::new(params(), Alphabet::Downlink);
        let mut out = vec![Iq::ONE; 7];
        let layout = templates
            .assemble_scaled_extend(&[0, 1], 1.0, &mut out)
            .unwrap();
        assert_eq!(out.len(), 7 + layout.total_samples);
        assert_eq!(out[..7], vec![Iq::ONE; 7][..]);
    }

    #[test]
    fn out_of_range_symbol_is_rejected_before_assembly() {
        let templates = PacketTemplates::new(params(), Alphabet::Downlink);
        let mut out = vec![Iq::ONE; 3];
        assert!(templates
            .assemble_scaled_extend(&[0, 4], 1.0, &mut out)
            .is_err());
        // Nothing was appended on the error path.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn layout_matches_modulator_layout() {
        let p = params().with_oversampling(2);
        let templates = PacketTemplates::new(p, Alphabet::Downlink);
        let modulator = Modulator::new(p);
        let (_, layout) = modulator.packet(&[0, 1, 2], Alphabet::Downlink).unwrap();
        assert_eq!(templates.layout(3), layout);
        assert_eq!(templates.packet_samples(3), layout.total_samples);
    }
}
