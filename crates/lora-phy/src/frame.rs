//! LoRa frame layer: header, payload, CRC.
//!
//! Frames carry the MAC-layer packets of the workspace. The wire format is a
//! compact explicit header (length, code rate, flags) followed by the payload
//! and a CRC-16. The frame layer sits between the MAC crate (which produces
//! byte payloads) and the PHY coding chain (which maps bytes to chirp
//! symbols).

use crate::error::PhyError;
use crate::fec::{decode_payload, encode_payload, DecodeStats};
use crate::params::{CodeRate, SpreadingFactor};

/// CRC-16/CCITT-FALSE used to protect the frame payload.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Flags carried in the frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameFlags {
    /// Set when the payload is a MAC acknowledgement.
    pub ack: bool,
    /// Set when the frame requests an acknowledgement from the receiver.
    pub ack_request: bool,
    /// Set on downlink (access point to tag) frames.
    pub downlink: bool,
}

impl FrameFlags {
    fn to_byte(self) -> u8 {
        (self.ack as u8) | ((self.ack_request as u8) << 1) | ((self.downlink as u8) << 2)
    }

    fn from_byte(b: u8) -> Self {
        FrameFlags {
            ack: b & 1 != 0,
            ack_request: b & 2 != 0,
            downlink: b & 4 != 0,
        }
    }
}

/// An application/MAC frame before PHY encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Header flags.
    pub flags: FrameFlags,
    /// Code rate used for the payload coding chain.
    pub code_rate: CodeRate,
    /// The payload bytes (at most 255).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Maximum payload size in bytes.
    pub const MAX_PAYLOAD: usize = 255;

    /// Creates a new frame, validating the payload length.
    pub fn new(payload: Vec<u8>, code_rate: CodeRate, flags: FrameFlags) -> Result<Self, PhyError> {
        if payload.len() > Self::MAX_PAYLOAD {
            return Err(PhyError::MalformedFrame(format!(
                "payload of {} bytes exceeds the {}-byte limit",
                payload.len(),
                Self::MAX_PAYLOAD
            )));
        }
        Ok(Frame {
            flags,
            code_rate,
            payload,
        })
    }

    /// Serialises the frame into wire bytes: `[len, cr, flags, payload..., crc_hi, crc_lo]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 5);
        out.push(self.payload.len() as u8);
        out.push(self.code_rate.denominator() as u8);
        out.push(self.flags.to_byte());
        out.extend_from_slice(&self.payload);
        let crc = crc16(&self.payload);
        out.push((crc >> 8) as u8);
        out.push((crc & 0xFF) as u8);
        out
    }

    /// Parses wire bytes produced by [`Frame::to_bytes`], verifying the CRC.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PhyError> {
        if bytes.len() < 5 {
            return Err(PhyError::MalformedFrame(format!(
                "frame of {} bytes is shorter than the 5-byte minimum",
                bytes.len()
            )));
        }
        let len = bytes[0] as usize;
        let cr_den = bytes[1] as usize;
        let flags = FrameFlags::from_byte(bytes[2]);
        if bytes.len() < 3 + len + 2 {
            return Err(PhyError::MalformedFrame(format!(
                "frame header declares {len} payload bytes but only {} bytes follow",
                bytes.len().saturating_sub(5)
            )));
        }
        let code_rate = match cr_den {
            5 => CodeRate::Cr45,
            6 => CodeRate::Cr46,
            7 => CodeRate::Cr47,
            8 => CodeRate::Cr48,
            other => {
                return Err(PhyError::MalformedFrame(format!(
                    "unknown code rate denominator {other}"
                )))
            }
        };
        let payload = bytes[3..3 + len].to_vec();
        let expected = ((bytes[3 + len] as u16) << 8) | bytes[3 + len + 1] as u16;
        let computed = crc16(&payload);
        if computed != expected {
            return Err(PhyError::CrcMismatch { computed, expected });
        }
        Ok(Frame {
            flags,
            code_rate,
            payload,
        })
    }

    /// Encodes the frame into LoRa chirp symbols using the full coding chain.
    pub fn to_symbols(&self, sf: SpreadingFactor) -> Result<Vec<u32>, PhyError> {
        encode_payload(&self.to_bytes(), sf, self.code_rate)
    }

    /// Decodes a frame from chirp symbols.
    ///
    /// `wire_len` is the number of wire bytes (payload length + 5) the caller
    /// expects; the code rate is read from the decoded header.
    pub fn from_symbols(
        symbols: &[u32],
        sf: SpreadingFactor,
        code_rate: CodeRate,
        wire_len: usize,
    ) -> Result<(Self, DecodeStats), PhyError> {
        let (bytes, stats) = decode_payload(symbols, sf, code_rate, wire_len)?;
        let frame = Frame::from_bytes(&bytes)?;
        Ok((frame, stats))
    }

    /// The number of wire bytes this frame serialises into.
    pub fn wire_len(&self) -> usize {
        self.payload.len() + 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_known_vector() {
        // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
        assert_eq!(crc16(&[]), 0xFFFF);
    }

    #[test]
    fn frame_byte_round_trip() {
        let frame = Frame::new(
            vec![1, 2, 3, 4, 5],
            CodeRate::Cr47,
            FrameFlags {
                ack: true,
                ack_request: false,
                downlink: true,
            },
        )
        .unwrap();
        let bytes = frame.to_bytes();
        assert_eq!(bytes.len(), frame.wire_len());
        let back = Frame::from_bytes(&bytes).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let frame = Frame::new(vec![10; 20], CodeRate::Cr45, FrameFlags::default()).unwrap();
        let mut bytes = frame.to_bytes();
        bytes[7] ^= 0xFF;
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(PhyError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn oversized_payload_rejected() {
        assert!(Frame::new(vec![0; 256], CodeRate::Cr45, FrameFlags::default()).is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = Frame::new(vec![9; 10], CodeRate::Cr46, FrameFlags::default()).unwrap();
        let bytes = frame.to_bytes();
        assert!(Frame::from_bytes(&bytes[..8]).is_err());
        assert!(Frame::from_bytes(&[]).is_err());
    }

    #[test]
    fn symbol_round_trip() {
        let frame = Frame::new(
            (0..32u8).collect(),
            CodeRate::Cr48,
            FrameFlags {
                ack: false,
                ack_request: true,
                downlink: true,
            },
        )
        .unwrap();
        let sf = SpreadingFactor::Sf8;
        let symbols = frame.to_symbols(sf).unwrap();
        let (back, stats) =
            Frame::from_symbols(&symbols, sf, CodeRate::Cr48, frame.wire_len()).unwrap();
        assert_eq!(back, frame);
        assert_eq!(stats.detected, 0);
    }
}
