//! Complex baseband sample types and helpers.
//!
//! All waveform-level processing in this workspace operates on complex
//! baseband IQ samples ([`Iq`]) referenced to a known carrier frequency.
//! The type is intentionally small (two `f64`s) and implements the usual
//! arithmetic so DSP code reads naturally.

use std::f64::consts::PI;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A single complex baseband sample (in-phase + quadrature).
///
/// The layout is pinned to `repr(C)` — two adjacent `f64`s with no padding —
/// so block kernels may reinterpret `&[Iq]` as an interleaved `&[f64]` lane
/// view (see `analog::simd`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Iq {
    /// In-phase (real) component.
    pub re: f64,
    /// Quadrature (imaginary) component.
    pub im: f64,
}

impl Iq {
    /// The additive identity.
    pub const ZERO: Iq = Iq { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Iq = Iq { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Iq = Iq { re: 0.0, im: 1.0 };

    /// Creates a sample from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Iq { re, im }
    }

    /// Creates a sample from polar coordinates (`magnitude`, `phase` in radians).
    #[inline]
    pub fn from_polar(magnitude: f64, phase: f64) -> Self {
        Iq {
            re: magnitude * phase.cos(),
            im: magnitude * phase.sin(),
        }
    }

    /// Returns `e^{j phase}`, a unit phasor.
    #[inline]
    pub fn phasor(phase: f64) -> Self {
        Self::from_polar(1.0, phase)
    }

    /// The squared magnitude `|x|^2` (instantaneous power).
    #[inline]
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `|x|`.
    #[inline]
    pub fn abs(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The phase angle in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(&self) -> Iq {
        Iq::new(self.re, -self.im)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(&self, k: f64) -> Iq {
        Iq::new(self.re * k, self.im * k)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Iq {
    type Output = Iq;
    #[inline]
    fn add(self, rhs: Iq) -> Iq {
        Iq::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Iq {
    #[inline]
    fn add_assign(&mut self, rhs: Iq) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Iq {
    type Output = Iq;
    #[inline]
    fn sub(self, rhs: Iq) -> Iq {
        Iq::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Iq {
    #[inline]
    fn sub_assign(&mut self, rhs: Iq) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Iq {
    type Output = Iq;
    #[inline]
    fn mul(self, rhs: Iq) -> Iq {
        Iq::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Iq {
    #[inline]
    fn mul_assign(&mut self, rhs: Iq) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Iq {
    type Output = Iq;
    #[inline]
    fn mul(self, rhs: f64) -> Iq {
        self.scale(rhs)
    }
}

impl Div<f64> for Iq {
    type Output = Iq;
    #[inline]
    fn div(self, rhs: f64) -> Iq {
        self.scale(1.0 / rhs)
    }
}

impl Div for Iq {
    type Output = Iq;
    #[inline]
    fn div(self, rhs: Iq) -> Iq {
        let d = rhs.norm_sqr();
        Iq::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Iq {
    type Output = Iq;
    #[inline]
    fn neg(self) -> Iq {
        Iq::new(-self.re, -self.im)
    }
}

/// A contiguous block of IQ samples together with its sample rate.
///
/// Most signal-chain blocks consume and produce `SampleBuffer`s, carrying the
/// sample rate along so downstream code never has to guess it.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleBuffer {
    /// The IQ samples.
    pub samples: Vec<Iq>,
    /// The sample rate in samples per second.
    pub sample_rate: f64,
}

impl SampleBuffer {
    /// Creates a buffer from samples and a sample rate (Hz).
    pub fn new(samples: Vec<Iq>, sample_rate: f64) -> Self {
        SampleBuffer {
            samples,
            sample_rate,
        }
    }

    /// Creates an all-zero buffer of `len` samples at `sample_rate` Hz.
    pub fn zeros(len: usize, sample_rate: f64) -> Self {
        SampleBuffer {
            samples: vec![Iq::ZERO; len],
            sample_rate,
        }
    }

    /// The number of samples in the buffer.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration of the buffer in seconds.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }

    /// Mean power of the buffer (linear, per-sample `|x|^2` averaged).
    pub fn mean_power(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(Iq::norm_sqr).sum::<f64>() / self.samples.len() as f64
    }

    /// Peak instantaneous power of the buffer (linear).
    pub fn peak_power(&self) -> f64 {
        self.samples
            .iter()
            .map(Iq::norm_sqr)
            .fold(0.0_f64, f64::max)
    }

    /// Scales every sample by a real factor (in place) and returns `self`.
    pub fn scaled(mut self, k: f64) -> Self {
        for s in &mut self.samples {
            *s = s.scale(k);
        }
        self
    }

    /// Applies a per-sample frequency shift of `freq_hz` (positive shifts up).
    pub fn frequency_shifted(mut self, freq_hz: f64) -> Self {
        let step = 2.0 * PI * freq_hz / self.sample_rate;
        for (n, s) in self.samples.iter_mut().enumerate() {
            *s *= Iq::phasor(step * n as f64);
        }
        self
    }

    /// Concatenates another buffer onto this one. Panics if the sample rates differ.
    pub fn append(&mut self, other: &SampleBuffer) {
        assert!(
            (self.sample_rate - other.sample_rate).abs() < 1e-9,
            "cannot append buffers with mismatched sample rates"
        );
        self.samples.extend_from_slice(&other.samples);
    }

    /// Extracts the instantaneous envelope `|x|` of every sample.
    pub fn envelope(&self) -> Vec<f64> {
        self.samples.iter().map(Iq::abs).collect()
    }

    /// Estimates the instantaneous frequency (Hz) between consecutive samples
    /// using the phase difference. The first entry repeats the second so the
    /// output length equals the input length.
    pub fn instantaneous_frequency(&self) -> Vec<f64> {
        let n = self.samples.len();
        if n < 2 {
            return vec![0.0; n];
        }
        let mut freqs = Vec::with_capacity(n);
        freqs.push(0.0);
        for i in 1..n {
            let d = self.samples[i] * self.samples[i - 1].conj();
            freqs.push(d.arg() * self.sample_rate / (2.0 * PI));
        }
        freqs[0] = freqs[1];
        freqs
    }
}

/// Converts a linear power ratio to decibels. Returns `f64::NEG_INFINITY` for 0.
#[inline]
pub fn lin_to_db(lin: f64) -> f64 {
    if lin <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * lin.log10()
    }
}

/// Converts decibels to a linear power ratio.
#[inline]
pub fn db_to_lin(db: f64) -> f64 {
    10.0_f64.powf(db / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn polar_round_trip() {
        let z = Iq::from_polar(2.5, 0.7);
        assert!(close(z.abs(), 2.5, 1e-12));
        assert!(close(z.arg(), 0.7, 1e-12));
    }

    #[test]
    fn multiplication_matches_polar_addition_of_phases() {
        let a = Iq::from_polar(2.0, 0.3);
        let b = Iq::from_polar(3.0, 0.9);
        let c = a * b;
        assert!(close(c.abs(), 6.0, 1e-12));
        assert!(close(c.arg(), 1.2, 1e-12));
    }

    #[test]
    fn conjugate_negates_phase() {
        let a = Iq::from_polar(1.0, 0.4);
        assert!(close(a.conj().arg(), -0.4, 1e-12));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Iq::new(1.5, -2.0);
        let b = Iq::new(0.3, 0.8);
        let c = (a * b) / b;
        assert!(close(c.re, a.re, 1e-12));
        assert!(close(c.im, a.im, 1e-12));
    }

    #[test]
    fn buffer_duration_and_power() {
        let buf = SampleBuffer::new(vec![Iq::new(1.0, 0.0); 1000], 1000.0);
        assert!(close(buf.duration(), 1.0, 1e-12));
        assert!(close(buf.mean_power(), 1.0, 1e-12));
        assert!(close(buf.peak_power(), 1.0, 1e-12));
    }

    #[test]
    fn frequency_shift_moves_tone() {
        // A DC tone shifted by +100 Hz should show +100 Hz instantaneous frequency.
        let buf = SampleBuffer::new(vec![Iq::ONE; 512], 8000.0).frequency_shifted(100.0);
        let f = buf.instantaneous_frequency();
        let mean: f64 = f.iter().copied().sum::<f64>() / f.len() as f64;
        assert!(close(mean, 100.0, 1.0));
    }

    #[test]
    fn db_round_trip() {
        for db in [-30.0, -3.0, 0.0, 10.0, 27.5] {
            assert!(close(lin_to_db(db_to_lin(db)), db, 1e-9));
        }
        assert_eq!(lin_to_db(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn append_concatenates() {
        let mut a = SampleBuffer::zeros(10, 1e6);
        let b = SampleBuffer::new(vec![Iq::ONE; 5], 1e6);
        a.append(&b);
        assert_eq!(a.len(), 15);
        assert_eq!(a.samples[12], Iq::ONE);
    }

    #[test]
    #[should_panic]
    fn append_rejects_rate_mismatch() {
        let mut a = SampleBuffer::zeros(10, 1e6);
        let b = SampleBuffer::zeros(10, 2e6);
        a.append(&b);
    }
}
