//! Carrier-frequency-offset (CFO) and timing estimation for the standard
//! receiver.
//!
//! The access point's USRP and the tag's oscillator are never perfectly
//! aligned; cheap tags can be tens of ppm off, which at 434 MHz is several
//! kilohertz of carrier offset. The standard dechirp+FFT receiver estimates
//! the offset from the preamble (all preamble up-chirps dechirp to the same
//! tone, whose frequency is the sum of the timing and carrier offsets) and
//! removes it before demodulating the payload. The Saiyan tag itself is
//! insensitive to small CFO — the SAW response changes by a negligible amount
//! over a few kilohertz — but the network simulator uses this module for the
//! uplink receiver and the tests use it to validate the channel model's CFO
//! injection.

use crate::chirp::ChirpGenerator;
use crate::error::PhyError;
use crate::fft::{argmax_bin, fft_padded};
use crate::iq::{Iq, SampleBuffer};
use crate::params::{LoraParams, PREAMBLE_UPCHIRPS};

/// A carrier-frequency-offset estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfoEstimate {
    /// Estimated offset in hertz.
    pub offset_hz: f64,
    /// Number of preamble symbols that contributed to the estimate.
    pub symbols_used: usize,
}

/// CFO and timing estimator operating on the LoRa preamble.
#[derive(Debug, Clone)]
pub struct Synchronizer {
    params: LoraParams,
    downchirp: Vec<Iq>,
}

impl Synchronizer {
    /// Creates a synchroniser for the given parameters.
    pub fn new(params: LoraParams) -> Self {
        Synchronizer {
            params,
            downchirp: ChirpGenerator::new(params).base_downchirp().samples,
        }
    }

    /// Dechirps one symbol starting at `start` and returns the complex value
    /// of the strongest FFT bin together with its index.
    fn dominant_bin(
        &self,
        buffer: &SampleBuffer,
        start: usize,
    ) -> Result<(usize, Iq, usize), PhyError> {
        let sps = self.params.samples_per_symbol();
        if buffer.len() < start + sps {
            return Err(PhyError::BufferTooShort {
                needed: start + sps,
                got: buffer.len(),
            });
        }
        let mixed: Vec<Iq> = buffer.samples[start..start + sps]
            .iter()
            .zip(&self.downchirp)
            .map(|(a, b)| *a * *b)
            .collect();
        let spectrum = fft_padded(&mixed);
        let mags: Vec<f64> = spectrum.iter().map(Iq::norm_sqr).collect();
        let bin = argmax_bin(&mags);
        Ok((bin, spectrum[bin], spectrum.len()))
    }

    /// Estimates the CFO from a preamble that starts at sample
    /// `preamble_start`.
    ///
    /// The integer part comes from the position of the dechirped tone (common
    /// to all preamble symbols); the fractional part comes from the average
    /// phase rotation of that tone between consecutive preamble symbols
    /// (a rotation of `2π·Δf·T_sym` per symbol).
    pub fn estimate_cfo(
        &self,
        buffer: &SampleBuffer,
        preamble_start: usize,
    ) -> Result<CfoEstimate, PhyError> {
        let sps = self.params.samples_per_symbol();
        let usable = ((buffer.len().saturating_sub(preamble_start)) / sps).min(PREAMBLE_UPCHIRPS);
        if usable < 2 {
            return Err(PhyError::BufferTooShort {
                needed: preamble_start + 2 * sps,
                got: buffer.len(),
            });
        }

        // Integer (bin-resolution) part from the first preamble symbol. A
        // perfectly aligned preamble up-chirp dechirps to a tone at a multiple
        // of the bandwidth (0 or BW depending on the wrap), so the CFO is the
        // deviation from the nearest multiple of BW.
        let (bin0, mut prev_phasor, fft_len) = self.dominant_bin(buffer, preamble_start)?;
        let fs = self.params.sample_rate();
        let raw_freq = if (bin0 as f64) < fft_len as f64 / 2.0 {
            bin0 as f64 * fs / fft_len as f64
        } else {
            (bin0 as f64 - fft_len as f64) * fs / fft_len as f64
        };
        let bw = self.params.bw.hz();
        let bin_freq = raw_freq - bw * (raw_freq / bw).round();

        // Fractional part from symbol-to-symbol phase rotation of the tone.
        let t_sym = self.params.symbol_duration();
        let mut rotation_sum = 0.0;
        let mut rotations = 0usize;
        for symbol in 1..usable {
            let (bin, phasor, _) = self.dominant_bin(buffer, preamble_start + symbol * sps)?;
            // Only use symbols whose tone landed in (nearly) the same bin.
            if bin.abs_diff(bin0) <= 1 || bin.abs_diff(bin0) >= fft_len - 1 {
                let rotation = (phasor * prev_phasor.conj()).arg();
                rotation_sum += rotation;
                rotations += 1;
            }
            prev_phasor = phasor;
        }
        let fractional = if rotations > 0 {
            (rotation_sum / rotations as f64) / (2.0 * std::f64::consts::PI * t_sym)
        } else {
            0.0
        };

        Ok(CfoEstimate {
            offset_hz: bin_freq + fractional,
            symbols_used: usable,
        })
    }

    /// Removes an estimated CFO from a buffer (returns a corrected copy).
    pub fn correct_cfo(&self, buffer: &SampleBuffer, estimate: &CfoEstimate) -> SampleBuffer {
        buffer.clone().frequency_shifted(-estimate.offset_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulator::{Alphabet, Modulator};
    use crate::params::{Bandwidth, BitsPerChirp, SpreadingFactor};

    fn params() -> LoraParams {
        LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(2).unwrap(),
        )
    }

    fn packet_with_cfo(cfo_hz: f64) -> (SampleBuffer, usize) {
        let m = Modulator::new(params());
        let (wave, layout) = m.packet(&[0, 1, 2, 3], Alphabet::Downlink).unwrap();
        let shifted = wave.frequency_shifted(cfo_hz);
        (shifted, layout.preamble_samples)
    }

    #[test]
    fn zero_cfo_is_estimated_as_zero() {
        let (wave, _) = packet_with_cfo(0.0);
        let sync = Synchronizer::new(params());
        let est = sync.estimate_cfo(&wave, 0).unwrap();
        assert!(est.offset_hz.abs() < 200.0, "estimate {}", est.offset_hz);
        assert_eq!(est.symbols_used, PREAMBLE_UPCHIRPS);
    }

    #[test]
    fn injected_cfo_is_recovered() {
        for cfo in [1_500.0, -2_200.0, 4_000.0] {
            let (wave, _) = packet_with_cfo(cfo);
            let sync = Synchronizer::new(params());
            let est = sync.estimate_cfo(&wave, 0).unwrap();
            assert!(
                (est.offset_hz - cfo).abs() < 500.0,
                "cfo {cfo}: estimate {}",
                est.offset_hz
            );
        }
    }

    #[test]
    fn correction_restores_demodulation() {
        // A CFO of half a downlink symbol slot would corrupt peak positions /
        // FFT bins; after correction the standard receiver decodes cleanly.
        let cfo = 3_000.0;
        let p = params();
        let m = Modulator::new(p);
        let symbols = vec![0u32, 3, 1, 2, 2, 1];
        let (wave, layout) = m.packet(&symbols, Alphabet::Downlink).unwrap();
        let shifted = wave.frequency_shifted(cfo);

        let sync = Synchronizer::new(p);
        let est = sync.estimate_cfo(&shifted, 0).unwrap();
        let corrected = sync.correct_cfo(&shifted, &est);

        let rx = crate::demodulator::StandardDemodulator::new(p);
        let decoded = rx
            .demodulate_payload(
                &corrected,
                layout.payload_start,
                symbols.len(),
                Alphabet::Downlink,
            )
            .unwrap();
        assert_eq!(decoded.symbols, symbols);
    }

    #[test]
    fn too_short_buffers_are_rejected() {
        let sync = Synchronizer::new(params());
        let short = SampleBuffer::zeros(100, params().sample_rate());
        assert!(matches!(
            sync.estimate_cfo(&short, 0),
            Err(PhyError::BufferTooShort { .. })
        ));
    }
}
