//! Common-gate low-noise amplifier (CGLNA) model.
//!
//! Saiyan places a common-gate LNA between the SAW filter and the envelope
//! detector to lift the transformed signal above the detector's noise
//! (paper §4.1, the 0.6 V 429 MHz FSK front-end of reference \[17\]). We model
//! gain, input-referred noise via a noise figure, and a soft output
//! compression point so strong inputs do not produce unphysical voltages.

use lora_phy::iq::{Iq, SampleBuffer};
use rfsim::channel::dbm_to_buffer_power;
use rfsim::noise::AwgnSource;
use rfsim::units::{Db, Dbm, Hertz};

/// A low-noise amplifier.
#[derive(Debug, Clone)]
pub struct Lna {
    /// Power gain.
    pub gain: Db,
    /// Noise figure.
    pub noise_figure: Db,
    /// Output 1 dB compression point; outputs are softly clipped above this.
    pub output_compression: Dbm,
    /// Equivalent noise bandwidth used to compute the input-referred noise power.
    pub bandwidth: Hertz,
    /// Seed for the noise the LNA adds.
    pub seed: u64,
    /// Whether the amplifier's own noise is modelled. Disabled by the
    /// gateway's high-throughput profile, where the capture already carries
    /// channel noise and the per-sample noise draws dominate the run time.
    pub noise_enabled: bool,
}

impl Lna {
    /// The common-gate LNA used by the prototype: ~20 dB gain, 5 dB NF.
    pub fn paper_cglna(bandwidth: Hertz) -> Self {
        Lna {
            gain: Db(20.0),
            noise_figure: Db(5.0),
            output_compression: Dbm(-5.0),
            bandwidth,
            seed: 0xC61A,
            noise_enabled: true,
        }
    }

    /// Returns a copy with the amplifier's own noise model disabled.
    pub fn quiet(mut self) -> Self {
        self.noise_enabled = false;
        self
    }

    /// Input-referred noise power added by the amplifier.
    pub fn added_noise_power(&self) -> Dbm {
        // kTB floor degraded by (F - 1): the noise the amplifier itself adds.
        let ktb = rfsim::noise::thermal_noise_floor(self.bandwidth);
        let f_lin = self.noise_figure.linear();
        let added = (f_lin - 1.0).max(1e-9);
        Dbm(ktb.value() + 10.0 * added.log10())
    }

    /// Amplifies the buffer: applies gain, adds the amplifier's own noise, and
    /// soft-limits around the compression point.
    pub fn amplify(&self, input: &SampleBuffer) -> SampleBuffer {
        let mut state = self.streaming();
        let samples = state.amplify_chunk(&input.samples);
        SampleBuffer::new(samples, input.sample_rate)
    }

    /// Creates a streaming amplifier state. The noise source is seeded once
    /// and carried across chunks, so chunked amplification of a stream equals
    /// [`Self::amplify`] on the concatenated buffer bit-exactly.
    pub fn streaming(&self) -> LnaState {
        let noise_power_out = if self.noise_enabled {
            dbm_to_buffer_power(self.added_noise_power() + self.gain)
        } else {
            0.0
        };
        LnaState {
            gain_amp: 10f64.powf(self.gain.value() / 20.0),
            noise_power_out,
            // The per-component standard deviation `AwgnSource::sample` would
            // derive on every call, hoisted out of the hot loop.
            noise_std: (noise_power_out / 2.0).sqrt(),
            comp_amp: dbm_to_buffer_power(self.output_compression).sqrt(),
            awgn: AwgnSource::new(self.seed),
        }
    }
}

/// Carried state of a streaming [`Lna`]: the AWGN source the amplifier mixes
/// into its output keeps drawing from the same sequence across chunks.
#[derive(Debug, Clone)]
pub struct LnaState {
    gain_amp: f64,
    noise_power_out: f64,
    noise_std: f64,
    comp_amp: f64,
    awgn: AwgnSource,
}

impl LnaState {
    /// Amplifies one chunk, allocating a fresh output buffer. Steady-state
    /// callers should prefer [`Self::amplify_chunk_into`].
    pub fn amplify_chunk(&mut self, chunk: &[Iq]) -> Vec<Iq> {
        let mut out = Vec::new();
        self.amplify_chunk_into(chunk, &mut out);
        out
    }

    /// Amplifies one chunk into a caller-provided buffer (cleared first):
    /// gain, the LNA's own output-referred noise, and the tanh-style soft
    /// limiter around the compression point.
    pub fn amplify_chunk_into(&mut self, chunk: &[Iq], out: &mut Vec<Iq>) {
        // A quiet LNA (no noise draws) is a pure elementwise map — route it
        // through the wide kernel when one is active. The noisy path must
        // stay scalar: its RNG stream is consumed per sample in order.
        if self.noise_power_out <= 0.0 {
            match crate::simd::active_backend() {
                crate::simd::Backend::Scalar => {}
                wide => {
                    crate::simd::lna_quiet_into(wide, chunk, self.gain_amp, self.comp_amp, out);
                    return;
                }
            }
        }
        out.clear();
        out.reserve(chunk.len());
        for s in chunk {
            let mut v = s.scale(self.gain_amp);
            // Skipping the draw at zero power leaves the output untouched
            // (the sample would be scaled by zero) while saving the two
            // Gaussian draws per sample that dominate a quiet chain's cost.
            if self.noise_power_out > 0.0 {
                v += self.awgn.sample_with_std(self.noise_std);
            }
            let a = v.abs();
            if a > self.comp_amp {
                let limited = self.comp_amp * (1.0 + (a / self.comp_amp - 1.0).tanh());
                v = v.scale(limited / a);
            }
            out.push(v);
        }
    }
}

impl crate::stage::BlockStage for LnaState {
    type In = Iq;
    type Out = Iq;
    fn process_into(&mut self, input: &[Iq], out: &mut Vec<Iq>) {
        self.amplify_chunk_into(input, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim::channel::buffer_power_dbm;

    #[test]
    fn streaming_lna_is_chunk_invariant() {
        let lna = Lna::paper_cglna(Hertz::from_khz(500.0));
        let input = SampleBuffer::new(
            (0..3_001)
                .map(|i| Iq::from_polar(1e-5 + 1e-3 * (i % 13) as f64, 0.1 * i as f64))
                .collect(),
            2e6,
        );
        let batch = lna.amplify(&input);
        for chunk_size in [1usize, 11, 256, 3_001] {
            let mut state = lna.streaming();
            let mut out = Vec::new();
            for chunk in input.samples.chunks(chunk_size) {
                out.extend(state.amplify_chunk(chunk));
            }
            assert_eq!(out, batch.samples, "chunk size {chunk_size}");
        }
    }

    fn tone(power_dbm: f64, len: usize) -> SampleBuffer {
        let amp = dbm_to_buffer_power(Dbm(power_dbm)).sqrt();
        SampleBuffer::new(vec![Iq::new(amp, 0.0); len], 2e6)
    }

    #[test]
    fn small_signal_gain_is_applied() {
        let lna = Lna::paper_cglna(Hertz::from_khz(500.0));
        let input = tone(-60.0, 5000);
        let out = lna.amplify(&input);
        let p = buffer_power_dbm(&out);
        assert!((p.value() - (-40.0)).abs() < 1.0, "output {p}");
    }

    #[test]
    fn noise_floor_is_raised_by_nf() {
        let lna = Lna::paper_cglna(Hertz::from_khz(500.0));
        // A silent input should come out at roughly (kTB + NF - 1) + gain.
        let input = SampleBuffer::zeros(20_000, 2e6);
        let out = lna.amplify(&input);
        let p = buffer_power_dbm(&out);
        let expected = lna.added_noise_power() + lna.gain;
        assert!(
            (p.value() - expected.value()).abs() < 1.5,
            "noise floor {p} vs expected {expected}"
        );
    }

    #[test]
    fn strong_signal_is_compressed() {
        let lna = Lna::paper_cglna(Hertz::from_khz(500.0));
        let input = tone(-10.0, 2000);
        let out = lna.amplify(&input);
        let p = buffer_power_dbm(&out);
        // Linear gain would put this at +10 dBm; the soft limiter caps the
        // output within ~6 dB of the -5 dBm compression point.
        assert!(p.value() < 2.0, "output {p}");
    }

    #[test]
    fn gain_monotonicity_preserved_below_compression() {
        let lna = Lna::paper_cglna(Hertz::from_khz(500.0));
        let p1 = buffer_power_dbm(&lna.amplify(&tone(-70.0, 4000)));
        let p2 = buffer_power_dbm(&lna.amplify(&tone(-60.0, 4000)));
        let p3 = buffer_power_dbm(&lna.amplify(&tone(-50.0, 4000)));
        assert!(p1.value() < p2.value() && p2.value() < p3.value());
    }
}
