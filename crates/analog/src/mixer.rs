//! RF and baseband mixers.
//!
//! The cyclic-frequency-shifting circuit uses two mixers (paper Fig. 11):
//! the *input mixer* multiplies the incident RF signal with `CLK_in(Δf)`,
//! creating sidebands at `F ± Δf` alongside the carrier feed-through, and the
//! *output mixer* multiplies the amplified IF envelope with `CLK_out(Δf)` to
//! bring it back to baseband.

use lora_phy::iq::SampleBuffer;

use crate::oscillator::Oscillator;
use crate::signal::RealBuffer;

/// A mixer operating on the RF (complex-baseband) signal with a real clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfMixer {
    /// Conversion loss applied to the mixed products (linear voltage factor).
    pub conversion_gain: f64,
    /// Fraction of the original (un-mixed) signal that leaks through to the
    /// output. The shifting circuit relies on this carrier feed-through so the
    /// envelope detector can beat the sidebands against the original signal.
    pub feedthrough: f64,
}

impl Default for RfMixer {
    fn default() -> Self {
        // A passive mixer with ~6 dB conversion loss and strong feed-through
        // (the prototype simply couples both paths into the detector).
        RfMixer {
            conversion_gain: 0.5,
            feedthrough: 1.0,
        }
    }
}

impl RfMixer {
    /// Mixes the complex-baseband input with the clock: the output contains
    /// the fed-through original plus the product with the clock waveform.
    pub fn mix(&self, input: &SampleBuffer, clock: &Oscillator) -> SampleBuffer {
        let samples = self.mix_chunk(&input.samples, clock, input.sample_rate, 0);
        SampleBuffer::new(samples, input.sample_rate)
    }

    /// Mixes one chunk of a stream whose first sample sits at absolute index
    /// `start_index`. The clock phase follows the absolute position, so
    /// chunked mixing equals [`Self::mix`] on the concatenated stream
    /// bit-exactly, wherever the chunk boundaries fall.
    pub fn mix_chunk(
        &self,
        chunk: &[lora_phy::iq::Iq],
        clock: &Oscillator,
        sample_rate: f64,
        start_index: u64,
    ) -> Vec<lora_phy::iq::Iq> {
        let mut clk = Vec::new();
        clock.values_into(start_index, chunk.len(), sample_rate, &mut clk);
        let mut out = Vec::new();
        self.mix_with_clock_into(chunk, &clk, &mut out);
        out
    }

    /// Mixes one chunk against a pre-sampled clock block (one clock value per
    /// input sample) into a caller-provided buffer — the allocation-free form
    /// the streaming shifter chain uses, with the clock produced once by
    /// [`Oscillator::values_into`] (or its recurrence fast path) and shared
    /// by both mixers.
    pub fn mix_with_clock_into(
        &self,
        chunk: &[lora_phy::iq::Iq],
        clock: &[f64],
        out: &mut Vec<lora_phy::iq::Iq>,
    ) {
        assert_eq!(chunk.len(), clock.len(), "one clock value per sample");
        match crate::simd::active_backend() {
            crate::simd::Backend::Scalar => {
                out.clear();
                out.reserve(chunk.len());
                for (s, &c) in chunk.iter().zip(clock) {
                    out.push(s.scale(self.feedthrough) + s.scale(self.conversion_gain * c));
                }
            }
            wide => {
                crate::simd::rf_mix_into(
                    wide,
                    chunk,
                    clock,
                    self.feedthrough,
                    self.conversion_gain,
                    out,
                );
            }
        }
    }
}

/// A mixer operating on real baseband/IF signals (the output mixer of Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BasebandMixer {
    /// Conversion gain of the product term (linear voltage factor).
    pub conversion_gain: f64,
}

impl Default for BasebandMixer {
    fn default() -> Self {
        BasebandMixer {
            conversion_gain: 1.0,
        }
    }
}

impl BasebandMixer {
    /// Multiplies the real input with the clock waveform.
    pub fn mix(&self, input: &RealBuffer, clock: &Oscillator) -> RealBuffer {
        RealBuffer::new(
            self.mix_chunk(&input.samples, clock, input.sample_rate, 0),
            input.sample_rate,
        )
    }

    /// Mixes one chunk of a stream whose first sample sits at absolute index
    /// `start_index` (see [`RfMixer::mix_chunk`]).
    pub fn mix_chunk(
        &self,
        chunk: &[f64],
        clock: &Oscillator,
        sample_rate: f64,
        start_index: u64,
    ) -> Vec<f64> {
        let mut clk = Vec::new();
        clock.values_into(start_index, chunk.len(), sample_rate, &mut clk);
        let mut out = chunk.to_vec();
        self.mix_with_clock_in_place(&mut out, &clk);
        out
    }

    /// Mixes a real block against a pre-sampled clock block *in place* — the
    /// output mixer of the streaming shifting chain rewrites the envelope
    /// buffer it is handed without a copy.
    pub fn mix_with_clock_in_place(&self, data: &mut [f64], clock: &[f64]) {
        assert_eq!(data.len(), clock.len(), "one clock value per sample");
        match crate::simd::active_backend() {
            crate::simd::Backend::Scalar => {
                for (s, &c) in data.iter_mut().zip(clock) {
                    *s = self.conversion_gain * *s * c;
                }
            }
            wide => crate::simd::bb_mix_in_place(wide, data, clock, self.conversion_gain),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::iq::Iq;
    use std::f64::consts::PI;

    #[test]
    fn rf_mixer_creates_sidebands() {
        // Mix a DC (zero-frequency) complex tone with a 100 kHz clock: the
        // output should contain energy at 0 (feed-through) and ±100 kHz.
        let fs = 1e6;
        let input = SampleBuffer::new(vec![Iq::ONE; 8192], fs);
        let mixer = RfMixer::default();
        let clock = Oscillator::new(100_000.0);
        let out = mixer.mix(&input, &clock);
        let spectrum: Vec<f64> = lora_phy::fft::power_spectrum(&out.samples);
        let n = spectrum.len();
        let bin = |f: f64| ((f / fs) * n as f64).round() as usize % n;
        let dc = spectrum[bin(0.0)];
        let upper = spectrum[bin(100_000.0)];
        let lower = spectrum[n - bin(100_000.0)];
        let away = spectrum[bin(300_000.0)];
        assert!(dc > 100.0 * away.max(1e-12));
        assert!(upper > 100.0 * away.max(1e-12));
        assert!(lower > 100.0 * away.max(1e-12));
        // Sidebands carry conversion_gain/2 of the voltage = 1/4 each.
        assert!(
            (upper / dc - 1.0 / 16.0).abs() < 0.02,
            "ratio {}",
            upper / dc
        );
    }

    #[test]
    fn rf_mixer_without_feedthrough_suppresses_original() {
        let fs = 1e6;
        let input = SampleBuffer::new(vec![Iq::ONE; 4096], fs);
        let mixer = RfMixer {
            conversion_gain: 0.5,
            feedthrough: 0.0,
        };
        let clock = Oscillator::new(100_000.0);
        let out = mixer.mix(&input, &clock);
        let spectrum: Vec<f64> = lora_phy::fft::power_spectrum(&out.samples);
        let n = spectrum.len();
        let dc = spectrum[0];
        let upper = spectrum[((100_000.0 / fs) * n as f64).round() as usize];
        assert!(upper > 10.0 * dc, "dc {dc} upper {upper}");
    }

    #[test]
    fn baseband_mixer_shifts_tone_to_dc() {
        // A 200 kHz real tone mixed with a 200 kHz clock produces a DC
        // component (plus a 400 kHz image).
        let fs = 2e6;
        let n = 40_000;
        let input = RealBuffer::new(
            (0..n)
                .map(|i| (2.0 * PI * 200_000.0 * i as f64 / fs).cos())
                .collect(),
            fs,
        );
        let out = BasebandMixer::default().mix(&input, &Oscillator::new(200_000.0));
        let dc = out.band_power(0.0, 5_000.0);
        let image = out.band_power(395_000.0, 405_000.0);
        let elsewhere = out.band_power(95_000.0, 105_000.0);
        assert!(dc > 0.1, "dc power {dc}");
        assert!(image > 0.05, "image power {image}");
        assert!(elsewhere < 0.01, "leakage {elsewhere}");
    }

    #[test]
    fn baseband_mixer_respects_phase() {
        // Mixing with a 90°-shifted clock nulls the DC term.
        let fs = 2e6;
        let n = 40_000;
        let input = RealBuffer::new(
            (0..n)
                .map(|i| (2.0 * PI * 200_000.0 * i as f64 / fs).cos())
                .collect(),
            fs,
        );
        let clock = Oscillator::new(200_000.0).with_phase(PI / 2.0);
        let out = BasebandMixer::default().mix(&input, &clock);
        let dc = out.band_power(0.0, 5_000.0);
        assert!(dc < 0.01, "dc power {dc} should be nulled");
    }
}
