//! A conventional ADC model — the power-hungry component Saiyan eliminates.
//!
//! The standard LoRa receiver digitises the baseband at ≥ 2×BW with a
//! multi-bit ADC before running an FFT; Saiyan replaces this with a
//! comparator plus a kilohertz-rate sampler. We keep an ADC model around for
//! two reasons: (a) the power comparison in Table 2 / §4.3 needs the baseline
//! figure, and (b) experiments can check that Saiyan's decisions match what an
//! ideal digitiser would have produced.

use crate::signal::RealBuffer;

/// A uniform mid-rise quantiser sampling at a fixed rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    /// Number of bits of resolution.
    pub bits: u8,
    /// Full-scale input range (volts, peak-to-peak, centred on 0..range).
    pub full_scale: f64,
    /// Sampling rate in Hz.
    pub sample_rate: f64,
    /// Power consumption while converting, in microwatts. A LoRa-grade ADC +
    /// down-converter budget is tens of milliwatts (the paper quotes > 40 mW
    /// for the whole standard receive chain).
    pub power_uw: f64,
}

impl Adc {
    /// A 12-bit, 1 Msps ADC typical of a commercial LoRa receiver's baseband.
    pub fn lora_receiver_grade() -> Self {
        Adc {
            bits: 12,
            full_scale: 1.0,
            sample_rate: 1.0e6,
            power_uw: 10_000.0,
        }
    }

    /// Number of quantisation levels.
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Least-significant-bit size in volts.
    pub fn lsb(&self) -> f64 {
        self.full_scale / self.levels() as f64
    }

    /// Quantises one voltage into its integer code.
    #[inline]
    pub fn quantize(&self, v: f64) -> u32 {
        let clamped = v.clamp(0.0, self.full_scale);
        ((clamped / self.lsb()).floor() as u32).min(self.levels() - 1)
    }

    /// Samples and quantises the input, returning integer codes.
    pub fn convert(&self, input: &RealBuffer) -> Vec<u32> {
        let resampled = input.resample_nearest(self.sample_rate);
        resampled
            .samples
            .iter()
            .map(|&v| self.quantize(v))
            .collect()
    }

    /// Creates a streaming converter for an input stream at `input_rate` Hz:
    /// conversion instants are fixed on the global input-sample index (tick
    /// `k` latches the input sample nearest `k / sample_rate`), so chunked
    /// conversion is bit-identical for any chunking. Matches
    /// [`Self::convert`] except at a finite buffer's trailing edge, where the
    /// batch path clamps ticks into the buffer instead of waiting for the
    /// next sample.
    pub fn streaming(&self, input_rate: f64) -> AdcState {
        assert!(input_rate > 0.0, "input rate must be positive");
        AdcState {
            adc: *self,
            input_rate,
            in_index: 0,
            next_tick: 0,
            next_target: 0,
        }
    }

    /// Reconstructs voltages from codes (mid-tread reconstruction).
    pub fn reconstruct(&self, codes: &[u32]) -> Vec<f64> {
        codes
            .iter()
            .map(|&c| (c as f64 + 0.5) * self.lsb())
            .collect()
    }

    /// Theoretical signal-to-quantisation-noise ratio for a full-scale sine.
    pub fn sqnr_db(&self) -> f64 {
        6.02 * self.bits as f64 + 1.76
    }
}

/// Carried state of a streaming [`Adc`]: the global input index and the next
/// conversion instant survive across chunk boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcState {
    adc: Adc,
    input_rate: f64,
    /// Global index of the next input sample.
    in_index: u64,
    /// Next conversion tick to emit.
    next_tick: u64,
    /// Input index at which that tick latches.
    next_target: u64,
}

impl AdcState {
    /// Converts one chunk of the voltage stream into codes appended to `out`
    /// (cleared first), advancing the carried conversion clock.
    pub fn convert_chunk_into(&mut self, chunk: &[f64], out: &mut Vec<u32>) {
        out.clear();
        for &v in chunk {
            while self.next_target == self.in_index {
                out.push(self.adc.quantize(v));
                self.next_tick += 1;
                self.next_target =
                    (self.next_tick as f64 / self.adc.sample_rate * self.input_rate).round() as u64;
            }
            self.in_index += 1;
        }
    }
}

impl crate::stage::BlockStage for AdcState {
    type In = f64;
    type Out = u32;
    fn process_into(&mut self, input: &[f64], out: &mut Vec<u32>) {
        self.convert_chunk_into(input, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantisation_round_trip_error_is_bounded() {
        let adc = Adc {
            bits: 8,
            full_scale: 1.0,
            sample_rate: 1000.0,
            power_uw: 1.0,
        };
        let input = RealBuffer::new((0..1000).map(|i| i as f64 / 1000.0).collect(), 1000.0);
        let codes = adc.convert(&input);
        let recon = adc.reconstruct(&codes);
        for (orig, rec) in input.samples.iter().zip(&recon) {
            assert!(
                (orig - rec).abs() <= adc.lsb(),
                "error {}",
                (orig - rec).abs()
            );
        }
    }

    #[test]
    fn codes_are_within_range() {
        let adc = Adc::lora_receiver_grade();
        let input = RealBuffer::new(vec![-1.0, 0.0, 0.5, 2.0], 1.0e6);
        let codes = adc.convert(&input);
        assert!(codes.iter().all(|&c| c < adc.levels()));
        assert_eq!(codes[0], 0);
        assert_eq!(*codes.last().unwrap(), adc.levels() - 1);
    }

    #[test]
    fn sqnr_matches_rule_of_thumb() {
        let adc = Adc::lora_receiver_grade();
        assert!((adc.sqnr_db() - 74.0).abs() < 0.5);
    }

    #[test]
    fn adc_power_dwarfs_comparator_budget() {
        // The point of the comparison: a receiver-grade ADC consumes orders of
        // magnitude more than Saiyan's entire 93.2 µW ASIC budget.
        let adc = Adc::lora_receiver_grade();
        assert!(adc.power_uw > 50.0 * 93.2);
    }

    #[test]
    fn streaming_adc_is_chunk_invariant_and_matches_batch_quantisation() {
        let adc = Adc {
            bits: 10,
            full_scale: 1.0,
            sample_rate: 400.0,
            power_uw: 1.0,
        };
        let input: Vec<f64> = (0..4_000)
            .map(|i| 0.5 + 0.4 * (0.01 * i as f64).sin())
            .collect();
        let mut whole = Vec::new();
        adc.streaming(1000.0).convert_chunk_into(&input, &mut whole);
        // One code per 2.5 input samples.
        assert_eq!(whole.len(), 1600);
        for chunk_size in [1usize, 7, 64, 4_000] {
            let mut state = adc.streaming(1000.0);
            let mut out = Vec::new();
            let mut scratch = Vec::new();
            for chunk in input.chunks(chunk_size) {
                state.convert_chunk_into(chunk, &mut scratch);
                out.extend_from_slice(&scratch);
            }
            assert_eq!(out, whole, "chunk size {chunk_size}");
        }
        // Codes agree with the batch quantiser away from the trailing edge.
        let batch = adc.convert(&RealBuffer::new(input.clone(), 1000.0));
        assert_eq!(
            &whole[..batch.len().min(whole.len()) - 2],
            &batch[..batch.len() - 2]
        );
    }

    #[test]
    fn resampling_respects_rate() {
        let adc = Adc {
            bits: 10,
            full_scale: 1.0,
            sample_rate: 500.0,
            power_uw: 1.0,
        };
        let input = RealBuffer::new(vec![0.25; 2000], 1000.0);
        let codes = adc.convert(&input);
        assert_eq!(codes.len(), 1000); // 2 s of input at 500 sps
    }
}
