//! Wideband channelizer: per-channel down-conversion and decimation.
//!
//! A multi-channel gateway front end digitises one *wideband* IQ stream
//! covering several LoRa channels at once. For each channel the channelizer
//! recovers the channel's own complex baseband — the stream a single-channel
//! receiver would have captured — in three steps:
//!
//! 1. **band-select FIR**: a causal complex band-pass FIR passing
//!    `[offset - guard, offset + passband + guard]` Hz, designed by frequency
//!    sampling exactly like [`crate::saw::SawFilter::streaming_fir`]
//!    (Hann-windowed inverse FFT of the desired response, rotated to linear
//!    phase) — it rejects the neighbouring channels that would otherwise
//!    alias into the decimated stream;
//! 2. **decimation**: keep every `D`-th filtered sample, dropping the rate
//!    from the wideband rate to the per-channel rate (the convolution is only
//!    evaluated at the kept samples);
//! 3. **frequency shift**: multiply each kept sample by
//!    `e^{-j 2π f_off n / f_s}` (with `n` the absolute *wideband* index of
//!    that sample), so the channel's lower band edge — where the Saiyan chirp
//!    sweep starts — lands at 0 Hz. Shifting after decimation is legitimate
//!    because the complex spectrum is circular modulo the output rate, and it
//!    prices the oscillator at the channel rate instead of the wideband rate.
//!
//! Like every streaming stage in this workspace the channelizer is *chunk
//! invariant*: the oscillator phase is a function of the absolute wideband
//! sample index, the FIR carries its delay line
//! ([`crate::fir::ComplexFirState`]), and the decimation phase is carried —
//! so outputs are bit-identical however the input stream is chunked.

use std::f64::consts::PI;

use lora_phy::fft::ifft;
use lora_phy::iq::Iq;

use crate::fir::ComplexFirState;

/// Static description of one channel extracted from a wideband stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelizerSpec {
    /// Offset (Hz) of the channel's lower band edge from the wideband centre
    /// frequency. The shift stage moves this offset to 0 Hz.
    pub offset_hz: f64,
    /// Decimation factor `D`: wideband rate / channel rate. Must be ≥ 1.
    pub decimation: usize,
    /// FIR length (power of two ≥ 8). Ignored for a passthrough spec.
    pub n_taps: usize,
    /// Width (Hz) of the wanted channel content above the band edge — the
    /// LoRa bandwidth for a Saiyan channel.
    pub passband_hz: f64,
    /// Extra passband margin (Hz) kept on both sides of the content so the
    /// FIR's transition band does not eat into it.
    pub guard_hz: f64,
}

impl ChannelizerSpec {
    /// Default FIR length: at the gateway's wideband rates this puts the
    /// design grid's bin spacing well inside the inter-channel guard bands
    /// while the per-output cost stays far below the SAW FIR's.
    pub const DEFAULT_TAPS: usize = 128;

    /// A spec for a channel whose content spans `[offset_hz, offset_hz +
    /// passband_hz]` relative to the wideband centre, decimated by
    /// `decimation`, with default FIR length and a quarter-bandwidth guard.
    pub fn for_channel(offset_hz: f64, passband_hz: f64, decimation: usize) -> Self {
        ChannelizerSpec {
            offset_hz,
            decimation,
            n_taps: Self::DEFAULT_TAPS,
            passband_hz,
            guard_hz: passband_hz / 4.0,
        }
    }

    /// The identity spec: no shift, no filtering, no decimation. A gateway
    /// channel built from it sees the raw wideband samples bit-for-bit.
    pub fn passthrough() -> Self {
        ChannelizerSpec {
            offset_hz: 0.0,
            decimation: 1,
            n_taps: 0,
            passband_hz: 0.0,
            guard_hz: 0.0,
        }
    }

    /// Whether this spec is the identity (zero offset, no decimation): the
    /// streaming state then forwards samples untouched.
    pub fn is_passthrough(&self) -> bool {
        self.offset_hz == 0.0 && self.decimation == 1
    }

    /// Returns a copy with a different FIR length.
    pub fn with_taps(mut self, n_taps: usize) -> Self {
        self.n_taps = n_taps;
        self
    }

    /// Creates the streaming channelizer state for a wideband stream at
    /// `wideband_rate` Hz.
    pub fn streaming(&self, wideband_rate: f64) -> ChannelizerState {
        assert!(wideband_rate > 0.0, "wideband rate must be positive");
        assert!(self.decimation >= 1, "decimation must be at least 1");
        if self.is_passthrough() {
            return ChannelizerState {
                passthrough: true,
                phase_step: 0.0,
                index: 0,
                decimation: 1,
                phase: 0,
                fir: None,
            };
        }
        assert!(
            self.n_taps >= 8 && self.n_taps.is_power_of_two(),
            "n_taps must be a power of two >= 8, got {}",
            self.n_taps
        );
        let l = self.n_taps;
        // Desired response on the design grid: unit gain over the channel's
        // own band [offset - guard, offset + passband + guard], zero
        // elsewhere (the same frequency-sampling design as the streaming SAW
        // FIR, but band-pass at the channel offset — the shift to baseband
        // happens after decimation).
        let lo = self.offset_hz - self.guard_hz;
        let hi = self.offset_hz + self.passband_hz + self.guard_hz;
        let desired: Vec<Iq> = (0..l)
            .map(|k| {
                let fb = if (k as f64) < l as f64 / 2.0 {
                    k as f64 * wideband_rate / l as f64
                } else {
                    (k as f64 - l as f64) * wideband_rate / l as f64
                };
                if fb >= lo && fb <= hi {
                    Iq::ONE
                } else {
                    Iq::ZERO
                }
            })
            .collect();
        let h = ifft(&desired).expect("n_taps is a power of two");
        // Rotate the zero-phase kernel to causal linear phase (group delay
        // l/2 samples) and taper with a Hann window to suppress Gibbs ripple.
        let delay = l / 2;
        let taps: Vec<Iq> = (0..l)
            .map(|i| {
                let w = 0.5 * (1.0 - (2.0 * PI * i as f64 / l as f64).cos());
                h[(i + l - delay) % l].scale(w)
            })
            .collect();
        ChannelizerState {
            passthrough: false,
            phase_step: -2.0 * PI * self.offset_hz / wideband_rate,
            index: 0,
            decimation: self.decimation,
            phase: 0,
            fir: Some(ComplexFirState::new(taps)),
        }
    }
}

/// Carried state of one channel's down-conversion chain: absolute-index
/// oscillator phase, FIR delay line and decimation phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelizerState {
    passthrough: bool,
    /// Oscillator phase increment per wideband sample (radians).
    phase_step: f64,
    /// Absolute index of the next wideband sample.
    index: u64,
    decimation: usize,
    /// Input samples consumed since the last emitted output.
    phase: usize,
    fir: Option<ComplexFirState>,
}

impl ChannelizerState {
    /// Whether this state forwards samples untouched.
    pub fn is_passthrough(&self) -> bool {
        self.passthrough
    }

    /// The FIR group delay in wideband samples (0 for a passthrough).
    pub fn delay_samples(&self) -> usize {
        self.fir.as_ref().map_or(0, |f| f.n_taps() / 2)
    }

    /// Total wideband samples consumed so far.
    pub fn samples_consumed(&self) -> u64 {
        self.index
    }

    /// Processes one wideband chunk, returning the channel-rate samples that
    /// completed within it (one per `decimation` inputs).
    pub fn process_chunk(&mut self, chunk: &[Iq]) -> Vec<Iq> {
        if self.passthrough {
            self.index += chunk.len() as u64;
            return chunk.to_vec();
        }
        let fir = self.fir.as_mut().expect("non-passthrough state has a FIR");
        let mut out = Vec::with_capacity(chunk.len() / self.decimation + 1);
        for &x in chunk {
            self.phase += 1;
            if self.phase == self.decimation {
                self.phase = 0;
                let y = fir.push_and_convolve(x);
                out.push(y * Iq::phasor(self.phase_step * self.index as f64));
            } else {
                fir.push_silent(x);
            }
            self.index += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(offset_hz: f64, fs: f64, n: usize) -> Vec<Iq> {
        let w = 2.0 * PI * offset_hz / fs;
        (0..n).map(|i| Iq::phasor(w * i as f64)).collect()
    }

    #[test]
    fn passthrough_is_the_identity() {
        let spec = ChannelizerSpec::passthrough();
        assert!(spec.is_passthrough());
        let mut state = spec.streaming(1e6);
        let input = tone(12_345.0, 1e6, 777);
        let out = state.process_chunk(&input);
        assert_eq!(out, input);
        assert_eq!(state.samples_consumed(), 777);
        assert_eq!(state.delay_samples(), 0);
    }

    #[test]
    fn chunked_processing_is_bit_identical() {
        let fs = 2e6;
        let spec = ChannelizerSpec::for_channel(-250_000.0, 125_000.0, 8);
        let input = tone(-200_000.0, fs, 6_000);
        let whole = spec.streaming(fs).process_chunk(&input);
        for chunk_size in [1usize, 7, 64, 4096] {
            let mut state = spec.streaming(fs);
            let mut out = Vec::new();
            for chunk in input.chunks(chunk_size) {
                out.extend(state.process_chunk(chunk));
            }
            assert_eq!(out, whole, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn decimation_produces_one_output_per_d_inputs() {
        let fs = 1e6;
        let spec = ChannelizerSpec::for_channel(100_000.0, 125_000.0, 4);
        let mut state = spec.streaming(fs);
        // 10 inputs at D=4 -> 2 outputs; next 2 inputs complete the third.
        assert_eq!(state.process_chunk(&tone(0.0, fs, 10)).len(), 2);
        assert_eq!(state.process_chunk(&tone(0.0, fs, 2)).len(), 1);
    }

    #[test]
    fn in_band_tone_passes_and_neighbour_is_rejected() {
        let fs = 2e6;
        let offset = 250_000.0;
        let bw = 125_000.0;
        let spec = ChannelizerSpec::for_channel(offset, bw, 8);
        let n = 16_000;
        let steady = |out: &[Iq]| {
            let s = &out[out.len() / 2..];
            s.iter().map(Iq::abs).sum::<f64>() / s.len() as f64
        };
        // A tone in the middle of the channel comes through near unit gain.
        let mut state = spec.streaming(fs);
        let wanted = steady(&state.process_chunk(&tone(offset + bw / 2.0, fs, n)));
        assert!(
            (20.0 * wanted.log10()).abs() < 1.0,
            "in-band gain {wanted:.3}"
        );
        // A tone in the middle of the next 500 kHz grid slot is crushed.
        let mut state = spec.streaming(fs);
        let neighbour = steady(&state.process_chunk(&tone(offset + 500_000.0 + bw / 2.0, fs, n)));
        assert!(
            20.0 * (neighbour / wanted).log10() < -40.0,
            "neighbour leak {:.1} dB",
            20.0 * (neighbour / wanted).log10()
        );
    }

    #[test]
    fn shift_moves_the_band_edge_to_dc() {
        let fs = 2e6;
        let offset = -500_000.0;
        let spec = ChannelizerSpec::for_channel(offset, 125_000.0, 4);
        let mut state = spec.streaming(fs);
        // A tone 50 kHz above the channel base must come out at +50 kHz.
        let out = state.process_chunk(&tone(offset + 50_000.0, fs, 20_000));
        let out_fs = fs / 4.0;
        let steady = &out[out.len() / 2..];
        let mut freq = 0.0;
        for pair in steady.windows(2) {
            freq += (pair[1] * pair[0].conj()).arg() * out_fs / (2.0 * PI);
        }
        freq /= (steady.len() - 1) as f64;
        assert!((freq - 50_000.0).abs() < 500.0, "measured {freq:.0} Hz");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_tap_count_is_rejected() {
        ChannelizerSpec::for_channel(0.0, 125_000.0, 2)
            .with_taps(100)
            .streaming(1e6);
    }
}
