//! Wideband channelizer: per-channel down-conversion and decimation.
//!
//! A multi-channel gateway front end digitises one *wideband* IQ stream
//! covering several LoRa channels at once. For each channel the channelizer
//! recovers the channel's own complex baseband — the stream a single-channel
//! receiver would have captured — in three steps:
//!
//! 1. **band-select FIR**: a causal complex band-pass FIR passing
//!    `[offset - guard, offset + passband + guard]` Hz, designed by frequency
//!    sampling exactly like [`crate::saw::SawFilter::streaming_fir`]
//!    (Hann-windowed inverse FFT of the desired response, rotated to linear
//!    phase) — it rejects the neighbouring channels that would otherwise
//!    alias into the decimated stream;
//! 2. **decimation**: keep every `D`-th filtered sample, dropping the rate
//!    from the wideband rate to the per-channel rate (the convolution is only
//!    evaluated at the kept samples);
//! 3. **frequency shift**: multiply each kept sample by
//!    `e^{-j 2π f_off n / f_s}` (with `n` the absolute *wideband* index of
//!    that sample), so the channel's lower band edge — where the Saiyan chirp
//!    sweep starts — lands at 0 Hz. Shifting after decimation is legitimate
//!    because the complex spectrum is circular modulo the output rate, and it
//!    prices the oscillator at the channel rate instead of the wideband rate.
//!
//! Like every streaming stage in this workspace the channelizer is *chunk
//! invariant*: the oscillator phase is a function of the absolute wideband
//! sample index, the FIR carries its delay line
//! ([`crate::fir::ComplexFirState`]), and the decimation phase is carried —
//! so outputs are bit-identical however the input stream is chunked.

use std::f64::consts::PI;

use lora_phy::fft::ifft;
use lora_phy::iq::Iq;

use crate::fir::PolyphaseDecimator;

/// Static description of one channel extracted from a wideband stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelizerSpec {
    /// Offset (Hz) of the channel's lower band edge from the wideband centre
    /// frequency. The shift stage moves this offset to 0 Hz.
    pub offset_hz: f64,
    /// Decimation factor `D`: wideband rate / channel rate. Must be ≥ 1.
    pub decimation: usize,
    /// FIR length (power of two ≥ 8). Ignored for a passthrough spec.
    pub n_taps: usize,
    /// Width (Hz) of the wanted channel content above the band edge — the
    /// LoRa bandwidth for a Saiyan channel.
    pub passband_hz: f64,
    /// Extra passband margin (Hz) kept on both sides of the content so the
    /// FIR's transition band does not eat into it.
    pub guard_hz: f64,
    /// Evaluate the down-conversion phasor with the anchored-table fast path
    /// (`anchor · step^t`, with the anchor recomputed exactly on a fixed
    /// absolute-output-index grid and the step powers tabulated once) instead
    /// of one `sin`/`cos` pair per output. Still chunk invariant — both the
    /// anchor grid and the table offset depend only on the absolute output
    /// index — but not bit-identical to the exact phasor, so it defaults to
    /// `false` and receivers opt in via their high-throughput profile.
    pub fast_phasor: bool,
}

impl ChannelizerSpec {
    /// Default FIR length: at the gateway's wideband rates this puts the
    /// design grid's bin spacing well inside the inter-channel guard bands
    /// while the per-output cost stays far below the SAW FIR's.
    pub const DEFAULT_TAPS: usize = 128;

    /// A spec for a channel whose content spans `[offset_hz, offset_hz +
    /// passband_hz]` relative to the wideband centre, decimated by
    /// `decimation`, with default FIR length and a quarter-bandwidth guard.
    pub fn for_channel(offset_hz: f64, passband_hz: f64, decimation: usize) -> Self {
        ChannelizerSpec {
            offset_hz,
            decimation,
            n_taps: Self::DEFAULT_TAPS,
            passband_hz,
            guard_hz: passband_hz / 4.0,
            fast_phasor: false,
        }
    }

    /// The identity spec: no shift, no filtering, no decimation. A gateway
    /// channel built from it sees the raw wideband samples bit-for-bit.
    pub fn passthrough() -> Self {
        ChannelizerSpec {
            offset_hz: 0.0,
            decimation: 1,
            n_taps: 0,
            passband_hz: 0.0,
            guard_hz: 0.0,
            fast_phasor: false,
        }
    }

    /// Returns a copy with the anchored-recurrence phasor fast path enabled
    /// or disabled (see [`ChannelizerSpec::fast_phasor`]).
    pub fn with_fast_phasor(mut self, fast: bool) -> Self {
        self.fast_phasor = fast;
        self
    }

    /// Whether this spec is the identity (zero offset, no decimation): the
    /// streaming state then forwards samples untouched.
    pub fn is_passthrough(&self) -> bool {
        self.offset_hz == 0.0 && self.decimation == 1
    }

    /// Returns a copy with a different FIR length.
    pub fn with_taps(mut self, n_taps: usize) -> Self {
        self.n_taps = n_taps;
        self
    }

    /// Creates the streaming channelizer state for a wideband stream at
    /// `wideband_rate` Hz.
    pub fn streaming(&self, wideband_rate: f64) -> ChannelizerState {
        assert!(wideband_rate > 0.0, "wideband rate must be positive");
        assert!(self.decimation >= 1, "decimation must be at least 1");
        if self.is_passthrough() {
            return ChannelizerState {
                passthrough: true,
                phase_step: 0.0,
                index: 0,
                decimation: 1,
                fir: None,
                fast_phasor: false,
                out_count: 0,
                anchor: Iq::ONE,
                anchor_base: u64::MAX,
                rot_table: Vec::new(),
            };
        }
        assert!(
            self.n_taps >= 8 && self.n_taps.is_power_of_two(),
            "n_taps must be a power of two >= 8, got {}",
            self.n_taps
        );
        let l = self.n_taps;
        // Desired response on the design grid: unit gain over the channel's
        // own band [offset - guard, offset + passband + guard], zero
        // elsewhere (the same frequency-sampling design as the streaming SAW
        // FIR, but band-pass at the channel offset — the shift to baseband
        // happens after decimation).
        let lo = self.offset_hz - self.guard_hz;
        let hi = self.offset_hz + self.passband_hz + self.guard_hz;
        let desired: Vec<Iq> = (0..l)
            .map(|k| {
                let fb = if (k as f64) < l as f64 / 2.0 {
                    k as f64 * wideband_rate / l as f64
                } else {
                    (k as f64 - l as f64) * wideband_rate / l as f64
                };
                if fb >= lo && fb <= hi {
                    Iq::ONE
                } else {
                    Iq::ZERO
                }
            })
            .collect();
        let h = ifft(&desired).expect("n_taps is a power of two");
        // Rotate the zero-phase kernel to causal linear phase (group delay
        // l/2 samples) and taper with a Hann window to suppress Gibbs ripple.
        let delay = l / 2;
        let taps: Vec<Iq> = (0..l)
            .map(|i| {
                let w = 0.5 * (1.0 - (2.0 * PI * i as f64 / l as f64).cos());
                h[(i + l - delay) % l].scale(w)
            })
            .collect();
        let phase_step = -2.0 * PI * self.offset_hz / wideband_rate;
        // Step powers for the fast path: `rot_table[t] = step^t` built by the
        // serial recurrence once, where `step` is the phasor advance per
        // output (D wideband samples).
        let rot_table = if self.fast_phasor {
            let step = Iq::phasor(phase_step * self.decimation as f64);
            let mut table = Vec::with_capacity(PHASOR_ANCHOR_INTERVAL as usize);
            let mut z = Iq::ONE;
            for _ in 0..PHASOR_ANCHOR_INTERVAL {
                table.push(z);
                z *= step;
            }
            table
        } else {
            Vec::new()
        };
        ChannelizerState {
            passthrough: false,
            phase_step,
            index: 0,
            decimation: self.decimation,
            fir: Some(PolyphaseDecimator::new(taps, self.decimation)),
            fast_phasor: self.fast_phasor,
            out_count: 0,
            anchor: Iq::ONE,
            anchor_base: u64::MAX,
            rot_table,
        }
    }
}

/// Carried state of one channel's down-conversion chain: absolute-index
/// oscillator phase, polyphase FIR delay lines and decimation phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelizerState {
    passthrough: bool,
    /// Oscillator phase increment per wideband sample (radians).
    phase_step: f64,
    /// Absolute index of the next wideband sample.
    index: u64,
    decimation: usize,
    fir: Option<PolyphaseDecimator>,
    /// Use the anchored-recurrence phasor (see
    /// [`ChannelizerSpec::fast_phasor`]).
    fast_phasor: bool,
    /// Absolute index of the next output (drives the phasor anchor grid).
    out_count: u64,
    /// Exact phasor at the current anchor interval's base output (fast path).
    anchor: Iq,
    /// Base output index [`Self::anchor`] was computed for (`u64::MAX` until
    /// the first fast-path output).
    anchor_base: u64,
    /// Tabulated per-output step powers `step^t` for `t` within an anchor
    /// interval (empty unless the fast path is enabled).
    rot_table: Vec<Iq>,
}

/// Output-index spacing of the fast-phasor anchor grid: the rotation error
/// accumulated across the tabulated step powers between exact re-anchors
/// stays at a few ULPs.
const PHASOR_ANCHOR_INTERVAL: u64 = 256;

impl ChannelizerState {
    /// Whether this state forwards samples untouched.
    pub fn is_passthrough(&self) -> bool {
        self.passthrough
    }

    /// The FIR group delay in wideband samples (0 for a passthrough).
    pub fn delay_samples(&self) -> usize {
        self.fir.as_ref().map_or(0, |f| f.n_taps() / 2)
    }

    /// Total wideband samples consumed so far.
    pub fn samples_consumed(&self) -> u64 {
        self.index
    }

    /// Processes one wideband chunk, returning the channel-rate samples that
    /// completed within it (one per `decimation` inputs). Allocates a fresh
    /// buffer per call; steady-state callers (the gateway worker loop) should
    /// prefer [`Self::process_chunk_into`].
    pub fn process_chunk(&mut self, chunk: &[Iq]) -> Vec<Iq> {
        let mut out = Vec::new();
        self.process_chunk_into(chunk, &mut out);
        out
    }

    /// Processes one wideband chunk into a caller-provided buffer (cleared
    /// first), with no steady-state allocation: the band-select FIR runs in
    /// polyphase form through the block kernel
    /// ([`PolyphaseDecimator::filter_chunk_into`]), then each kept sample is
    /// rotated by the down-conversion phasor anchored on its absolute
    /// wideband index (exactly per output, or via the anchored recurrence
    /// when [`ChannelizerSpec::fast_phasor`] is set).
    pub fn process_chunk_into(&mut self, chunk: &[Iq], out: &mut Vec<Iq>) {
        if self.passthrough {
            out.clear();
            out.extend_from_slice(chunk);
            self.index += chunk.len() as u64;
            return;
        }
        let fir = self.fir.as_mut().expect("non-passthrough state has a FIR");
        // Output k corresponds to absolute wideband index kD + D - 1.
        let mut emit_index = self.out_count * self.decimation as u64 + (self.decimation - 1) as u64;
        fir.filter_chunk_into(chunk, out);
        if self.fast_phasor {
            // Anchor-interval runs: every output inside a run shares the
            // interval's exact anchor phasor and picks its own tabulated step
            // power, so the whole run is one elementwise kernel call.
            let backend = crate::simd::active_backend();
            let d = self.decimation as u64;
            let mut i = 0usize;
            while i < out.len() {
                let t = (self.out_count % PHASOR_ANCHOR_INTERVAL) as usize;
                let base = self.out_count - t as u64;
                if self.anchor_base != base {
                    self.anchor = Iq::phasor(self.phase_step * (base * d + (d - 1)) as f64);
                    self.anchor_base = base;
                }
                let run = (PHASOR_ANCHOR_INTERVAL as usize - t).min(out.len() - i);
                crate::simd::rotate_by_table_in_place(
                    backend,
                    &mut out[i..i + run],
                    self.anchor,
                    &self.rot_table[t..t + run],
                );
                self.out_count += run as u64;
                i += run;
            }
        } else {
            for y in out.iter_mut() {
                *y *= Iq::phasor(self.phase_step * emit_index as f64);
                self.out_count += 1;
                emit_index += self.decimation as u64;
            }
        }
        self.index += chunk.len() as u64;
    }
}

impl crate::stage::BlockStage for ChannelizerState {
    type In = Iq;
    type Out = Iq;
    fn process_into(&mut self, input: &[Iq], out: &mut Vec<Iq>) {
        self.process_chunk_into(input, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(offset_hz: f64, fs: f64, n: usize) -> Vec<Iq> {
        let w = 2.0 * PI * offset_hz / fs;
        (0..n).map(|i| Iq::phasor(w * i as f64)).collect()
    }

    #[test]
    fn passthrough_is_the_identity() {
        let spec = ChannelizerSpec::passthrough();
        assert!(spec.is_passthrough());
        let mut state = spec.streaming(1e6);
        let input = tone(12_345.0, 1e6, 777);
        let out = state.process_chunk(&input);
        assert_eq!(out, input);
        assert_eq!(state.samples_consumed(), 777);
        assert_eq!(state.delay_samples(), 0);
    }

    #[test]
    fn chunked_processing_is_bit_identical() {
        let fs = 2e6;
        let spec = ChannelizerSpec::for_channel(-250_000.0, 125_000.0, 8);
        let input = tone(-200_000.0, fs, 6_000);
        let whole = spec.streaming(fs).process_chunk(&input);
        for chunk_size in [1usize, 7, 64, 4096] {
            let mut state = spec.streaming(fs);
            let mut out = Vec::new();
            for chunk in input.chunks(chunk_size) {
                out.extend(state.process_chunk(chunk));
            }
            assert_eq!(out, whole, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn decimation_produces_one_output_per_d_inputs() {
        let fs = 1e6;
        let spec = ChannelizerSpec::for_channel(100_000.0, 125_000.0, 4);
        let mut state = spec.streaming(fs);
        // 10 inputs at D=4 -> 2 outputs; next 2 inputs complete the third.
        assert_eq!(state.process_chunk(&tone(0.0, fs, 10)).len(), 2);
        assert_eq!(state.process_chunk(&tone(0.0, fs, 2)).len(), 1);
    }

    #[test]
    fn in_band_tone_passes_and_neighbour_is_rejected() {
        let fs = 2e6;
        let offset = 250_000.0;
        let bw = 125_000.0;
        let spec = ChannelizerSpec::for_channel(offset, bw, 8);
        let n = 16_000;
        let steady = |out: &[Iq]| {
            let s = &out[out.len() / 2..];
            s.iter().map(Iq::abs).sum::<f64>() / s.len() as f64
        };
        // A tone in the middle of the channel comes through near unit gain.
        let mut state = spec.streaming(fs);
        let wanted = steady(&state.process_chunk(&tone(offset + bw / 2.0, fs, n)));
        assert!(
            (20.0 * wanted.log10()).abs() < 1.0,
            "in-band gain {wanted:.3}"
        );
        // A tone in the middle of the next 500 kHz grid slot is crushed.
        let mut state = spec.streaming(fs);
        let neighbour = steady(&state.process_chunk(&tone(offset + 500_000.0 + bw / 2.0, fs, n)));
        assert!(
            20.0 * (neighbour / wanted).log10() < -40.0,
            "neighbour leak {:.1} dB",
            20.0 * (neighbour / wanted).log10()
        );
    }

    #[test]
    fn shift_moves_the_band_edge_to_dc() {
        let fs = 2e6;
        let offset = -500_000.0;
        let spec = ChannelizerSpec::for_channel(offset, 125_000.0, 4);
        let mut state = spec.streaming(fs);
        // A tone 50 kHz above the channel base must come out at +50 kHz.
        let out = state.process_chunk(&tone(offset + 50_000.0, fs, 20_000));
        let out_fs = fs / 4.0;
        let steady = &out[out.len() / 2..];
        let mut freq = 0.0;
        for pair in steady.windows(2) {
            freq += (pair[1] * pair[0].conj()).arg() * out_fs / (2.0 * PI);
        }
        freq /= (steady.len() - 1) as f64;
        assert!((freq - 50_000.0).abs() < 500.0, "measured {freq:.0} Hz");
    }

    #[test]
    fn fast_phasor_tracks_exact_within_tolerance_and_is_chunk_invariant() {
        let fs = 2e6;
        let input = tone(-180_000.0, fs, 60_000);
        let exact_spec = ChannelizerSpec::for_channel(-250_000.0, 125_000.0, 4);
        let fast_spec = exact_spec.clone().with_fast_phasor(true);
        let mut exact = Vec::new();
        exact_spec
            .streaming(fs)
            .process_chunk_into(&input, &mut exact);
        let mut fast = Vec::new();
        fast_spec
            .streaming(fs)
            .process_chunk_into(&input, &mut fast);
        assert_eq!(exact.len(), fast.len());
        let worst = exact
            .iter()
            .zip(&fast)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-9, "fast phasor drifted by {worst:.3e}");
        // The anchored recurrence is still bit-exactly chunk invariant.
        for chunk_size in [1usize, 7, 997, 16_384] {
            let mut state = fast_spec.streaming(fs);
            let mut got = Vec::new();
            let mut scratch = Vec::new();
            for chunk in input.chunks(chunk_size) {
                state.process_chunk_into(chunk, &mut scratch);
                got.extend_from_slice(&scratch);
            }
            assert_eq!(got, fast, "chunk size {chunk_size}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_tap_count_is_rejected() {
        ChannelizerSpec::for_channel(0.0, 125_000.0, 2)
            .with_taps(100)
            .streaming(1e6);
    }
}
