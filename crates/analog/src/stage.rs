//! The block-pipeline stage abstraction.
//!
//! Every streaming element of the analog chain — SAW/channelizer FIR, LNA,
//! envelope detector, mixer/shifter chain, IF amplifier, low-pass filter,
//! comparator — processes a caller-provided input slice into a caller-provided
//! output buffer (or in place), carrying whatever state it needs across chunk
//! boundaries. Two contracts make the chain composable:
//!
//! * **chunk invariance** — the concatenated output over any partition of the
//!   stream is bit-identical to whole-buffer processing, because each stage's
//!   output at sample `n` depends only on samples `..= n` and carried state;
//! * **no steady-state allocation** — stages write into reusable buffers the
//!   *caller* owns (`Vec`s whose capacity survives across chunks), so a
//!   long-running receiver performs no per-chunk heap traffic.
//!
//! The traits here exist so the buffer-ownership rules are written down once
//! and so the chunk-partition test harness (`tests/stage_partitions.rs`) can
//! drive every stage through one generic routine. Concrete pipelines
//! ([`crate::shifting::ShifterState`], `saiyan::frontend::StreamingFrontend`)
//! call the inherent `*_into` methods directly — monomorphised, no dynamic
//! dispatch.

/// A streaming stage that maps an input block to an output block of its own
/// element type, one output per input sample (or fewer, for decimators).
///
/// `process_into` must clear `out` before writing, must leave the stage in
/// the same state as processing the same samples in any other chunking, and
/// must not allocate once `out` and any internal scratch have grown to a
/// chunk's working size.
pub trait BlockStage {
    /// Input element type.
    type In: Copy;
    /// Output element type.
    type Out: Copy;

    /// Processes one chunk of the stream into `out` (cleared first),
    /// advancing the carried state.
    fn process_into(&mut self, input: &[Self::In], out: &mut Vec<Self::Out>);
}

/// A streaming stage that rewrites a real-valued block in place (filters with
/// no rate change and no type change: the IF amplifier and low-pass cascade).
///
/// In-place stages are the cheapest composition: the envelope buffer produced
/// by the detector flows through the whole back half of the shifting chain
/// without a single copy.
pub trait InPlaceStage {
    /// Filters one chunk in place, advancing the carried state.
    fn process_in_place(&mut self, data: &mut [f64]);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy two-tap moving-sum stage used to pin the trait contracts.
    struct MovingSum {
        prev: f64,
    }

    impl BlockStage for MovingSum {
        type In = f64;
        type Out = f64;
        fn process_into(&mut self, input: &[f64], out: &mut Vec<f64>) {
            out.clear();
            for &x in input {
                out.push(self.prev + x);
                self.prev = x;
            }
        }
    }

    #[test]
    fn block_stage_is_chunk_invariant() {
        let input: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let mut whole = Vec::new();
        MovingSum { prev: 0.0 }.process_into(&input, &mut whole);
        for chunk in [1usize, 3, 7] {
            let mut stage = MovingSum { prev: 0.0 };
            let mut out = Vec::new();
            let mut scratch = Vec::new();
            for c in input.chunks(chunk) {
                stage.process_into(c, &mut scratch);
                out.extend_from_slice(&scratch);
            }
            assert_eq!(out, whole);
        }
    }
}
