//! Shared streaming complex-FIR machinery.
//!
//! Both the streaming SAW filter ([`crate::saw::SawFirState`]) and the
//! wideband channelizer ([`crate::channelizer`]) are causal complex FIR
//! filters that must be *chunk invariant*: feeding a stream through them in
//! chunks of any size produces bit-identical output, because the convolution
//! of sample `n` only ever reads samples `n - n_taps + 1 ..= n` from carried
//! history. This module holds that state machine once, so every FIR in the
//! workspace shares one (carefully ordered) inner loop.
//!
//! ## Block layout
//!
//! The delay line is not a ring buffer. The filter keeps a contiguous
//! split-complex workspace laid out as `[history prefix][current block]`: the
//! last `n_taps − 1` samples of the stream followed by whatever chunk is being
//! filtered (the *history-prefix + body* split). Every output is then a plain
//! dot product over a contiguous window of that workspace, which the block
//! kernel evaluates four outputs at a time with the real/imaginary planes
//! stored separately — a shape LLVM autovectorizes. After each chunk the
//! workspace is compacted back down to the history prefix, so steady-state
//! processing performs no allocation.
//!
//! ## Determinism
//!
//! The per-output summation order is fixed (taps are walked oldest sample
//! first, accumulated into two partial sums by tap parity that are combined at
//! the end), and it is the same whether an output is produced by the block
//! kernel, the scalar tail, or [`ComplexFirState::push_and_convolve`].
//! Outputs are therefore bit-identical however the input stream is chunked.

use lora_phy::iq::Iq;

/// A causal complex FIR filter with its carried delay-line history.
///
/// The summation order of the convolution is fixed (oldest tap contribution
/// first, two parity-partial accumulators), so outputs are bit-identical
/// however the input stream is chunked.
#[derive(Debug, Clone)]
pub struct ComplexFirState {
    /// Impulse response in natural order (`taps[0]` multiplies the newest
    /// sample).
    taps: Vec<Iq>,
    /// Real parts of the reversed impulse response (`taps_rev[j]` multiplies
    /// the `j`-th sample of a window walked oldest-first).
    taps_rev_re: Vec<f64>,
    /// Imaginary parts of the reversed impulse response.
    taps_rev_im: Vec<f64>,
    /// Real plane of the `[history prefix][body]` workspace.
    buf_re: Vec<f64>,
    /// Imaginary plane of the workspace.
    buf_im: Vec<f64>,
    /// Split-complex output scratch of the block kernel (interleaved into the
    /// caller's `Vec<Iq>` after the convolution); reused across chunks.
    out_re: Vec<f64>,
    /// Imaginary plane of the output scratch.
    out_im: Vec<f64>,
}

/// Two states are equal when they would produce identical future outputs:
/// same taps and same logical delay-line contents (the trailing
/// `n_taps − 1` samples of the workspace).
impl PartialEq for ComplexFirState {
    fn eq(&self, other: &Self) -> bool {
        if self.taps != other.taps {
            return false;
        }
        let keep = self.taps.len() - 1;
        let a = self.buf_re.len() - keep;
        let b = other.buf_re.len() - keep;
        self.buf_re[a..] == other.buf_re[b..] && self.buf_im[a..] == other.buf_im[b..]
    }
}

/// Workspace growth allowed before the push-based API compacts back down to
/// the history prefix (the chunk APIs compact after every call instead).
const PUSH_COMPACT_SLACK: usize = 1024;

impl ComplexFirState {
    /// Creates a filter from its impulse response (must be non-empty). The
    /// delay line starts zeroed, i.e. the stream is implicitly preceded by
    /// silence.
    pub fn new(taps: Vec<Iq>) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        let l = taps.len();
        ComplexFirState {
            taps_rev_re: taps.iter().rev().map(|t| t.re).collect(),
            taps_rev_im: taps.iter().rev().map(|t| t.im).collect(),
            buf_re: vec![0.0; l - 1],
            buf_im: vec![0.0; l - 1],
            out_re: Vec::new(),
            out_im: Vec::new(),
            taps,
        }
    }

    /// The number of FIR taps.
    pub fn n_taps(&self) -> usize {
        self.taps.len()
    }

    /// Drops workspace content older than the history prefix, keeping the
    /// last `n_taps − 1` samples in place.
    fn compact(&mut self) {
        let keep = self.taps.len() - 1;
        let len = self.buf_re.len();
        if len > keep {
            self.buf_re.copy_within(len - keep.., 0);
            self.buf_im.copy_within(len - keep.., 0);
            self.buf_re.truncate(keep);
            self.buf_im.truncate(keep);
        }
    }

    /// Pushes one input sample and returns the convolution output at that
    /// sample.
    #[inline]
    pub fn push_and_convolve(&mut self, x: Iq) -> Iq {
        self.buf_re.push(x.re);
        self.buf_im.push(x.im);
        let l = self.taps.len();
        let start = self.buf_re.len() - l;
        let out = dot_window(
            &self.taps_rev_re,
            &self.taps_rev_im,
            &self.buf_re[start..],
            &self.buf_im[start..],
        );
        if self.buf_re.len() >= l + PUSH_COMPACT_SLACK {
            self.compact();
        }
        out
    }

    /// Pushes one input sample into the delay line *without* computing an
    /// output — the cheap path a decimating filter takes on the samples it
    /// will not emit.
    #[inline]
    pub fn push_silent(&mut self, x: Iq) {
        self.buf_re.push(x.re);
        self.buf_im.push(x.im);
        if self.buf_re.len() >= self.taps.len() + PUSH_COMPACT_SLACK {
            self.compact();
        }
    }

    /// Filters one chunk, producing one output sample per input sample.
    ///
    /// Allocates a fresh output buffer per call; steady-state callers should
    /// prefer [`Self::filter_chunk_into`], which reuses one.
    pub fn filter_chunk(&mut self, chunk: &[Iq]) -> Vec<Iq> {
        let mut out = Vec::new();
        self.filter_chunk_into(chunk, &mut out);
        out
    }

    /// Filters one chunk into a caller-provided buffer (cleared first), one
    /// output per input sample. In steady state this performs no allocation:
    /// the workspace, the split-complex output scratch and `out` all retain
    /// their capacity across calls.
    pub fn filter_chunk_into(&mut self, chunk: &[Iq], out: &mut Vec<Iq>) {
        out.clear();
        if chunk.is_empty() {
            return;
        }
        self.append(chunk);
        let l = self.taps.len();
        let base = self.buf_re.len() - chunk.len() - (l - 1);
        convolve_block(
            &self.taps_rev_re,
            &self.taps_rev_im,
            &self.buf_re[base..],
            &self.buf_im[base..],
            &mut self.out_re,
            &mut self.out_im,
            chunk.len(),
        );
        crate::simd::interleave_extend(
            crate::simd::active_backend(),
            &self.out_re,
            &self.out_im,
            out,
        );
        self.compact();
    }

    /// Appends a chunk to the split-complex workspace.
    fn append(&mut self, chunk: &[Iq]) {
        crate::simd::deinterleave_extend(
            crate::simd::active_backend(),
            chunk,
            &mut self.buf_re,
            &mut self.buf_im,
        );
    }
}

impl crate::stage::BlockStage for ComplexFirState {
    type In = Iq;
    type Out = Iq;
    fn process_into(&mut self, input: &[Iq], out: &mut Vec<Iq>) {
        self.filter_chunk_into(input, out);
    }
}

/// A decimating complex FIR in polyphase form: the convolution is evaluated
/// only at the kept output instants, and the work is arranged so the block
/// kernel — not a latency-bound scalar dot product — does all of it.
///
/// For decimation `D`, the impulse response splits into `D` sub-filters
/// (`h_p[t] = taps[p + tD]`) and the input into `D` phase streams
/// (`s_r[m] = x[mD + r]`). Each block of consecutive outputs is then a sum of
/// `D` ordinary convolutions of a sub-filter against a phase stream, each of
/// which runs through the same tiled SIMD block kernel the full-rate
/// [`ComplexFirState`] uses. Output `k` is emitted after input `kD + D − 1`
/// arrives, exactly like a one-in-`D` decimator fed sample by sample.
///
/// ## Determinism
///
/// Per output, the summation order is fixed: phases `p = 0 .. D` in
/// ascending order, each contributing a two-parity partial dot in the shared
/// kernel order. The phase decomposition, stream contents and output
/// instants depend only on absolute sample indices, so outputs are
/// bit-identical however the input is chunked. (The order differs from the
/// single-window [`ComplexFirState::push_and_convolve`] path, so the two
/// agree to rounding, not bit-exactly — the polyphase path is its own
/// deterministic reference.)
#[derive(Debug, Clone)]
pub struct PolyphaseDecimator {
    taps: Vec<Iq>,
    decimation: usize,
    /// Length of the longest sub-filter, `ceil(l / D)`.
    sub_len: usize,
    /// Reversed sub-filter planes per phase (kernel convention: index `u`
    /// multiplies the `u`-th oldest sample of the window).
    sub_re: Vec<Vec<f64>>,
    sub_im: Vec<Vec<f64>>,
    /// Phase-stream planes: `ph_*[r]` holds `s_r[m] = x[mD + r]`, with a
    /// zero history prefix standing in for the silence before the stream.
    ph_re: Vec<Vec<f64>>,
    ph_im: Vec<Vec<f64>>,
    /// Logical stream index `m` of element 0 of every phase-stream plane.
    base_m: i64,
    /// Absolute input samples consumed.
    n_in: u64,
    /// Outputs emitted so far.
    n_out: u64,
    /// Cross-phase accumulator scratch.
    acc_re: Vec<f64>,
    acc_im: Vec<f64>,
}

impl PolyphaseDecimator {
    /// Creates a decimator from an impulse response (non-empty) and a
    /// decimation factor (≥ 1). The delay line starts zeroed.
    pub fn new(taps: Vec<Iq>, decimation: usize) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        assert!(decimation >= 1, "decimation must be at least 1");
        let l = taps.len();
        let d = decimation;
        let sub_len = l.div_ceil(d);
        let mut sub_re = Vec::with_capacity(d);
        let mut sub_im = Vec::with_capacity(d);
        for p in 0..d {
            // h_p[t] = taps[p + tD], reversed for the oldest-first kernel.
            // Phases past the filter length (D > l) have no taps at all.
            let t_p = if p < l { (l - p).div_ceil(d) } else { 0 };
            let mut re = Vec::with_capacity(t_p);
            let mut im = Vec::with_capacity(t_p);
            for u in (0..t_p).rev() {
                let tap = taps[p + u * d];
                re.push(tap.re);
                im.push(tap.im);
            }
            sub_re.push(re);
            sub_im.push(im);
        }
        let hist = sub_len - 1;
        PolyphaseDecimator {
            taps,
            decimation: d,
            sub_len,
            sub_re,
            sub_im,
            ph_re: vec![vec![0.0; hist]; d],
            ph_im: vec![vec![0.0; hist]; d],
            base_m: -(hist as i64),
            n_in: 0,
            n_out: 0,
            acc_re: Vec::new(),
            acc_im: Vec::new(),
        }
    }

    /// The number of FIR taps.
    pub fn n_taps(&self) -> usize {
        self.taps.len()
    }

    /// The decimation factor `D`.
    pub fn decimation(&self) -> usize {
        self.decimation
    }

    /// Total input samples consumed.
    pub fn samples_consumed(&self) -> u64 {
        self.n_in
    }

    /// Outputs emitted so far.
    pub fn outputs_emitted(&self) -> u64 {
        self.n_out
    }

    /// Filters one chunk into `out` (cleared first), emitting the outputs
    /// that completed inside it. No allocation in steady state.
    pub fn filter_chunk_into(&mut self, chunk: &[Iq], out: &mut Vec<Iq>) {
        out.clear();
        if chunk.is_empty() {
            return;
        }
        let d = self.decimation;
        let n = chunk.len();
        // De-interleave the chunk into the phase streams in one sequential
        // pass: sample `i` (absolute index `n_in + i`) belongs to phase
        // `(r0 + i) % d`, so a single walk of the chunk with one write
        // cursor per phase replaces the `2d` strided re-reads of the chunk
        // that a phase-at-a-time gather costs (the chunk is read once, hot).
        let r0 = (self.n_in % d as u64) as usize;
        // Samples of phase `r` inside this chunk (phase `r0` owns sample 0).
        let cnt_for = |r: usize| {
            let off = (r + d - r0) % d;
            if off >= n {
                0
            } else {
                (n - off).div_ceil(d)
            }
        };
        let mut cur_re: Vec<*mut f64> = Vec::with_capacity(d);
        let mut cur_im: Vec<*mut f64> = Vec::with_capacity(d);
        for r in 0..d {
            let cnt = cnt_for(r);
            let re = &mut self.ph_re[r];
            let im = &mut self.ph_im[r];
            re.reserve(cnt);
            im.reserve(cnt);
            // SAFETY: the cursor points at the `cnt` spare-capacity slots
            // just reserved for phase `r` (not resize-zeroed — every slot is
            // written below, and made visible by the `set_len` after the
            // fill). The loop advances each cursor exactly once per chunk
            // sample of its phase, i.e. `cnt` times; no other borrow of the
            // planes is alive while the cursors are in use, and the other
            // phases' `reserve` calls cannot move this phase's allocation.
            cur_re.push(unsafe { re.as_mut_ptr().add(re.len()) });
            cur_im.push(unsafe { im.as_mut_ptr().add(im.len()) });
        }
        {
            let cur_re = &mut cur_re[..d];
            let cur_im = &mut cur_im[..d];
            let mut r = r0;
            for x in chunk {
                // SAFETY: see the cursor construction above; `r` cycles
                // `0..d`.
                unsafe {
                    *cur_re[r] = x.re;
                    cur_re[r] = cur_re[r].add(1);
                    *cur_im[r] = x.im;
                    cur_im[r] = cur_im[r].add(1);
                }
                r += 1;
                if r == d {
                    r = 0;
                }
            }
        }
        for r in 0..d {
            let cnt = cnt_for(r);
            // SAFETY: the fill loop initialised exactly `cnt` elements past
            // each plane's length, inside capacity reserved above.
            unsafe {
                let len = self.ph_re[r].len() + cnt;
                self.ph_re[r].set_len(len);
                let len = self.ph_im[r].len() + cnt;
                self.ph_im[r].set_len(len);
            }
        }
        self.n_in += n as u64;
        let k0 = self.n_out;
        let total_k = self.n_in / d as u64;
        let m = (total_k - k0) as usize;
        if m == 0 {
            return;
        }
        self.acc_re.clear();
        self.acc_im.clear();
        self.acc_re.resize(m, 0.0);
        self.acc_im.resize(m, 0.0);
        // Phase 0 always has taps (`taps[0]` belongs to it), so it stores
        // into the accumulator planes and the remaining phases fold on top
        // (p ascending — fixed order). Arithmetically this only skips the
        // `0.0 +` seed of each output's first partial, which can flip the
        // sign of an exactly-zero output — invisible to any `==` comparison
        // and independent of chunking, since the stored phase is fixed.
        for p in 0..d {
            let r = d - 1 - p;
            let t_p = self.sub_re[p].len();
            if t_p == 0 {
                continue;
            }
            let start = (k0 as i64 - t_p as i64 + 1 - self.base_m) as usize;
            if p == 0 {
                convolve_dispatch::<false>(
                    &self.sub_re[p],
                    &self.sub_im[p],
                    &self.ph_re[r][start..],
                    &self.ph_im[r][start..],
                    &mut self.acc_re,
                    &mut self.acc_im,
                    m,
                );
            } else {
                convolve_dispatch::<true>(
                    &self.sub_re[p],
                    &self.sub_im[p],
                    &self.ph_re[r][start..],
                    &self.ph_im[r][start..],
                    &mut self.acc_re,
                    &mut self.acc_im,
                    m,
                );
            }
        }
        crate::simd::interleave_extend(
            crate::simd::active_backend(),
            &self.acc_re,
            &self.acc_im,
            out,
        );
        self.n_out = total_k;
        self.compact();
    }

    /// Drops phase-stream history no future output can read.
    fn compact(&mut self) {
        let new_base = self.n_out as i64 - (self.sub_len as i64 - 1);
        let drop = (new_base - self.base_m) as usize;
        if drop == 0 {
            return;
        }
        for r in 0..self.decimation {
            let re = &mut self.ph_re[r];
            let im = &mut self.ph_im[r];
            let keep = re.len() - drop.min(re.len());
            let len = re.len();
            re.copy_within(len - keep.., 0);
            im.copy_within(len - keep.., 0);
            re.truncate(keep);
            im.truncate(keep);
        }
        self.base_m = new_base;
    }
}

/// Two decimators are equal when they would produce identical future
/// outputs: same filter, same decimation, same stream position and same
/// retained phase-stream history (workspace layout is ignored, as with
/// [`ComplexFirState`]).
impl PartialEq for PolyphaseDecimator {
    fn eq(&self, other: &Self) -> bool {
        if self.taps != other.taps
            || self.decimation != other.decimation
            || self.n_in != other.n_in
            || self.n_out != other.n_out
        {
            return false;
        }
        for r in 0..self.decimation {
            let a_skip = (self.n_out as i64 - (self.sub_len as i64 - 1) - self.base_m) as usize;
            let b_skip = (other.n_out as i64 - (other.sub_len as i64 - 1) - other.base_m) as usize;
            if self.ph_re[r][a_skip.min(self.ph_re[r].len())..]
                != other.ph_re[r][b_skip.min(other.ph_re[r].len())..]
                || self.ph_im[r][a_skip.min(self.ph_im[r].len())..]
                    != other.ph_im[r][b_skip.min(other.ph_im[r].len())..]
            {
                return false;
            }
        }
        true
    }
}

/// One output of the convolution: the dot product of the reversed taps with a
/// window of `taps.len()` samples walked oldest-first. Accumulates into two
/// partial sums by tap parity — the exact summation order the block kernel
/// uses, so every code path produces bit-identical outputs.
#[inline]
fn dot_window(tr: &[f64], ti: &[f64], wr: &[f64], wi: &[f64]) -> Iq {
    let l = tr.len();
    let mut ar = [0.0f64; 2];
    let mut ai = [0.0f64; 2];
    let mut j = 0usize;
    while j + 2 <= l {
        for p in 0..2 {
            let t_re = tr[j + p];
            let t_im = ti[j + p];
            let s_re = wr[j + p];
            let s_im = wi[j + p];
            ar[p] += t_re * s_re - t_im * s_im;
            ai[p] += t_re * s_im + t_im * s_re;
        }
        j += 2;
    }
    if j < l {
        let (t_re, t_im, s_re, s_im) = (tr[j], ti[j], wr[j], wi[j]);
        ar[0] += t_re * s_re - t_im * s_im;
        ai[0] += t_re * s_im + t_im * s_re;
    }
    Iq::new(ar[0] + ar[1], ai[0] + ai[1])
}

/// The block kernel: `m` consecutive outputs over the `[history][body]`
/// workspace starting at `buf[..]` (so output `i` reads `buf[i .. i + l]`),
/// written to the split-complex output planes (cleared and resized to `m`).
///
/// Outputs are produced four at a time with the dot products register-tiled
/// across outputs — four independent accumulator lanes per tap parity, the
/// loop shape LLVM turns into SIMD — with the identical per-output summation
/// order as [`dot_window`], which handles the `m % 4` tail.
#[allow(clippy::too_many_arguments)]
fn convolve_block(
    tr: &[f64],
    ti: &[f64],
    buf_re: &[f64],
    buf_im: &[f64],
    out_re: &mut Vec<f64>,
    out_im: &mut Vec<f64>,
    m: usize,
) {
    out_re.clear();
    out_im.clear();
    out_re.resize(m, 0.0);
    out_im.resize(m, 0.0);
    convolve_dispatch::<false>(tr, ti, buf_re, buf_im, out_re, out_im, m);
}

/// Routes a convolution block to the active SIMD backend, or to the scalar
/// tile ([`convolve_block_impl`] — the golden reference) when none is
/// selected. Both sides honour the same per-output summation order, so the
/// choice never changes a bit of output.
#[allow(clippy::too_many_arguments)]
fn convolve_dispatch<const ACCUM: bool>(
    tr: &[f64],
    ti: &[f64],
    buf_re: &[f64],
    buf_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    m: usize,
) {
    match crate::simd::active_backend() {
        crate::simd::Backend::Scalar => {
            convolve_block_impl::<ACCUM>(tr, ti, buf_re, buf_im, out_re, out_im, m)
        }
        wide => {
            crate::simd::convolve_block::<ACCUM>(wide, tr, ti, buf_re, buf_im, out_re, out_im, m)
        }
    }
}

/// [`convolve_block`] body. With `ACCUM` the per-output results are *added*
/// to the (pre-sized) output planes instead of stored — the polyphase
/// decimator folds its cross-phase sum into the kernel this way, one phase
/// at a time in fixed order.
#[allow(clippy::too_many_arguments)]
fn convolve_block_impl<const ACCUM: bool>(
    tr: &[f64],
    ti: &[f64],
    buf_re: &[f64],
    buf_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    m: usize,
) {
    let l = tr.len();
    let l2 = l & !1;
    let m4 = m & !3;
    let mut i = 0usize;
    while i < m4 {
        // Two tap-parity partials per output, four outputs per tile.
        let mut ar0 = [0.0f64; 4];
        let mut ar1 = [0.0f64; 4];
        let mut ai0 = [0.0f64; 4];
        let mut ai1 = [0.0f64; 4];
        let mut j = 0usize;
        while j < l2 {
            {
                let t_re = tr[j];
                let t_im = ti[j];
                let s_re = &buf_re[i + j..i + j + 4];
                let s_im = &buf_im[i + j..i + j + 4];
                for q in 0..4 {
                    ar0[q] += t_re * s_re[q] - t_im * s_im[q];
                    ai0[q] += t_re * s_im[q] + t_im * s_re[q];
                }
            }
            {
                let t_re = tr[j + 1];
                let t_im = ti[j + 1];
                let s_re = &buf_re[i + j + 1..i + j + 5];
                let s_im = &buf_im[i + j + 1..i + j + 5];
                for q in 0..4 {
                    ar1[q] += t_re * s_re[q] - t_im * s_im[q];
                    ai1[q] += t_re * s_im[q] + t_im * s_re[q];
                }
            }
            j += 2;
        }
        if j < l {
            let t_re = tr[j];
            let t_im = ti[j];
            let s_re = &buf_re[i + j..i + j + 4];
            let s_im = &buf_im[i + j..i + j + 4];
            for q in 0..4 {
                ar0[q] += t_re * s_re[q] - t_im * s_im[q];
                ai0[q] += t_re * s_im[q] + t_im * s_re[q];
            }
        }
        for q in 0..4 {
            if ACCUM {
                out_re[i + q] += ar0[q] + ar1[q];
                out_im[i + q] += ai0[q] + ai1[q];
            } else {
                out_re[i + q] = ar0[q] + ar1[q];
                out_im[i + q] = ai0[q] + ai1[q];
            }
        }
        i += 4;
    }
    for i in m4..m {
        let v = dot_window(tr, ti, &buf_re[i..i + l], &buf_im[i..i + l]);
        if ACCUM {
            out_re[i] += v.re;
            out_im[i] += v.im;
        } else {
            out_re[i] = v.re;
            out_im[i] = v.im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn impulse_taps() -> Vec<Iq> {
        vec![
            Iq::new(0.5, 0.0),
            Iq::new(0.25, -0.1),
            Iq::new(-0.125, 0.2),
            Iq::new(0.0625, 0.0),
        ]
    }

    #[test]
    fn impulse_response_is_the_taps() {
        let mut fir = ComplexFirState::new(impulse_taps());
        let mut input = vec![Iq::ZERO; 6];
        input[0] = Iq::ONE;
        let out = fir.filter_chunk(&input);
        for (k, tap) in impulse_taps().iter().enumerate() {
            assert_eq!(out[k], *tap, "tap {k}");
        }
        assert_eq!(out[4], Iq::ZERO);
    }

    #[test]
    fn chunked_filtering_is_bit_identical() {
        let taps = impulse_taps();
        let input: Vec<Iq> = (0..503)
            .map(|i| Iq::from_polar(1.0 + (i % 7) as f64, i as f64 * 0.37))
            .collect();
        let whole = ComplexFirState::new(taps.clone()).filter_chunk(&input);
        for chunk_size in [1usize, 3, 64, 501] {
            let mut fir = ComplexFirState::new(taps.clone());
            let mut out = Vec::new();
            for chunk in input.chunks(chunk_size) {
                out.extend(fir.filter_chunk(chunk));
            }
            assert_eq!(out, whole, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn push_api_matches_block_api_bit_exactly() {
        // The per-sample push path and the block kernel must not just agree
        // approximately: the summation order is shared, so they agree exactly.
        let taps: Vec<Iq> = (0..128)
            .map(|i| Iq::from_polar(1.0 / (1.0 + i as f64), i as f64 * 0.11))
            .collect();
        let input: Vec<Iq> = (0..2_300)
            .map(|i| Iq::from_polar(1.0 + (i % 11) as f64 * 0.1, i as f64 * 0.07))
            .collect();
        let mut block = ComplexFirState::new(taps.clone());
        let mut expected = Vec::new();
        block.filter_chunk_into(&input, &mut expected);
        let mut push = ComplexFirState::new(taps);
        let got: Vec<Iq> = input.iter().map(|&x| push.push_and_convolve(x)).collect();
        assert_eq!(got, expected);
        assert_eq!(push, block, "carried histories diverged");
    }

    #[test]
    fn filter_chunk_into_reuses_the_buffer() {
        let mut fir = ComplexFirState::new(impulse_taps());
        let input: Vec<Iq> = (0..4_100).map(|i| Iq::new(i as f64, -(i as f64))).collect();
        let mut out = Vec::new();
        fir.filter_chunk_into(&input, &mut out);
        let cap = out.capacity();
        let ptr = out.as_ptr();
        fir.filter_chunk_into(&input, &mut out);
        assert_eq!(out.capacity(), cap);
        assert_eq!(out.as_ptr(), ptr, "output buffer was reallocated");
        assert_eq!(out.len(), input.len());
    }

    #[test]
    fn polyphase_decimator_matches_push_silent_reference() {
        // The polyphase path reorders the per-output summation (by phase,
        // then tap parity), so it agrees with the single-window push path to
        // rounding — the absolute scale here is O(1), so 1e-12 is ~4 decimal
        // orders above the accumulated ULP noise and far below anything a
        // decoder threshold could see.
        for (n_taps, decimation) in [(64usize, 6usize), (64, 1), (33, 5), (8, 13)] {
            let taps: Vec<Iq> = (0..n_taps)
                .map(|i| Iq::from_polar(0.5 / (1.0 + i as f64 * 0.3), i as f64 * 0.2))
                .collect();
            let input: Vec<Iq> = (0..5_000)
                .map(|i| Iq::from_polar(1.0, i as f64 * 0.013))
                .collect();
            let mut reference = ComplexFirState::new(taps.clone());
            let mut want = Vec::new();
            let mut phase = 0usize;
            for &x in &input {
                phase += 1;
                if phase == decimation {
                    phase = 0;
                    want.push(reference.push_and_convolve(x));
                } else {
                    reference.push_silent(x);
                }
            }
            let mut decim = PolyphaseDecimator::new(taps, decimation);
            let mut got = Vec::new();
            let mut scratch = Vec::new();
            for chunk in input.chunks(997) {
                decim.filter_chunk_into(chunk, &mut scratch);
                got.extend_from_slice(&scratch);
            }
            assert_eq!(got.len(), want.len(), "D={decimation} l={n_taps}");
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g.re - w.re).abs() < 1e-12 && (g.im - w.im).abs() < 1e-12,
                    "D={decimation} l={n_taps} output {i}: {g:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn polyphase_decimator_is_chunk_invariant() {
        let taps: Vec<Iq> = (0..64)
            .map(|i| Iq::from_polar(0.5 / (1.0 + i as f64 * 0.3), i as f64 * 0.2))
            .collect();
        let input: Vec<Iq> = (0..5_000)
            .map(|i| Iq::from_polar(1.0, i as f64 * 0.013))
            .collect();
        let mut whole = Vec::new();
        PolyphaseDecimator::new(taps.clone(), 6).filter_chunk_into(&input, &mut whole);
        for chunk_sizes in [vec![1usize], vec![7, 64, 1], vec![4096]] {
            let mut decim = PolyphaseDecimator::new(taps.clone(), 6);
            let mut got = Vec::new();
            let mut scratch = Vec::new();
            let mut offset = 0usize;
            let mut i = 0usize;
            while offset < input.len() {
                let end = (offset + chunk_sizes[i % chunk_sizes.len()]).min(input.len());
                decim.filter_chunk_into(&input[offset..end], &mut scratch);
                got.extend_from_slice(&scratch);
                offset = end;
                i += 1;
            }
            // Bit-identical, including the carried state.
            assert_eq!(got, whole, "chunk sizes {chunk_sizes:?}");
        }
        // States reached via different chunkings compare equal.
        let mut a = PolyphaseDecimator::new(taps.clone(), 6);
        let mut b = PolyphaseDecimator::new(taps, 6);
        let mut scratch = Vec::new();
        a.filter_chunk_into(&input, &mut scratch);
        for chunk in input.chunks(611) {
            b.filter_chunk_into(chunk, &mut scratch);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn polyphase_decimator_tail_and_sub_lane_edge_cases() {
        // Ragged feeds that stress the carried tail: empty chunks, chunks
        // smaller than one decimation cycle (and smaller than one SIMD
        // lane), a first chunk shorter than the filter, filters shorter
        // than the decimation factor (some phase planes own a single tap,
        // the rest only zero padding), and a 1-tap filter. All must stay
        // bit-identical to whole-buffer processing, state included.
        for (n_taps, d) in [(64usize, 6usize), (3, 6), (1, 6), (2, 2), (5, 13)] {
            let taps: Vec<Iq> = (0..n_taps)
                .map(|i| Iq::from_polar(0.5 / (1.0 + i as f64 * 0.3), i as f64 * 0.2))
                .collect();
            let input: Vec<Iq> = (0..733)
                .map(|i| Iq::from_polar(1.0, i as f64 * 0.017))
                .collect();
            let mut whole = Vec::new();
            PolyphaseDecimator::new(taps.clone(), d).filter_chunk_into(&input, &mut whole);
            let sizes = [1usize, 0, 2, 0, 3, 1, 5, 0, 4];
            let mut decim = PolyphaseDecimator::new(taps.clone(), d);
            let mut got = Vec::new();
            let mut scratch = Vec::new();
            let mut offset = 0usize;
            let mut i = 0usize;
            while offset < input.len() {
                let end = (offset + sizes[i % sizes.len()]).min(input.len());
                decim.filter_chunk_into(&input[offset..end], &mut scratch);
                if offset == end {
                    assert!(scratch.is_empty(), "empty chunk emitted output");
                }
                got.extend_from_slice(&scratch);
                offset = end;
                i += 1;
            }
            assert_eq!(got, whole, "l={n_taps} D={d}");
            // The carried state equals the whole-buffer run's, so the empty
            // chunks were true no-ops.
            let mut reference = PolyphaseDecimator::new(taps, d);
            reference.filter_chunk_into(&input, &mut scratch);
            assert_eq!(decim, reference, "l={n_taps} D={d}");
        }
    }

    #[test]
    fn polyphase_decimator_history_shorter_than_taps() {
        // Fewer total samples than the filter is long: every output window
        // still reaches into the implicit zero history, and outputs arrive
        // before any phase plane holds a full complement of samples.
        let taps: Vec<Iq> = (0..64)
            .map(|i| Iq::from_polar(0.5 / (1.0 + i as f64 * 0.3), i as f64 * 0.2))
            .collect();
        let d = 6usize;
        let input: Vec<Iq> = (0..17)
            .map(|i| Iq::from_polar(1.0, i as f64 * 0.3))
            .collect();
        let mut reference = ComplexFirState::new(taps.clone());
        let mut want = Vec::new();
        let mut phase = 0usize;
        for &x in &input {
            phase += 1;
            if phase == d {
                phase = 0;
                want.push(reference.push_and_convolve(x));
            } else {
                reference.push_silent(x);
            }
        }
        let mut whole = Vec::new();
        PolyphaseDecimator::new(taps.clone(), d).filter_chunk_into(&input, &mut whole);
        assert_eq!(whole.len(), want.len());
        for (i, (g, w)) in whole.iter().zip(&want).enumerate() {
            assert!(
                (g.re - w.re).abs() < 1e-12 && (g.im - w.im).abs() < 1e-12,
                "output {i}: {g:?} vs {w:?}"
            );
        }
        // Single-sample feeding over the same short input is bit-identical.
        let mut decim = PolyphaseDecimator::new(taps, d);
        let mut got = Vec::new();
        let mut scratch = Vec::new();
        for &x in &input {
            decim.filter_chunk_into(&[x], &mut scratch);
            got.extend_from_slice(&scratch);
        }
        assert_eq!(got, whole);
    }

    #[test]
    fn push_silent_advances_the_delay_line() {
        // Feeding [a, b] with b silent, then convolving on c, must equal the
        // all-convolved run's third output.
        let taps = impulse_taps();
        let input = [Iq::new(1.0, 0.5), Iq::new(-2.0, 0.25), Iq::new(0.75, -1.0)];
        let reference = ComplexFirState::new(taps.clone()).filter_chunk(&input);
        let mut fir = ComplexFirState::new(taps);
        fir.push_silent(input[0]);
        fir.push_silent(input[1]);
        assert_eq!(fir.push_and_convolve(input[2]), reference[2]);
    }

    #[test]
    fn equality_ignores_workspace_layout() {
        // Same logical history reached through different chunkings compares
        // equal even though the internal workspace lengths differ mid-stream.
        let taps = impulse_taps();
        let input: Vec<Iq> = (0..10).map(|i| Iq::new(i as f64, 0.5)).collect();
        let mut a = ComplexFirState::new(taps.clone());
        let mut b = ComplexFirState::new(taps);
        a.filter_chunk(&input);
        for &x in &input {
            b.push_and_convolve(x);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_are_rejected() {
        ComplexFirState::new(Vec::new());
    }
}
