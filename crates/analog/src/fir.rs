//! Shared streaming complex-FIR machinery.
//!
//! Both the streaming SAW filter ([`crate::saw::SawFirState`]) and the
//! wideband channelizer ([`crate::channelizer`]) are causal complex FIR
//! filters that must be *chunk invariant*: feeding a stream through them in
//! chunks of any size produces bit-identical output, because the convolution
//! of sample `n` only ever reads samples `n - n_taps + 1 ..= n` from a carried
//! delay line. This module holds that delay-line state machine once, so every
//! FIR in the workspace shares one (carefully ordered) inner loop.

use lora_phy::iq::Iq;

/// A causal complex FIR filter with its carried delay-line history.
///
/// The summation order of the convolution is fixed (tap index ascending), so
/// outputs are bit-identical however the input stream is chunked.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexFirState {
    taps: Vec<Iq>,
    history: Vec<Iq>,
    pos: usize,
}

impl ComplexFirState {
    /// Creates a filter from its impulse response (must be non-empty). The
    /// delay line starts zeroed, i.e. the stream is implicitly preceded by
    /// silence.
    pub fn new(taps: Vec<Iq>) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        let l = taps.len();
        ComplexFirState {
            taps,
            history: vec![Iq::ZERO; l],
            pos: 0,
        }
    }

    /// The number of FIR taps.
    pub fn n_taps(&self) -> usize {
        self.taps.len()
    }

    /// Pushes one input sample and returns the convolution output at that
    /// sample.
    #[inline]
    pub fn push_and_convolve(&mut self, x: Iq) -> Iq {
        self.history[self.pos] = x;
        // taps[k] multiplies history[pos - k (mod l)]: walk the ring backwards
        // from pos as two contiguous slices so the hot loop has no modulo. The
        // summation order (k ascending) is fixed, keeping the result
        // bit-identical for any chunking.
        let mut acc = Iq::ZERO;
        let mut k = 0usize;
        for &h in self.history[..=self.pos].iter().rev() {
            acc += self.taps[k] * h;
            k += 1;
        }
        for &h in self.history[self.pos + 1..].iter().rev() {
            acc += self.taps[k] * h;
            k += 1;
        }
        self.pos = (self.pos + 1) % self.taps.len();
        acc
    }

    /// Pushes one input sample into the delay line *without* computing an
    /// output — the cheap path a decimating filter takes on the samples it
    /// will not emit.
    #[inline]
    pub fn push_silent(&mut self, x: Iq) {
        self.history[self.pos] = x;
        self.pos = (self.pos + 1) % self.taps.len();
    }

    /// Filters one chunk, producing one output sample per input sample.
    pub fn filter_chunk(&mut self, chunk: &[Iq]) -> Vec<Iq> {
        let mut out = Vec::with_capacity(chunk.len());
        for &x in chunk {
            out.push(self.push_and_convolve(x));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn impulse_taps() -> Vec<Iq> {
        vec![
            Iq::new(0.5, 0.0),
            Iq::new(0.25, -0.1),
            Iq::new(-0.125, 0.2),
            Iq::new(0.0625, 0.0),
        ]
    }

    #[test]
    fn impulse_response_is_the_taps() {
        let mut fir = ComplexFirState::new(impulse_taps());
        let mut input = vec![Iq::ZERO; 6];
        input[0] = Iq::ONE;
        let out = fir.filter_chunk(&input);
        for (k, tap) in impulse_taps().iter().enumerate() {
            assert_eq!(out[k], *tap, "tap {k}");
        }
        assert_eq!(out[4], Iq::ZERO);
    }

    #[test]
    fn chunked_filtering_is_bit_identical() {
        let taps = impulse_taps();
        let input: Vec<Iq> = (0..503)
            .map(|i| Iq::from_polar(1.0 + (i % 7) as f64, i as f64 * 0.37))
            .collect();
        let whole = ComplexFirState::new(taps.clone()).filter_chunk(&input);
        for chunk_size in [1usize, 3, 64, 501] {
            let mut fir = ComplexFirState::new(taps.clone());
            let mut out = Vec::new();
            for chunk in input.chunks(chunk_size) {
                out.extend(fir.filter_chunk(chunk));
            }
            assert_eq!(out, whole, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn push_silent_advances_the_delay_line() {
        // Feeding [a, b] with b silent, then convolving on c, must equal the
        // all-convolved run's third output.
        let taps = impulse_taps();
        let input = [Iq::new(1.0, 0.5), Iq::new(-2.0, 0.25), Iq::new(0.75, -1.0)];
        let reference = ComplexFirState::new(taps.clone()).filter_chunk(&input);
        let mut fir = ComplexFirState::new(taps);
        fir.push_silent(input[0]);
        fir.push_silent(input[1]);
        assert_eq!(fir.push_and_convolve(input[2]), reference[2]);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_are_rejected() {
        ComplexFirState::new(Vec::new());
    }
}
