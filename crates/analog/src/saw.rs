//! Surface Acoustic Wave (SAW) filter model.
//!
//! Saiyan re-purposes a Qualcomm B3790 SAW filter as a frequency→amplitude
//! converter: within the filter's *critical band* the amplitude response grows
//! monotonically with frequency, so a frequency-modulated chirp comes out
//! amplitude-modulated (paper §2.1, Fig. 5/6). We model the filter as a
//! zero-phase LTI amplitude response applied in the frequency domain, built
//! from the measured points reported in the paper:
//!
//! * insertion loss at the 434 MHz band edge: 10 dB;
//! * 25 dB of amplitude growth from 433.5 MHz → 434 MHz (500 kHz);
//! * 9.5 dB from 433.75 MHz → 434 MHz (250 kHz);
//! * 7.2 dB from 433.875 MHz → 434 MHz (125 kHz);
//! * steep roll-off outside the passband (Fig. 5 shows ≈ −60 dB at 428 MHz).
//!
//! Temperature shifts the whole response in frequency (the filter's
//! temperature coefficient of frequency), which is what Fig. 24 measures.

use lora_phy::fft::{fft, ifft, next_power_of_two};
use lora_phy::iq::{Iq, SampleBuffer};
use rfsim::units::{Celsius, Db, Hertz};

use crate::fir::ComplexFirState;

/// A point on the amplitude response curve: (absolute frequency, gain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponsePoint {
    /// Absolute RF frequency.
    pub frequency: Hertz,
    /// Filter gain at that frequency (negative = attenuation).
    pub gain: Db,
}

/// Frequency-dependent amplitude response of the SAW filter.
#[derive(Debug, Clone, PartialEq)]
pub struct SawFilter {
    /// Piecewise-linear response control points, sorted by frequency.
    points: Vec<ResponsePoint>,
    /// Nominal temperature at which the response was measured.
    reference_temperature: Celsius,
    /// Temperature coefficient of frequency in ppm/°C (negative: the response
    /// slides down in frequency as temperature rises).
    tcf_ppm_per_c: f64,
    /// Current operating temperature.
    temperature: Celsius,
}

impl SawFilter {
    /// Temperature coefficient of frequency. Saiyan's range is only mildly
    /// temperature dependent in Fig. 24, which is consistent with a
    /// temperature-compensated (quartz-substrate) SAW device; we default to
    /// −4 ppm/°C and expose the knob for sensitivity studies.
    pub const DEFAULT_TCF_PPM_PER_C: f64 = -4.0;

    /// Builds the paper's B3790 response (measured points from Fig. 5).
    pub fn paper_b3790() -> Self {
        let points = vec![
            ResponsePoint {
                frequency: Hertz::from_mhz(428.0),
                gain: Db(-60.0),
            },
            ResponsePoint {
                frequency: Hertz::from_mhz(431.0),
                gain: Db(-52.0),
            },
            ResponsePoint {
                frequency: Hertz::from_mhz(433.0),
                gain: Db(-42.0),
            },
            // Critical band: 433.5 -> 434.0 MHz rises by 25 dB to the -10 dB
            // insertion loss at the band edge.
            ResponsePoint {
                frequency: Hertz::from_mhz(433.5),
                gain: Db(-35.0),
            },
            ResponsePoint {
                frequency: Hertz::from_mhz(433.75),
                gain: Db(-19.5),
            },
            ResponsePoint {
                frequency: Hertz::from_mhz(433.875),
                gain: Db(-17.2),
            },
            ResponsePoint {
                frequency: Hertz::from_mhz(434.0),
                gain: Db(-10.0),
            },
            // Passband plateau and upper skirt.
            ResponsePoint {
                frequency: Hertz::from_mhz(435.5),
                gain: Db(-10.0),
            },
            ResponsePoint {
                frequency: Hertz::from_mhz(436.5),
                gain: Db(-24.0),
            },
            ResponsePoint {
                frequency: Hertz::from_mhz(438.0),
                gain: Db(-45.0),
            },
            ResponsePoint {
                frequency: Hertz::from_mhz(440.0),
                gain: Db(-60.0),
            },
        ];
        SawFilter {
            points,
            reference_temperature: Celsius(25.0),
            tcf_ppm_per_c: Self::DEFAULT_TCF_PPM_PER_C,
            temperature: Celsius(25.0),
        }
    }

    /// Builds a filter from custom response points (sorted internally).
    pub fn from_points(mut points: Vec<ResponsePoint>, reference_temperature: Celsius) -> Self {
        points.sort_by(|a, b| {
            a.frequency
                .value()
                .partial_cmp(&b.frequency.value())
                .expect("finite frequencies")
        });
        SawFilter {
            points,
            reference_temperature,
            tcf_ppm_per_c: Self::DEFAULT_TCF_PPM_PER_C,
            temperature: reference_temperature,
        }
    }

    /// Sets the operating temperature (shifts the response).
    pub fn with_temperature(mut self, temperature: Celsius) -> Self {
        self.temperature = temperature;
        self
    }

    /// Sets the temperature coefficient of frequency.
    pub fn with_tcf(mut self, tcf_ppm_per_c: f64) -> Self {
        self.tcf_ppm_per_c = tcf_ppm_per_c;
        self
    }

    /// The frequency shift of the response at the current temperature.
    pub fn temperature_shift(&self) -> Hertz {
        let delta_t = self.temperature.value() - self.reference_temperature.value();
        let centre = 434.0e6;
        Hertz(centre * self.tcf_ppm_per_c * 1e-6 * delta_t)
    }

    /// Gain of the filter at an absolute frequency, interpolated in dB.
    pub fn gain_at(&self, frequency: Hertz) -> Db {
        // Temperature moves the response curve; equivalently, evaluate the
        // reference curve at (f - shift).
        let f = frequency.value() - self.temperature_shift().value();
        let first = self.points.first().expect("response has points");
        let last = self.points.last().expect("response has points");
        if f <= first.frequency.value() {
            return first.gain;
        }
        if f >= last.frequency.value() {
            return last.gain;
        }
        for w in self.points.windows(2) {
            let (p0, p1) = (w[0], w[1]);
            if f >= p0.frequency.value() && f <= p1.frequency.value() {
                let span = p1.frequency.value() - p0.frequency.value();
                let frac = if span > 0.0 {
                    (f - p0.frequency.value()) / span
                } else {
                    0.0
                };
                return Db(p0.gain.value() + frac * (p1.gain.value() - p0.gain.value()));
            }
        }
        last.gain
    }

    /// Amplitude gap (dB) between the top of a chirp sweep ending at
    /// `band_edge` and its start `bandwidth` below — the quantity plotted in
    /// Fig. 23.
    pub fn amplitude_gap(&self, band_edge: Hertz, bandwidth: Hertz) -> Db {
        let top = self.gain_at(band_edge);
        let bottom = self.gain_at(Hertz(band_edge.value() - bandwidth.value()));
        Db(top.value() - bottom.value())
    }

    /// Applies the filter to a complex baseband buffer whose 0 Hz corresponds
    /// to `carrier` absolute frequency. The filter is applied as a zero-phase
    /// amplitude response in the frequency domain.
    pub fn apply(&self, input: &SampleBuffer, carrier: Hertz) -> SampleBuffer {
        let n = input.len();
        if n == 0 {
            return input.clone();
        }
        let padded = next_power_of_two(n);
        let mut data = input.samples.clone();
        data.resize(padded, Iq::ZERO);
        let mut spectrum = fft(&data).expect("padded to power of two");
        let fs = input.sample_rate;
        for (k, bin) in spectrum.iter_mut().enumerate() {
            // FFT bin k maps to baseband frequency in [-fs/2, fs/2).
            let fb = if (k as f64) < padded as f64 / 2.0 {
                k as f64 * fs / padded as f64
            } else {
                (k as f64 - padded as f64) * fs / padded as f64
            };
            let absolute = Hertz(carrier.value() + fb);
            let gain_amp = 10f64.powf(self.gain_at(absolute).value() / 20.0);
            *bin = bin.scale(gain_amp);
        }
        let mut time = ifft(&spectrum).expect("padded to power of two");
        time.truncate(n);
        SampleBuffer::new(time, fs)
    }

    /// Designs a causal FIR approximation of this filter for streaming use.
    ///
    /// The batch [`Self::apply`] path filters in the frequency domain over the
    /// whole capture, which a chunked receiver cannot do. This samples the
    /// same amplitude response on an `n_taps`-point grid (relative to
    /// `carrier` at baseband, `n_taps` a power of two), takes the inverse FFT,
    /// rotates the zero-phase kernel to a causal linear-phase one with a group
    /// delay of `n_taps / 2` samples, and applies a Hann window. The constant
    /// group delay shifts every envelope peak equally and is therefore
    /// invisible to the peak-position decoder, which recovers timing from the
    /// preamble itself.
    pub fn streaming_fir(&self, carrier: Hertz, sample_rate: f64, n_taps: usize) -> SawFirState {
        assert!(
            n_taps >= 8 && n_taps.is_power_of_two(),
            "n_taps must be a power of two >= 8, got {n_taps}"
        );
        let l = n_taps;
        // Desired (real, zero-phase) amplitude response per FFT bin.
        let desired: Vec<Iq> = (0..l)
            .map(|k| {
                let fb = if (k as f64) < l as f64 / 2.0 {
                    k as f64 * sample_rate / l as f64
                } else {
                    (k as f64 - l as f64) * sample_rate / l as f64
                };
                let gain = self.gain_at(Hertz(carrier.value() + fb));
                Iq::new(10f64.powf(gain.value() / 20.0), 0.0)
            })
            .collect();
        let h = ifft(&desired).expect("n_taps is a power of two");
        // Rotate so the kernel's centre lands at index l/2 (causal, linear
        // phase) and taper with a Hann window to suppress Gibbs ripple.
        let delay = l / 2;
        let taps: Vec<Iq> = (0..l)
            .map(|i| {
                let w = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * i as f64 / l as f64).cos());
                h[(i + l - delay) % l].scale(w)
            })
            .collect();
        SawFirState {
            fir: ComplexFirState::new(taps),
        }
    }

    /// The response sampled over `[start, stop]` at `steps` points — used to
    /// regenerate Fig. 5.
    pub fn response_curve(&self, start: Hertz, stop: Hertz, steps: usize) -> Vec<ResponsePoint> {
        let steps = steps.max(2);
        (0..steps)
            .map(|i| {
                let f =
                    start.value() + (stop.value() - start.value()) * i as f64 / (steps - 1) as f64;
                ResponsePoint {
                    frequency: Hertz(f),
                    gain: self.gain_at(Hertz(f)),
                }
            })
            .collect()
    }
}

/// Carried state of the streaming SAW filter: a complex FIR kernel plus the
/// delay-line history it convolves against (shared machinery:
/// [`crate::fir::ComplexFirState`]). Because the convolution of sample `n`
/// only reads samples `n - n_taps + 1 ..= n`, chunked filtering of a stream
/// is bit-exactly independent of where the chunk boundaries fall.
#[derive(Debug, Clone, PartialEq)]
pub struct SawFirState {
    fir: ComplexFirState,
}

impl SawFirState {
    /// The number of FIR taps.
    pub fn n_taps(&self) -> usize {
        self.fir.n_taps()
    }

    /// The constant group delay of the kernel, in samples.
    pub fn delay_samples(&self) -> usize {
        self.fir.n_taps() / 2
    }

    /// Filters one chunk, producing one output sample per input sample.
    /// Allocates a fresh buffer per call; steady-state callers should prefer
    /// [`Self::filter_chunk_into`].
    pub fn filter_chunk(&mut self, chunk: &[Iq]) -> Vec<Iq> {
        self.fir.filter_chunk(chunk)
    }

    /// Filters one chunk into a caller-provided buffer (cleared first) with
    /// no steady-state allocation — see
    /// [`ComplexFirState::filter_chunk_into`].
    pub fn filter_chunk_into(&mut self, chunk: &[Iq], out: &mut Vec<Iq>) {
        self.fir.filter_chunk_into(chunk, out);
    }
}

impl crate::stage::BlockStage for SawFirState {
    type In = Iq;
    type Out = Iq;
    fn process_into(&mut self, input: &[Iq], out: &mut Vec<Iq>) {
        self.filter_chunk_into(input, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::chirp::ChirpGenerator;
    use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};

    fn sf7_params() -> LoraParams {
        LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(2).unwrap(),
        )
    }

    #[test]
    fn streaming_fir_matches_response_in_critical_band() {
        // A complex tone at baseband offset fb should come out scaled by
        // roughly the designed amplitude response.
        let saw = SawFilter::paper_b3790();
        let params = sf7_params();
        let fs = params.sample_rate();
        let carrier = Hertz(params.carrier_hz);
        for fb_khz in [100.0, 250.0, 400.0] {
            let mut fir = saw.streaming_fir(carrier, fs, 128);
            let n = 4000;
            let w = 2.0 * std::f64::consts::PI * fb_khz * 1e3 / fs;
            let tone: Vec<Iq> = (0..n).map(|i| Iq::phasor(w * i as f64)).collect();
            let out = fir.filter_chunk(&tone);
            // Steady-state amplitude, past the kernel's transient.
            let steady = &out[1000..n - 100];
            let amp = steady.iter().map(Iq::abs).sum::<f64>() / steady.len() as f64;
            let expected =
                10f64.powf(saw.gain_at(Hertz(carrier.value() + fb_khz * 1e3)).value() / 20.0);
            let err_db = 20.0 * (amp / expected).log10();
            assert!(
                err_db.abs() < 2.0,
                "fb {fb_khz} kHz: amp {amp:.3e} vs expected {expected:.3e} ({err_db:.2} dB)"
            );
        }
    }

    #[test]
    fn streaming_fir_is_chunk_invariant() {
        let params = sf7_params();
        let gen = ChirpGenerator::new(params);
        let chirp = gen.base_upchirp();
        let saw = SawFilter::paper_b3790();
        let mut reference = saw.streaming_fir(Hertz(params.carrier_hz), params.sample_rate(), 128);
        let batch = reference.filter_chunk(&chirp.samples);
        for chunk_size in [1usize, 7, 64, 509, chirp.len()] {
            let mut fir = saw.streaming_fir(Hertz(params.carrier_hz), params.sample_rate(), 128);
            let mut out = Vec::new();
            for chunk in chirp.samples.chunks(chunk_size) {
                out.extend(fir.filter_chunk(chunk));
            }
            assert_eq!(out, batch, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn streaming_fir_chirp_peaks_late_like_batch_filter() {
        // The FIR path must preserve the frequency→amplitude property the
        // decoder relies on: the base up-chirp's envelope grows through the
        // symbol and peaks near its end (modulo the constant group delay).
        let params = sf7_params();
        let gen = ChirpGenerator::new(params);
        let chirp = gen.base_upchirp();
        let saw = SawFilter::paper_b3790();
        let mut fir = saw.streaming_fir(Hertz(params.carrier_hz), params.sample_rate(), 128);
        let out = fir.filter_chunk(&chirp.samples);
        let env: Vec<f64> = out.iter().map(Iq::abs).collect();
        let n = env.len();
        let peak_idx = env
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak_idx > 3 * n / 4, "peak at {peak_idx}/{n}");
        let early: f64 = env[n / 16..n / 8].iter().sum::<f64>() / (n / 16) as f64;
        let late: f64 = env[n - n / 8..n - n / 16].iter().sum::<f64>() / (n / 16) as f64;
        let gap_db = 20.0 * (late / early).log10();
        assert!(gap_db > 15.0, "gap only {gap_db:.1} dB");
    }

    #[test]
    fn paper_response_points_match_figure5() {
        let saw = SawFilter::paper_b3790();
        // 25 dB variation over the top 500 kHz below 434 MHz.
        let gap500 = saw.amplitude_gap(Hertz::from_mhz(434.0), Hertz::from_khz(500.0));
        assert!(
            (gap500.value() - 25.0).abs() < 0.1,
            "gap {}",
            gap500.value()
        );
        // 9.5 dB over 250 kHz and 7.2 dB over 125 kHz.
        let gap250 = saw.amplitude_gap(Hertz::from_mhz(434.0), Hertz::from_khz(250.0));
        assert!((gap250.value() - 9.5).abs() < 0.1);
        let gap125 = saw.amplitude_gap(Hertz::from_mhz(434.0), Hertz::from_khz(125.0));
        assert!((gap125.value() - 7.2).abs() < 0.1);
        // Insertion loss at the band edge is 10 dB.
        assert!((saw.gain_at(Hertz::from_mhz(434.0)).value() + 10.0).abs() < 0.1);
    }

    #[test]
    fn gain_is_monotone_in_critical_band() {
        let saw = SawFilter::paper_b3790();
        let mut prev = f64::NEG_INFINITY;
        for khz in (433_500..=434_000).step_by(25) {
            let g = saw.gain_at(Hertz::from_khz(khz as f64)).value();
            assert!(g >= prev, "non-monotone at {khz} kHz");
            prev = g;
        }
    }

    #[test]
    fn chirp_becomes_amplitude_modulated() {
        // Feed the base up-chirp (433.5 -> 434 MHz) through the filter: the
        // output amplitude should grow through the symbol and peak near the
        // end, with roughly the 25 dB gap of Fig. 6.
        let params = LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(2).unwrap(),
        );
        let gen = ChirpGenerator::new(params);
        let chirp = gen.base_upchirp();
        let saw = SawFilter::paper_b3790();
        let out = saw.apply(&chirp, Hertz(params.carrier_hz));
        let env = out.envelope();
        let n = env.len();
        // Compare early-symbol amplitude to late-symbol amplitude.
        let early: f64 = env[n / 16..n / 8].iter().sum::<f64>() / (n / 16) as f64;
        let late: f64 = env[n - n / 8..n - n / 16].iter().sum::<f64>() / (n / 16) as f64;
        let gap_db = 20.0 * (late / early).log10();
        assert!(gap_db > 15.0, "gap only {gap_db:.1} dB");
        // The peak must be in the last quarter of the symbol.
        let peak_idx = env
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak_idx > 3 * n / 4, "peak at {peak_idx}/{n}");
    }

    #[test]
    fn different_symbols_peak_at_different_times() {
        let params = LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(2).unwrap(),
        );
        let gen = ChirpGenerator::new(params);
        let saw = SawFilter::paper_b3790();
        let mut peak_indices = Vec::new();
        for symbol in 0..4u32 {
            let chirp = gen.downlink_chirp(symbol).unwrap();
            let out = saw.apply(&chirp, Hertz(params.carrier_hz));
            let env = out.envelope();
            let peak = env
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            peak_indices.push(peak);
        }
        // Higher symbols start closer to the band edge, so they peak earlier.
        for w in peak_indices.windows(2) {
            assert!(w[1] < w[0], "peaks {peak_indices:?} not strictly earlier");
        }
    }

    #[test]
    fn temperature_shifts_response() {
        let saw_cold = SawFilter::paper_b3790().with_temperature(Celsius(-8.6));
        let saw_ref = SawFilter::paper_b3790();
        // At a temperature below the reference the response slides up in
        // frequency (negative TCF), changing the gain at a fixed frequency.
        let f = Hertz::from_mhz(433.75);
        assert_ne!(saw_cold.gain_at(f).value(), saw_ref.gain_at(f).value());
        let shift = saw_cold.temperature_shift().value();
        // -4 ppm/°C over the 33.6 °C difference from the 25 °C reference is
        // roughly 58 kHz.
        assert!(
            shift.abs() > 20.0e3 && shift.abs() < 120.0e3,
            "shift {shift}"
        );
    }

    #[test]
    fn response_curve_covers_requested_span() {
        let saw = SawFilter::paper_b3790();
        let curve = saw.response_curve(Hertz::from_mhz(428.0), Hertz::from_mhz(440.0), 25);
        assert_eq!(curve.len(), 25);
        assert_eq!(curve[0].frequency.value(), 428.0e6);
        assert_eq!(curve[24].frequency.value(), 440.0e6);
        // Out-of-band points are strongly attenuated.
        assert!(curve[0].gain.value() < -55.0);
    }
}
