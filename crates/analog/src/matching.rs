//! Antenna impedance matching (the "Impedance Matching" block of Fig. 12).
//!
//! The SAW filter presents a complex input impedance that must be matched to
//! the 50 Ω antenna; any residual mismatch reflects part of the incident power
//! before it ever reaches the frequency→amplitude transformation. The model is
//! a standard reflection-coefficient calculation that converts a load
//! impedance into a mismatch loss, plus a helper for the L-network the
//! prototype would use to tune it out.

use lora_phy::iq::SampleBuffer;
use rfsim::units::Db;

/// A complex impedance in ohms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Impedance {
    /// Resistance (real part), ohms.
    pub resistance: f64,
    /// Reactance (imaginary part), ohms.
    pub reactance: f64,
}

impl Impedance {
    /// The 50 Ω reference impedance of the antenna port.
    pub const REFERENCE: Impedance = Impedance {
        resistance: 50.0,
        reactance: 0.0,
    };

    /// A representative input impedance of a 434 MHz SAW filter before
    /// matching (datasheet-style value).
    pub fn saw_unmatched() -> Self {
        Impedance {
            resistance: 115.0,
            reactance: -48.0,
        }
    }

    /// Magnitude of the reflection coefficient against a reference impedance:
    /// `|Γ| = |(Z - Z0) / (Z + Z0)|`.
    pub fn reflection_coefficient(&self, reference: Impedance) -> f64 {
        let num_re = self.resistance - reference.resistance;
        let num_im = self.reactance - reference.reactance;
        let den_re = self.resistance + reference.resistance;
        let den_im = self.reactance + reference.reactance;
        let num = (num_re * num_re + num_im * num_im).sqrt();
        let den = (den_re * den_re + den_im * den_im).sqrt().max(1e-12);
        (num / den).min(1.0)
    }

    /// Voltage standing-wave ratio against the reference impedance.
    pub fn vswr(&self, reference: Impedance) -> f64 {
        let g = self.reflection_coefficient(reference);
        if g >= 1.0 {
            f64::INFINITY
        } else {
            (1.0 + g) / (1.0 - g)
        }
    }

    /// Mismatch loss: the fraction of incident power reflected, in dB.
    pub fn mismatch_loss(&self, reference: Impedance) -> Db {
        let g = self.reflection_coefficient(reference);
        let transmitted = (1.0 - g * g).max(1e-12);
        Db(-10.0 * transmitted.log10())
    }
}

/// The matching network between antenna and SAW filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchingNetwork {
    /// The load (SAW input) impedance being matched.
    pub load: Impedance,
    /// Residual reflection coefficient after tuning (0 = perfect match).
    pub residual_reflection: f64,
}

impl MatchingNetwork {
    /// A tuned L-network as on the prototype: the bulk of the mismatch is
    /// removed, leaving a small residual (|Γ| ≈ 0.1, ≈0.04 dB of loss).
    pub fn tuned(load: Impedance) -> Self {
        MatchingNetwork {
            load,
            residual_reflection: 0.1,
        }
    }

    /// No matching at all: the raw load reflection applies.
    pub fn absent(load: Impedance) -> Self {
        MatchingNetwork {
            load,
            residual_reflection: load.reflection_coefficient(Impedance::REFERENCE),
        }
    }

    /// Effective insertion loss of the (mis)match.
    pub fn insertion_loss(&self) -> Db {
        let g = self.residual_reflection.clamp(0.0, 1.0);
        Db(-10.0 * (1.0 - g * g).max(1e-12).log10())
    }

    /// Applies the mismatch loss to an RF buffer (amplitude scaling).
    pub fn apply(&self, input: &SampleBuffer) -> SampleBuffer {
        let loss = self.insertion_loss().value();
        input.clone().scaled(10f64.powf(-loss / 20.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::iq::Iq;

    #[test]
    fn perfect_match_reflects_nothing() {
        let z = Impedance::REFERENCE;
        assert!(z.reflection_coefficient(Impedance::REFERENCE) < 1e-12);
        assert!((z.vswr(Impedance::REFERENCE) - 1.0).abs() < 1e-9);
        assert!(z.mismatch_loss(Impedance::REFERENCE).value() < 1e-9);
    }

    #[test]
    fn unmatched_saw_loses_measurable_power() {
        let saw = Impedance::saw_unmatched();
        let gamma = saw.reflection_coefficient(Impedance::REFERENCE);
        assert!(gamma > 0.2 && gamma < 0.7, "gamma {gamma}");
        let loss = saw.mismatch_loss(Impedance::REFERENCE).value();
        assert!(loss > 0.2 && loss < 3.0, "loss {loss} dB");
        assert!(saw.vswr(Impedance::REFERENCE) > 1.5);
    }

    #[test]
    fn tuned_network_recovers_most_of_the_loss() {
        let load = Impedance::saw_unmatched();
        let tuned = MatchingNetwork::tuned(load);
        let absent = MatchingNetwork::absent(load);
        assert!(tuned.insertion_loss().value() < 0.1);
        assert!(absent.insertion_loss().value() > tuned.insertion_loss().value());
    }

    #[test]
    fn apply_scales_the_waveform() {
        let load = Impedance::saw_unmatched();
        let network = MatchingNetwork::absent(load);
        let input = SampleBuffer::new(vec![Iq::ONE; 128], 1e6);
        let out = network.apply(&input);
        let expected = 10f64.powf(-network.insertion_loss().value() / 10.0);
        assert!((out.mean_power() - expected).abs() < 1e-9);
    }

    #[test]
    fn short_circuit_reflects_everything() {
        let short = Impedance {
            resistance: 0.0,
            reactance: 0.0,
        };
        assert!((short.reflection_coefficient(Impedance::REFERENCE) - 1.0).abs() < 1e-9);
        assert!(short.vswr(Impedance::REFERENCE).is_infinite());
    }
}
