//! Component-level power and cost model (paper Table 2 and §4.3).
//!
//! The PCB prototype consumes 369.4 µW under 1 % duty cycling, dominated by
//! the LNA (67.3 %) and the oscillator clock (23.5 %); the TSMC 65 nm ASIC
//! simulation reduces the total to 93.2 µW. This module encodes those
//! budgets, lets experiments integrate energy over simulated operation, and
//! regenerates Table 2.

use rfsim::units::Watts;

/// The hardware components of a Saiyan tag that draw power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// The passive SAW filter (draws nothing).
    SawFilter,
    /// The common-gate low-noise amplifier.
    Lna,
    /// The micro-power oscillator/clock used by the shifting circuit.
    OscillatorClock,
    /// The envelope detector (passive diode network).
    EnvelopeDetector,
    /// The double-threshold comparator.
    Comparator,
    /// The Apollo2 micro-controller.
    Mcu,
}

impl Component {
    /// All components in Table 2 order.
    pub const ALL: [Component; 6] = [
        Component::SawFilter,
        Component::Lna,
        Component::OscillatorClock,
        Component::EnvelopeDetector,
        Component::Comparator,
        Component::Mcu,
    ];

    /// Human-readable name matching the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            Component::SawFilter => "SAW",
            Component::Lna => "LNA",
            Component::OscillatorClock => "OSC Clock",
            Component::EnvelopeDetector => "Envelope Detector",
            Component::Comparator => "Comparator",
            Component::Mcu => "MCU",
        }
    }
}

/// Implementation technology of the tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technology {
    /// The two-layer PCB prototype with off-the-shelf parts.
    Pcb,
    /// The TSMC 65 nm ASIC simulation.
    Asic,
}

/// A per-component entry of the power/cost budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetEntry {
    /// The component.
    pub component: Component,
    /// Average power under 1 % duty cycling, in microwatts.
    pub power_uw: f64,
    /// Unit cost in USD (PCB prototype).
    pub cost_usd: f64,
}

/// The power/cost budget of a Saiyan tag.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBudget {
    /// Technology the budget describes.
    pub technology: Technology,
    /// Per-component entries.
    pub entries: Vec<BudgetEntry>,
}

impl PowerBudget {
    /// Table 2 of the paper: PCB prototype under 1 % duty cycling.
    pub fn paper_pcb() -> Self {
        PowerBudget {
            technology: Technology::Pcb,
            entries: vec![
                BudgetEntry {
                    component: Component::SawFilter,
                    power_uw: 0.0,
                    cost_usd: 3.87,
                },
                BudgetEntry {
                    component: Component::Lna,
                    power_uw: 248.5,
                    cost_usd: 4.15,
                },
                BudgetEntry {
                    component: Component::OscillatorClock,
                    power_uw: 86.8,
                    cost_usd: 1.25,
                },
                BudgetEntry {
                    component: Component::EnvelopeDetector,
                    power_uw: 0.0,
                    cost_usd: 1.20,
                },
                BudgetEntry {
                    component: Component::Comparator,
                    power_uw: 14.45,
                    cost_usd: 1.26,
                },
                BudgetEntry {
                    component: Component::Mcu,
                    power_uw: 19.6,
                    cost_usd: 15.43,
                },
            ],
        }
    }

    /// §4.3 of the paper: the TSMC 65 nm ASIC simulation (93.2 µW total:
    /// 68.4 µW LNA, 22.8 µW oscillator, 2 µW digital; the MCU is external and
    /// listed separately at 19.6 µW).
    pub fn paper_asic() -> Self {
        PowerBudget {
            technology: Technology::Asic,
            entries: vec![
                BudgetEntry {
                    component: Component::SawFilter,
                    power_uw: 0.0,
                    cost_usd: 0.0,
                },
                BudgetEntry {
                    component: Component::Lna,
                    power_uw: 68.4,
                    cost_usd: 0.0,
                },
                BudgetEntry {
                    component: Component::OscillatorClock,
                    power_uw: 22.8,
                    cost_usd: 0.0,
                },
                BudgetEntry {
                    component: Component::EnvelopeDetector,
                    power_uw: 0.0,
                    cost_usd: 0.0,
                },
                BudgetEntry {
                    component: Component::Comparator,
                    power_uw: 2.0,
                    cost_usd: 0.0,
                },
                BudgetEntry {
                    component: Component::Mcu,
                    power_uw: 19.6,
                    cost_usd: 0.0,
                },
            ],
        }
    }

    /// Total average power in microwatts. For the ASIC budget the paper's
    /// 93.2 µW headline excludes the external MCU; use
    /// [`PowerBudget::total_on_chip_uw`] for that figure.
    pub fn total_uw(&self) -> f64 {
        self.entries.iter().map(|e| e.power_uw).sum()
    }

    /// Total power of the on-chip components (everything except the MCU).
    pub fn total_on_chip_uw(&self) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.component != Component::Mcu)
            .map(|e| e.power_uw)
            .sum()
    }

    /// Total bill-of-materials cost in USD.
    pub fn total_cost_usd(&self) -> f64 {
        self.entries.iter().map(|e| e.cost_usd).sum()
    }

    /// Fraction of the total power consumed by `component`.
    pub fn share(&self, component: Component) -> f64 {
        let total = self.total_uw();
        if total == 0.0 {
            return 0.0;
        }
        self.entries
            .iter()
            .filter(|e| e.component == component)
            .map(|e| e.power_uw)
            .sum::<f64>()
            / total
    }

    /// Looks up a component's entry.
    pub fn entry(&self, component: Component) -> Option<&BudgetEntry> {
        self.entries.iter().find(|e| e.component == component)
    }
}

/// Energy accounting over a simulated stretch of operation.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyLedger {
    budget: PowerBudget,
    /// Seconds of active (receiving/demodulating) time accumulated.
    active_seconds: f64,
    /// Duty cycle used to scale the Table 2 figures (they already assume 1 %).
    duty_cycle: f64,
}

impl EnergyLedger {
    /// Reference duty cycle the paper's Table 2 numbers assume.
    pub const TABLE2_DUTY_CYCLE: f64 = 0.01;

    /// Creates a ledger over a budget for the given duty cycle.
    pub fn new(budget: PowerBudget, duty_cycle: f64) -> Self {
        EnergyLedger {
            budget,
            active_seconds: 0.0,
            duty_cycle: duty_cycle.clamp(0.0, 1.0),
        }
    }

    /// Records `seconds` of wall-clock operation.
    pub fn record(&mut self, seconds: f64) {
        self.active_seconds += seconds.max(0.0);
    }

    /// Average power draw (watts) at the configured duty cycle.
    pub fn average_power(&self) -> Watts {
        let scale = self.duty_cycle / Self::TABLE2_DUTY_CYCLE;
        Watts::from_microwatts(self.budget.total_uw() * scale)
    }

    /// Total energy consumed so far, in joules.
    pub fn energy_joules(&self) -> f64 {
        self.average_power().value() * self.active_seconds
    }

    /// How long (seconds) the paper's solar harvester (1 mW every 25.4 s,
    /// i.e. ≈ 39.4 µW average) must run to pay for the energy consumed so far.
    pub fn harvest_time_seconds(&self) -> f64 {
        let harvester_watts = 1.0e-3 / 25.4;
        self.energy_joules() / harvester_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcb_totals_match_table2() {
        let b = PowerBudget::paper_pcb();
        assert!(
            (b.total_uw() - 369.35).abs() < 0.1,
            "total {}",
            b.total_uw()
        );
        assert!((b.total_cost_usd() - 27.16).abs() < 0.1);
        // LNA ≈ 67.3 %, oscillator ≈ 23.5 %.
        assert!((b.share(Component::Lna) - 0.673).abs() < 0.005);
        assert!((b.share(Component::OscillatorClock) - 0.235).abs() < 0.005);
    }

    #[test]
    fn asic_total_matches_headline() {
        let b = PowerBudget::paper_asic();
        assert!((b.total_on_chip_uw() - 93.2).abs() < 0.1);
        // ASIC cuts the PCB power by ~74.8 %.
        let pcb = PowerBudget::paper_pcb();
        let reduction = 1.0 - b.total_on_chip_uw() / pcb.total_on_chip_uw();
        assert!((reduction - 0.733).abs() < 0.05, "reduction {reduction}");
    }

    #[test]
    fn passive_components_draw_nothing() {
        let b = PowerBudget::paper_pcb();
        assert_eq!(b.entry(Component::SawFilter).unwrap().power_uw, 0.0);
        assert_eq!(b.entry(Component::EnvelopeDetector).unwrap().power_uw, 0.0);
    }

    #[test]
    fn ledger_integrates_energy() {
        let mut ledger = EnergyLedger::new(PowerBudget::paper_asic(), 0.01);
        ledger.record(100.0);
        // ~(93.2 + 19.6) µW * 100 s ≈ 11.3 mJ.
        let e = ledger.energy_joules();
        assert!((e - 11.28e-3).abs() < 0.2e-3, "energy {e}");
        assert!(ledger.harvest_time_seconds() > 100.0);
    }

    #[test]
    fn duty_cycle_scales_power() {
        let one = EnergyLedger::new(PowerBudget::paper_pcb(), 0.01);
        let ten = EnergyLedger::new(PowerBudget::paper_pcb(), 0.10);
        assert!(
            (ten.average_power().microwatts() / one.average_power().microwatts() - 10.0).abs()
                < 1e-9
        );
    }
}
