//! Baseband filters: low-pass filter and IF band-pass amplifier.
//!
//! The cyclic-frequency-shifting chain needs an IF amplifier whose frequency
//! selectivity keeps only the content around `Δf` (paper Fig. 9(d)) and a
//! low-pass filter that removes everything shifted up to the IF band after the
//! output mixer (Fig. 9(f)). The low-pass filter is a cascade of first-order
//! sections; the IF amplifier is a cascade of second-order band-pass biquads
//! (the digital equivalent of the LC-tuned 2N222 stage on the PCB).

use std::f64::consts::PI;

use crate::signal::RealBuffer;

/// A cascade of identical first-order low-pass sections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowPassFilter {
    /// −3 dB cut-off frequency of each section, Hz.
    pub cutoff_hz: f64,
    /// Number of cascaded sections (order).
    pub order: usize,
}

impl LowPassFilter {
    /// Creates a filter with the given cut-off and order.
    pub fn new(cutoff_hz: f64, order: usize) -> Self {
        LowPassFilter {
            cutoff_hz,
            order: order.max(1),
        }
    }

    /// Filters the buffer. Delegates to the streaming state run over the
    /// whole buffer at once, so batch and chunked processing share one
    /// implementation (and agree bit-exactly by construction).
    pub fn filter(&self, input: &RealBuffer) -> RealBuffer {
        let mut data = input.samples.clone();
        self.streaming(input.sample_rate).process_chunk(&mut data);
        RealBuffer::new(data, input.sample_rate)
    }

    /// Magnitude response of the cascade at frequency `f` (linear).
    pub fn magnitude_at(&self, f: f64) -> f64 {
        let single = 1.0 / (1.0 + (f / self.cutoff_hz).powi(2)).sqrt();
        single.powi(self.order as i32)
    }

    /// Creates a streaming state for this filter at the given sample rate.
    pub fn streaming(&self, sample_rate: f64) -> LowPassState {
        let dt = 1.0 / sample_rate;
        let rc = 1.0 / (2.0 * PI * self.cutoff_hz);
        LowPassState {
            alpha: dt / (rc + dt),
            states: vec![0.0; self.order.max(1)],
        }
    }
}

/// Carried state of a [`LowPassFilter`] cascade, for chunked processing.
///
/// Feeding the concatenation of any chunk sequence through `process_chunk`
/// produces exactly the samples [`LowPassFilter::filter`] produces on the
/// whole buffer at once, independent of where the chunk boundaries fall.
#[derive(Debug, Clone, PartialEq)]
pub struct LowPassState {
    alpha: f64,
    /// One integrator state per cascaded section.
    states: Vec<f64>,
}

impl LowPassState {
    /// Filters one chunk in place, carrying the section states across calls.
    ///
    /// The common two-section cascade runs software-pipelined: section 1
    /// processes sample `i − 1` while section 0 processes sample `i`, so the
    /// two serial integrator chains overlap instead of running as two
    /// latency-bound passes. Every section still applies the identical
    /// per-sample update in the identical order, so the result is
    /// bit-identical to the sequential pass.
    pub fn process_chunk(&mut self, chunk: &mut [f64]) {
        if self.states.len() == 2 && !chunk.is_empty() {
            let alpha = self.alpha;
            let (head, rest) = self.states.split_at_mut(1);
            let s0 = &mut head[0];
            let s1 = &mut rest[0];
            *s0 += alpha * (chunk[0] - *s0);
            chunk[0] = *s0;
            let n = chunk.len();
            for i in 1..n {
                *s0 += alpha * (chunk[i] - *s0);
                let t0 = *s0;
                *s1 += alpha * (chunk[i - 1] - *s1);
                chunk[i - 1] = *s1;
                chunk[i] = t0;
            }
            *s1 += alpha * (chunk[n - 1] - *s1);
            chunk[n - 1] = *s1;
            return;
        }
        for state in &mut self.states {
            for v in chunk.iter_mut() {
                *state += self.alpha * (*v - *state);
                *v = *state;
            }
        }
    }
}

impl crate::stage::InPlaceStage for LowPassState {
    fn process_in_place(&mut self, data: &mut [f64]) {
        self.process_chunk(data);
    }
}

/// A band-pass IF amplifier: a cascade of constant-peak-gain band-pass biquads
/// (RBJ cookbook) followed by a gain stage — the frequency selectivity the
/// paper relies on to "boost the power of S(Δf) and attenuate other bands".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IfAmplifier {
    /// Centre of the IF band, Hz.
    pub center_hz: f64,
    /// Half-width of the pass band, Hz (sets the biquad Q).
    pub half_bandwidth_hz: f64,
    /// Voltage gain applied in the pass band (linear).
    pub gain: f64,
    /// Number of cascaded biquad sections.
    pub order: usize,
}

impl IfAmplifier {
    /// The 2N222-based IF amplifier used by the prototype, tuned to `center_hz`
    /// with ±`half_bandwidth_hz` of pass band and 20 dB of gain.
    pub fn paper_2n222(center_hz: f64, half_bandwidth_hz: f64) -> Self {
        IfAmplifier {
            center_hz,
            half_bandwidth_hz,
            gain: 10.0,
            order: 2,
        }
    }

    /// Quality factor of each biquad section.
    pub fn q(&self) -> f64 {
        (self.center_hz / (2.0 * self.half_bandwidth_hz)).max(0.1)
    }

    /// Filters and amplifies the buffer. Delegates to the streaming state run
    /// over the whole buffer at once, so batch and chunked processing share
    /// one biquad implementation (and agree bit-exactly by construction).
    pub fn amplify(&self, input: &RealBuffer) -> RealBuffer {
        let mut data = input.samples.clone();
        self.streaming(input.sample_rate).process_chunk(&mut data);
        RealBuffer::new(data, input.sample_rate)
    }

    /// Creates a streaming state for this amplifier at the given sample rate.
    pub fn streaming(&self, sample_rate: f64) -> IfAmplifierState {
        let w0 = 2.0 * PI * self.center_hz / sample_rate;
        let q = self.q();
        let alpha = w0.sin() / (2.0 * q);
        IfAmplifierState {
            b0: alpha,
            b2: -alpha,
            // The 1/a0 normalisation is folded into a reciprocal computed
            // once here: a multiply in the recurrence instead of a divide,
            // which sits on the serial y1→y0 critical path of every sample.
            inv_a0: 1.0 / (1.0 + alpha),
            a1: -2.0 * w0.cos(),
            a2: 1.0 - alpha,
            gain: self.gain,
            sections: vec![BiquadState::default(); self.order.max(1)],
        }
    }

    /// Approximate magnitude response at frequency `f` (linear, including
    /// gain), using the analog band-pass prototype of each section.
    pub fn magnitude_at(&self, f: f64) -> f64 {
        if f <= 0.0 {
            return 0.0;
        }
        let q = self.q();
        let w = f / self.center_hz;
        let num = w / q;
        let den = ((1.0 - w * w).powi(2) + (w / q).powi(2)).sqrt();
        let single = num / den;
        self.gain * single.powi(self.order.max(1) as i32)
    }
}

/// Delay memory of one direct-form-I biquad section.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct BiquadState {
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

/// Carried state of an [`IfAmplifier`] biquad cascade, for chunked processing.
///
/// `process_chunk` over any chunking of a buffer reproduces
/// [`IfAmplifier::amplify`] on the whole buffer bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct IfAmplifierState {
    b0: f64,
    b2: f64,
    inv_a0: f64,
    a1: f64,
    a2: f64,
    gain: f64,
    sections: Vec<BiquadState>,
}

impl IfAmplifierState {
    /// Filters and amplifies one chunk in place, carrying section memories.
    ///
    /// The paper's order-2 cascade runs software-pipelined (section 1 on
    /// sample `i − 1` while section 0 is on sample `i`): the per-section
    /// recurrence is latency-bound, and interleaving the two independent
    /// chains overlaps them without changing a single operation or its order
    /// — outputs stay bit-identical to the sequential two-pass form.
    pub fn process_chunk(&mut self, chunk: &mut [f64]) {
        if self.sections.len() == 2 && !chunk.is_empty() {
            let (b0, b2, inv_a0, a1, a2) = (self.b0, self.b2, self.inv_a0, self.a1, self.a2);
            let step = |s: &mut BiquadState, x0: f64| {
                let y0 = (b0 * x0 + b2 * s.x2 - a1 * s.y1 - a2 * s.y2) * inv_a0;
                s.x2 = s.x1;
                s.x1 = x0;
                s.y2 = s.y1;
                s.y1 = y0;
                y0
            };
            let (head, rest) = self.sections.split_at_mut(1);
            let s0 = &mut head[0];
            let s1 = &mut rest[0];
            chunk[0] = step(s0, chunk[0]);
            let n = chunk.len();
            for i in 1..n {
                let a = step(s0, chunk[i]);
                let b = step(s1, chunk[i - 1]);
                chunk[i] = a;
                chunk[i - 1] = b;
            }
            chunk[n - 1] = step(s1, chunk[n - 1]);
        } else {
            for s in &mut self.sections {
                for v in chunk.iter_mut() {
                    let x0 = *v;
                    let y0 = (self.b0 * x0 + self.b2 * s.x2 - self.a1 * s.y1 - self.a2 * s.y2)
                        * self.inv_a0;
                    s.x2 = s.x1;
                    s.x1 = x0;
                    s.y2 = s.y1;
                    s.y1 = y0;
                    *v = y0;
                }
            }
        }
        for v in chunk.iter_mut() {
            *v *= self.gain;
        }
    }
}

impl crate::stage::InPlaceStage for IfAmplifierState {
    fn process_in_place(&mut self, data: &mut [f64]) {
        self.process_chunk(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, fs: f64, n: usize) -> RealBuffer {
        RealBuffer::new(
            (0..n)
                .map(|i| (2.0 * PI * f * i as f64 / fs).sin())
                .collect(),
            fs,
        )
    }

    #[test]
    fn lowpass_passes_dc_and_attenuates_high_frequencies() {
        let fs = 1e6;
        let lpf = LowPassFilter::new(10_000.0, 2);
        let low = lpf.filter(&tone(1_000.0, fs, 50_000));
        let high = lpf.filter(&tone(200_000.0, fs, 50_000));
        let p_low = low.band_power(800.0, 1_200.0);
        let p_high = high.band_power(190_000.0, 210_000.0);
        assert!(p_low > 0.3, "low-frequency tone power {p_low}");
        assert!(p_high < 0.01, "high-frequency tone power {p_high}");
    }

    #[test]
    fn lowpass_magnitude_at_cutoff_is_3db_per_section() {
        let lpf = LowPassFilter::new(5_000.0, 1);
        assert!((lpf.magnitude_at(5_000.0) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        let lpf2 = LowPassFilter::new(5_000.0, 2);
        assert!((lpf2.magnitude_at(5_000.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn if_amplifier_selects_its_band() {
        let fs = 4e6;
        let amp = IfAmplifier::paper_2n222(500_000.0, 100_000.0);
        let in_band = amp.amplify(&tone(500_000.0, fs, 60_000));
        let below = amp.amplify(&tone(20_000.0, fs, 60_000));
        let p_in = in_band.band_power(480_000.0, 520_000.0);
        let p_below = below.band_power(10_000.0, 30_000.0);
        assert!(
            p_in > 100.0 * p_below.max(1e-12),
            "in-band {p_in:.3e} vs out-of-band {p_below:.3e}"
        );
    }

    #[test]
    fn if_amplifier_applies_gain_at_centre() {
        let fs = 4e6;
        let amp = IfAmplifier::paper_2n222(500_000.0, 150_000.0);
        // Analytic response at centre should equal the nominal gain.
        let m = amp.magnitude_at(500_000.0);
        assert!((m - amp.gain).abs() < 1e-9, "centre magnitude {m}");
        // Measured response on a waveform should be within 1.5 dB of it.
        let out = amp.amplify(&tone(500_000.0, fs, 80_000));
        let p = out.band_power(480_000.0, 520_000.0);
        // Input tone power 0.5, so output should be near 0.5 * gain^2.
        let expected = 0.5 * amp.gain * amp.gain;
        let err_db = 10.0 * (p / expected).log10();
        assert!(err_db.abs() < 1.5, "gain error {err_db:.2} dB");
    }

    #[test]
    fn if_amplifier_rejects_dc() {
        let amp = IfAmplifier::paper_2n222(500_000.0, 100_000.0);
        assert_eq!(amp.magnitude_at(0.0), 0.0);
        assert!(amp.magnitude_at(10_000.0) < 0.05 * amp.gain);
    }

    #[test]
    fn streaming_lowpass_is_chunk_invariant() {
        let fs = 1e6;
        let lpf = LowPassFilter::new(20_000.0, 3);
        let input = tone(5_000.0, fs, 4_001);
        let batch = lpf.filter(&input);
        for chunk_size in [1usize, 7, 64, 1000, 4_001] {
            let mut state = lpf.streaming(fs);
            let mut out = Vec::new();
            for chunk in input.samples.chunks(chunk_size) {
                let mut c = chunk.to_vec();
                state.process_chunk(&mut c);
                out.extend_from_slice(&c);
            }
            assert_eq!(out, batch.samples, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn streaming_if_amplifier_is_chunk_invariant() {
        let fs = 4e6;
        let amp = IfAmplifier::paper_2n222(500_000.0, 100_000.0);
        let input = tone(480_000.0, fs, 3_037);
        let batch = amp.amplify(&input);
        for chunk_size in [1usize, 13, 512, 3_037] {
            let mut state = amp.streaming(fs);
            let mut out = Vec::new();
            for chunk in input.samples.chunks(chunk_size) {
                let mut c = chunk.to_vec();
                state.process_chunk(&mut c);
                out.extend_from_slice(&c);
            }
            assert_eq!(out, batch.samples, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn filter_preserves_length_and_rate() {
        let lpf = LowPassFilter::new(1_000.0, 3);
        let input = tone(500.0, 100_000.0, 1234);
        let out = lpf.filter(&input);
        assert_eq!(out.len(), 1234);
        assert_eq!(out.sample_rate, 100_000.0);
    }
}
