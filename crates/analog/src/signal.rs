//! Real-valued baseband signal buffers.
//!
//! After the envelope detector the Saiyan receive chain operates on real
//! voltages rather than complex IQ. [`RealBuffer`] mirrors
//! [`lora_phy::iq::SampleBuffer`] for that domain and provides the statistics
//! (peak, mean, SNR within a band) the analog models and experiments need.

use std::f64::consts::PI;

/// A block of real-valued samples with an associated sample rate.
#[derive(Debug, Clone, PartialEq)]
pub struct RealBuffer {
    /// The samples (volts, by convention).
    pub samples: Vec<f64>,
    /// Sample rate in Hz.
    pub sample_rate: f64,
}

impl RealBuffer {
    /// Creates a buffer.
    pub fn new(samples: Vec<f64>, sample_rate: f64) -> Self {
        RealBuffer {
            samples,
            sample_rate,
        }
    }

    /// Creates an all-zero buffer.
    pub fn zeros(len: usize, sample_rate: f64) -> Self {
        RealBuffer {
            samples: vec![0.0; len],
            sample_rate,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Mean power (mean of squares).
    pub fn mean_power(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s * s).sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum sample value.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Index of the maximum sample.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_val = f64::NEG_INFINITY;
        for (i, &v) in self.samples.iter().enumerate() {
            if v > best_val {
                best_val = v;
                best = i;
            }
        }
        best
    }

    /// Scales every sample in place and returns `self`.
    pub fn scaled(mut self, k: f64) -> Self {
        for s in &mut self.samples {
            *s *= k;
        }
        self
    }

    /// Removes the mean from the buffer (in place) and returns `self`.
    pub fn dc_removed(mut self) -> Self {
        let mean = self.mean();
        for s in &mut self.samples {
            *s -= mean;
        }
        self
    }

    /// Applies a moving-average filter of `window` samples (centred, zero-phase
    /// enough for our purposes). Used by the Aloba baseline detector.
    pub fn moving_average(&self, window: usize) -> RealBuffer {
        let window = window.max(1);
        let n = self.samples.len();
        let mut out = Vec::with_capacity(n);
        let mut acc = 0.0;
        let mut queue = std::collections::VecDeque::with_capacity(window);
        for i in 0..n {
            acc += self.samples[i];
            queue.push_back(self.samples[i]);
            if queue.len() > window {
                acc -= queue.pop_front().expect("non-empty");
            }
            out.push(acc / queue.len() as f64);
        }
        RealBuffer::new(out, self.sample_rate)
    }

    /// Estimates the power of the buffer restricted to frequencies in
    /// `[f_low, f_high]` Hz using a Goertzel-style projection onto a dense
    /// grid of tones. Good enough for SNR bookkeeping in the shifting chain.
    pub fn band_power(&self, f_low: f64, f_high: f64) -> f64 {
        let n = self.samples.len();
        if n == 0 || f_high <= f_low {
            return 0.0;
        }
        let resolution = self.sample_rate / n as f64;
        let mut power = 0.0;
        let mut f = f_low.max(0.0);
        while f <= f_high && f <= self.sample_rate / 2.0 {
            let mut re = 0.0;
            let mut im = 0.0;
            let w = 2.0 * PI * f / self.sample_rate;
            for (i, &s) in self.samples.iter().enumerate() {
                re += s * (w * i as f64).cos();
                im -= s * (w * i as f64).sin();
            }
            // One-sided spectrum: double everything except DC.
            let scale = if f == 0.0 { 1.0 } else { 2.0 };
            power += scale * (re * re + im * im) / (n as f64 * n as f64);
            f += resolution;
        }
        power
    }

    /// Downsamples by an integer factor by picking every `factor`-th sample.
    pub fn decimate(&self, factor: usize) -> RealBuffer {
        let factor = factor.max(1);
        RealBuffer::new(
            self.samples.iter().step_by(factor).copied().collect(),
            self.sample_rate / factor as f64,
        )
    }

    /// Resamples to `target_rate` using nearest-sample selection. This models
    /// the MCU's low-rate voltage sampler which simply latches the comparator
    /// output at its own (much lower) clock.
    pub fn resample_nearest(&self, target_rate: f64) -> RealBuffer {
        if self.samples.is_empty() || target_rate <= 0.0 {
            return RealBuffer::new(Vec::new(), target_rate);
        }
        let duration = self.duration();
        let out_len = (duration * target_rate).floor() as usize;
        let samples = (0..out_len)
            .map(|i| {
                let t = i as f64 / target_rate;
                let idx = ((t * self.sample_rate).round() as usize).min(self.samples.len() - 1);
                self.samples[idx]
            })
            .collect();
        RealBuffer::new(samples, target_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics() {
        let b = RealBuffer::new(vec![1.0, -1.0, 3.0, -3.0], 4.0);
        assert_eq!(b.mean(), 0.0);
        assert_eq!(b.mean_power(), 5.0);
        assert_eq!(b.max(), 3.0);
        assert_eq!(b.min(), -3.0);
        assert_eq!(b.argmax(), 2);
        assert_eq!(b.duration(), 1.0);
    }

    #[test]
    fn moving_average_smooths_step() {
        let mut samples = vec![0.0; 50];
        samples.extend(vec![1.0; 50]);
        let b = RealBuffer::new(samples, 100.0);
        let smoothed = b.moving_average(10);
        // The step should become a ramp: value at index 54 is partial.
        assert!(smoothed.samples[54] > 0.3 && smoothed.samples[54] < 0.7);
        assert!((smoothed.samples[80] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn band_power_locates_tone() {
        let fs = 10_000.0;
        let f0 = 1_000.0;
        let n = 2_000;
        let samples: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * f0 * i as f64 / fs).sin())
            .collect();
        let b = RealBuffer::new(samples, fs);
        let in_band = b.band_power(900.0, 1100.0);
        let out_band = b.band_power(3000.0, 3200.0);
        assert!(in_band > 100.0 * out_band.max(1e-12));
        // A unit sine has power 0.5.
        assert!((in_band - 0.5).abs() < 0.05, "in-band {in_band}");
    }

    #[test]
    fn decimate_and_resample() {
        let b = RealBuffer::new((0..100).map(|i| i as f64).collect(), 100.0);
        let d = b.decimate(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.sample_rate, 10.0);
        assert_eq!(d.samples[3], 30.0);

        let r = b.resample_nearest(25.0);
        assert_eq!(r.len(), 25);
        assert_eq!(r.sample_rate, 25.0);
        assert_eq!(r.samples[1], 4.0);
    }

    #[test]
    fn dc_removal() {
        let b = RealBuffer::new(vec![2.0, 4.0, 6.0], 1.0).dc_removed();
        assert!((b.mean()).abs() < 1e-12);
    }
}
