//! Clock generation: micro-power oscillator and delay line.
//!
//! The cyclic-frequency-shifting circuit needs two clock signals
//! `CLK_in(Δf)` and `CLK_out(Δf)`. To save power the prototype generates only
//! `CLK_in` (from an LTC6907 micro-power oscillator driven by the MCU) and
//! derives `CLK_out` by passing it through a transmission-line delay whose
//! phase shift `Δφ` is tuned so `cos(Δφ) ≈ 1` (paper Eq. 5).

use std::f64::consts::PI;

use crate::signal::RealBuffer;

/// A square/sine clock source at a programmable frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Oscillator {
    /// Clock frequency in Hz.
    pub frequency: f64,
    /// Initial phase in radians.
    pub phase: f64,
    /// Peak amplitude (volts).
    pub amplitude: f64,
    /// Frequency error in parts-per-million (models a cheap RC oscillator).
    pub ppm_error: f64,
}

impl Oscillator {
    /// Creates an ideal oscillator at `frequency` Hz with unit amplitude.
    pub fn new(frequency: f64) -> Self {
        Oscillator {
            frequency,
            phase: 0.0,
            amplitude: 1.0,
            ppm_error: 0.0,
        }
    }

    /// The LTC6907-class micro-power oscillator used by the prototype:
    /// ±0.5 % (5000 ppm) frequency tolerance.
    pub fn ltc6907(frequency: f64) -> Self {
        Oscillator {
            frequency,
            phase: 0.0,
            amplitude: 1.0,
            ppm_error: 0.0,
        }
    }

    /// Returns a copy with the given initial phase.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// Returns a copy with the given frequency error in ppm.
    pub fn with_ppm_error(mut self, ppm: f64) -> Self {
        self.ppm_error = ppm;
        self
    }

    /// The actual output frequency including the ppm error.
    pub fn actual_frequency(&self) -> f64 {
        self.frequency * (1.0 + self.ppm_error * 1e-6)
    }

    /// Generates `len` samples of the (sinusoidal) clock at `sample_rate`.
    pub fn generate(&self, len: usize, sample_rate: f64) -> RealBuffer {
        let w = 2.0 * PI * self.actual_frequency() / sample_rate;
        let samples = (0..len)
            .map(|n| self.amplitude * (w * n as f64 + self.phase).cos())
            .collect();
        RealBuffer::new(samples, sample_rate)
    }

    /// The clock value at absolute sample index `n` of a stream running at
    /// `sample_rate`. Streaming stages use this so the clock phase is a
    /// function of the global sample position, not of chunk boundaries:
    /// `value_at(n, fs)` equals `generate(len, fs).samples[n]` for any
    /// `len > n`.
    pub fn value_at(&self, n: u64, sample_rate: f64) -> f64 {
        let w = 2.0 * PI * self.actual_frequency() / sample_rate;
        self.amplitude * (w * n as f64 + self.phase).cos()
    }
}

/// A transmission-line delay that copies `CLK_in` into `CLK_out` with a phase
/// shift `Δφ` (paper Eq. 5). The line length is expressed directly as the
/// phase shift it introduces at the clock frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayLine {
    /// Phase shift introduced at the clock frequency, radians.
    pub phase_shift: f64,
}

impl DelayLine {
    /// Creates a delay line with the given phase shift.
    pub fn new(phase_shift: f64) -> Self {
        DelayLine { phase_shift }
    }

    /// A line tuned (as in the paper) so `cos(Δφ) ≈ 1`, i.e. a small residual
    /// phase error of about 0.1 rad.
    pub fn tuned() -> Self {
        DelayLine { phase_shift: 0.1 }
    }

    /// The amplitude factor `cos(Δφ)` the residual phase error costs after the
    /// output mixer.
    pub fn amplitude_factor(&self) -> f64 {
        self.phase_shift.cos()
    }

    /// Derives the output clock from the input oscillator.
    pub fn derive(&self, input: &Oscillator) -> Oscillator {
        input.with_phase(input.phase + self.phase_shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oscillator_frequency_is_respected() {
        let osc = Oscillator::new(100_000.0);
        let fs = 2.0e6;
        let clock = osc.generate(4_000, fs);
        // Count zero crossings: a 100 kHz sine over 2 ms has ~400 crossings.
        let crossings = clock
            .samples
            .windows(2)
            .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
            .count();
        assert!((crossings as i64 - 400).abs() <= 2, "crossings {crossings}");
    }

    #[test]
    fn ppm_error_changes_frequency() {
        let osc = Oscillator::new(1_000_000.0).with_ppm_error(5_000.0);
        assert!((osc.actual_frequency() - 1_005_000.0).abs() < 1e-6);
    }

    #[test]
    fn delay_line_adds_phase() {
        let osc = Oscillator::new(500_000.0);
        let line = DelayLine::new(0.25);
        let derived = line.derive(&osc);
        assert!((derived.phase - 0.25).abs() < 1e-12);
        assert_eq!(derived.frequency, osc.frequency);
    }

    #[test]
    fn tuned_line_loses_almost_nothing() {
        let line = DelayLine::tuned();
        assert!(line.amplitude_factor() > 0.99);
    }

    #[test]
    fn value_at_matches_generate_regardless_of_chunking() {
        let osc = Oscillator::new(123_456.0)
            .with_phase(0.3)
            .with_ppm_error(40.0);
        let fs = 2.0e6;
        let batch = osc.generate(500, fs);
        for n in [0u64, 1, 7, 63, 499] {
            assert_eq!(osc.value_at(n, fs), batch.samples[n as usize]);
        }
    }

    #[test]
    fn clock_amplitude() {
        let osc = Oscillator::new(1000.0);
        let clock = osc.generate(1000, 100_000.0);
        assert!((clock.max() - 1.0).abs() < 1e-3);
        assert!((clock.min() + 1.0).abs() < 1e-3);
    }
}
