//! Clock generation: micro-power oscillator and delay line.
//!
//! The cyclic-frequency-shifting circuit needs two clock signals
//! `CLK_in(Δf)` and `CLK_out(Δf)`. To save power the prototype generates only
//! `CLK_in` (from an LTC6907 micro-power oscillator driven by the MCU) and
//! derives `CLK_out` by passing it through a transmission-line delay whose
//! phase shift `Δφ` is tuned so `cos(Δφ) ≈ 1` (paper Eq. 5).

use std::f64::consts::PI;

use crate::signal::RealBuffer;

/// A square/sine clock source at a programmable frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Oscillator {
    /// Clock frequency in Hz.
    pub frequency: f64,
    /// Initial phase in radians.
    pub phase: f64,
    /// Peak amplitude (volts).
    pub amplitude: f64,
    /// Frequency error in parts-per-million (models a cheap RC oscillator).
    pub ppm_error: f64,
}

impl Oscillator {
    /// Creates an ideal oscillator at `frequency` Hz with unit amplitude.
    pub fn new(frequency: f64) -> Self {
        Oscillator {
            frequency,
            phase: 0.0,
            amplitude: 1.0,
            ppm_error: 0.0,
        }
    }

    /// The LTC6907-class micro-power oscillator used by the prototype:
    /// ±0.5 % (5000 ppm) frequency tolerance.
    pub fn ltc6907(frequency: f64) -> Self {
        Oscillator {
            frequency,
            phase: 0.0,
            amplitude: 1.0,
            ppm_error: 0.0,
        }
    }

    /// Returns a copy with the given initial phase.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// Returns a copy with the given frequency error in ppm.
    pub fn with_ppm_error(mut self, ppm: f64) -> Self {
        self.ppm_error = ppm;
        self
    }

    /// The actual output frequency including the ppm error.
    pub fn actual_frequency(&self) -> f64 {
        self.frequency * (1.0 + self.ppm_error * 1e-6)
    }

    /// Generates `len` samples of the (sinusoidal) clock at `sample_rate`.
    pub fn generate(&self, len: usize, sample_rate: f64) -> RealBuffer {
        let w = 2.0 * PI * self.actual_frequency() / sample_rate;
        let samples = (0..len)
            .map(|n| self.amplitude * (w * n as f64 + self.phase).cos())
            .collect();
        RealBuffer::new(samples, sample_rate)
    }

    /// The clock value at absolute sample index `n` of a stream running at
    /// `sample_rate`. Streaming stages use this so the clock phase is a
    /// function of the global sample position, not of chunk boundaries:
    /// `value_at(n, fs)` equals `generate(len, fs).samples[n]` for any
    /// `len > n`.
    pub fn value_at(&self, n: u64, sample_rate: f64) -> f64 {
        let w = 2.0 * PI * self.actual_frequency() / sample_rate;
        self.amplitude * (w * n as f64 + self.phase).cos()
    }

    /// Writes the clock values for absolute sample indices
    /// `start_index .. start_index + len` into `out` (cleared first).
    ///
    /// This is the block form of [`Self::value_at`]: each output is the same
    /// expression with the per-sample phase increment hoisted out of the
    /// loop, so every value is bit-identical to `value_at` while a chunked
    /// mixer pays one `cos` call per sample and no per-call setup.
    pub fn values_into(&self, start_index: u64, len: usize, sample_rate: f64, out: &mut Vec<f64>) {
        let w = 2.0 * PI * self.actual_frequency() / sample_rate;
        out.clear();
        out.reserve(len);
        for i in 0..len {
            out.push(self.amplitude * (w * (start_index + i as u64) as f64 + self.phase).cos());
        }
    }

    /// Sample spacing of the fast path's anchor grid: between exact
    /// re-anchors the recurrence accumulates only a few ULPs of rotation
    /// error.
    pub const RECURRENCE_ANCHOR_INTERVAL: u64 = 256;

    /// The phasor-recurrence fast path of [`Self::values_into`]: one complex
    /// rotation per sample instead of one `cos` call.
    ///
    /// The recurrence is *re-anchored on the absolute sample index*: at every
    /// multiple of [`Self::RECURRENCE_ANCHOR_INTERVAL`] the phasor is
    /// evaluated exactly (via `sin`/`cos`) and then rotated by `e^{jω}` per
    /// sample. Each output is therefore a pure function of its absolute
    /// index — chunked evaluation is bit-identical whatever the chunk
    /// boundaries — and rounding error cannot accumulate beyond one anchor
    /// interval (a few ULPs — see the tolerance test). Because the
    /// recurrence rounds differently from libm `cos`, outputs are *not*
    /// bit-identical to the exact path; receivers keep the exact path as the
    /// default so golden traces stay pinned, and opt in via
    /// `SaiyanConfig::fast_oscillator` when throughput matters more than
    /// bit-stability.
    pub fn values_into_recurrence(
        &self,
        start_index: u64,
        len: usize,
        sample_rate: f64,
        out: &mut Vec<f64>,
    ) {
        self.values_into_recurrence_dispatch(
            crate::simd::active_backend(),
            start_index,
            len,
            sample_rate,
            out,
        );
    }

    /// [`Self::values_into_recurrence`] with an explicit kernel backend —
    /// the seam the SIMD equivalence tests use to pin every backend against
    /// the scalar chain in one process.
    #[doc(hidden)]
    pub fn values_into_recurrence_dispatch(
        &self,
        backend: crate::simd::Backend,
        start_index: u64,
        len: usize,
        sample_rate: f64,
        out: &mut Vec<f64>,
    ) {
        let w = 2.0 * PI * self.actual_frequency() / sample_rate;
        out.clear();
        out.resize(len, 0.0);
        let (step_re, step_im) = (w.cos(), w.sin());
        if backend == crate::simd::Backend::Scalar {
            self.recurrence_segment(start_index, w, step_re, step_im, out);
            return;
        }
        // The anchor grid makes every aligned 256-sample block an independent
        // rotation chain, so a wide backend runs one chain per lane. The
        // ragged head (up to the first anchor) and tail (after the last full
        // block) go through the scalar segment, which re-anchors on the same
        // absolute grid — outputs are bit-identical to the scalar path
        // whatever the split.
        let interval = Self::RECURRENCE_ANCHOR_INTERVAL as usize;
        let head = ((Self::RECURRENCE_ANCHOR_INTERVAL
            - (start_index % Self::RECURRENCE_ANCHOR_INTERVAL))
            % Self::RECURRENCE_ANCHOR_INTERVAL) as usize;
        let head = head.min(len);
        let full = (len - head) / interval;
        self.recurrence_segment(start_index, w, step_re, step_im, &mut out[..head]);
        // Chains are processed in bounded groups so steady-state streaming
        // stays allocation-free.
        const GROUP: usize = 64;
        let mut anchor_re = [0.0f64; GROUP];
        let mut anchor_im = [0.0f64; GROUP];
        let mut chain = 0usize;
        while chain < full {
            let group = (full - chain).min(GROUP);
            for g in 0..group {
                let n = start_index + (head + (chain + g) * interval) as u64;
                let theta = w * n as f64 + self.phase;
                anchor_re[g] = self.amplitude * theta.cos();
                anchor_im[g] = self.amplitude * theta.sin();
            }
            let base = head + chain * interval;
            crate::simd::rotate_chains_into(
                backend,
                &anchor_re[..group],
                &anchor_im[..group],
                step_re,
                step_im,
                interval,
                &mut out[base..base + group * interval],
            );
            chain += group;
        }
        let tail_start = head + full * interval;
        self.recurrence_segment(
            start_index + tail_start as u64,
            w,
            step_re,
            step_im,
            &mut out[tail_start..],
        );
    }

    /// The scalar phasor recurrence over one contiguous segment — the
    /// golden-reference loop of [`Self::values_into_recurrence`], kept
    /// verbatim: catch up from the grid anchor below `start_index`, then
    /// rotate once per sample, re-anchoring exactly at every grid multiple.
    fn recurrence_segment(
        &self,
        start_index: u64,
        w: f64,
        step_re: f64,
        step_im: f64,
        out: &mut [f64],
    ) {
        if out.is_empty() {
            return;
        }
        let anchor_of = |n: u64| n - (n % Self::RECURRENCE_ANCHOR_INTERVAL);
        let exact = |n: u64| {
            let theta = w * n as f64 + self.phase;
            (self.amplitude * theta.cos(), self.amplitude * theta.sin())
        };
        // Catch up from the grid anchor below `start_index`, replaying the
        // same rotations any other chunking would have applied.
        let mut n = start_index;
        let (mut z_re, mut z_im) = exact(anchor_of(n));
        for _ in 0..(n - anchor_of(n)) {
            let re = z_re * step_re - z_im * step_im;
            z_im = z_re * step_im + z_im * step_re;
            z_re = re;
        }
        for slot in out.iter_mut() {
            if n.is_multiple_of(Self::RECURRENCE_ANCHOR_INTERVAL) {
                (z_re, z_im) = exact(n);
            }
            *slot = z_re;
            let re = z_re * step_re - z_im * step_im;
            z_im = z_re * step_im + z_im * step_re;
            z_re = re;
            n += 1;
        }
    }
}

/// A transmission-line delay that copies `CLK_in` into `CLK_out` with a phase
/// shift `Δφ` (paper Eq. 5). The line length is expressed directly as the
/// phase shift it introduces at the clock frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayLine {
    /// Phase shift introduced at the clock frequency, radians.
    pub phase_shift: f64,
}

impl DelayLine {
    /// Creates a delay line with the given phase shift.
    pub fn new(phase_shift: f64) -> Self {
        DelayLine { phase_shift }
    }

    /// A line tuned (as in the paper) so `cos(Δφ) ≈ 1`, i.e. a small residual
    /// phase error of about 0.1 rad.
    pub fn tuned() -> Self {
        DelayLine { phase_shift: 0.1 }
    }

    /// The amplitude factor `cos(Δφ)` the residual phase error costs after the
    /// output mixer.
    pub fn amplitude_factor(&self) -> f64 {
        self.phase_shift.cos()
    }

    /// Derives the output clock from the input oscillator.
    pub fn derive(&self, input: &Oscillator) -> Oscillator {
        input.with_phase(input.phase + self.phase_shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oscillator_frequency_is_respected() {
        let osc = Oscillator::new(100_000.0);
        let fs = 2.0e6;
        let clock = osc.generate(4_000, fs);
        // Count zero crossings: a 100 kHz sine over 2 ms has ~400 crossings.
        let crossings = clock
            .samples
            .windows(2)
            .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
            .count();
        assert!((crossings as i64 - 400).abs() <= 2, "crossings {crossings}");
    }

    #[test]
    fn ppm_error_changes_frequency() {
        let osc = Oscillator::new(1_000_000.0).with_ppm_error(5_000.0);
        assert!((osc.actual_frequency() - 1_005_000.0).abs() < 1e-6);
    }

    #[test]
    fn delay_line_adds_phase() {
        let osc = Oscillator::new(500_000.0);
        let line = DelayLine::new(0.25);
        let derived = line.derive(&osc);
        assert!((derived.phase - 0.25).abs() < 1e-12);
        assert_eq!(derived.frequency, osc.frequency);
    }

    #[test]
    fn tuned_line_loses_almost_nothing() {
        let line = DelayLine::tuned();
        assert!(line.amplitude_factor() > 0.99);
    }

    #[test]
    fn value_at_matches_generate_regardless_of_chunking() {
        let osc = Oscillator::new(123_456.0)
            .with_phase(0.3)
            .with_ppm_error(40.0);
        let fs = 2.0e6;
        let batch = osc.generate(500, fs);
        for n in [0u64, 1, 7, 63, 499] {
            assert_eq!(osc.value_at(n, fs), batch.samples[n as usize]);
        }
    }

    #[test]
    fn values_into_is_bit_identical_to_value_at() {
        let osc = Oscillator::new(237_000.0)
            .with_phase(1.1)
            .with_ppm_error(-120.0);
        let fs = 2.0e6;
        let mut block = Vec::new();
        for start in [0u64, 1, 977, 1 << 40] {
            osc.values_into(start, 300, fs, &mut block);
            for (i, &v) in block.iter().enumerate() {
                assert_eq!(v, osc.value_at(start + i as u64, fs), "index {i}");
            }
        }
    }

    #[test]
    fn recurrence_tracks_the_exact_path_within_tolerance() {
        // The fast path re-anchors per block, so the rotation error itself
        // stays at a few ULPs over a 4096-sample chunk. What remains is the
        // rounding of the phase product `w * n` (shared with the exact path
        // but rounded at a different point), which grows with the absolute
        // sample index: tight near the stream origin, ~ulp(w * n) deep in.
        let osc = Oscillator::new(500_000.0)
            .with_phase(0.4)
            .with_ppm_error(80.0);
        let fs = 2.0e6;
        let mut exact = Vec::new();
        let mut fast = Vec::new();
        let mut check = |first_block: u64, bound: f64| {
            let mut worst: f64 = 0.0;
            for block in 0u64..32 {
                let start = (first_block + block) * 4096;
                osc.values_into(start, 4096, fs, &mut exact);
                osc.values_into_recurrence(start, 4096, fs, &mut fast);
                for (a, b) in exact.iter().zip(&fast) {
                    worst = worst.max((a - b).abs());
                }
            }
            assert!(
                worst < bound,
                "recurrence drifted by {worst:.3e} (bound {bound:.0e}) from block {first_block}"
            );
        };
        // Near the origin: recurrence rounding only.
        check(0, 1e-9);
        // An hour into a 2 Msps stream: phase-product rounding dominates but
        // stays far below any decision threshold in the chain.
        check((1 << 33) / 4096, 1e-5);
    }

    #[test]
    fn recurrence_dispatch_pins_anchor_boundaries_across_backends() {
        // Boundary matrix for the 256-sample anchor grid: starts on, just
        // before, and just after anchors; lengths that end exactly on, one
        // short of, and one past the next anchor; a zero-length chunk; a
        // chunk that never reaches its first anchor (head >= len); and a
        // span crossing the 64-chain batching boundary of the wide path.
        // Every compiled backend must be bit-identical to the scalar golden
        // reference at every point of the matrix.
        use crate::simd::Backend;
        let osc = Oscillator::new(237_000.0)
            .with_phase(1.1)
            .with_ppm_error(-120.0);
        let fs = 2.0e6;
        let iv = Oscillator::RECURRENCE_ANCHOR_INTERVAL;
        let starts = [0u64, 1, iv - 1, iv, iv + 1, 7 * iv + 13, (1 << 40) - 1];
        let lens = [
            0usize,
            1,
            2,
            255,
            256,
            257,
            300,
            511,
            512,
            513,
            65 * 256 + 7,
        ];
        let mut want = Vec::new();
        let mut got = Vec::new();
        for backend in Backend::ALL {
            if !backend.available() {
                continue;
            }
            for &start in &starts {
                for &len in &lens {
                    osc.values_into_recurrence_dispatch(Backend::Scalar, start, len, fs, &mut want);
                    osc.values_into_recurrence_dispatch(backend, start, len, fs, &mut got);
                    assert_eq!(got, want, "{} start {start} len {len}", backend.name());
                }
            }
        }
    }

    #[test]
    fn recurrence_is_chunk_invariant_across_anchor_boundaries() {
        // Each output is a pure function of its absolute sample index, so
        // concatenating ragged chunks — cut mid-interval, exactly on an
        // anchor, one sample to either side, and as single samples right at
        // a boundary — reproduces the single-call output bit-exactly.
        let osc = Oscillator::new(237_000.0)
            .with_phase(1.1)
            .with_ppm_error(-120.0);
        let fs = 2.0e6;
        let start = 100u64;
        let total = 1500usize;
        let mut whole = Vec::new();
        osc.values_into_recurrence(start, total, fs, &mut whole);
        // Offsets relative to `start`; the first anchor (absolute 256) sits
        // at offset 156, the next at 412.
        let cuts = [0usize, 1, 155, 156, 157, 412, 413, 1023, total];
        let mut concat = Vec::new();
        let mut piece = Vec::new();
        for pair in cuts.windows(2) {
            osc.values_into_recurrence(start + pair[0] as u64, pair[1] - pair[0], fs, &mut piece);
            concat.extend_from_slice(&piece);
        }
        assert_eq!(concat, whole);
    }

    #[test]
    fn clock_amplitude() {
        let osc = Oscillator::new(1000.0);
        let clock = osc.generate(1000, 100_000.0);
        assert!((clock.max() - 1.0).abs() < 1e-3);
        assert!((clock.min() + 1.0).abs() < 1e-3);
    }
}
