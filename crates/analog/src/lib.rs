//! # analog — analog front-end component models
//!
//! Software models of every analog block on the Saiyan tag, replacing the
//! paper's PCB hardware (see DESIGN.md §2 for the substitution argument):
//!
//! * [`saw`] — the B3790 SAW filter's frequency→amplitude response;
//! * [`rlc`] — the rejected RLC-resonator alternative (Appendix A.1);
//! * [`lna`] — the common-gate low-noise amplifier;
//! * [`matching`] — the antenna-to-SAW impedance matching network;
//! * [`envelope`] — the square-law envelope detector with self-mixing and
//!   flicker/DC noise;
//! * [`mixer`], [`oscillator`], [`filters`] — the building blocks of the
//!   cyclic-frequency-shifting circuit;
//! * [`shifting`] — the composed cyclic-frequency-shifting chain (§3.1);
//! * [`comparator`] — single- and double-threshold comparators (Eq. 3);
//! * [`adc`] — the conventional ADC baseline Saiyan eliminates;
//! * [`power`] — the Table 2 / §4.3 power and cost budgets;
//! * [`signal`] — real-valued baseband buffers shared by these blocks;
//! * [`fir`] — the shared streaming complex-FIR state machine;
//! * [`stage`] — the block-pipeline stage traits (chunk invariance and
//!   buffer-ownership contracts every streaming stage implements);
//! * [`simd`] — runtime-dispatched SIMD kernels behind the hot stages
//!   (backend selection, bit-identical wide tiles, `SAIYAN_SIMD` override).
//!   The module itself now lives in [`lora_phy::simd`] — the bottom of the
//!   crate graph — so `rfsim` and the serving layer share the dispatch; this
//!   crate re-exports it under the original path;
//! * [`channelizer`] — the wideband gateway front end: per-channel frequency
//!   shift, band-select FIR and decimation.

#![warn(missing_docs)]

pub mod adc;
pub mod channelizer;
pub mod comparator;
pub mod envelope;
pub mod filters;
pub mod fir;
pub mod lna;
pub mod matching;
pub mod mixer;
pub mod oscillator;
pub mod power;
pub mod rlc;
pub mod saw;
pub mod shifting;
pub mod signal;
pub mod stage;

pub use lora_phy::simd;

pub use adc::{Adc, AdcState};
pub use channelizer::{ChannelizerSpec, ChannelizerState};
pub use comparator::{
    BinaryStream, ComparatorState, DoubleThresholdComparator, SingleThresholdComparator,
};
pub use envelope::{DetectorNoise, EnvelopeDetector};
pub use filters::{IfAmplifier, LowPassFilter};
pub use fir::{ComplexFirState, PolyphaseDecimator};
pub use lna::Lna;
pub use matching::{Impedance, MatchingNetwork};
pub use mixer::{BasebandMixer, RfMixer};
pub use oscillator::{DelayLine, Oscillator};
pub use power::{Component, EnergyLedger, PowerBudget, Technology};
pub use rlc::{is_realisable_capacitance, required_capacitance, RlcResonator};
pub use saw::{ResponsePoint, SawFilter};
pub use shifting::{envelope_snr_db, snr_gain_db, CyclicFrequencyShifter, ShiftingConfig};
pub use signal::RealBuffer;
pub use stage::{BlockStage, InPlaceStage};
