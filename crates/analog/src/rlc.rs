//! RLC resonant circuit — the rejected alternative (paper Appendix A.1).
//!
//! The obvious way to build a frequency→amplitude converter is a detuned RLC
//! resonator. The appendix shows why this fails for LoRa: to get a pass band
//! as narrow as the LoRa bandwidth at 433 MHz, the required capacitance drops
//! to an unrealisable ~5×10⁻¹⁴ pF. This module implements the resonator maths
//! so the infeasibility argument can be reproduced (and so an "RLC front end"
//! ablation can be simulated if desired).

use rfsim::units::{Db, Hertz};

/// An ideal series RLC resonator used as a band-pass element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlcResonator {
    /// Resistance in ohms.
    pub resistance: f64,
    /// Inductance in henries.
    pub inductance: f64,
    /// Capacitance in farads.
    pub capacitance: f64,
}

impl RlcResonator {
    /// Creates a resonator from component values.
    pub fn new(resistance: f64, inductance: f64, capacitance: f64) -> Self {
        RlcResonator {
            resistance,
            inductance,
            capacitance,
        }
    }

    /// Resonant (centre) frequency `ω0 = 1/sqrt(LC)` expressed in Hz.
    pub fn center_frequency(&self) -> Hertz {
        Hertz(1.0 / (2.0 * std::f64::consts::PI * (self.inductance * self.capacitance).sqrt()))
    }

    /// Quality factor `Q = sqrt(L/C)/R` (paper Eq. 7).
    pub fn quality_factor(&self) -> f64 {
        (self.inductance / self.capacitance).sqrt() / self.resistance
    }

    /// Pass band `Δω = ω0 / Q` expressed in Hz (paper Eq. 6).
    pub fn passband(&self) -> Hertz {
        Hertz(self.center_frequency().value() / self.quality_factor())
    }

    /// Magnitude response (dB) of the resonator at frequency `f`, relative to
    /// the peak at resonance.
    pub fn gain_at(&self, f: Hertz) -> Db {
        let f0 = self.center_frequency().value();
        let q = self.quality_factor();
        let x = f.value() / f0 - f0 / f.value().max(1e-9);
        let mag = 1.0 / (1.0 + (q * x).powi(2)).sqrt();
        Db(20.0 * mag.log10())
    }
}

/// The capacitance a resonator would need to realise a pass band `passband`
/// centred on `center` with circuit resistance `resistance` (paper Eq. 8:
/// `C = Δω / (ω0² R)` — the appendix's infeasibility bound).
pub fn required_capacitance(center: Hertz, passband: Hertz, resistance: f64) -> f64 {
    let w0 = 2.0 * std::f64::consts::PI * center.value();
    let dw = 2.0 * std::f64::consts::PI * passband.value();
    dw / (w0 * w0 * resistance)
}

/// Whether a capacitance value is physically realisable as a discrete
/// component. Anything below ~0.1 pF is dominated by parasitics.
pub fn is_realisable_capacitance(farads: f64) -> bool {
    farads >= 0.1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_and_passband_relationship() {
        // 433 MHz resonator with Q = 100 has a 4.33 MHz pass band.
        let l = 10e-9;
        let f0 = 433e6;
        let c = 1.0 / ((2.0 * std::f64::consts::PI * f0).powi(2) * l);
        let r = (l / c).sqrt() / 100.0;
        let res = RlcResonator::new(r, l, c);
        assert!((res.center_frequency().value() - f0).abs() / f0 < 1e-9);
        assert!((res.quality_factor() - 100.0).abs() < 1e-6);
        assert!((res.passband().value() - 4.33e6).abs() < 1e4);
    }

    #[test]
    fn appendix_a1_infeasibility() {
        // Eq. 8 with a 500 kHz pass band at 433 MHz and R = 50 Ω gives
        // C = Δω/(ω0² R) ≈ 8.5 fF (the paper prints "5.2e-14 pF"; whichever
        // way the unit slip is read, the value is orders of magnitude below a
        // realisable discrete capacitor once ~0.1 pF parasitics are counted).
        let c = required_capacitance(Hertz::from_mhz(433.0), Hertz::from_khz(500.0), 50.0);
        assert!(
            (c - 8.49e-15).abs() / 8.49e-15 < 0.05,
            "required capacitance {c:.3e} F"
        );
        assert!(!is_realisable_capacitance(c));
        // A Bluetooth-wide (80 MHz) pass band, by contrast, needs ~1.4 pF,
        // which is perfectly buildable.
        let c_wide = required_capacitance(Hertz::from_mhz(433.0), Hertz::from_mhz(80.0), 50.0);
        assert!(
            is_realisable_capacitance(c_wide),
            "wideband C {c_wide:.3e} F"
        );
    }

    #[test]
    fn response_peaks_at_resonance() {
        let l = 10e-9;
        let f0 = 434e6;
        let c = 1.0 / ((2.0 * std::f64::consts::PI * f0).powi(2) * l);
        let r = (l / c).sqrt() / 50.0;
        let res = RlcResonator::new(r, l, c);
        let at_res = res.gain_at(Hertz(f0)).value();
        let off_res = res.gain_at(Hertz(f0 + 60e6)).value();
        assert!((at_res - 0.0).abs() < 1e-9);
        assert!(off_res < -20.0);
    }

    #[test]
    fn narrowband_slope_across_lora_band_is_negligible() {
        // Why the RLC idea fails functionally: with a realisable Q (say 100),
        // the amplitude difference across a 500 kHz LoRa sweep near resonance
        // is tiny compared to the 25 dB the SAW filter provides.
        let l = 10e-9;
        let f0 = 433.75e6;
        let c = 1.0 / ((2.0 * std::f64::consts::PI * f0).powi(2) * l);
        let r = (l / c).sqrt() / 100.0;
        let res = RlcResonator::new(r, l, c);
        let low = res.gain_at(Hertz::from_mhz(433.5)).value();
        let high = res.gain_at(Hertz::from_mhz(434.0)).value();
        assert!(
            (high - low).abs() < 3.0,
            "RLC gap {} dB",
            (high - low).abs()
        );
    }
}
