//! Cyclic-frequency shifting (paper §3.1, Fig. 9–11).
//!
//! The envelope detector's square-law operation folds RF noise, DC offset and
//! flicker noise onto the baseband right where the wanted envelope lives. The
//! cyclic-frequency-shifting circuit sidesteps this:
//!
//! 1. the incident signal is mixed with `CLK_in(Δf)`, creating sidebands
//!    `S(F ± Δf)` next to the fed-through original `S(F)`;
//! 2. the envelope detector beats the sidebands against the original, so a
//!    copy of the wanted envelope appears at the intermediate frequency `Δf`,
//!    *above* the detector's DC/flicker noise; the IF amplifier's frequency
//!    selectivity boosts that copy and rejects the noisy baseband;
//! 3. the output mixer (driven by `CLK_out`, a delay-line copy of `CLK_in`)
//!    shifts the amplified envelope back to baseband while pushing the noisy
//!    baseband content up to `Δf`, where the low-pass filter removes it.
//!
//! The measured benefit in the paper is ≈ 11 dB of SNR, which the
//! `snr_gain_db` helper reproduces on simulated waveforms.

use lora_phy::iq::SampleBuffer;

use crate::envelope::EnvelopeDetector;
use crate::filters::{IfAmplifier, LowPassFilter};
use crate::mixer::{BasebandMixer, RfMixer};
use crate::oscillator::{DelayLine, Oscillator};
use crate::signal::RealBuffer;

/// Configuration of the cyclic-frequency-shifting chain.
#[derive(Debug, Clone)]
pub struct ShiftingConfig {
    /// Intermediate frequency Δf (Hz). Must be well above the envelope
    /// bandwidth and below half the waveform sample rate.
    pub intermediate_frequency: f64,
    /// Half-width of the IF amplifier pass band (Hz).
    pub if_half_bandwidth: f64,
    /// Cut-off of the final low-pass filter (Hz).
    pub lpf_cutoff: f64,
    /// Residual phase error of the delay line (radians).
    pub delay_phase_error: f64,
}

impl ShiftingConfig {
    /// A sensible default for a LoRa bandwidth `bw` Hz: Δf = bw, IF pass band
    /// ±bw/4, LPF cut-off bw/5.
    pub fn for_bandwidth(bw: f64) -> Self {
        ShiftingConfig {
            intermediate_frequency: bw,
            if_half_bandwidth: bw / 4.0,
            lpf_cutoff: bw / 5.0,
            delay_phase_error: 0.1,
        }
    }
}

/// The full cyclic-frequency-shifting envelope detector (Fig. 11).
#[derive(Debug, Clone)]
pub struct CyclicFrequencyShifter {
    /// Chain configuration.
    pub config: ShiftingConfig,
    /// The input mixer.
    pub input_mixer: RfMixer,
    /// The output mixer.
    pub output_mixer: BasebandMixer,
    /// The shared envelope detector.
    pub detector: EnvelopeDetector,
}

impl CyclicFrequencyShifter {
    /// Builds the chain around a given envelope detector.
    pub fn new(config: ShiftingConfig, detector: EnvelopeDetector) -> Self {
        CyclicFrequencyShifter {
            config,
            input_mixer: RfMixer::default(),
            output_mixer: BasebandMixer::default(),
            detector,
        }
    }

    /// Processes an RF (complex-baseband) input through the shifting chain and
    /// returns the recovered baseband envelope.
    ///
    /// Delegates to the streaming state run over the whole buffer at once:
    /// there is a single implementation of each stage, and batch equals
    /// chunked processing bit-exactly by construction.
    pub fn process(&self, input: &SampleBuffer) -> RealBuffer {
        let mut state = self.streaming(input.sample_rate, true);
        let mut out = Vec::new();
        state.process_chunk_into(&input.samples, &mut out);
        RealBuffer::new(out, input.sample_rate)
    }

    /// Processes the input through a *plain* envelope detector (no shifting),
    /// for side-by-side comparisons and the ablation study. Delegates to the
    /// streaming state like [`Self::process`].
    pub fn process_without_shifting(&self, input: &SampleBuffer) -> RealBuffer {
        let mut state = self.streaming(input.sample_rate, false);
        let mut out = Vec::new();
        state.process_chunk_into(&input.samples, &mut out);
        RealBuffer::new(out, input.sample_rate)
    }

    /// Creates a streaming state for the full shifting chain at the given
    /// waveform sample rate. Every stateful element — the clock phase (tracked
    /// as the absolute sample index), the detector's noise RNG and flicker
    /// integrator, the IF-amplifier biquads and the low-pass sections — is
    /// carried across chunk boundaries, so chunked processing equals
    /// [`Self::process`] (or [`Self::process_without_shifting`] when
    /// `use_shifting` is false) on the concatenated stream bit-exactly.
    pub fn streaming(&self, sample_rate: f64, use_shifting: bool) -> ShifterState {
        let delta_f = self.config.intermediate_frequency;
        if use_shifting {
            assert!(
                delta_f < sample_rate / 2.0,
                "intermediate frequency {delta_f} Hz exceeds Nyquist for fs {sample_rate}"
            );
        }
        let clk_in = Oscillator::ltc6907(delta_f);
        let clk_out = DelayLine::new(self.config.delay_phase_error).derive(&clk_in);
        ShifterState {
            use_shifting,
            fast_clock: false,
            input_mixer: self.input_mixer,
            output_mixer: self.output_mixer,
            clk_in,
            clk_out,
            sample_rate,
            index: 0,
            detector: self.detector.streaming(sample_rate),
            if_amp: IfAmplifier::paper_2n222(delta_f, self.config.if_half_bandwidth)
                .streaming(sample_rate),
            lpf: LowPassFilter::new(self.config.lpf_cutoff, 2).streaming(sample_rate),
            clk_scratch: Vec::new(),
            mix_scratch: Vec::new(),
        }
    }
}

/// Carried state of a streaming [`CyclicFrequencyShifter`] chain.
///
/// The state owns two scratch buffers (the sampled clock block and the
/// input-mixer output) that are reused across chunks, so steady-state
/// processing allocates nothing; the envelope itself is written into the
/// caller's buffer by [`ShifterState::process_chunk_into`] and rewritten in
/// place by the IF amplifier, output mixer and low-pass stages.
#[derive(Debug, Clone)]
pub struct ShifterState {
    use_shifting: bool,
    /// Sample the mixer clocks with the phasor-recurrence fast path instead
    /// of per-sample `cos` (see [`Oscillator::values_into_recurrence`]).
    fast_clock: bool,
    input_mixer: RfMixer,
    output_mixer: BasebandMixer,
    clk_in: Oscillator,
    clk_out: Oscillator,
    sample_rate: f64,
    /// Absolute index of the next input sample (drives the clock phase).
    index: u64,
    detector: crate::envelope::EnvelopeDetectorState,
    if_amp: crate::filters::IfAmplifierState,
    lpf: crate::filters::LowPassState,
    /// Reusable clock-block scratch (shared by both mixers).
    clk_scratch: Vec<f64>,
    /// Reusable input-mixer output scratch.
    mix_scratch: Vec<lora_phy::iq::Iq>,
}

impl ShifterState {
    /// Enables or disables the phasor-recurrence clock fast path. The fast
    /// path is *not* bit-identical to the exact per-sample `cos` clock (it is
    /// accurate to a few ULPs per block, re-anchored on the absolute sample
    /// index every chunk), so it defaults to off and golden traces are always
    /// decoded with the exact path.
    pub fn with_fast_clock(mut self, fast: bool) -> Self {
        self.fast_clock = fast;
        self
    }

    /// Processes one chunk of RF (complex-baseband) input into the recovered
    /// baseband envelope, allocating a fresh output buffer. Steady-state
    /// callers should prefer [`Self::process_chunk_into`].
    pub fn process_chunk(&mut self, chunk: &[lora_phy::iq::Iq]) -> Vec<f64> {
        let mut out = Vec::new();
        self.process_chunk_into(chunk, &mut out);
        out
    }

    /// Processes one chunk of RF (complex-baseband) input into the recovered
    /// baseband envelope, written into `out` (cleared first), advancing every
    /// carried state.
    pub fn process_chunk_into(&mut self, chunk: &[lora_phy::iq::Iq], out: &mut Vec<f64>) {
        let start = self.index;
        self.index += chunk.len() as u64;
        if !self.use_shifting {
            self.detector.detect_chunk_into(chunk, out);
            self.lpf.process_chunk(out);
            return;
        }
        self.fill_clock(self.clk_in, start, chunk.len());
        let input_mixer = self.input_mixer;
        input_mixer.mix_with_clock_into(chunk, &self.clk_scratch, &mut self.mix_scratch);
        self.detector.detect_chunk_into(&self.mix_scratch, out);
        self.if_amp.process_chunk(out);
        self.fill_clock(self.clk_out, start, chunk.len());
        self.output_mixer
            .mix_with_clock_in_place(out, &self.clk_scratch);
        self.lpf.process_chunk(out);
    }

    /// Samples `len` clock values starting at absolute index `start` into the
    /// clock scratch, via the exact or fast path.
    fn fill_clock(&mut self, clock: Oscillator, start: u64, len: usize) {
        if self.fast_clock {
            clock.values_into_recurrence(start, len, self.sample_rate, &mut self.clk_scratch);
        } else {
            clock.values_into(start, len, self.sample_rate, &mut self.clk_scratch);
        }
    }
}

impl crate::stage::BlockStage for ShifterState {
    type In = lora_phy::iq::Iq;
    type Out = f64;
    fn process_into(&mut self, input: &[lora_phy::iq::Iq], out: &mut Vec<f64>) {
        self.process_chunk_into(input, out);
    }
}

/// Measures the SNR (dB) of a recovered envelope against a known clean
/// reference envelope shape by least-squares projection: the received buffer
/// is modelled as `a * reference + noise`, and the SNR is the power of the
/// fitted component over the power of the residual.
///
/// Both buffers must have the same length; DC is removed from each first so
/// the detector's DC offset does not masquerade as signal.
pub fn envelope_snr_db(received: &RealBuffer, reference: &RealBuffer) -> f64 {
    let n = received.len().min(reference.len());
    if n == 0 {
        return f64::NEG_INFINITY;
    }
    let rx = RealBuffer::new(received.samples[..n].to_vec(), received.sample_rate).dc_removed();
    let rf = RealBuffer::new(reference.samples[..n].to_vec(), reference.sample_rate).dc_removed();
    let rr: f64 = rf.samples.iter().map(|v| v * v).sum();
    if rr <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let xr: f64 = rx.samples.iter().zip(&rf.samples).map(|(x, r)| x * r).sum();
    let a = xr / rr;
    let signal_power = a * a * rr;
    let residual: f64 = rx
        .samples
        .iter()
        .zip(&rf.samples)
        .map(|(x, r)| {
            let e = x - a * r;
            e * e
        })
        .sum();
    if residual <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * (signal_power / residual).log10()
}

/// Convenience: the SNR gain (dB) the shifting chain achieves over the plain
/// envelope detector for the given input, measured against the clean envelope
/// produced by a noiseless detector.
pub fn snr_gain_db(shifter: &CyclicFrequencyShifter, input: &SampleBuffer) -> f64 {
    // Reference: the noiseless plain-envelope path (shape of the true envelope
    // after the same low-pass filtering as the measurement paths).
    let reference_chain = CyclicFrequencyShifter::new(
        shifter.config.clone(),
        crate::envelope::EnvelopeDetector::ideal(),
    );
    let reference = reference_chain.process_without_shifting(input);
    let with = envelope_snr_db(&shifter.process(input), &reference);
    let without = envelope_snr_db(&shifter.process_without_shifting(input), &reference);
    with - without
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::DetectorNoise;
    use crate::saw::SawFilter;
    use lora_phy::chirp::ChirpGenerator;
    use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
    use rfsim::channel::dbm_to_buffer_power;
    use rfsim::units::{Dbm, Hertz};

    fn params() -> LoraParams {
        LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(2).unwrap(),
        )
        .with_oversampling(8)
    }

    /// A SAW-transformed chirp scaled to a given receive power.
    fn saw_chirp(power_dbm: f64) -> SampleBuffer {
        let p = params();
        let gen = ChirpGenerator::new(p);
        let chirp = gen.base_upchirp();
        let saw = SawFilter::paper_b3790();
        let out = saw.apply(&chirp, Hertz(p.carrier_hz));
        let current = out.mean_power();
        let target = dbm_to_buffer_power(Dbm(power_dbm));
        out.scaled((target / current).sqrt())
    }

    #[test]
    fn streaming_shifter_reproduces_batch_and_is_chunk_invariant() {
        let input = saw_chirp(-45.0);
        let fs = input.sample_rate;
        for use_shifting in [true, false] {
            let shifter = CyclicFrequencyShifter::new(
                ShiftingConfig::for_bandwidth(500_000.0),
                EnvelopeDetector::default(),
            );
            let batch = if use_shifting {
                shifter.process(&input)
            } else {
                shifter.process_without_shifting(&input)
            };
            for chunk_size in [1usize, 13, 512, input.len()] {
                let mut state = shifter.streaming(fs, use_shifting);
                let mut out = Vec::new();
                for chunk in input.samples.chunks(chunk_size) {
                    out.extend(state.process_chunk(chunk));
                }
                assert_eq!(
                    out, batch.samples,
                    "shifting={use_shifting} chunk size {chunk_size}"
                );
            }
        }
    }

    #[test]
    fn chain_recovers_envelope_shape() {
        // With a strong input and a noiseless detector the shifted chain's
        // output should still peak near the end of the up-chirp symbol.
        let input = saw_chirp(-40.0);
        let shifter = CyclicFrequencyShifter::new(
            ShiftingConfig::for_bandwidth(500_000.0),
            EnvelopeDetector::ideal(),
        );
        let out = shifter.process(&input);
        let n = out.len();
        let peak = out.argmax();
        assert!(peak > n / 2, "peak at {peak}/{n}");
    }

    #[test]
    fn shifting_improves_snr_for_weak_signals() {
        // For a weak input the detector's DC/flicker noise dominates; the
        // shifting chain should recover several dB (the paper measures ~11 dB).
        let input = saw_chirp(-60.0);
        let shifter = CyclicFrequencyShifter::new(
            ShiftingConfig::for_bandwidth(500_000.0),
            EnvelopeDetector::default(),
        );
        let gain = snr_gain_db(&shifter, &input);
        assert!(
            gain > 5.0 && gain < 25.0,
            "SNR gain {gain:.1} dB outside the expected window"
        );
    }

    #[test]
    fn strong_signals_still_peak_in_the_right_place_after_shifting() {
        // What matters for demodulation is the position of the amplitude peak,
        // not waveform fidelity: for a strong input the shifted chain's output
        // must still peak near the end of the base up-chirp.
        let input = saw_chirp(-25.0);
        let shifter = CyclicFrequencyShifter::new(
            ShiftingConfig::for_bandwidth(500_000.0),
            EnvelopeDetector::default(),
        );
        let out = shifter.process(&input);
        let n = out.len();
        let peak = out.argmax();
        assert!(peak > n / 2, "peak at {peak}/{n}");
    }

    #[test]
    #[should_panic]
    fn if_above_nyquist_is_rejected() {
        let p = params();
        let gen = ChirpGenerator::new(p);
        let chirp = gen.base_upchirp();
        let mut config = ShiftingConfig::for_bandwidth(500_000.0);
        config.intermediate_frequency = p.sample_rate(); // far above Nyquist
        let shifter = CyclicFrequencyShifter::new(config, EnvelopeDetector::ideal());
        let _ = shifter.process(&chirp);
    }

    #[test]
    fn noiseless_detector_recovers_reference_shape() {
        // Without detector noise the shifted path's output must correlate
        // strongly with the clean reference envelope (SNR well above 10 dB).
        let input = saw_chirp(-50.0);
        let noiseless = EnvelopeDetector::new(1.0, DetectorNoise::none());
        let shifter = CyclicFrequencyShifter::new(
            ShiftingConfig::for_bandwidth(500_000.0),
            noiseless.clone(),
        );
        let reference = CyclicFrequencyShifter::new(
            ShiftingConfig::for_bandwidth(500_000.0),
            EnvelopeDetector::ideal(),
        )
        .process_without_shifting(&input);
        let snr = envelope_snr_db(&shifter.process(&input), &reference);
        assert!(snr > 10.0, "shifted-path reconstruction SNR {snr:.1} dB");
    }
}
