//! Voltage comparators.
//!
//! Saiyan replaces the power-hungry ADC with a comparator that quantises the
//! envelope into a binary voltage stream. A single-threshold comparator
//! chatters when the envelope wobbles around the threshold, so the paper uses
//! a double-threshold (hysteresis) comparator (Eq. 3): the output only goes
//! high once the input exceeds `U_H`, and only returns low once it falls below
//! `U_L` (with `U_L < U_H`).

use crate::signal::RealBuffer;

/// A binary voltage stream produced by a comparator, with its sample rate.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryStream {
    /// The binary samples (true = high).
    pub bits: Vec<bool>,
    /// Sample rate in Hz.
    pub sample_rate: f64,
}

impl BinaryStream {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of low→high and high→low transitions (a chattering metric).
    pub fn transitions(&self) -> usize {
        self.bits.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Index of the last sample of the final high run, if any — the "tail of
    /// the high voltage samples" the decoder uses as the peak position.
    pub fn last_high_tail(&self) -> Option<usize> {
        self.bits.iter().rposition(|&b| b)
    }

    /// Runs of consecutive high samples as (start_index, length).
    pub fn high_runs(&self) -> Vec<(usize, usize)> {
        let mut runs = Vec::new();
        let mut start = None;
        for (i, &b) in self.bits.iter().enumerate() {
            match (b, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    runs.push((s, i - s));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            runs.push((s, self.bits.len() - s));
        }
        runs
    }
}

/// A single-threshold comparator (used for the Fig. 7 comparison).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleThresholdComparator {
    /// The decision threshold (volts).
    pub threshold: f64,
}

impl SingleThresholdComparator {
    /// Creates a comparator with the given threshold.
    pub fn new(threshold: f64) -> Self {
        SingleThresholdComparator { threshold }
    }

    /// Quantises the input.
    pub fn compare(&self, input: &RealBuffer) -> BinaryStream {
        BinaryStream {
            bits: input.samples.iter().map(|&v| v >= self.threshold).collect(),
            sample_rate: input.sample_rate,
        }
    }
}

/// The double-threshold (hysteresis) comparator of paper Eq. 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoubleThresholdComparator {
    /// High threshold `U_H`: the output goes high only when the input reaches it.
    pub high_threshold: f64,
    /// Low threshold `U_L`: the output returns low only when the input falls below it.
    pub low_threshold: f64,
}

impl DoubleThresholdComparator {
    /// Creates a comparator; `low_threshold` must not exceed `high_threshold`.
    pub fn new(high_threshold: f64, low_threshold: f64) -> Self {
        assert!(
            low_threshold <= high_threshold,
            "U_L ({low_threshold}) must not exceed U_H ({high_threshold})"
        );
        DoubleThresholdComparator {
            high_threshold,
            low_threshold,
        }
    }

    /// Quantises the input with hysteresis, starting from a low output.
    /// Delegates to the streaming state run over the whole buffer at once.
    pub fn compare(&self, input: &RealBuffer) -> BinaryStream {
        let mut bits = Vec::new();
        self.streaming()
            .compare_chunk_into(&input.samples, &mut bits);
        BinaryStream {
            bits,
            sample_rate: input.sample_rate,
        }
    }

    /// Creates the carried streaming state (output initially low). Chunked
    /// comparison of a stream equals [`Self::compare`] on the concatenated
    /// buffer exactly, wherever the chunk boundaries fall.
    pub fn streaming(&self) -> ComparatorState {
        ComparatorState {
            high_threshold: self.high_threshold,
            low_threshold: self.low_threshold,
            state: false,
        }
    }
}

/// Carried state of a streaming [`DoubleThresholdComparator`]: the current
/// output level survives across chunk boundaries, so the hysteresis decision
/// at a chunk's first sample sees the previous chunk's last state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparatorState {
    high_threshold: f64,
    low_threshold: f64,
    state: bool,
}

impl ComparatorState {
    /// Quantises one chunk into `out` (cleared first), advancing the carried
    /// output level.
    pub fn compare_chunk_into(&mut self, chunk: &[f64], out: &mut Vec<bool>) {
        out.clear();
        match crate::simd::active_backend() {
            crate::simd::Backend::Scalar => {
                out.reserve(chunk.len());
                for &v in chunk {
                    self.state = if self.state {
                        v >= self.low_threshold
                    } else {
                        v >= self.high_threshold
                    };
                    out.push(self.state);
                }
            }
            // The constructor guarantees U_L <= U_H, the regime where the
            // branch-free mask identity holds.
            wide => {
                self.state = crate::simd::hysteresis_scan(
                    wide,
                    chunk,
                    self.high_threshold,
                    self.low_threshold,
                    self.state,
                    out,
                );
            }
        }
    }
}

impl crate::stage::BlockStage for ComparatorState {
    type In = f64;
    type Out = bool;
    fn process_into(&mut self, input: &[f64], out: &mut Vec<bool>) {
        self.compare_chunk_into(input, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer(vals: &[f64]) -> RealBuffer {
        RealBuffer::new(vals.to_vec(), 1000.0)
    }

    #[test]
    fn single_threshold_chatters_on_noise() {
        // A value oscillating around the threshold flips the single-threshold
        // output every sample but not the hysteresis output.
        let vals: Vec<f64> = (0..100)
            .map(|i| 0.5 + 0.01 * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let input = buffer(&vals);
        let single = SingleThresholdComparator::new(0.5).compare(&input);
        let double = DoubleThresholdComparator::new(0.52, 0.45).compare(&input);
        assert!(single.transitions() > 50);
        assert_eq!(double.transitions(), 0);
    }

    #[test]
    fn hysteresis_follows_eq3() {
        let cmp = DoubleThresholdComparator::new(0.8, 0.3);
        // Rise above U_H, dip to between U_L and U_H (stays high), fall below
        // U_L (goes low), rise to between thresholds (stays low).
        let input = buffer(&[0.1, 0.9, 0.5, 0.4, 0.2, 0.5, 0.7, 0.85, 0.35, 0.1]);
        let out = cmp.compare(&input);
        assert_eq!(
            out.bits,
            vec![false, true, true, true, false, false, false, true, true, false]
        );
    }

    #[test]
    fn last_high_tail_marks_peak_position() {
        let cmp = DoubleThresholdComparator::new(0.8, 0.3);
        let input = buffer(&[0.0, 0.9, 0.9, 0.5, 0.1, 0.0, 0.0]);
        let out = cmp.compare(&input);
        assert_eq!(out.last_high_tail(), Some(3));
    }

    #[test]
    fn high_runs_are_reported() {
        let s = BinaryStream {
            bits: vec![false, true, true, false, true, false, true, true, true],
            sample_rate: 1.0,
        };
        assert_eq!(s.high_runs(), vec![(1, 2), (4, 1), (6, 3)]);
        assert_eq!(s.transitions(), 5);
    }

    #[test]
    #[should_panic]
    fn inverted_thresholds_are_rejected() {
        DoubleThresholdComparator::new(0.2, 0.5);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let cmp = DoubleThresholdComparator::new(0.8, 0.3);
        let out = cmp.compare(&buffer(&[]));
        assert!(out.is_empty());
        assert_eq!(out.last_high_tail(), None);
        assert!(out.high_runs().is_empty());
    }
}
