//! Square-law envelope detector.
//!
//! The envelope detector down-converts the (SAW-transformed, LNA-amplified)
//! signal to baseband by squaring it (paper Eq. 4): `S_out = k (S_t + S_n)^2 =
//! k S_t^2 + 2 k S_t S_n + k S_n^2`. The cross term and the noise-squared term
//! land on top of the wanted baseband envelope, and the detector additionally
//! contributes its own low-frequency noise (DC offset and flicker), which is
//! exactly the SNR loss the cyclic-frequency-shifting circuit of §3.1 works
//! around.

use lora_phy::iq::{Iq, SampleBuffer};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::signal::RealBuffer;

/// Noise the detector itself injects into its baseband output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorNoise {
    /// Static DC offset at the output (volts).
    pub dc_offset: f64,
    /// Standard deviation of the white output noise (volts per sample).
    pub white_sigma: f64,
    /// Standard deviation of the flicker (low-frequency) noise component (volts).
    pub flicker_sigma: f64,
    /// Corner frequency of the flicker noise (Hz); below this the flicker
    /// component dominates the white component.
    pub flicker_corner_hz: f64,
}

impl DetectorNoise {
    /// Noise model calibrated so that (a) the vanilla chain's sensitivity is
    /// limited by detector noise, as the paper reports for envelope-detector
    /// receivers, and (b) moving the envelope to an intermediate frequency
    /// (cyclic-frequency shifting) recovers roughly 11 dB of SNR, dominated by
    /// escaping the flicker/DC noise.
    pub fn paper_default() -> Self {
        DetectorNoise {
            dc_offset: 2.0e-6,
            white_sigma: 1.2e-7,
            flicker_sigma: 1.0e-6,
            flicker_corner_hz: 60_000.0,
        }
    }

    /// A noiseless detector (useful for unit tests of downstream blocks).
    pub fn none() -> Self {
        DetectorNoise {
            dc_offset: 0.0,
            white_sigma: 0.0,
            flicker_sigma: 0.0,
            flicker_corner_hz: 1.0,
        }
    }
}

/// Square-law envelope detector.
#[derive(Debug, Clone)]
pub struct EnvelopeDetector {
    /// Detector conversion gain `k` (output volts per input watt-equivalent).
    pub conversion_gain: f64,
    /// The detector's own output noise.
    pub noise: DetectorNoise,
    /// Seed for the noise generator.
    pub seed: u64,
}

impl Default for EnvelopeDetector {
    fn default() -> Self {
        EnvelopeDetector {
            conversion_gain: 1.0,
            noise: DetectorNoise::paper_default(),
            seed: 0xE7E0,
        }
    }
}

impl EnvelopeDetector {
    /// Creates a detector with the given conversion gain and noise model.
    pub fn new(conversion_gain: f64, noise: DetectorNoise) -> Self {
        EnvelopeDetector {
            conversion_gain,
            noise,
            seed: 0xE7E0,
        }
    }

    /// Creates an ideal (noise-free) detector.
    pub fn ideal() -> Self {
        EnvelopeDetector::new(1.0, DetectorNoise::none())
    }

    /// Sets the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Detects the envelope: output voltage is `k |x|^2` plus detector noise.
    ///
    /// Squaring the *complete* input (signal + channel noise) reproduces the
    /// self-mixing products of Eq. 4 without any special casing.
    pub fn detect(&self, input: &SampleBuffer) -> RealBuffer {
        let mut state = self.streaming(input.sample_rate);
        let out = state.detect_chunk(&input.samples);
        RealBuffer::new(out, input.sample_rate)
    }

    /// Creates a streaming detector state at the given sample rate. The RNG
    /// and the flicker integrator are seeded once and then carried across
    /// chunks, so chunked detection of a stream equals [`Self::detect`] on the
    /// concatenated buffer bit-exactly, wherever the chunk boundaries fall.
    pub fn streaming(&self, sample_rate: f64) -> EnvelopeDetectorState {
        // First-order low-pass of white noise whose cut-off is the flicker
        // corner; rescaled to the requested flicker standard deviation.
        let alpha = (self.noise.flicker_corner_hz / sample_rate).clamp(1e-6, 1.0);
        // Stationary std of the AR(1) process x[n] = (1-a)x[n-1] + sqrt(a)w[n]
        // with unit-variance drive: Var = a / (1 - (1-a)^2) = 1 / (2 - a).
        let ar_std = (1.0 / (2.0 - alpha)).sqrt().max(1e-12);
        EnvelopeDetectorState {
            conversion_gain: self.conversion_gain,
            noise: self.noise,
            rng: ChaCha8Rng::seed_from_u64(self.seed),
            flicker_state: 0.0,
            alpha,
            sqrt_alpha: alpha.sqrt(),
            ar_std,
        }
    }
}

/// Carried state of a streaming [`EnvelopeDetector`]: the noise RNG and the
/// flicker (AR(1)) integrator survive across chunk boundaries.
#[derive(Debug, Clone)]
pub struct EnvelopeDetectorState {
    conversion_gain: f64,
    noise: DetectorNoise,
    rng: ChaCha8Rng,
    flicker_state: f64,
    alpha: f64,
    /// `alpha.sqrt()`, hoisted out of the per-sample AR(1) update.
    sqrt_alpha: f64,
    ar_std: f64,
}

impl EnvelopeDetectorState {
    /// Detects the envelope of one chunk, allocating a fresh output buffer.
    /// Steady-state callers should prefer [`Self::detect_chunk_into`].
    pub fn detect_chunk(&mut self, chunk: &[Iq]) -> Vec<f64> {
        let mut out = Vec::new();
        self.detect_chunk_into(chunk, &mut out);
        out
    }

    /// Detects the envelope of one chunk into a caller-provided buffer
    /// (cleared first), advancing the carried noise state.
    pub fn detect_chunk_into(&mut self, chunk: &[Iq], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(chunk.len());
        // A noiseless detector (both sigmas zero) skips the per-sample
        // Gaussian draws entirely: they would be multiplied by zero anyway,
        // and they dominate the cost of a quiet chain.
        let noiseless = self.noise.white_sigma == 0.0 && self.noise.flicker_sigma == 0.0;
        if noiseless {
            match crate::simd::active_backend() {
                crate::simd::Backend::Scalar => {
                    for s in chunk {
                        out.push(self.conversion_gain * s.norm_sqr() + self.noise.dc_offset);
                    }
                }
                wide => crate::simd::envelope_noiseless_into(
                    wide,
                    chunk,
                    self.conversion_gain,
                    self.noise.dc_offset,
                    out,
                ),
            }
            return;
        }
        for s in chunk {
            let envelope = self.conversion_gain * s.norm_sqr();
            let white = self.noise.white_sigma * gaussian(&mut self.rng);
            self.flicker_state =
                (1.0 - self.alpha) * self.flicker_state + self.sqrt_alpha * gaussian(&mut self.rng);
            let flicker = self.noise.flicker_sigma * self.flicker_state / self.ar_std;
            out.push(envelope + self.noise.dc_offset + white + flicker);
        }
    }
}

impl crate::stage::BlockStage for EnvelopeDetectorState {
    type In = Iq;
    type Out = f64;
    fn process_into(&mut self, input: &[Iq], out: &mut Vec<f64>) {
        self.detect_chunk_into(input, out);
    }
}

#[inline]
fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_detector_is_chunk_invariant() {
        let det = EnvelopeDetector::default().with_seed(0x51AE);
        let fs = 2e6;
        let input = SampleBuffer::new(
            (0..5_003)
                .map(|i| Iq::from_polar(1e-4 * (1.0 + (i % 97) as f64 / 97.0), 0.01 * i as f64))
                .collect(),
            fs,
        );
        let batch = det.detect(&input);
        for chunk_size in [1usize, 7, 64, 4_096, 5_003] {
            let mut state = det.streaming(fs);
            let mut out = Vec::new();
            for chunk in input.samples.chunks(chunk_size) {
                out.extend(state.detect_chunk(chunk));
            }
            assert_eq!(out, batch.samples, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn ideal_detector_squares_amplitude() {
        let det = EnvelopeDetector::ideal();
        let input = SampleBuffer::new(vec![Iq::new(0.5, 0.0); 100], 1e6);
        let out = det.detect(&input);
        for v in &out.samples {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn output_follows_am_envelope() {
        // An amplitude-modulated input should produce a proportional envelope.
        let det = EnvelopeDetector::ideal();
        let n = 1000;
        let samples: Vec<Iq> = (0..n)
            .map(|i| {
                let a = 0.1 + 0.9 * i as f64 / n as f64;
                Iq::from_polar(a, 0.3 * i as f64)
            })
            .collect();
        let out = det.detect(&SampleBuffer::new(samples, 1e6));
        // Envelope must be monotonically increasing (squared ramp).
        for w in out.samples.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!((out.samples[n - 1] - 1.0 * 1.0).abs() < 2.5e-3);
    }

    #[test]
    fn detector_noise_sets_a_floor() {
        let det = EnvelopeDetector::default();
        let silent = SampleBuffer::zeros(50_000, 2e6);
        let out = det.detect(&silent);
        // With no input the output is DC offset + noise; its variance must be
        // non-zero and its mean close to the DC offset.
        let mean = out.mean();
        assert!((mean - det.noise.dc_offset).abs() < det.noise.dc_offset * 0.5 + 1e-7);
        let var = out.samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / out.len() as f64;
        assert!(var > 0.0);
    }

    #[test]
    fn flicker_noise_is_concentrated_at_low_frequency() {
        let det = EnvelopeDetector::default().with_seed(99);
        let silent = SampleBuffer::zeros(60_000, 2e6);
        let out = det.detect(&silent).dc_removed();
        let low = out.band_power(1_000.0, 40_000.0);
        let high = out.band_power(400_000.0, 439_000.0);
        assert!(
            low > 3.0 * high,
            "flicker should dominate at low frequency: low {low:.3e} high {high:.3e}"
        );
    }

    #[test]
    fn self_mixing_degrades_weak_signals_more() {
        // Square-law detection: output SNR falls roughly with the square of
        // input SNR for weak inputs. Check that halving the input amplitude
        // reduces the output signal term by 6 dB (quarter power).
        let det = EnvelopeDetector::ideal();
        let strong = det.detect(&SampleBuffer::new(vec![Iq::new(1e-3, 0.0); 10], 1e6));
        let weak = det.detect(&SampleBuffer::new(vec![Iq::new(5e-4, 0.0); 10], 1e6));
        let ratio = strong.samples[0] / weak.samples[0];
        assert!((ratio - 4.0).abs() < 1e-9);
    }
}
