//! Shared experiment runner: sweep grid × trials → aligned table + JSON +
//! optional CI floor gate.
//!
//! Every `exp_*` binary does the same dance: iterate a sweep grid, measure
//! each point (possibly averaging seeded trials), print an aligned
//! [`Table`], dump the rows as JSON under `results/`, print footer notes,
//! and optionally enforce a `--check-floor` gate on one headline metric.
//! [`Runner`] owns that dance so the binaries only contain their physics:
//!
//! ```no_run
//! use saiyan_bench::runner::Runner;
//!
//! let mut runner = Runner::new("my_experiment", "My sweep", &["x", "y"]);
//! for x in [1.0, 2.0, 4.0] {
//!     let y = x * x;
//!     runner.row(
//!         vec![format!("{x}"), format!("{y:.1}")],
//!         serde_json::json!({ "x": x, "y": y }),
//!     );
//! }
//! runner.footer("paper: y grows quadratically");
//! runner.gate("min y", 1.0);
//! runner.finish();
//! ```

use crate::{check_floor_arg, enforce_floor, write_json, write_json_at, Table};

/// Deterministic per-trial seeds for Monte-Carlo sweeps: `trials` seeds
/// derived from one base seed by a splitmix-style mix, so adding a trial
/// never reshuffles the previous ones.
pub fn trial_seeds(base_seed: u64, trials: usize) -> Vec<u64> {
    (0..trials as u64)
        .map(|i| {
            let mut z = base_seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

/// The shared sweep → table → JSON → floor-gate harness. See the
/// [module docs](self).
pub struct Runner {
    name: &'static str,
    table: Table,
    json_rows: Vec<serde_json::Value>,
    footers: Vec<String>,
    gate: Option<(String, f64)>,
    annotations: Vec<(String, serde_json::Value)>,
    snapshot_path: Option<String>,
}

impl Runner {
    /// Creates a runner: `name` is the `results/<name>.json` stem, `title`
    /// and `columns` shape the printed table.
    pub fn new(name: &'static str, title: impl Into<String>, columns: &[&str]) -> Self {
        Runner {
            name,
            table: Table::new(title, columns),
            json_rows: Vec::new(),
            footers: Vec::new(),
            gate: None,
            annotations: Vec::new(),
            snapshot_path: None,
        }
    }

    /// Records one sweep point: a formatted table row plus its JSON record.
    pub fn row(&mut self, cells: Vec<String>, json: serde_json::Value) {
        self.table.add_row(cells);
        self.json_rows.push(json);
    }

    /// Adds a footer line printed after the table (paper reference numbers,
    /// commentary).
    pub fn footer(&mut self, line: impl Into<String>) {
        self.footers.push(line.into());
    }

    /// Declares the headline metric checked against `--check-floor` at
    /// [`Runner::finish`]. The last call wins.
    pub fn gate(&mut self, metric: impl Into<String>, value: f64) {
        self.gate = Some((metric.into(), value));
    }

    /// Attaches an extra top-level field to the snapshot file — secondary
    /// headline metrics beyond the single floor-gated one (e.g. a realtime
    /// factor next to a PRR gate). Keys repeat last-wins.
    pub fn annotate(&mut self, key: impl Into<String>, value: serde_json::Value) {
        self.annotations.push((key.into(), value));
    }

    /// Additionally writes the JSON rows to a top-level snapshot file
    /// (e.g. `BENCH_network.json`) that CI archives across commits.
    pub fn snapshot(&mut self, path: impl Into<String>) {
        self.snapshot_path = Some(path.into());
    }

    /// Number of rows recorded so far.
    pub fn rows(&self) -> usize {
        self.json_rows.len()
    }

    /// Prints the table and footers, writes the JSON artifacts, and
    /// enforces the floor gate if `--check-floor` was passed (exits
    /// non-zero on a violation). Snapshot files record the SIMD backend the
    /// rows were measured on, and the floor gate checks the same headline
    /// value the snapshot carries.
    pub fn finish(self) {
        self.table.print();
        for line in &self.footers {
            println!("{line}");
        }
        crate::print_simd_report();
        let rows = serde_json::json!(self.json_rows.clone());
        write_json(self.name, &rows);
        if let Some(path) = &self.snapshot_path {
            let mut snapshot = serde_json::json!({
                "bench": self.name,
                "simd": crate::simd_metadata(),
                "headline": self.gate.as_ref().map(|(m, v)| {
                    serde_json::json!({ "metric": m.as_str(), "value": *v })
                }),
                "rows": rows,
            });
            if let serde_json::Value::Object(map) = &mut snapshot {
                for (key, value) in &self.annotations {
                    if let Some(slot) = map.iter_mut().find(|(k, _)| k == key) {
                        slot.1 = value.clone();
                    } else {
                        map.push((key.clone(), value.clone()));
                    }
                }
            }
            write_json_at(path.clone(), &snapshot);
        }
        if let Some((metric, value)) = self.gate {
            enforce_floor(&metric, value, check_floor_arg());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_stable_prefixes() {
        let four = trial_seeds(42, 4);
        let six = trial_seeds(42, 6);
        assert_eq!(&six[..4], &four[..]);
        assert_eq!(four.len(), 4);
        // All distinct, and a different base gives different seeds.
        let mut sorted = four.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert_ne!(trial_seeds(43, 4), four);
    }

    #[test]
    fn runner_accumulates_rows() {
        let mut runner = Runner::new("test_runner", "Demo", &["a"]);
        runner.row(vec!["1".into()], serde_json::json!({"a": 1}));
        runner.row(vec!["2".into()], serde_json::json!({"a": 2}));
        runner.footer("note");
        runner.gate("a", 2.0);
        assert_eq!(runner.rows(), 2);
        // finish() writes under results/ — exercised by the exp smoke runs.
    }
}
