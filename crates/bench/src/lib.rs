//! # saiyan-bench — experiment harness shared code
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index). They all print an aligned text
//! table to stdout — the same rows/series the paper plots — and optionally
//! dump the data as JSON under `results/` for plotting. The sweep → table →
//! JSON → floor-gate loop they share lives in [`runner::Runner`].

#![warn(missing_docs)]

pub mod runner;

use std::fs;
use std::path::PathBuf;

pub use runner::{trial_seeds, Runner};

/// A simple aligned text table used by every experiment binary.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed as a header).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row of already formatted cells.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table as an aligned string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// The SIMD dispatch report as JSON metadata for `BENCH_*.json` snapshots,
/// so every archived measurement records the ISA it ran on.
pub fn simd_metadata() -> serde_json::Value {
    let r = analog::simd::simd_report();
    serde_json::json!({
        "backend": r.backend,
        "f64_lanes": r.f64_lanes,
        "forced": r.forced,
    })
}

/// Prints the selected SIMD backend (one line, shared by the `exp_*` bins).
pub fn print_simd_report() {
    println!("simd: {}", analog::simd::simd_report());
}

/// Formats a BER in the paper's per-mille / percent style.
pub fn fmt_ber(ber: f64) -> String {
    if ber >= 0.01 {
        format!("{:.1}%", ber * 100.0)
    } else {
        format!("{:.2}‰", ber * 1000.0)
    }
}

/// Writes a JSON value to `results/<name>.json` (best effort; failures are
/// reported but not fatal so experiments work in read-only checkouts).
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from("results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("note: could not create results/: {e}");
        return;
    }
    write_json_at(dir.join(format!("{name}.json")), value);
}

/// Writes a JSON value to an explicit path (best effort, like
/// [`write_json`]) — used for the top-level `BENCH_*.json` perf snapshots CI
/// archives and compares across commits.
pub fn write_json_at(path: impl Into<PathBuf>, value: &serde_json::Value) {
    let path = path.into();
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if let Err(e) = fs::write(&path, body) {
                eprintln!("note: could not write {}: {e}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("note: could not serialise results: {e}"),
    }
}

/// Parses a `--check-floor <x>` argument from the process command line, if
/// present. Experiments use it as a CI regression gate on their headline
/// throughput metric.
pub fn check_floor_arg() -> Option<f64> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--check-floor" {
            let v = args
                .next()
                .unwrap_or_else(|| panic!("--check-floor needs a value"));
            return Some(
                v.parse()
                    .unwrap_or_else(|e| panic!("--check-floor value {v:?} is not a number: {e}")),
            );
        }
    }
    None
}

/// Enforces a `--check-floor` gate: if `floor` is set and `value` falls
/// below it, prints a FAIL line and exits with status 1; otherwise prints
/// the verdict and returns.
pub fn enforce_floor(metric: &str, value: f64, floor: Option<f64>) {
    let Some(floor) = floor else { return };
    if value < floor {
        eprintln!("check-floor FAIL: {metric} = {value:.2} < floor {floor:.2}");
        std::process::exit(1);
    }
    println!("check-floor PASS: {metric} = {value:.2} >= floor {floor:.2}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["a", "long-column", "c"]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        t.add_row(vec!["10".into(), "2000".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-column"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_ber(0.0004), "0.40‰");
        assert_eq!(fmt_ber(0.25), "25.0%");
    }
}
