//! Fig. 24 — demodulation range over a day as the ambient temperature swings
//! from −8.6 °C to +1.6 °C (the SAW filter's response drifts with temperature).

use netsim::{paper_demodulation_range, Scenario};
use rfsim::temperature::TemperatureSchedule;
use rfsim::units::Meters;
use saiyan_bench::{fmt, Table};

fn main() {
    let schedule = TemperatureSchedule::paper_fig24();
    let mut table = Table::new(
        "Fig. 24: demodulation range vs time of day / temperature",
        &["hour", "temperature (C)", "range (m)"],
    );
    let mut json_rows = Vec::new();
    let mut min_range = f64::INFINITY;
    let mut max_range = 0.0_f64;
    for (hour, temp) in schedule.sample(13) {
        let template = Scenario::outdoor_default(Meters(1.0)).with_temperature(temp);
        let range = paper_demodulation_range(&template).value();
        min_range = min_range.min(range);
        max_range = max_range.max(range);
        table.add_row(vec![fmt(hour, 0), fmt(temp.value(), 1), fmt(range, 1)]);
        json_rows.push(serde_json::json!({
            "hour": hour,
            "temperature_c": temp.value(),
            "range_m": range,
        }));
    }
    table.print();
    println!(
        "Range varies between {:.1} m and {:.1} m over the day ({:.1}% swing).",
        min_range,
        max_range,
        100.0 * (max_range - min_range) / max_range
    );
    println!("Paper: the range is largely insensitive to temperature, moving only from");
    println!("126.4 m to 118.6 m (≈6%) as the temperature rises from -8.6 C to 1.6 C.");
    saiyan_bench::write_json("fig24_temperature", &serde_json::json!(json_rows));
}
