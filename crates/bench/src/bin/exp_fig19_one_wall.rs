//! Fig. 19 — throughput and demodulation range behind one concrete wall.

use lora_phy::params::BitsPerChirp;
use netsim::{paper_demodulation_range, run_link_trials, Scenario, TrialConfig};
use rfsim::units::Meters;
use saiyan::metrics::throughput_bps;
use saiyan_bench::{fmt, Table};

fn main() {
    run_wall_study(1, "Fig. 19", 48.8, 26.2);
}

/// Shared implementation for the one-wall (Fig. 19) and two-wall (Fig. 20)
/// indoor studies.
pub fn run_wall_study(walls: u8, figure: &str, paper_range_cr1: f64, paper_range_cr5: f64) {
    let mut table = Table::new(
        format!("{figure}: indoor, {walls} concrete wall(s): throughput and range vs CR"),
        &["CR (K)", "range (m)", "throughput @20 m (kbps)"],
    );
    let mut json_rows = Vec::new();
    for k in 1..=5u8 {
        let template =
            Scenario::indoor(Meters(1.0), walls).with_bits_per_chirp(BitsPerChirp::new(k).unwrap());
        let range = paper_demodulation_range(&template).value();
        let at_20m = template.clone().with_distance(Meters(20.0));
        let counts = run_link_trials(
            &at_20m,
            &TrialConfig {
                packets: 500,
                payload_symbols: 32,
                seed: 0x1900 + k as u64 + walls as u64 * 100,
            },
        );
        let tput = throughput_bps(&at_20m.lora, counts.ser()) / 1000.0;
        table.add_row(vec![format!("{k}"), fmt(range, 1), fmt(tput, 2)]);
        json_rows.push(serde_json::json!({
            "walls": walls,
            "k": k,
            "range_m": range,
            "throughput_kbps_at_20m": tput,
        }));
    }
    table.print();
    println!(
        "Paper ({figure}): range declines from ~{paper_range_cr1} m at CR1 to ~{paper_range_cr5} m at CR5;"
    );
    println!("throughput still grows with CR as long as the link holds.");
    saiyan_bench::write_json(
        &format!(
            "{}_walls{walls}",
            figure.to_lowercase().replace([' ', '.'], "")
        ),
        &serde_json::json!(json_rows),
    );
}
