//! Serving-layer quickstart: run the gateway daemon over a synthetic
//! capture and write its outputs to `results/`.
//!
//! This is the smallest end-to-end demonstration of the serving stack: a
//! [`ServeDaemon`] over a pooled receiver executor ingests a few concurrent
//! byte streams (one of them deliberately misbehaving), and everything the
//! daemon produces lands on disk:
//!
//! * `results/serve_packets.bin` — decoded packets, length-prefixed binary.
//! * `results/serve_packets.jsonl` — the same packets, one JSON per line.
//! * `results/serve_telemetry.json` — the final telemetry snapshot.
//!
//! Flags: `--streams <n>` (default 3 — the last stream injects a
//! truncated-chunk fault), `--queue <frames>` (default 8),
//! `--policy block|drop-oldest` (default block).

use std::sync::Arc;

use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::longtrace::{generate_long_trace, random_payloads, LongTraceConfig, TracePacket};
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::{BoxedReceiver, PooledExecutor, StreamingDemodulator};
use saiyan_bench::{fmt, write_json_at, Table};
use saiyan_serve::{replay_with_fault, BackpressurePolicy, Fault, ServeConfig, ServeDaemon};

const PACKETS: usize = 4;
const PAYLOAD_SYMBOLS: usize = 16;
const CHUNK_SAMPLES: usize = 4096;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let n_streams: usize = arg_value("--streams")
        .map(|v| v.parse().expect("--streams takes an integer"))
        .unwrap_or(3)
        .max(1);
    let queue_depth: usize = arg_value("--queue")
        .map(|v| v.parse().expect("--queue takes an integer"))
        .unwrap_or(8);
    let policy = match arg_value("--policy").as_deref() {
        None | Some("block") => BackpressurePolicy::Block,
        Some("drop-oldest") => BackpressurePolicy::DropOldest,
        Some(other) => panic!("--policy must be block or drop-oldest, got {other:?}"),
    };

    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).expect("valid"),
    );
    let payloads = random_payloads(PACKETS, PAYLOAD_SYMBOLS, lora.bits_per_chirp, 0xDA_E404);
    let trace_cfg = LongTraceConfig::new(lora).with_noise(-82.0);
    let packets: Vec<TracePacket> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| TracePacket::new(p.clone(), -50.0, if i == 0 { 4.0 } else { 16.0 }))
        .collect();
    let (trace, truth) = generate_long_trace(&trace_cfg, &packets);
    let bytes = saiyan_serve::samples_to_bytes(&trace.samples);
    let chunk_bytes = CHUNK_SAMPLES * saiyan_serve::wire::BYTES_PER_SAMPLE;

    let factory = {
        let cfg = SaiyanConfig::paper_default(lora, Variant::Vanilla).high_throughput();
        Arc::new(move || {
            Box::new(StreamingDemodulator::new(cfg.clone(), PAYLOAD_SYMBOLS)) as BoxedReceiver
        })
    };
    let executor = Arc::new(PooledExecutor::new(factory, n_streams));
    let daemon = ServeDaemon::new(
        executor as Arc<dyn saiyan::ReceiverExecutor>,
        ServeConfig::default()
            .with_queue_depth(queue_depth)
            .with_policy(policy),
    );

    // Replay the capture from every client concurrently; the last client
    // tears one of its frames to show the malformed-frame path.
    let mut table = Table::new(
        "Gateway daemon quickstart",
        &["stream", "fault", "packets", "malformed bytes", "lag (s)"],
    );
    let mut binary = Vec::new();
    let mut jsonl = String::new();
    let clients: Vec<_> = (0..n_streams)
        .map(|i| {
            let fault = if i == n_streams - 1 && n_streams > 1 {
                Fault::TruncateChunk {
                    index: 1,
                    drop_bytes: 5,
                }
            } else {
                Fault::None
            };
            (format!("client-{i}"), fault)
        })
        .collect();
    let reports: Vec<_> = std::thread::scope(|scope| {
        let daemon = &daemon;
        let bytes = &bytes;
        clients
            .iter()
            .map(|(name, fault)| {
                scope.spawn(move || {
                    (
                        fault.label(),
                        replay_with_fault(daemon, name, bytes, chunk_bytes, fault)
                            .expect("no disconnect faults here"),
                    )
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for (fault, report) in &reports {
        table.add_row(vec![
            report.name.clone(),
            (*fault).to_string(),
            format!("{}/{}", report.packets.len(), truth.len()),
            report.stats.malformed_bytes.to_string(),
            fmt(report.stats.lag_seconds, 2),
        ]);
        binary.extend_from_slice(&report.binary);
        jsonl.push_str(&report.jsonl);
    }
    let snapshot = daemon.shutdown();
    table.print();

    std::fs::create_dir_all("results").ok();
    if let Err(e) = std::fs::write("results/serve_packets.bin", &binary) {
        eprintln!("note: could not write packets.bin: {e}");
    } else {
        println!("[binary packets written to results/serve_packets.bin]");
    }
    if let Err(e) = std::fs::write("results/serve_packets.jsonl", &jsonl) {
        eprintln!("note: could not write packets.jsonl: {e}");
    } else {
        println!("[JSONL packets written to results/serve_packets.jsonl]");
    }
    write_json_at("results/serve_telemetry.json", &snapshot.to_json());
    println!(
        "served {} streams, {} packets, {} bytes out; {} samples sanitised, {} malformed bytes tolerated.",
        snapshot.streams_opened,
        snapshot.packets_total,
        snapshot.bytes_out_total,
        snapshot.sanitized_samples_total,
        snapshot.malformed_bytes_total,
    );
}
