//! Fig. 6 — SAW filter input/output for four different chirp symbols.
//!
//! Feeds the four K=2 downlink chirps through the SAW model and reports where
//! each symbol's output amplitude peaks; the paper's point is that different
//! symbols peak at clearly different times, which is what the peak-position
//! decoder exploits.

use analog::saw::SawFilter;
use lora_phy::chirp::ChirpGenerator;
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use rfsim::units::Hertz;
use saiyan_bench::{fmt, Table};

fn main() {
    let params = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(8);
    let gen = ChirpGenerator::new(params);
    let saw = SawFilter::paper_b3790();
    let t_sym_us = params.symbol_duration() * 1e6;

    let mut table = Table::new(
        "Fig. 6: SAW output peak position per symbol (SF7, 500 kHz, K=2)",
        &[
            "symbol",
            "expected peak (us)",
            "measured peak (us)",
            "amplitude gap (dB)",
        ],
    );
    let mut json_rows = Vec::new();
    for symbol in 0..4u32 {
        let chirp = gen.downlink_chirp(symbol).unwrap();
        let out = saw.apply(&chirp, Hertz(params.carrier_hz));
        let env = out.envelope();
        let n = env.len();
        let peak_idx = env
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let measured_us = peak_idx as f64 / params.sample_rate() * 1e6;
        let expected_us = gen.downlink_peak_time(symbol).unwrap() * 1e6;
        let early: f64 = env[..n / 8].iter().sum::<f64>() / (n / 8) as f64;
        let peak_amp = env[peak_idx];
        let gap_db = 20.0 * (peak_amp / early.max(1e-12)).log10();
        table.add_row(vec![
            format!("{symbol:02b}"),
            fmt(expected_us, 1),
            fmt(measured_us, 1),
            fmt(gap_db, 1),
        ]);
        json_rows.push(serde_json::json!({
            "symbol": symbol,
            "expected_peak_us": expected_us,
            "measured_peak_us": measured_us,
            "amplitude_gap_db": gap_db,
        }));
    }
    table.print();
    println!(
        "Symbol duration: {:.0} us. Paper: the output amplitude scales with",
        t_sym_us
    );
    println!("the input frequency and each symbol peaks at a distinct time.");
    saiyan_bench::write_json("fig06_saw_symbols", &serde_json::json!(json_rows));
}
