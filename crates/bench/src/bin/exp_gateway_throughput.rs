//! Multi-channel gateway throughput: four concurrent LoRa channels
//! channelized out of one wideband capture, demodulated by a worker pool and
//! merged into the MAC access point, with the aggregate realtime factor
//! (capture duration / wall time) as the headline number.
//!
//! The workload is the paper's 500 kHz channel grid carrying 250 kHz Saiyan
//! channels at 2x oversampling (500 ksps per channel, 3 Msps wideband at
//! decimation 6): four tags hop channels every round (orthogonal rotation)
//! and each sends one 32-symbol uplink MAC frame per round, so every round
//! has four packets in flight simultaneously on four distinct channels. The
//! gateway must decode *all* of them while sustaining ≥ 1x realtime
//! aggregate on a single core.

use std::time::Instant;

use lora_phy::downlink::bytes_to_symbols;
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::multichannel::{
    generate_multichannel_trace, hopping_traffic, HoppingTrafficConfig, MultiChannelConfig,
};
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::gateway::{Gateway, GatewayChannel, GatewayConfig};
use saiyan_bench::{check_floor_arg, enforce_floor, fmt, write_json_at, Table};
use saiyan_mac::{AccessPoint, ChannelTable, TagId, UplinkPacket};

const N_CHANNELS: usize = 4;
const DECIMATION: usize = 6;
const PACKETS_PER_TAG: usize = 5;
const FRAME_PAYLOAD_BYTES: usize = 3;
const FRAME_BYTES: usize = 5 + FRAME_PAYLOAD_BYTES;
const PAYLOAD_SYMBOLS: usize = FRAME_BYTES * 8 / 2; // K = 2
const CHUNK_SAMPLES: usize = 16_384;

fn main() {
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz250,
        BitsPerChirp::new(2).expect("valid"),
    )
    .with_oversampling(2);
    let k = lora.bits_per_chirp;
    let offsets = MultiChannelConfig::grid_offsets(N_CHANNELS);
    let trace_cfg = MultiChannelConfig::new(lora, DECIMATION, offsets.clone()).with_noise(-85.0);

    // Four tags, one 8-byte uplink MAC frame per round, hopping every round.
    let mut packets = hopping_traffic(&HoppingTrafficConfig {
        n_tags: N_CHANNELS,
        packets_per_tag: PACKETS_PER_TAG,
        n_channels: N_CHANNELS,
        payload_symbols: PAYLOAD_SYMBOLS,
        k,
        slot_symbols: PAYLOAD_SYMBOLS as f64 + 22.0,
        lead_in_symbols: 4.0,
        base_power_dbm: -43.0,
        power_spread_db: 1.5,
        max_cfo_hz: 500.0,
        seed: 0x006A_7E11,
    });
    let mut seq_per_tag = [0u8; N_CHANNELS];
    for p in &mut packets {
        let seq = seq_per_tag[p.tag as usize];
        seq_per_tag[p.tag as usize] += 1;
        let frame = UplinkPacket {
            source: TagId(p.tag),
            sequence: seq,
            is_ack: false,
            payload: vec![p.tag as u8, seq, 0xA5],
        };
        p.symbols = bytes_to_symbols(&frame.to_bytes(), k);
    }
    let (trace, truth) = generate_multichannel_trace(&trace_cfg, &packets);
    println!(
        "capture: {} tags x {} frames on {} channels, {} samples at {:.1} Msps wideband ({:.1} ms of air time)",
        N_CHANNELS,
        PACKETS_PER_TAG,
        N_CHANNELS,
        trace.len(),
        trace.sample_rate / 1e6,
        trace.duration() * 1e3,
    );

    // The gateway: one narrow-band vanilla pipeline per channel in the
    // production high-throughput profile — the analog-noise model off (the
    // capture already carries channel AWGN, and the per-sample noise draws
    // would dominate the CPU budget) plus the anchored-recurrence oscillator/
    // phasor fast path — with a 64-tap channelizer (47 kHz design bins at
    // 3 Msps, transitions well inside the 250 kHz guard bands).
    let channels: Vec<GatewayChannel> = offsets
        .iter()
        .enumerate()
        .map(|(i, &offset)| {
            GatewayChannel::new(
                i as u8,
                offset,
                SaiyanConfig::narrowband_streaming(lora, Variant::Vanilla).high_throughput(),
                PAYLOAD_SYMBOLS,
            )
        })
        .collect();
    // Size the worker pool to the hardware: on a single-core builder one
    // worker running all channels beats one thread per channel (no context
    // switching between starved workers), while multi-core machines still
    // get one channel pipeline per core.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(N_CHANNELS);
    let config = GatewayConfig::new(trace_cfg.wideband_rate(), channels)
        .with_channelizer_taps(64)
        .with_worker_threads(workers);

    let mut gateway = Gateway::new(config);
    let start = Instant::now();
    let mut decoded = Vec::new();
    for chunk in trace.samples.chunks(CHUNK_SAMPLES) {
        decoded.extend(gateway.push_chunk(chunk));
    }
    decoded.extend(gateway.finish());
    let wall = start.elapsed().as_secs_f64();

    // Feed the merged stream into the MAC access point.
    let mut ap = AccessPoint::new(ChannelTable::paper_433mhz(), 0, 2).expect("valid channel");
    let mut frames_ok = 0usize;
    for p in &decoded {
        let bytes = p.result.to_bytes(k, FRAME_BYTES);
        if ap
            .ingest_frame(p.channel, p.result.payload_start_time, &bytes)
            .is_ok()
        {
            frames_ok += 1;
        }
    }

    // Match decodes against ground truth per channel.
    let t_sym = lora.symbol_duration();
    let mut per_channel_ok = [0usize; N_CHANNELS];
    let mut per_channel_total = [0usize; N_CHANNELS];
    let mut symbol_errors = 0usize;
    for t in &truth {
        per_channel_total[t.channel] += 1;
        if let Some(p) = decoded.iter().find(|p| {
            p.channel as usize == t.channel
                && (p.result.payload_start_time - t.payload_start_time).abs() < t_sym
        }) {
            let errs = p
                .result
                .symbols
                .iter()
                .zip(&t.symbols)
                .filter(|(a, b)| a != b)
                .count();
            symbol_errors += errs;
            if errs == 0 {
                per_channel_ok[t.channel] += 1;
            }
        }
    }

    let realtime = trace.duration() / wall;
    let aggregate_msps = trace.len() as f64 / wall / 1e6;

    let mut table = Table::new(
        "Gateway: 4-channel concurrent demodulation (single wideband capture)",
        &["channel", "offset (kHz)", "decoded", "per-tag stats"],
    );
    for (i, &offset) in offsets.iter().enumerate() {
        let stats = ap
            .tag_stats(TagId(i as u16))
            .map(|s| format!("tag {i}: {} frames, {} lost", s.frames, s.losses_detected))
            .unwrap_or_else(|| "-".to_string());
        table.add_row(vec![
            i.to_string(),
            fmt(offset / 1e3, 0),
            format!("{}/{}", per_channel_ok[i], per_channel_total[i]),
            stats,
        ]);
    }
    table.print();

    let decoded_ok: usize = per_channel_ok.iter().sum();
    println!(
        "decoded {}/{} packets (0 symbol errors required: {} errors), {} MAC frames ingested",
        decoded_ok,
        truth.len(),
        symbol_errors,
        frames_ok
    );
    println!(
        "wall {:.3} s for a {:.3} s capture => aggregate {:.2}x realtime ({:.2} Msps wideband, {} channels x {:.0} ksps)",
        wall,
        trace.duration(),
        realtime,
        aggregate_msps,
        N_CHANNELS,
        lora.sample_rate() / 1e3,
    );
    let verdict_decode = decoded_ok == truth.len();
    let verdict_speed = realtime >= 1.0;
    println!(
        "acceptance: all-packets {} | >=1x realtime aggregate {}",
        if verdict_decode { "PASS" } else { "FAIL" },
        if verdict_speed { "PASS" } else { "FAIL" },
    );

    let summary = serde_json::json!({
            "channels": N_CHANNELS,
            "channel_bandwidth_hz": lora.bw.hz(),
            "channel_sample_rate": lora.sample_rate(),
            "wideband_sample_rate": trace.sample_rate,
            "packets": truth.len(),
            "decoded": decoded_ok,
            "symbol_errors": symbol_errors,
            "mac_frames_ingested": frames_ok,
            "capture_seconds": trace.duration(),
            "wall_seconds": wall,
            "realtime_factor_aggregate": realtime,
        "wideband_samples_per_sec": trace.len() as f64 / wall,
    });
    saiyan_bench::write_json("gateway_throughput", &summary);
    write_json_at("BENCH_gateway.json", &summary);
    enforce_floor("aggregate realtime factor", realtime, check_floor_arg());
}
