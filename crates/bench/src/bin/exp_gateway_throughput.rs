//! Multi-channel gateway throughput: four concurrent LoRa channels
//! channelized out of one wideband capture, demodulated by a worker pool and
//! merged into the MAC access point, with the aggregate realtime factor
//! (capture duration / wall time) as the headline number.
//!
//! The workload is the paper's 500 kHz channel grid carrying 250 kHz Saiyan
//! channels at 2x oversampling (500 ksps per channel, 3 Msps wideband at
//! decimation 6): four tags hop channels every round (orthogonal rotation)
//! and each sends one 32-symbol uplink MAC frame per round, so every round
//! has four packets in flight simultaneously on four distinct channels. The
//! gateway must decode *all* of them while sustaining ≥ 1x realtime
//! aggregate on a single core.
//!
//! Two profiles are measured, mirroring `exp_stream_throughput`:
//!
//! * **exact** — [`SaiyanConfig::narrowband_streaming`] as-is: the full
//!   analog-noise model, the exact per-sample oscillator, and the default
//!   64-tap channelizer. This is the configuration the golden-trace and
//!   gateway-equivalence suites pin bit-exactly.
//! * **production** — the same config under
//!   [`SaiyanConfig::high_throughput`] plus a 32-tap channelizer (94 kHz
//!   design bins at 3 Msps, transitions still inside the 250 kHz guard
//!   bands; decode is verified clean below, and halving the taps halves the
//!   dominant polyphase cost). This is the deployment profile, and the row
//!   the `--check-floor` gate reads.

use std::time::Instant;

use lora_phy::downlink::bytes_to_symbols;
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::multichannel::{
    generate_multichannel_trace, hopping_traffic, HoppingTrafficConfig, MultiChannelConfig,
};
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::gateway::{Gateway, GatewayChannel, GatewayConfig};
use saiyan_bench::{fmt, Runner};
use saiyan_mac::{AccessPoint, ChannelTable, TagId, UplinkPacket};

const N_CHANNELS: usize = 4;
const DECIMATION: usize = 6;
const PACKETS_PER_TAG: usize = 5;
const FRAME_PAYLOAD_BYTES: usize = 3;
const FRAME_BYTES: usize = 5 + FRAME_PAYLOAD_BYTES;
// K = 2
const PAYLOAD_SYMBOLS: usize = FRAME_BYTES * 8 / 2;
// 4096 wideband samples per push keeps each channel's working set (wideband
// chunk + per-phase planes + narrow-band scratch) inside L2; 16 K chunks
// measurably thrash it on the 1-core builder.
const CHUNK_SAMPLES: usize = 4_096;

fn main() {
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz250,
        BitsPerChirp::new(2).expect("valid"),
    )
    .with_oversampling(2);
    let k = lora.bits_per_chirp;
    let offsets = MultiChannelConfig::grid_offsets(N_CHANNELS);
    let trace_cfg = MultiChannelConfig::new(lora, DECIMATION, offsets.clone()).with_noise(-85.0);

    // Four tags, one 8-byte uplink MAC frame per round, hopping every round.
    let mut packets = hopping_traffic(&HoppingTrafficConfig {
        n_tags: N_CHANNELS,
        packets_per_tag: PACKETS_PER_TAG,
        n_channels: N_CHANNELS,
        payload_symbols: PAYLOAD_SYMBOLS,
        k,
        slot_symbols: PAYLOAD_SYMBOLS as f64 + 22.0,
        lead_in_symbols: 4.0,
        base_power_dbm: -43.0,
        power_spread_db: 1.5,
        max_cfo_hz: 500.0,
        seed: 0x006A_7E11,
    });
    let mut seq_per_tag = [0u8; N_CHANNELS];
    for p in &mut packets {
        let seq = seq_per_tag[p.tag as usize];
        seq_per_tag[p.tag as usize] += 1;
        let frame = UplinkPacket {
            source: TagId(p.tag),
            sequence: seq,
            is_ack: false,
            payload: vec![p.tag as u8, seq, 0xA5],
        };
        p.symbols = bytes_to_symbols(&frame.to_bytes(), k);
    }
    let (trace, truth) = generate_multichannel_trace(&trace_cfg, &packets);
    println!(
        "capture: {} tags x {} frames on {} channels, {} samples at {:.1} Msps wideband ({:.1} ms of air time)",
        N_CHANNELS,
        PACKETS_PER_TAG,
        N_CHANNELS,
        trace.len(),
        trace.sample_rate / 1e6,
        trace.duration() * 1e3,
    );

    // Size the worker pool to the hardware: on a single-core builder one
    // worker running all channels beats one thread per channel (no context
    // switching between starved workers), while multi-core machines still
    // get one channel pipeline per core.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(N_CHANNELS);

    let mut runner = Runner::new(
        "gateway_throughput",
        "Gateway: 4-channel concurrent demodulation (single wideband capture)",
        &[
            "profile",
            "decoded",
            "per-channel",
            "symbol errors",
            "MAC frames",
            "wall (ms)",
            "Msps wideband",
            "x realtime",
        ],
    );
    let mut production_realtime = f64::NAN;
    for production in [false, true] {
        let profile = if production { "production" } else { "exact" };
        let channels: Vec<GatewayChannel> = offsets
            .iter()
            .enumerate()
            .map(|(i, &offset)| {
                let base = SaiyanConfig::narrowband_streaming(lora, Variant::Vanilla);
                let cfg = if production {
                    base.high_throughput()
                } else {
                    base
                };
                GatewayChannel::new(i as u8, offset, cfg, PAYLOAD_SYMBOLS)
            })
            .collect();
        let taps = if production { 32 } else { 64 };
        let config = GatewayConfig::new(trace_cfg.wideband_rate(), channels)
            .with_channelizer_taps(taps)
            .with_worker_threads(workers);

        let mut gateway = Gateway::new(config);
        let start = Instant::now();
        let mut decoded = Vec::new();
        for chunk in trace.samples.chunks(CHUNK_SAMPLES) {
            decoded.extend(gateway.push_chunk(chunk));
        }
        decoded.extend(gateway.finish());
        let wall = start.elapsed().as_secs_f64();

        // Feed the merged stream into the MAC access point.
        let mut ap = AccessPoint::new(ChannelTable::paper_433mhz(), 0, 2).expect("valid channel");
        let mut frames_ok = 0usize;
        for p in &decoded {
            let bytes = p.result.to_bytes(k, FRAME_BYTES);
            if ap
                .ingest_frame(p.channel, p.result.payload_start_time, &bytes)
                .is_ok()
            {
                frames_ok += 1;
            }
        }

        // Match decodes against ground truth per channel.
        let t_sym = lora.symbol_duration();
        let mut per_channel_ok = [0usize; N_CHANNELS];
        let mut per_channel_total = [0usize; N_CHANNELS];
        let mut symbol_errors = 0usize;
        for t in &truth {
            per_channel_total[t.channel] += 1;
            if let Some(p) = decoded.iter().find(|p| {
                p.channel as usize == t.channel
                    && (p.result.payload_start_time - t.payload_start_time).abs() < t_sym
            }) {
                let errs = p
                    .result
                    .symbols
                    .iter()
                    .zip(&t.symbols)
                    .filter(|(a, b)| a != b)
                    .count();
                symbol_errors += errs;
                if errs == 0 {
                    per_channel_ok[t.channel] += 1;
                }
            }
        }

        let realtime = trace.duration() / wall;
        let aggregate_msps = trace.len() as f64 / wall / 1e6;
        let decoded_ok: usize = per_channel_ok.iter().sum();
        if production {
            production_realtime = realtime;
        }
        let per_channel = (0..N_CHANNELS)
            .map(|i| format!("{}/{}", per_channel_ok[i], per_channel_total[i]))
            .collect::<Vec<_>>()
            .join(" ");
        runner.row(
            vec![
                profile.to_string(),
                format!("{decoded_ok}/{}", truth.len()),
                per_channel,
                symbol_errors.to_string(),
                frames_ok.to_string(),
                fmt(wall * 1e3, 1),
                fmt(aggregate_msps, 2),
                fmt(realtime, 2),
            ],
            serde_json::json!({
                "profile": profile,
                "channels": N_CHANNELS,
                "channel_bandwidth_hz": lora.bw.hz(),
                "channel_sample_rate": lora.sample_rate(),
                "wideband_sample_rate": trace.sample_rate,
                "channelizer_taps": taps,
                "workers": workers,
                "packets": truth.len(),
                "decoded": decoded_ok,
                "symbol_errors": symbol_errors,
                "mac_frames_ingested": frames_ok,
                "capture_seconds": trace.duration(),
                "wall_seconds": wall,
                "realtime_factor_aggregate": realtime,
                "wideband_samples_per_sec": trace.len() as f64 / wall,
            }),
        );
        runner.footer(format!(
            "{profile}: decoded {decoded_ok}/{} packets ({symbol_errors} symbol errors), {frames_ok} MAC frames — all-packets {}",
            truth.len(),
            if decoded_ok == truth.len() { "PASS" } else { "FAIL" },
        ));
    }
    runner.footer(format!(
        "Aggregate rate is per single core across {} channels x {:.0} ksps; the floor gates the production row.",
        N_CHANNELS,
        lora.sample_rate() / 1e3,
    ));
    runner.snapshot("BENCH_gateway.json");
    runner.gate(
        "aggregate realtime factor (production)",
        production_realtime,
    );
    runner.finish();
}
