//! Network-scale sweep on the discrete-event engine: tag count × MAC
//! policy, reporting PRR, goodput and delivery latency per backend.
//!
//! For every grid point the scenario is the paper-style 4-channel 500 kHz
//! grid (SF7 / 250 kHz / K = 2 channels, 3 Msps wideband) with periodic
//! per-tag traffic at the tightest collision-free interval. The **waveform**
//! backend synthesizes the whole deployment's IQ in bounded chunks and
//! streams it through the real multi-channel gateway — ARQ and hopping
//! feedback reschedule actual tag transmissions — while the **analytic**
//! backend runs the identical MAC machinery over the link abstraction for
//! contrast. The ALOHA policy picks random channels per transmission, so
//! its same-channel collisions pull PRR down; Fixed and Hopping stay
//! collision-free and must deliver (nearly) everything.
//!
//! CLI: `--tags 8,24,100` `--readings 2` `--policies fixed,hopping,aloha`
//! `--backend both|waveform|analytic` `--check-floor <min PRR>` (the gate
//! applies to the worst waveform-path PRR among the non-ALOHA policies).
//! Results land in `results/network_scale.json` and `BENCH_network.json`.

use netsim::engine::{EngineOutcome, EngineReport, EngineScenario, MacPolicy, NetworkEngine};
use saiyan_bench::{fmt, trial_seeds, Runner};

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{flag} needs a value")),
            );
        }
    }
    None
}

fn parse_policies(spec: &str) -> Vec<MacPolicy> {
    spec.split(',')
        .map(|p| match p.trim() {
            "fixed" => MacPolicy::Fixed,
            "hopping" => MacPolicy::Hopping,
            "aloha" => MacPolicy::Aloha,
            other => panic!("unknown policy {other:?} (fixed|hopping|aloha)"),
        })
        .collect()
}

/// Sums the counters and concatenates the latency samples of one grid
/// point's per-trial outcomes (durations and wall time add up too, so rates
/// stay means over the trials).
fn aggregate(outcomes: Vec<EngineOutcome>) -> EngineOutcome {
    let mut iter = outcomes.into_iter();
    let mut total = iter.next().expect("at least one trial");
    for o in iter {
        let (a, b): (&mut EngineReport, EngineReport) = (&mut total.report, o.report);
        a.readings_generated += b.readings_generated;
        a.readings_delivered += b.readings_delivered;
        a.duplicates += b.duplicates;
        a.detections += b.detections;
        a.uplink_transmissions += b.uplink_transmissions;
        a.suppressed_transmissions += b.suppressed_transmissions;
        a.collisions += b.collisions;
        a.downlink_commands += b.downlink_commands;
        a.retransmission_requests += b.retransmission_requests;
        a.channel_hops += b.channel_hops;
        a.delivered_payload_bits += b.delivered_payload_bits;
        a.tag_demodulation_energy_j += b.tag_demodulation_energy_j;
        a.latencies_s.extend(b.latencies_s);
        a.duration_s += b.duration_s;
        total.wall_s += o.wall_s;
    }
    total
}

fn main() {
    let tag_counts: Vec<usize> = arg_value("--tags")
        .unwrap_or_else(|| "8,24,100".to_string())
        .split(',')
        .map(|t| t.trim().parse().expect("tag count"))
        .collect();
    // Three readings per tag by default: middle-of-sequence losses are the
    // ones a later frame can reveal, so ARQ actually exercises.
    let readings: usize = arg_value("--readings")
        .map(|v| v.parse().expect("readings"))
        .unwrap_or(3);
    let policies = parse_policies(
        &arg_value("--policies").unwrap_or_else(|| "fixed,hopping,aloha".to_string()),
    );
    let trials: usize = arg_value("--trials")
        .map(|v| v.parse().expect("trials"))
        .unwrap_or(1)
        .max(1);
    let backend = arg_value("--backend").unwrap_or_else(|| "both".to_string());
    let (run_analytic, run_waveform) = match backend.as_str() {
        "both" => (true, true),
        "analytic" => (true, false),
        "waveform" => (false, true),
        other => panic!("unknown backend {other:?} (both|waveform|analytic)"),
    };

    let mut runner = Runner::new(
        "network_scale",
        "Network engine: tag count x MAC policy (4-channel gateway, periodic traffic)",
        &[
            "backend",
            "tags",
            "policy",
            "delivered",
            "PRR",
            "goodput (bps)",
            "lat mean (ms)",
            "lat p95 (ms)",
            "retx",
            "collisions",
            "x realtime",
        ],
    );
    let mut gate_prr = f64::INFINITY;

    for &tags in &tag_counts {
        for &policy in &policies {
            // One engine run per trial seed; counters sum and latency
            // samples concatenate, so the row reports the trial aggregate.
            let mut backends: Vec<(&str, Vec<EngineOutcome>)> = Vec::new();
            if run_analytic {
                backends.push(("analytic", Vec::new()));
            }
            if run_waveform {
                backends.push(("waveform", Vec::new()));
            }
            for seed in trial_seeds(0x5A1A, trials) {
                let scenario = EngineScenario::grid(tags, 4, readings)
                    .with_mac(policy)
                    .with_seed(seed);
                let engine = NetworkEngine::new(scenario);
                for (name, outcomes) in backends.iter_mut() {
                    outcomes.push(if *name == "analytic" {
                        engine.run_analytic()
                    } else {
                        engine.run_waveform()
                    });
                }
            }
            for (backend, outcomes) in backends {
                let outcome = aggregate(outcomes);
                let r = &outcome.report;
                let realtime = if backend == "waveform" && outcome.wall_s > 0.0 {
                    r.duration_s / outcome.wall_s
                } else {
                    f64::NAN
                };
                if backend == "waveform" && policy != MacPolicy::Aloha {
                    gate_prr = gate_prr.min(r.prr());
                }
                runner.row(
                    vec![
                        backend.to_string(),
                        tags.to_string(),
                        r.policy.clone(),
                        format!("{}/{}", r.readings_delivered, r.readings_generated),
                        fmt(r.prr(), 3),
                        fmt(r.goodput_bps(), 0),
                        fmt(r.latency_mean_s() * 1e3, 1),
                        fmt(r.latency_percentile_s(0.95) * 1e3, 1),
                        r.retransmission_requests.to_string(),
                        r.collisions.to_string(),
                        if realtime.is_nan() {
                            "-".to_string()
                        } else {
                            fmt(realtime, 2)
                        },
                    ],
                    serde_json::json!({
                        "backend": backend,
                        "tags": tags,
                        "policy": r.policy.clone(),
                        "readings_generated": r.readings_generated,
                        "readings_delivered": r.readings_delivered,
                        "prr": r.prr(),
                        "goodput_bps": r.goodput_bps(),
                        "latency_mean_s": r.latency_mean_s(),
                        "latency_p95_s": r.latency_percentile_s(0.95),
                        "retransmission_requests": r.retransmission_requests,
                        "collisions": r.collisions,
                        "uplink_transmissions": r.uplink_transmissions,
                        "duration_s": r.duration_s,
                        "wall_s": outcome.wall_s,
                    }),
                );
            }
        }
    }

    runner.footer(format!(
        "Waveform rows ran the full IQ chain: chunked synthesis -> 4-channel lockstep gateway -> \
         MAC ingest, {readings} reading(s) per tag, {trials} seeded trial(s) per row."
    ));
    runner.footer(
        "ALOHA draws a random channel per transmission, so its collisions are the point; \
         Fixed/Hopping schedules are collision-free and gate the CI floor."
            .to_string(),
    );
    if run_waveform && gate_prr.is_finite() {
        runner.gate("waveform PRR (worst non-ALOHA policy)", gate_prr);
    } else {
        assert!(
            saiyan_bench::check_floor_arg().is_none(),
            "--check-floor gates the waveform-path PRR of the non-ALOHA policies; this \
             invocation produced no such row (backend {backend:?}, policies {policies:?})"
        );
    }
    runner.snapshot("BENCH_network.json");
    runner.finish();
}
