//! Network-scale sweep on the discrete-event engine: tag count × MAC
//! policy, reporting PRR, goodput and delivery latency per backend.
//!
//! For every grid point the scenario is the paper-style 4-channel 500 kHz
//! grid (SF7 / 250 kHz / K = 2 channels, 3 Msps wideband) with periodic
//! per-tag traffic at the tightest collision-free interval. The **waveform**
//! backend synthesizes the whole deployment's IQ in bounded chunks and
//! streams it through the real multi-channel gateway — ARQ and hopping
//! feedback reschedule actual tag transmissions — while the **analytic**
//! backend runs the identical MAC machinery over the link abstraction for
//! contrast. The ALOHA policy picks random channels per transmission, so
//! its same-channel collisions pull PRR down; Fixed and Hopping stay
//! collision-free and must deliver (nearly) everything.
//!
//! The analytic backend shards tags into spatial cells
//! (`--cells`, `0` = auto ≈ 8 Ki tags/cell) advanced by a worker pool
//! (`--workers`) in conservative lookahead windows, so the scaling axis
//! runs 10² … 10⁶ tags; its rows report a `x realtime` speed factor.
//! Waveform rows only run up to `--waveform-cap` tags (default 100) — the
//! IQ chain at a million tags is neither feasible nor the point.
//!
//! CLI: `--tags 8,24,100` `--readings 2` `--policies fixed,hopping,aloha`
//! `--backend both|waveform|analytic` `--cells 0` `--workers 1`
//! `--waveform-cap 100` `--max-wall-s <budget>` (exits non-zero if the
//! whole sweep's wall time exceeds it) `--check-floor <min PRR>` (the gate
//! applies to the worst waveform-path PRR among the non-ALOHA policies,
//! falling back to the worst analytic-path one when no waveform row ran)
//! `--check-realtime-floor <x>` (gates the slowest waveform row's
//! simulated-seconds-per-wall-second factor — the synthesis fast-path
//! headline, also recorded in the snapshot as `waveform_realtime`).
//! Results land in `results/network_scale.json` and `BENCH_network.json`.

use netsim::engine::{EngineOutcome, EngineReport, EngineScenario, MacPolicy, NetworkEngine};
use saiyan_bench::{fmt, trial_seeds, Runner};

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{flag} needs a value")),
            );
        }
    }
    None
}

fn parse_policies(spec: &str) -> Vec<MacPolicy> {
    spec.split(',')
        .map(|p| match p.trim() {
            "fixed" => MacPolicy::Fixed,
            "hopping" => MacPolicy::Hopping,
            "aloha" => MacPolicy::Aloha,
            other => panic!("unknown policy {other:?} (fixed|hopping|aloha)"),
        })
        .collect()
}

/// Sums the counters and concatenates the latency samples of one grid
/// point's per-trial outcomes (durations and wall time add up too, so rates
/// stay means over the trials).
fn aggregate(outcomes: Vec<EngineOutcome>) -> EngineOutcome {
    let mut iter = outcomes.into_iter();
    let mut total = iter.next().expect("at least one trial");
    for o in iter {
        let (a, b): (&mut EngineReport, EngineReport) = (&mut total.report, o.report);
        a.readings_generated += b.readings_generated;
        a.readings_delivered += b.readings_delivered;
        a.duplicates += b.duplicates;
        a.detections += b.detections;
        a.uplink_transmissions += b.uplink_transmissions;
        a.suppressed_transmissions += b.suppressed_transmissions;
        a.collisions += b.collisions;
        a.downlink_commands += b.downlink_commands;
        a.retransmission_requests += b.retransmission_requests;
        a.channel_hops += b.channel_hops;
        a.delivered_payload_bits += b.delivered_payload_bits;
        a.tag_demodulation_energy_j += b.tag_demodulation_energy_j;
        a.latencies_s.extend(b.latencies_s);
        a.duration_s += b.duration_s;
        total.wall_s += o.wall_s;
    }
    total
}

fn main() {
    let tag_counts: Vec<usize> = arg_value("--tags")
        .unwrap_or_else(|| "8,24,100".to_string())
        .split(',')
        .map(|t| t.trim().parse().expect("tag count"))
        .collect();
    // Three readings per tag by default: middle-of-sequence losses are the
    // ones a later frame can reveal, so ARQ actually exercises.
    let readings: usize = arg_value("--readings")
        .map(|v| v.parse().expect("readings"))
        .unwrap_or(3);
    let policies = parse_policies(
        &arg_value("--policies").unwrap_or_else(|| "fixed,hopping,aloha".to_string()),
    );
    let trials: usize = arg_value("--trials")
        .map(|v| v.parse().expect("trials"))
        .unwrap_or(1)
        .max(1);
    let backend = arg_value("--backend").unwrap_or_else(|| "both".to_string());
    let (run_analytic, run_waveform) = match backend.as_str() {
        "both" => (true, true),
        "analytic" => (true, false),
        "waveform" => (false, true),
        other => panic!("unknown backend {other:?} (both|waveform|analytic)"),
    };
    let cells: usize = arg_value("--cells")
        .map(|v| v.parse().expect("cells"))
        .unwrap_or(0);
    let workers: usize = arg_value("--workers")
        .map(|v| v.parse().expect("workers"))
        .unwrap_or(1);
    // The waveform path synthesizes real IQ; past this population it is
    // pure wall-clock with no extra information, so it stays capped.
    let waveform_cap: usize = arg_value("--waveform-cap")
        .map(|v| v.parse().expect("waveform-cap"))
        .unwrap_or(100);
    let max_wall_s: Option<f64> = arg_value("--max-wall-s").map(|v| v.parse().expect("max-wall-s"));

    let mut runner = Runner::new(
        "network_scale",
        "Network engine: tag count x MAC policy (4-channel gateway, periodic traffic)",
        &[
            "backend",
            "tags",
            "cells",
            "policy",
            "delivered",
            "PRR",
            "goodput (bps)",
            "lat mean (ms)",
            "lat p95 (ms)",
            "retx",
            "collisions",
            "x realtime",
        ],
    );
    let mut gate_prr = f64::INFINITY;
    let mut analytic_gate_prr = f64::INFINITY;
    let mut waveform_realtime_min = f64::INFINITY;
    let mut total_wall_s = 0.0;

    for &tags in &tag_counts {
        for &policy in &policies {
            // One engine run per trial seed; counters sum and latency
            // samples concatenate, so the row reports the trial aggregate.
            let mut backends: Vec<(&str, Vec<EngineOutcome>)> = Vec::new();
            if run_analytic {
                backends.push(("analytic", Vec::new()));
            }
            if run_waveform && tags <= waveform_cap {
                backends.push(("waveform", Vec::new()));
            }
            let mut analytic_cells = 1;
            for seed in trial_seeds(0x5A1A, trials) {
                let scenario = EngineScenario::grid(tags, 4, readings)
                    .with_mac(policy)
                    .with_seed(seed)
                    .with_cells(cells)
                    .with_workers(workers);
                analytic_cells = scenario.analytic_cells;
                let engine = NetworkEngine::new(scenario);
                for (name, outcomes) in backends.iter_mut() {
                    outcomes.push(if *name == "analytic" {
                        engine.run_analytic()
                    } else {
                        engine.run_waveform()
                    });
                }
            }
            for (backend, outcomes) in backends {
                let outcome = aggregate(outcomes);
                total_wall_s += outcome.wall_s;
                let r = &outcome.report;
                let realtime = if outcome.wall_s > 0.0 {
                    r.duration_s / outcome.wall_s
                } else {
                    f64::NAN
                };
                if policy != MacPolicy::Aloha {
                    if backend == "waveform" {
                        gate_prr = gate_prr.min(r.prr());
                    } else {
                        analytic_gate_prr = analytic_gate_prr.min(r.prr());
                    }
                }
                if backend == "waveform" && realtime.is_finite() {
                    waveform_realtime_min = waveform_realtime_min.min(realtime);
                }
                runner.row(
                    vec![
                        backend.to_string(),
                        tags.to_string(),
                        if backend == "analytic" {
                            analytic_cells.to_string()
                        } else {
                            "-".to_string()
                        },
                        r.policy.clone(),
                        format!("{}/{}", r.readings_delivered, r.readings_generated),
                        fmt(r.prr(), 3),
                        fmt(r.goodput_bps(), 0),
                        fmt(r.latency_mean_s() * 1e3, 1),
                        fmt(r.latency_percentile_s(0.95) * 1e3, 1),
                        r.retransmission_requests.to_string(),
                        r.collisions.to_string(),
                        if realtime.is_nan() {
                            "-".to_string()
                        } else {
                            fmt(realtime, 2)
                        },
                    ],
                    serde_json::json!({
                        "backend": backend,
                        "tags": tags,
                        "cells": if backend == "analytic" { analytic_cells } else { 1 },
                        "workers": if backend == "analytic" { workers.max(1) } else { 1 },
                        "realtime_factor": realtime,
                        "policy": r.policy.clone(),
                        "readings_generated": r.readings_generated,
                        "readings_delivered": r.readings_delivered,
                        "prr": r.prr(),
                        "goodput_bps": r.goodput_bps(),
                        "latency_mean_s": r.latency_mean_s(),
                        "latency_p95_s": r.latency_percentile_s(0.95),
                        "retransmission_requests": r.retransmission_requests,
                        "collisions": r.collisions,
                        "uplink_transmissions": r.uplink_transmissions,
                        "duration_s": r.duration_s,
                        "wall_s": outcome.wall_s,
                    }),
                );
            }
        }
    }

    runner.footer(format!(
        "Waveform rows (tags <= {waveform_cap}) ran the full IQ chain: chunked synthesis -> \
         4-channel lockstep gateway -> MAC ingest, {readings} reading(s) per tag, {trials} \
         seeded trial(s) per row."
    ));
    runner.footer(
        "Analytic rows shard the population into spatial cells (conservative lookahead \
         windows, bit-reproducible for a fixed seed across worker counts); `x realtime` is \
         simulated seconds per wall second."
            .to_string(),
    );
    runner.footer(
        "ALOHA draws a random channel per transmission, so its collisions are the point; \
         Fixed/Hopping schedules are collision-free and gate the CI floor."
            .to_string(),
    );
    if waveform_realtime_min.is_finite() {
        runner.footer(format!(
            "Waveform synthesis fast path: slowest waveform row ran at \
             {waveform_realtime_min:.2}x realtime (template-cache assembly, block AWGN, \
             anchored SIMD emission mixing)."
        ));
        runner.annotate(
            "waveform_realtime",
            serde_json::json!({
                "metric": "waveform x realtime (slowest row)",
                "value": waveform_realtime_min,
            }),
        );
    }
    if run_waveform && gate_prr.is_finite() {
        runner.gate("waveform PRR (worst non-ALOHA policy)", gate_prr);
    } else if analytic_gate_prr.is_finite() {
        runner.gate("analytic PRR (worst non-ALOHA policy)", analytic_gate_prr);
    } else {
        assert!(
            saiyan_bench::check_floor_arg().is_none(),
            "--check-floor gates the non-ALOHA PRR, but this invocation produced no \
             non-ALOHA row (backend {backend:?}, policies {policies:?})"
        );
    }
    runner.snapshot("BENCH_network.json");
    runner.finish();
    if let Some(floor) = arg_value("--check-realtime-floor") {
        let floor: f64 = floor.parse().expect("check-realtime-floor");
        assert!(
            waveform_realtime_min.is_finite(),
            "--check-realtime-floor gates the waveform realtime factor, but this \
             invocation produced no waveform row (backend {backend:?})"
        );
        saiyan_bench::enforce_floor(
            "waveform x realtime (slowest row)",
            waveform_realtime_min,
            Some(floor),
        );
    }
    if let Some(budget) = max_wall_s {
        assert!(
            total_wall_s <= budget,
            "sweep wall time {total_wall_s:.1}s exceeded the --max-wall-s budget {budget:.1}s"
        );
    }
}
