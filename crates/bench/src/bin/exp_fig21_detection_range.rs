//! Fig. 21 — packet detection range of Saiyan vs Aloba vs PLoRa, outdoors and
//! indoors (NLOS behind one concrete wall).

use netsim::{detection_range, Scenario};
use rfsim::units::{Dbm, Meters};
use saiyan_bench::{fmt, Runner};

fn main() {
    let systems = [
        ("Saiyan", saiyan::SUPER_SAIYAN_SENSITIVITY_DBM),
        ("PLoRa", baselines::PLORA_DETECTION_SENSITIVITY_DBM),
        ("Aloba", baselines::ALOBA_DETECTION_SENSITIVITY_DBM),
    ];
    let outdoor = Scenario::outdoor_default(Meters(1.0));
    let indoor = Scenario::indoor(Meters(1.0), 1);

    let mut runner = Runner::new(
        "fig21_detection_range",
        "Fig. 21: packet detection range (m)",
        &["system", "outdoor LOS", "indoor NLOS (1 wall)"],
    );
    let mut outdoor_ranges = Vec::new();
    for (name, sens) in systems {
        let out = detection_range(&outdoor, Dbm(sens)).value();
        let ind = detection_range(&indoor, Dbm(sens)).value();
        outdoor_ranges.push(out);
        runner.row(
            vec![name.to_string(), fmt(out, 1), fmt(ind, 1)],
            serde_json::json!({
                "system": name,
                "outdoor_m": out,
                "indoor_m": ind,
            }),
        );
    }
    runner.footer(format!(
        "Gain over PLoRa: {:.2}x, over Aloba: {:.2}x (paper: 3.26x and 4.52x outdoors;",
        outdoor_ranges[0] / outdoor_ranges[1],
        outdoor_ranges[0] / outdoor_ranges[2]
    ));
    runner.footer("2.63x and 3.56x indoors, where Saiyan reaches 44.2 m).");
    runner.finish();
}
