//! Table 2 — per-component energy (under 1 % duty cycling) and cost of the
//! Saiyan tag, plus the §4.3 ASIC figures and the harvester arithmetic.

use analog::power::{Component, PowerBudget};
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use saiyan::TagPowerModel;
use saiyan_bench::{fmt, Table};

fn main() {
    let pcb = PowerBudget::paper_pcb();
    let asic = PowerBudget::paper_asic();

    let mut table = Table::new(
        "Table 2: per-component power (uW, 1% duty cycle) and cost (USD)",
        &[
            "component",
            "PCB power (uW)",
            "PCB cost ($)",
            "ASIC power (uW)",
        ],
    );
    let mut json_rows = Vec::new();
    for component in Component::ALL {
        let p = pcb.entry(component).expect("pcb entry");
        let a = asic.entry(component).expect("asic entry");
        table.add_row(vec![
            component.name().to_string(),
            fmt(p.power_uw, 2),
            fmt(p.cost_usd, 2),
            fmt(a.power_uw, 2),
        ]);
        json_rows.push(serde_json::json!({
            "component": component.name(),
            "pcb_power_uw": p.power_uw,
            "pcb_cost_usd": p.cost_usd,
            "asic_power_uw": a.power_uw,
        }));
    }
    table.add_row(vec![
        "Total".into(),
        fmt(pcb.total_uw(), 2),
        fmt(pcb.total_cost_usd(), 2),
        fmt(asic.total_uw(), 2),
    ]);
    table.print();

    println!(
        "LNA share {:.1}% and oscillator share {:.1}% of the PCB total (paper: 67.3% / 23.5%).",
        pcb.share(Component::Lna) * 100.0,
        pcb.share(Component::OscillatorClock) * 100.0
    );
    println!(
        "ASIC on-chip total: {:.1} uW (paper: 93.2 uW), a {:.1}% reduction over the PCB.",
        asic.total_on_chip_uw(),
        100.0 * (1.0 - asic.total_on_chip_uw() / pcb.total_on_chip_uw())
    );

    let params = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    );
    let model = TagPowerModel::asic();
    println!(
        "Energy to demodulate one 32-symbol downlink packet: {:.1} uJ; the paper's",
        model.packet_energy_joules(&params, 32) * 1e6
    );
    println!(
        "solar harvester (1 mW / 25.4 s) pays for it in {:.1} s of harvesting.",
        model.harvest_time_for_packet(&params, 32)
    );
    saiyan_bench::write_json("tab2_power", &serde_json::json!(json_rows));
}
