//! Fig. 10 — baseband spectrum / SNR with and without cyclic-frequency
//! shifting, and the resulting SNR gain (the paper measures ~11 dB).

use analog::envelope::EnvelopeDetector;
use analog::saw::SawFilter;
use analog::shifting::{envelope_snr_db, CyclicFrequencyShifter, ShiftingConfig};
use lora_phy::chirp::ChirpGenerator;
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use rfsim::channel::dbm_to_buffer_power;
use rfsim::units::{Dbm, Hertz};
use saiyan_bench::{fmt, Table};

fn main() {
    // The paper's Fig. 10 uses 24 chirps at BW 500 kHz, SF 8; we process a
    // train of base up-chirps through the SAW + envelope chain at several
    // signal levels and compare the recovered-envelope SNR with and without
    // the shifting circuit.
    let params = LoraParams::new(
        SpreadingFactor::Sf8,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(8);
    let gen = ChirpGenerator::new(params);
    let saw = SawFilter::paper_b3790();

    let mut chirps = gen.base_upchirp();
    for _ in 0..3 {
        let extra = gen.base_upchirp();
        chirps.append(&extra);
    }

    let mut table = Table::new(
        "Fig. 10: envelope SNR with / without cyclic-frequency shifting",
        &[
            "input power (dBm)",
            "SNR w/o shifting (dB)",
            "SNR with shifting (dB)",
            "gain (dB)",
        ],
    );
    let mut json_rows = Vec::new();
    for power in [-45.0, -50.0, -55.0, -60.0] {
        let target = dbm_to_buffer_power(Dbm(power));
        let rf = saw.apply(
            &chirps.clone().scaled((target / chirps.mean_power()).sqrt()),
            Hertz(params.carrier_hz),
        );
        let shifter = CyclicFrequencyShifter::new(
            ShiftingConfig::for_bandwidth(params.bw.hz()),
            EnvelopeDetector::default(),
        );
        let reference = CyclicFrequencyShifter::new(
            ShiftingConfig::for_bandwidth(params.bw.hz()),
            EnvelopeDetector::ideal(),
        )
        .process_without_shifting(&rf);
        let without = envelope_snr_db(&shifter.process_without_shifting(&rf), &reference);
        let with = envelope_snr_db(&shifter.process(&rf), &reference);
        table.add_row(vec![
            fmt(power, 0),
            fmt(without, 1),
            fmt(with, 1),
            fmt(with - without, 1),
        ]);
        json_rows.push(serde_json::json!({
            "input_power_dbm": power,
            "snr_without_db": without,
            "snr_with_db": with,
            "gain_db": with - without,
        }));
    }
    table.print();
    println!("Paper: the cyclic-frequency shifting circuit cleans both in-band and");
    println!("out-of-band noise from the baseband and brings ~11 dB of SNR gain.");
    saiyan_bench::write_json("fig10_shifting", &serde_json::json!(json_rows));
}
