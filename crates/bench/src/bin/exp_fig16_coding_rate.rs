//! Fig. 16 — BER and throughput vs coding rate (K = bits per chirp) at
//! tag-to-Tx distances of 10/20/50/100/150 m (outdoor).

use lora_phy::params::BitsPerChirp;
use netsim::{run_link_trials, Scenario, TrialConfig};
use rfsim::units::Meters;
use saiyan::metrics::throughput_bps;
use saiyan_bench::{fmt, fmt_ber, Table};

fn main() {
    let distances = [10.0, 20.0, 50.0, 100.0, 150.0];
    let mut ber_table = Table::new(
        "Fig. 16(a): BER vs coding rate (outdoor, SF7, 500 kHz)",
        &["CR (K)", "10 m", "20 m", "50 m", "100 m", "150 m"],
    );
    let mut tput_table = Table::new(
        "Fig. 16(b): throughput (kbps) vs coding rate",
        &["CR (K)", "10 m", "20 m", "50 m", "100 m", "150 m"],
    );
    let mut json_rows = Vec::new();
    for k in 1..=5u8 {
        let mut ber_cells = vec![format!("{k}")];
        let mut tput_cells = vec![format!("{k}")];
        for &d in &distances {
            let scenario = Scenario::outdoor_default(Meters(d))
                .with_bits_per_chirp(BitsPerChirp::new(k).unwrap());
            let counts = run_link_trials(
                &scenario,
                &TrialConfig {
                    packets: 1000,
                    payload_symbols: 32,
                    seed: 0x1600 + k as u64,
                },
            );
            let tput = throughput_bps(&scenario.lora, counts.ser()) / 1000.0;
            ber_cells.push(fmt_ber(counts.ber()));
            tput_cells.push(fmt(tput, 2));
            json_rows.push(serde_json::json!({
                "k": k,
                "distance_m": d,
                "ber": counts.ber(),
                "throughput_kbps": tput,
            }));
        }
        ber_table.add_row(ber_cells);
        tput_table.add_row(tput_cells);
    }
    ber_table.print();
    tput_table.print();
    println!("Paper: BER grows with CR (2.4-5.2x from CR1 to CR5) and with distance");
    println!("(e.g. 0.1‰ -> 4.4‰ at CR5 from 10 m to 150 m); throughput grows ~linearly");
    println!("with CR (3.57 kbps at CR1 -> ~18.1 kbps at CR5 at 100 m).");
    saiyan_bench::write_json("fig16_coding_rate", &serde_json::json!(json_rows));
}
