//! Fig. 7 — single-threshold vs double-threshold comparator on a noisy chirp.
//!
//! Reproduces the qualitative comparison: a single high threshold misses the
//! peak when the envelope dips, a single low threshold fires early on a
//! misleading bump, and the double-threshold (hysteresis) comparator produces
//! a stable burst whose tail marks the true peak.

use analog::comparator::{DoubleThresholdComparator, SingleThresholdComparator};
use analog::envelope::EnvelopeDetector;
use analog::saw::SawFilter;
use lora_phy::chirp::ChirpGenerator;
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use rfsim::channel::dbm_to_buffer_power;
use rfsim::noise::AwgnSource;
use rfsim::units::{Dbm, Hertz};
use saiyan_bench::{fmt, Table};

fn main() {
    let params = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(8);
    let gen = ChirpGenerator::new(params);
    let saw = SawFilter::paper_b3790();

    // A base up-chirp at -55 dBm with noise so the envelope wobbles.
    let chirp = gen.base_upchirp();
    let mut rx = chirp.scaled(dbm_to_buffer_power(Dbm(-55.0)).sqrt());
    let mut awgn = AwgnSource::new(7);
    awgn.add_to(&mut rx, dbm_to_buffer_power(Dbm(-72.0)));
    let transformed = saw.apply(&rx, Hertz(params.carrier_hz));
    let envelope = EnvelopeDetector::ideal().detect(&transformed);

    let a_max = envelope.max();
    let floor = envelope.mean();
    let u_h = a_max / 10f64.powf(3.0 / 20.0);
    let u_l = (u_h - (a_max - floor) * 0.4).max(floor * 1.5);

    let single_high = SingleThresholdComparator::new(u_h).compare(&envelope);
    let single_low = SingleThresholdComparator::new(u_l).compare(&envelope);
    let double = DoubleThresholdComparator::new(u_h, u_l).compare(&envelope);

    let true_peak = envelope.argmax();
    let n = envelope.len();

    let mut table = Table::new(
        "Fig. 7: comparator comparison on a noisy SAW-transformed chirp",
        &[
            "comparator",
            "transitions",
            "high runs",
            "peak estimate (sample)",
            "true peak (sample)",
        ],
    );
    for (name, stream) in [
        ("single U_H", &single_high),
        ("single U_L", &single_low),
        ("double U_H/U_L", &double),
    ] {
        table.add_row(vec![
            name.to_string(),
            stream.transitions().to_string(),
            stream.high_runs().len().to_string(),
            stream
                .last_high_tail()
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".into()),
            true_peak.to_string(),
        ]);
    }
    table.print();
    println!(
        "Envelope length {n} samples; U_H = {} V, U_L = {} V.",
        fmt(u_h, 9),
        fmt(u_l, 9)
    );
    println!("Paper: the double-threshold comparator yields a stable output whose");
    println!("final falling edge sits at the amplitude peak, unlike either single threshold.");
    saiyan_bench::write_json(
        "fig07_comparator",
        &serde_json::json!({
            "single_high_transitions": single_high.transitions(),
            "single_low_transitions": single_low.transitions(),
            "double_transitions": double.transitions(),
            "true_peak": true_peak,
            "double_peak": double.last_high_tail(),
        }),
    );
}
