//! Streaming-demodulator throughput: sustained samples/sec over a long
//! multi-packet trace, per receive-chain variant and profile.
//!
//! This is the scale-readiness number behind the ROADMAP's "as fast as the
//! hardware allows" goal: how quickly the software receive chain chews
//! through an unbounded IQ stream fed in hardware-realistic chunks. For
//! reference, real-time operation at the paper's SF7/500 kHz setup with 4x
//! oversampling needs 2 Msps sustained.
//!
//! Two profiles are measured for every variant:
//!
//! * **exact** — [`SaiyanConfig::paper_default`]: the full analog-noise model
//!   and the exact per-sample oscillator. This is the configuration the
//!   golden-trace suite pins bit-exactly; its cost floor is the four libm
//!   Gaussian draws per waveform sample the noise model requires.
//! * **production** — [`SaiyanConfig::high_throughput`]: the analog-noise
//!   model off (a real capture already carries channel noise) and the
//!   anchored phasor-recurrence oscillator. This is the profile the
//!   multi-channel gateway deploys.
//!
//! With `--check-floor <x>` the binary exits non-zero if the *headline*
//! (production, slowest variant) realtime factor drops below `x` — the CI
//! regression gate. Results land in `results/stream_throughput.json` and the
//! top-level `BENCH_streaming.json`.

use std::time::Instant;

use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::longtrace::{generate_long_trace, random_payloads, LongTraceConfig, TracePacket};
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::StreamingDemodulator;
use saiyan_bench::{
    check_floor_arg, enforce_floor, fmt, print_simd_report, simd_metadata, write_json,
    write_json_at, Table,
};

const PACKETS: usize = 12;
const PAYLOAD_SYMBOLS: usize = 16;
const CHUNK_SAMPLES: usize = 4096;

fn main() {
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).expect("valid"),
    );
    let k = lora.bits_per_chirp;
    let payloads = random_payloads(PACKETS, PAYLOAD_SYMBOLS, k, 0x57_87A7);
    let config = LongTraceConfig::new(lora).with_noise(-82.0);
    let packets: Vec<TracePacket> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| {
            TracePacket::new(
                p.clone(),
                -48.0 - (i % 3) as f64 * 2.0,
                if i == 0 { 4.0 } else { 16.0 },
            )
        })
        .collect();
    let (trace, truth) = generate_long_trace(&config, &packets);
    println!(
        "trace: {} packets x {} symbols, {} samples ({:.1} ms of air time) at {:.0} sps",
        truth.len(),
        PAYLOAD_SYMBOLS,
        trace.len(),
        trace.duration() * 1e3,
        trace.sample_rate
    );

    let mut table = Table::new(
        "Streaming demodulation throughput (chunked, 4096-sample chunks)",
        &[
            "profile",
            "variant",
            "decoded",
            "symbol errors",
            "Msamples/s",
            "x realtime",
        ],
    );
    let mut json_rows = Vec::new();
    let mut headline: f64 = f64::INFINITY;
    let mut exact_min: f64 = f64::INFINITY;
    for production in [false, true] {
        let profile = if production { "production" } else { "exact" };
        for variant in Variant::ALL {
            let base = SaiyanConfig::paper_default(lora, variant);
            let cfg = if production {
                base.high_throughput()
            } else {
                base
            };
            let mut demod = StreamingDemodulator::new(cfg, PAYLOAD_SYMBOLS);
            let start = Instant::now();
            let mut results = Vec::new();
            for chunk in trace.samples.chunks(CHUNK_SAMPLES) {
                results.extend(demod.push_samples(chunk));
            }
            results.extend(demod.finish());
            let elapsed = start.elapsed().as_secs_f64();
            let samples_per_sec = trace.len() as f64 / elapsed;
            // Match decoded packets to ground truth by payload time.
            let mut symbol_errors = 0usize;
            let mut decoded = 0usize;
            for t in &truth {
                let t_payload = t.payload_start_sample as f64 / trace.sample_rate;
                if let Some(r) = results
                    .iter()
                    .find(|r| (r.payload_start_time - t_payload).abs() < lora.symbol_duration())
                {
                    decoded += 1;
                    symbol_errors += r
                        .symbols
                        .iter()
                        .zip(&t.symbols)
                        .filter(|(a, b)| a != b)
                        .count();
                }
            }
            let realtime = samples_per_sec / trace.sample_rate;
            if production {
                headline = headline.min(realtime);
            } else {
                exact_min = exact_min.min(realtime);
            }
            table.add_row(vec![
                profile.to_string(),
                variant.label().to_string(),
                format!("{decoded}/{}", truth.len()),
                symbol_errors.to_string(),
                fmt(samples_per_sec / 1e6, 2),
                fmt(realtime, 1),
            ]);
            json_rows.push(serde_json::json!({
                "profile": profile,
                "variant": variant.label(),
                "decoded": decoded,
                "packets": truth.len(),
                "symbol_errors": symbol_errors,
                "samples_per_sec": samples_per_sec,
                "realtime_factor": realtime,
            }));
        }
    }
    table.print();
    println!(
        "Sustained rate is per single core; 1x realtime = {:.1} Msps (SF7, 500 kHz, 4x oversampling).",
        trace.sample_rate / 1e6
    );
    print_simd_report();
    let summary = serde_json::json!({
        "bench": "exp_stream_throughput",
        "simd": simd_metadata(),
        "sample_rate": trace.sample_rate,
        "chunk_samples": CHUNK_SAMPLES,
        "realtime_factor_headline": headline,
        "realtime_factor_exact_min": exact_min,
        "rows": serde_json::json!(json_rows.clone()),
    });
    write_json("stream_throughput", &serde_json::json!(json_rows));
    write_json_at("BENCH_streaming.json", &summary);
    enforce_floor(
        "production realtime factor (slowest variant)",
        headline,
        check_floor_arg(),
    );
}
