//! Table 1 — required sampling rate (kHz), theory vs practice, for SF 7–12 and
//! K 1–5 at 500 kHz bandwidth.

use lora_phy::params::SpreadingFactor;
use saiyan::table1_sampling_rates;
use saiyan_bench::{fmt, Table};

fn main() {
    let rows = table1_sampling_rates();
    let mut table = Table::new(
        "Table 1: required sampling rate (kHz) theory/practice, BW = 500 kHz",
        &["", "SF=7", "SF=8", "SF=9", "SF=10", "SF=11", "SF=12"],
    );
    let mut json_rows = Vec::new();
    for k in 1..=5u8 {
        let mut cells = vec![format!("K={k}")];
        for sf in SpreadingFactor::ALL {
            let entry = rows
                .iter()
                .find(|r| r.sf == sf && r.k.bits() == k)
                .expect("table covers all combinations");
            cells.push(format!(
                "{}/{}",
                fmt(entry.theory_khz, 2),
                fmt(entry.practice_khz, 2)
            ));
            json_rows.push(serde_json::json!({
                "sf": sf.value(),
                "k": k,
                "theory_khz": entry.theory_khz,
                "practice_khz": entry.practice_khz,
            }));
        }
        table.add_row(cells);
    }
    table.print();
    println!("Paper Table 1 (theory): 15.6 kHz at SF7/K=1 down to 0.49 kHz at SF12/K=1,");
    println!(
        "with the practical requirement a factor ~1.3-1.6 higher; Saiyan adopts 3.2*BW/2^(SF-K)."
    );
    saiyan_bench::write_json("tab1_sampling_rate", &serde_json::json!(json_rows));
}
