//! Fig. 25 — ablation study: demodulation range of vanilla Saiyan, vanilla +
//! cyclic-frequency shifting, and the full design (+ correlation) across
//! coding rates.

use lora_phy::params::BitsPerChirp;
use netsim::{paper_demodulation_range, Scenario};
use rfsim::units::Meters;
use saiyan::config::Variant;
use saiyan_bench::{fmt, Table};

fn main() {
    let mut table = Table::new(
        "Fig. 25: ablation — demodulation range (m) vs coding rate",
        &[
            "CR (K)",
            "vanilla",
            "+ shifting",
            "+ correlation",
            "shift gain",
            "corr gain",
        ],
    );
    let mut json_rows = Vec::new();
    for k in 1..=5u8 {
        let base = Scenario::outdoor_default(Meters(1.0))
            .with_bits_per_chirp(BitsPerChirp::new(k).unwrap());
        let vanilla =
            paper_demodulation_range(&base.clone().with_variant(Variant::Vanilla)).value();
        let shifting =
            paper_demodulation_range(&base.clone().with_variant(Variant::WithShifting)).value();
        let full = paper_demodulation_range(&base.clone().with_variant(Variant::Super)).value();
        table.add_row(vec![
            format!("{k}"),
            fmt(vanilla, 1),
            fmt(shifting, 1),
            fmt(full, 1),
            format!("{:.2}x", shifting / vanilla.max(1e-9)),
            format!("{:.2}x", full / shifting.max(1e-9)),
        ]);
        json_rows.push(serde_json::json!({
            "k": k,
            "vanilla_m": vanilla,
            "with_shifting_m": shifting,
            "full_m": full,
        }));
    }
    table.print();
    println!("Paper: vanilla reaches 38.4-72.6 m across CRs; cyclic-frequency shifting");
    println!("buys 1.56-1.73x and the correlator another 1.94-2.25x.");
    saiyan_bench::write_json("fig25_ablation", &serde_json::json!(json_rows));
}
