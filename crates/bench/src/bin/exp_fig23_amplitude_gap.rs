//! Fig. 23 — SAW output amplitude gap vs Tx-to-tag distance for each LoRa
//! bandwidth. The gap (difference between the strongest and weakest amplitude
//! within a chirp) shrinks with narrower bandwidth and, at the receiver, with
//! distance as the signal approaches the noise floor.

use analog::saw::SawFilter;
use lora_phy::params::Bandwidth;
use netsim::Scenario;
use rfsim::units::{Hertz, Meters};
use saiyan_bench::{fmt, Table};

fn main() {
    let saw = SawFilter::paper_b3790();
    let mut table = Table::new(
        "Fig. 23: SAW amplitude gap (dB) vs distance per bandwidth",
        &["distance (m)", "125 kHz", "250 kHz", "500 kHz"],
    );
    let mut json_rows = Vec::new();
    for d in [10.0, 30.0, 50.0, 70.0, 90.0] {
        let mut cells = vec![fmt(d, 0)];
        for bw in Bandwidth::ALL {
            // The intrinsic filter gap over this sweep width...
            let intrinsic = saw
                .amplitude_gap(Hertz::from_mhz(434.0), Hertz(bw.hz()))
                .value();
            // ...is compressed once the weak (low-frequency) end of the chirp
            // sinks into the envelope-detection chain's noise floor: the
            // observable gap is limited by how far the strongest part of the
            // chirp (post insertion loss) sits above that floor (~-107 dBm
            // referred to the antenna).
            let scenario = Scenario::outdoor_default(Meters(d));
            let envelope_floor_dbm = -107.0;
            let insertion_loss_db = 10.0;
            let headroom = scenario.rss().value() - insertion_loss_db - envelope_floor_dbm;
            let observable = intrinsic.min(headroom.max(0.0));
            cells.push(fmt(observable, 1));
            json_rows.push(serde_json::json!({
                "distance_m": d,
                "bw_khz": bw.khz(),
                "amplitude_gap_db": observable,
            }));
        }
        table.add_row(cells);
    }
    table.print();
    println!("Paper: at 10 m the gap is 24.7 / 9.3 / 7.1 dB for 500/250/125 kHz and");
    println!("shrinks slowly with distance (24.7 -> 20.2 dB at 100 m for 500 kHz).");
    saiyan_bench::write_json("fig23_amplitude_gap", &serde_json::json!(json_rows));
}
