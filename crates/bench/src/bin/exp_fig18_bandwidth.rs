//! Fig. 18 — demodulation range and throughput vs bandwidth (125/250/500 kHz)
//! at SF7 for K = 1–3.

use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::{paper_demodulation_range, Scenario};
use rfsim::units::Meters;
use saiyan::metrics::throughput_bps;
use saiyan_bench::{fmt, Table};

fn main() {
    let mut range_table = Table::new(
        "Fig. 18(a): demodulation range (m) vs bandwidth (SF7)",
        &["BW (kHz)", "K=1", "K=2", "K=3"],
    );
    let mut tput_table = Table::new(
        "Fig. 18(b): throughput (kbps) vs bandwidth (SF7)",
        &["BW (kHz)", "K=1", "K=2", "K=3"],
    );
    let mut json_rows = Vec::new();
    for bw in Bandwidth::ALL {
        let mut range_cells = vec![format!("{}", bw.khz() as u32)];
        let mut tput_cells = vec![format!("{}", bw.khz() as u32)];
        for k in 1..=3u8 {
            let lora = LoraParams::new(SpreadingFactor::Sf7, bw, BitsPerChirp::new(k).unwrap());
            let template = Scenario::outdoor_default(Meters(1.0)).with_lora(lora);
            let range = paper_demodulation_range(&template).value();
            let tput = throughput_bps(&lora, 0.0) / 1000.0;
            range_cells.push(fmt(range, 1));
            tput_cells.push(fmt(tput, 2));
            json_rows.push(serde_json::json!({
                "bw_khz": bw.khz(),
                "k": k,
                "range_m": range,
                "throughput_kbps": tput,
            }));
        }
        range_table.add_row(range_cells);
        tput_table.add_row(tput_cells);
    }
    range_table.print();
    tput_table.print();
    println!("Paper: at CR=2 the range grows from 72.2 m (125 kHz) to 138.6 m (500 kHz),");
    println!("and throughput scales with bandwidth (~1.8 -> 7.2 kbps).");
    saiyan_bench::write_json("fig18_bandwidth", &serde_json::json!(json_rows));
}
