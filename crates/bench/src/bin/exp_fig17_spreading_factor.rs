//! Fig. 17 — demodulation range and throughput vs spreading factor (SF 7–12)
//! for K = 1–3.

use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::{paper_demodulation_range, Scenario};
use rfsim::units::Meters;
use saiyan::metrics::throughput_bps;
use saiyan_bench::{fmt, Table};

fn main() {
    let mut range_table = Table::new(
        "Fig. 17(a): demodulation range (m) vs SF",
        &["SF", "K=1", "K=2", "K=3"],
    );
    let mut tput_table = Table::new(
        "Fig. 17(b): throughput (kbps) vs SF (error-free payload)",
        &["SF", "K=1", "K=2", "K=3"],
    );
    let mut json_rows = Vec::new();
    for sf in SpreadingFactor::ALL {
        let mut range_cells = vec![format!("{}", sf.value())];
        let mut tput_cells = vec![format!("{}", sf.value())];
        for k in 1..=3u8 {
            let lora = LoraParams::new(sf, Bandwidth::Khz500, BitsPerChirp::new(k).unwrap());
            let template = Scenario::outdoor_default(Meters(1.0)).with_lora(lora);
            let range = paper_demodulation_range(&template).value();
            let tput = throughput_bps(&lora, 0.0) / 1000.0;
            range_cells.push(fmt(range, 1));
            tput_cells.push(fmt(tput, 3));
            json_rows.push(serde_json::json!({
                "sf": sf.value(),
                "k": k,
                "range_m": range,
                "throughput_kbps": tput,
            }));
        }
        range_table.add_row(range_cells);
        tput_table.add_row(tput_cells);
    }
    range_table.print();
    tput_table.print();
    println!("Paper: range grows 1.1-1.3x from SF7 to SF12 while throughput drops");
    println!("~30x (the symbol time grows as 2^SF).");
    saiyan_bench::write_json("fig17_spreading_factor", &serde_json::json!(json_rows));
}
