//! Fig. 22 — RSS and BER vs tag-to-Tx distance; the receiver sensitivity is
//! the minimum RSS at which the signal is still detected/demodulated
//! (−85.8 dBm in the paper, ~30 dB better than a bare envelope detector).

use netsim::Scenario;
use rfsim::units::Meters;
use saiyan_bench::{fmt, fmt_ber, Table};

fn main() {
    let mut table = Table::new(
        "Fig. 22: RSS and BER over distance (outdoor, SF7/500 kHz/K=2, Super Saiyan)",
        &["distance (m)", "RSS (dBm)", "BER"],
    );
    let mut json_rows = Vec::new();
    let mut sensitivity_estimate = None;
    for d in (10..=190).step_by(10) {
        let s = Scenario::outdoor_default(Meters(d as f64));
        let rss = s.rss().value();
        let ber = s.ber();
        if ber <= 1e-3 {
            sensitivity_estimate = Some(rss);
        }
        table.add_row(vec![fmt(d as f64, 0), fmt(rss, 1), fmt_ber(ber)]);
        json_rows.push(serde_json::json!({
            "distance_m": d,
            "rss_dbm": rss,
            "ber": ber,
        }));
    }
    table.print();
    if let Some(sens) = sensitivity_estimate {
        println!(
            "Measured sensitivity (lowest RSS with BER <= 1e-3): {:.1} dBm (paper: -85.8 dBm,",
            sens
        );
        println!(
            "which is ~30 dB better than the conventional envelope detector at {:.1} dBm).",
            saiyan::CONVENTIONAL_ENVELOPE_DETECTOR_SENSITIVITY_DBM
        );
    }
    saiyan_bench::write_json("fig22_sensitivity", &serde_json::json!(json_rows));
}
