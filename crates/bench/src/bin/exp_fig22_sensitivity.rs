//! Fig. 22 — RSS and BER vs tag-to-Tx distance; the receiver sensitivity is
//! the minimum RSS at which the signal is still detected/demodulated
//! (−85.8 dBm in the paper, ~30 dB better than a bare envelope detector).

use netsim::Scenario;
use rfsim::units::Meters;
use saiyan_bench::{fmt, fmt_ber, Runner};

fn main() {
    let mut runner = Runner::new(
        "fig22_sensitivity",
        "Fig. 22: RSS and BER over distance (outdoor, SF7/500 kHz/K=2, Super Saiyan)",
        &["distance (m)", "RSS (dBm)", "BER"],
    );
    let mut sensitivity_estimate = None;
    for d in (10..=190).step_by(10) {
        let s = Scenario::outdoor_default(Meters(d as f64));
        let rss = s.rss().value();
        let ber = s.ber();
        if ber <= 1e-3 {
            sensitivity_estimate = Some(rss);
        }
        runner.row(
            vec![fmt(d as f64, 0), fmt(rss, 1), fmt_ber(ber)],
            serde_json::json!({
                "distance_m": d,
                "rss_dbm": rss,
                "ber": ber,
            }),
        );
    }
    if let Some(sens) = sensitivity_estimate {
        runner.footer(format!(
            "Measured sensitivity (lowest RSS with BER <= 1e-3): {sens:.1} dBm (paper: -85.8 dBm,"
        ));
        runner.footer(format!(
            "which is ~30 dB better than the conventional envelope detector at {:.1} dBm).",
            saiyan::CONVENTIONAL_ENVELOPE_DETECTOR_SENSITIVITY_DBM
        ));
    }
    runner.finish();
}
