//! Regenerates the committed golden-trace fixtures under `tests/golden/`.
//!
//! The fixture *definitions* live in `netsim::longtrace::golden_fixture_set`
//! so this binary and the regression suite (`tests/golden_traces.rs`) can
//! never drift apart: the suite regenerates every fixture in memory and
//! compares it byte-for-byte against the committed files. After an
//! intentional change to the modulator, channel models, or the fixture set,
//! run this binary from the repository root and commit the updated files.

use std::path::PathBuf;

use netsim::golden_fixture_set;
use netsim::longtrace::write_golden;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("tests/golden"));
    for fixture in golden_fixture_set() {
        write_golden(&dir, &fixture).unwrap_or_else(|e| {
            panic!(
                "failed to write fixture {} to {}: {e}",
                fixture.name,
                dir.display()
            )
        });
        println!(
            "wrote {}/{}.iq ({} samples, {} packet(s)) + manifest",
            dir.display(),
            fixture.name,
            fixture.trace.len(),
            fixture.truth.len()
        );
    }
}
