//! Fig. 20 — throughput and demodulation range behind two concrete walls.

use lora_phy::params::BitsPerChirp;
use netsim::{paper_demodulation_range, run_link_trials, Scenario, TrialConfig};
use rfsim::units::Meters;
use saiyan::metrics::throughput_bps;
use saiyan_bench::{fmt, Table};

fn main() {
    let walls = 2u8;
    let mut table = Table::new(
        "Fig. 20: indoor, 2 concrete walls: throughput and range vs CR",
        &["CR (K)", "range (m)", "throughput @10 m (kbps)"],
    );
    let mut json_rows = Vec::new();
    for k in 1..=5u8 {
        let template =
            Scenario::indoor(Meters(1.0), walls).with_bits_per_chirp(BitsPerChirp::new(k).unwrap());
        let range = paper_demodulation_range(&template).value();
        let at_10m = template.clone().with_distance(Meters(10.0));
        let counts = run_link_trials(
            &at_10m,
            &TrialConfig {
                packets: 500,
                payload_symbols: 32,
                seed: 0x2000 + k as u64,
            },
        );
        let tput = throughput_bps(&at_10m.lora, counts.ser()) / 1000.0;
        table.add_row(vec![format!("{k}"), fmt(range, 1), fmt(tput, 2)]);
        json_rows.push(serde_json::json!({
            "walls": walls,
            "k": k,
            "range_m": range,
            "throughput_kbps_at_10m": tput,
        }));

        // Also report the ratio against the one-wall case for the same CR.
        let one_wall =
            Scenario::indoor(Meters(1.0), 1).with_bits_per_chirp(BitsPerChirp::new(k).unwrap());
        let ratio = paper_demodulation_range(&one_wall).value() / range.max(1e-9);
        if k == 1 {
            println!(
                "Range ratio one wall / two walls at CR1: {:.2} (paper: 2.09-2.21x)",
                ratio
            );
        }
    }
    table.print();
    println!(
        "Paper: the second wall costs another ~2.1x of range and a few percent of throughput."
    );
    saiyan_bench::write_json("fig20_two_walls", &serde_json::json!(json_rows));
}
