//! Fig. 27 — PRR before and after Saiyan-enabled channel hopping away from a
//! jammed channel (CDF of per-window PRR).

use netsim::{empirical_cdf, median, ChannelHoppingStudy};
use saiyan_bench::{fmt, Runner};

fn main() {
    let study = ChannelHoppingStudy::paper();
    let windows = study.run();
    let before: Vec<f64> = windows
        .iter()
        .filter(|w| !w.hopped)
        .map(|w| w.prr)
        .collect();
    let after: Vec<f64> = windows.iter().filter(|w| w.hopped).map(|w| w.prr).collect();

    let cdf_before = empirical_cdf(&before);
    let cdf_after = empirical_cdf(&after);
    let lookup = |cdf: &[(f64, f64)], q: f64| -> f64 {
        cdf.iter()
            .find(|(_, p)| *p >= q)
            .map(|(v, _)| *v)
            .unwrap_or_else(|| cdf.last().map(|(v, _)| *v).unwrap_or(0.0))
    };
    let mut runner = Runner::new(
        "fig27_channel_hopping",
        "Fig. 27: CDF of per-window PRR before / after channel hopping",
        &["percentile", "PRR before hop (%)", "PRR after hop (%)"],
    );
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let b = lookup(&cdf_before, q);
        let a = lookup(&cdf_after, q);
        runner.row(
            vec![
                format!("{:.0}%", q * 100.0),
                fmt(b * 100.0, 1),
                fmt(a * 100.0, 1),
            ],
            serde_json::json!({
                "percentile": q,
                "prr_before": b,
                "prr_after": a,
            }),
        );
    }
    runner.footer(format!(
        "Median PRR: {:.1}% while jammed -> {:.1}% after the hop command",
        median(&before) * 100.0,
        median(&after) * 100.0
    ));
    runner.footer("(paper: 47% -> 92%).");
    runner.finish();
}
