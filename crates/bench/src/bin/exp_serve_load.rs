//! Serving-layer load test: throughput vs concurrent client streams.
//!
//! Spins up a [`ServeDaemon`] over a pooled receiver executor, then replays
//! the same golden-style multi-packet capture from N concurrent clients
//! (each a producer thread pushing raw byte frames, exactly the ingest path
//! a network front-end would use) for increasing N. Reports, per client
//! count: aggregate ingest rate, aggregate realtime factor, delivered-packet
//! ratio (decoded / expected across all streams), and chunks shed by
//! backpressure — the throughput-vs-clients curve for the serving layer.
//!
//! The daemon instance persists across client counts, so later rows also
//! exercise receiver recycling (the `reused` column counts checkouts served
//! from the pool instead of a rebuild).
//!
//! Flags:
//!
//! * `--streams 1,2,4,8` — client counts to sweep (default shown).
//! * `--queue <frames>` — ingest queue bound per stream (default 8).
//! * `--policy block|drop-oldest` — backpressure policy (default `block`;
//!   blocking mode is lossless, so its delivered ratio is the decode rate).
//! * `--speed <M>` — pace each client at M× realtime (default 0 = unpaced,
//!   measuring capacity).
//! * `--check-floor <x>` — CI gate: exit non-zero if the delivered-packet
//!   ratio at the highest client count drops below `x`.
//!
//! Results land in `results/serve_load.json` and the top-level
//! `BENCH_serve.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::longtrace::{generate_long_trace, random_payloads, LongTraceConfig, TracePacket};
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::{BoxedReceiver, PooledExecutor, ReceiverExecutor, StreamingDemodulator};
use saiyan_bench::{check_floor_arg, enforce_floor, fmt, write_json, write_json_at, Table};
use saiyan_serve::{samples_to_bytes, BackpressurePolicy, ServeConfig, ServeDaemon};

const PACKETS: usize = 6;
const PAYLOAD_SYMBOLS: usize = 16;
const CHUNK_SAMPLES: usize = 4096;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let streams: Vec<usize> = arg_value("--streams")
        .unwrap_or_else(|| "1,2,4,8".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--streams takes integers"))
        .collect();
    let queue_depth: usize = arg_value("--queue")
        .map(|v| v.parse().expect("--queue takes an integer"))
        .unwrap_or(8);
    let policy = match arg_value("--policy").as_deref() {
        None | Some("block") => BackpressurePolicy::Block,
        Some("drop-oldest") => BackpressurePolicy::DropOldest,
        Some(other) => panic!("--policy must be block or drop-oldest, got {other:?}"),
    };
    let speed: f64 = arg_value("--speed")
        .map(|v| v.parse().expect("--speed takes a number"))
        .unwrap_or(0.0);

    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).expect("valid"),
    );
    let k = lora.bits_per_chirp;
    let payloads = random_payloads(PACKETS, PAYLOAD_SYMBOLS, k, 0x5E7F_10AD);
    let trace_cfg = LongTraceConfig::new(lora).with_noise(-82.0);
    let packets: Vec<TracePacket> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| {
            TracePacket::new(
                p.clone(),
                -48.0 - (i % 3) as f64 * 2.0,
                if i == 0 { 4.0 } else { 16.0 },
            )
        })
        .collect();
    let (trace, truth) = generate_long_trace(&trace_cfg, &packets);
    let bytes = Arc::new(samples_to_bytes(&trace.samples));
    let chunk_bytes = CHUNK_SAMPLES * saiyan_serve::wire::BYTES_PER_SAMPLE;
    println!(
        "trace: {} packets, {} samples ({:.1} ms of air time); {} byte frames of {} samples per client",
        truth.len(),
        trace.len(),
        trace.duration() * 1e3,
        bytes.len().div_ceil(chunk_bytes),
        CHUNK_SAMPLES,
    );

    // Production-profile receivers behind a pool sized for the largest sweep
    // point, shared by every row so later rows hit warm (reset) instances.
    let factory = {
        let cfg = SaiyanConfig::paper_default(lora, Variant::Vanilla).high_throughput();
        Arc::new(move || {
            Box::new(StreamingDemodulator::new(cfg.clone(), PAYLOAD_SYMBOLS)) as BoxedReceiver
        })
    };
    let max_streams = streams.iter().copied().max().unwrap_or(1);
    let executor = Arc::new(PooledExecutor::new(factory, max_streams));
    let daemon = ServeDaemon::new(
        executor.clone() as Arc<dyn saiyan::ReceiverExecutor>,
        ServeConfig::default()
            .with_queue_depth(queue_depth)
            .with_policy(policy),
    );

    let mut table = Table::new(
        "Serving-layer load: throughput vs concurrent clients",
        &[
            "clients",
            "delivered",
            "ratio",
            "dropped chunks",
            "Msamples/s",
            "x realtime (aggregate)",
            "reused",
        ],
    );
    let mut json_rows = Vec::new();
    let mut headline_ratio = f64::NAN;
    let mut headline_realtime = f64::NAN;
    let mut headline_drops = 0u64;
    let chunk_period = if speed > 0.0 {
        Duration::from_secs_f64(CHUNK_SAMPLES as f64 / trace.sample_rate / speed)
    } else {
        Duration::ZERO
    };
    for &n in &streams {
        let start = Instant::now();
        let clients: Vec<std::thread::JoinHandle<(usize, u64)>> = (0..n)
            .map(|i| {
                let handle = daemon
                    .open_stream(format!("load-{n}-{i}"))
                    .expect("daemon running");
                let bytes = Arc::clone(&bytes);
                std::thread::spawn(move || {
                    let mut next = Instant::now();
                    for chunk in bytes.chunks(chunk_bytes) {
                        if !chunk_period.is_zero() {
                            next += chunk_period;
                            if let Some(wait) = next.checked_duration_since(Instant::now()) {
                                std::thread::sleep(wait);
                            }
                        }
                        if handle.send_bytes(chunk.to_vec()).is_err() {
                            break;
                        }
                    }
                    let report = handle.wait();
                    (report.packets.len(), report.stats.dropped_chunks)
                })
            })
            .collect();
        let mut delivered = 0usize;
        let mut dropped = 0u64;
        for client in clients {
            let (packets, drops) = client.join().expect("client thread");
            delivered += packets;
            dropped += drops;
        }
        let elapsed = start.elapsed().as_secs_f64();
        let expected = n * truth.len();
        let ratio = delivered as f64 / expected as f64;
        let aggregate_sps = (n * trace.len()) as f64 / elapsed;
        let realtime = aggregate_sps / trace.sample_rate;
        headline_ratio = ratio;
        headline_realtime = realtime;
        headline_drops = dropped;
        table.add_row(vec![
            n.to_string(),
            format!("{delivered}/{expected}"),
            fmt(ratio, 3),
            dropped.to_string(),
            fmt(aggregate_sps / 1e6, 2),
            fmt(realtime, 1),
            executor.reused().to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "clients": n,
            "delivered": delivered,
            "expected": expected,
            "delivered_ratio": ratio,
            "dropped_chunks": dropped,
            "samples_per_sec": aggregate_sps,
            "realtime_factor": realtime,
            "pool_reused": executor.reused(),
        }));
    }
    let final_snapshot = daemon.shutdown();
    table.print();
    println!(
        "Policy {:?}, queue depth {queue_depth}, speed {}; pool built {} receivers, reused {}.",
        policy,
        if speed > 0.0 {
            format!("{speed}x realtime")
        } else {
            "unpaced".into()
        },
        executor.built(),
        executor.reused(),
    );
    if policy == BackpressurePolicy::Block {
        assert_eq!(
            headline_drops, 0,
            "blocking backpressure must never shed frames"
        );
        println!("blocking mode: zero dropped chunks across the sweep, as required.");
    }
    let summary = serde_json::json!({
        "bench": "exp_serve_load",
        "sample_rate": trace.sample_rate,
        "chunk_samples": CHUNK_SAMPLES,
        "queue_depth": queue_depth,
        "policy": match policy {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::DropOldest => "drop-oldest",
        },
        "speed": speed,
        "max_clients": max_streams,
        "delivered_ratio_headline": headline_ratio,
        "realtime_factor_headline": headline_realtime,
        "streams_served": final_snapshot.streams_opened,
        "packets_total": final_snapshot.packets_total,
        "rows": serde_json::json!(json_rows.clone()),
    });
    write_json("serve_load", &serde_json::json!(json_rows));
    write_json_at("BENCH_serve.json", &summary);
    enforce_floor(
        "delivered-packet ratio at max concurrency",
        headline_ratio,
        check_floor_arg(),
    );
}
