//! Fig. 26 — packet reception ratio vs number of allowed retransmissions for
//! PLoRa and Aloba tags equipped with Saiyan's feedback demodulation.

use netsim::{RetransmissionStudy, UplinkSystem};
use saiyan_bench::{fmt, Runner};

fn main() {
    let plora = RetransmissionStudy::paper(UplinkSystem::PLoRa);
    let aloba = RetransmissionStudy::paper(UplinkSystem::Aloba);
    let mut runner = Runner::new(
        "fig26_retransmission",
        "Fig. 26: PRR vs number of retransmissions (100 m link)",
        &["retransmissions", "PLoRa + Saiyan", "Aloba + Saiyan"],
    );
    for n in 0..=4u32 {
        let p = plora.prr(n);
        let a = aloba.prr(n);
        runner.row(
            vec![n.to_string(), fmt(p * 100.0, 1), fmt(a * 100.0, 1)],
            serde_json::json!({
                "retransmissions": n,
                "plora_prr": p,
                "aloba_prr": a,
            }),
        );
    }
    runner.footer("Paper: PLoRa starts at 81.8% and Aloba at 45.6% without retransmission;");
    runner.footer("Aloba climbs to 70.1% / 83.3% / 95.5% with 1 / 2 / 3 retransmissions.");
    runner.finish();
}
