//! Fig. 26 — packet reception ratio vs number of allowed retransmissions for
//! PLoRa and Aloba tags equipped with Saiyan's feedback demodulation.

use netsim::{RetransmissionStudy, UplinkSystem};
use saiyan_bench::{fmt, Table};

fn main() {
    let mut table = Table::new(
        "Fig. 26: PRR vs number of retransmissions (100 m link)",
        &["retransmissions", "PLoRa + Saiyan", "Aloba + Saiyan"],
    );
    let plora = RetransmissionStudy::paper(UplinkSystem::PLoRa);
    let aloba = RetransmissionStudy::paper(UplinkSystem::Aloba);
    let mut json_rows = Vec::new();
    for n in 0..=4u32 {
        let p = plora.prr(n);
        let a = aloba.prr(n);
        table.add_row(vec![n.to_string(), fmt(p * 100.0, 1), fmt(a * 100.0, 1)]);
        json_rows.push(serde_json::json!({
            "retransmissions": n,
            "plora_prr": p,
            "aloba_prr": a,
        }));
    }
    table.print();
    println!("Paper: PLoRa starts at 81.8% and Aloba at 45.6% without retransmission;");
    println!("Aloba climbs to 70.1% / 83.3% / 95.5% with 1 / 2 / 3 retransmissions.");
    saiyan_bench::write_json("fig26_retransmission", &serde_json::json!(json_rows));
}
