//! Design-choice ablation (beyond the paper's figures): how much sampling-rate
//! margin over the Nyquist minimum does the peak-position decoder need?
//!
//! Table 1 reports that the *practical* sampling rate is higher than the
//! theoretical minimum `2·BW/2^(SF−K)`; Saiyan settles on a 1.6× margin
//! (3.2·BW/2^(SF−K)). This experiment sweeps the margin on the waveform-level
//! receive chain and reports the symbol accuracy, showing where the knee is.

use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::{run_waveform_trials, Scenario, TrialConfig};
use rfsim::units::Meters;
use saiyan::{SaiyanConfig, Variant};
use saiyan_bench::{fmt, Table};

fn main() {
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(8);
    let scenario = Scenario::outdoor_default(Meters(25.0));

    let mut table = Table::new(
        "Ablation: voltage-sampler margin over the Nyquist minimum (SF7/500 kHz/K=2, 25 m)",
        &["margin", "sampler rate (kHz)", "symbol accuracy (%)"],
    );
    let mut json_rows = Vec::new();
    for margin in [1.0, 1.1, 1.2, 1.4, 1.6, 2.0] {
        let mut config = SaiyanConfig::paper_default(lora, Variant::WithShifting);
        config.sampling_margin = margin;
        let counts = run_waveform_trials(
            &scenario,
            &config,
            &TrialConfig {
                packets: 8,
                payload_symbols: 24,
                seed: 0xAB1A + (margin * 10.0) as u64,
            },
        );
        let accuracy = (1.0 - counts.ser()) * 100.0;
        table.add_row(vec![
            format!("{margin:.1}x"),
            fmt(config.sampler_rate() / 1e3, 1),
            fmt(accuracy, 2),
        ]);
        json_rows.push(serde_json::json!({
            "margin": margin,
            "sampler_rate_khz": config.sampler_rate() / 1e3,
            "symbol_accuracy": accuracy / 100.0,
        }));
    }
    table.print();
    println!("Note: at exactly 1.0x the sampler happens to take an integer number of");
    println!("samples per symbol, which hides the problem; any real clock offset breaks");
    println!("that alignment (the 1.1-1.2x rows), and only from ~1.4x onward is decoding");
    println!("robust regardless of alignment.");
    println!("Paper (Table 1 discussion): the theoretical minimum rate exacerbates bit");
    println!("errors; Saiyan conservatively samples at 1.6x Nyquist (3.2*BW/2^(SF-K)).");
    saiyan_bench::write_json("ablation_sampling_margin", &serde_json::json!(json_rows));
}
