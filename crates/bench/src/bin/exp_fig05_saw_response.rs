//! Fig. 5 — amplitude-frequency response of the SAW filter.
//!
//! Sweeps 428–440 MHz and reports the gain, plus the amplitude variation over
//! the top 500/250/125 kHz below the 434 MHz band edge (25 / 9.5 / 7.2 dB in
//! the paper).

use analog::saw::SawFilter;
use rfsim::units::Hertz;
use saiyan_bench::{fmt, Table};

fn main() {
    let saw = SawFilter::paper_b3790();
    let mut table = Table::new(
        "Fig. 5: SAW filter amplitude-frequency response",
        &["frequency (MHz)", "gain (dB)"],
    );
    let curve = saw.response_curve(Hertz::from_mhz(428.0), Hertz::from_mhz(440.0), 49);
    let mut json_rows = Vec::new();
    for p in &curve {
        table.add_row(vec![fmt(p.frequency.mhz(), 2), fmt(p.gain.value(), 1)]);
        json_rows.push(serde_json::json!({
            "frequency_mhz": p.frequency.mhz(),
            "gain_db": p.gain.value(),
        }));
    }
    table.print();

    let mut summary = Table::new(
        "Amplitude variation up to the 434 MHz band edge",
        &["sweep width", "measured gap (dB)", "paper (dB)"],
    );
    for (khz, paper) in [(500.0, 25.0), (250.0, 9.5), (125.0, 7.2)] {
        let gap = saw.amplitude_gap(Hertz::from_mhz(434.0), Hertz::from_khz(khz));
        summary.add_row(vec![
            format!("{khz:.0} kHz"),
            fmt(gap.value(), 1),
            fmt(paper, 1),
        ]);
    }
    summary.add_row(vec![
        "insertion loss".into(),
        fmt(-saw.gain_at(Hertz::from_mhz(434.0)).value(), 1),
        "10.0".into(),
    ]);
    summary.print();
    saiyan_bench::write_json("fig05_saw_response", &serde_json::json!(json_rows));
}
