//! Fig. 2 — BER of PLoRa and Aloba backscatter uplinks vs tag-to-Tx distance.
//!
//! The transmitter and receiver are 100 m apart; the tag moves from 0.1 m to
//! 20 m away from the transmitter. Both systems' BER climbs from well below
//! 1 % to effectively 50 % (undecodable), which is the packet-loss problem
//! that motivates the Saiyan feedback loop.

use netsim::{BackscatterScenario, UplinkSystem};
use rfsim::units::Meters;
use saiyan_bench::{fmt, fmt_ber, Table};

fn main() {
    let distances = [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0];
    let mut table = Table::new(
        "Fig. 2: backscatter uplink BER vs tag-to-Tx distance (Tx-Rx = 100 m)",
        &["tag-to-Tx (m)", "uplink SNR (dB)", "PLoRa BER", "Aloba BER"],
    );
    let mut json_rows = Vec::new();
    for &d in &distances {
        let s = BackscatterScenario::fig2(Meters(d));
        let plora = s.ber(UplinkSystem::PLoRa);
        let aloba = s.ber(UplinkSystem::Aloba);
        table.add_row(vec![
            fmt(d, 1),
            fmt(s.snr().value(), 1),
            fmt_ber(plora),
            fmt_ber(aloba),
        ]);
        json_rows.push(serde_json::json!({
            "distance_m": d,
            "snr_db": s.snr().value(),
            "plora_ber": plora,
            "aloba_ber": aloba,
        }));
    }
    table.print();
    println!("Paper: BER of both systems rises from <1% to >50% by 20 m; the");
    println!("receiver can no longer demodulate once the tag is ~20 m from the Tx.");
    saiyan_bench::write_json("fig02_baseline_ber", &serde_json::json!(json_rows));
}
