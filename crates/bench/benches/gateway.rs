//! Criterion benchmarks of the multi-channel gateway: the channelizer
//! kernel, an N = 1 passthrough gateway (thread/merge overhead over the
//! plain streaming receiver), and the 4-channel concurrent pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::multichannel::{
    generate_multichannel_trace, hopping_traffic, HoppingTrafficConfig, MultiChannelConfig,
};
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::gateway::{Gateway, GatewayChannel, GatewayConfig};

const PAYLOAD_SYMBOLS: usize = 8;
const N_CHANNELS: usize = 4;
const DECIMATION: usize = 6;

fn lora250() -> LoraParams {
    LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz250,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(2)
}

fn four_channel_trace() -> (MultiChannelConfig, lora_phy::iq::SampleBuffer) {
    let cfg = MultiChannelConfig::new(
        lora250(),
        DECIMATION,
        MultiChannelConfig::grid_offsets(N_CHANNELS),
    )
    .with_noise(-85.0);
    let packets = hopping_traffic(&HoppingTrafficConfig {
        n_tags: N_CHANNELS,
        packets_per_tag: 1,
        n_channels: N_CHANNELS,
        payload_symbols: PAYLOAD_SYMBOLS,
        k: lora250().bits_per_chirp,
        slot_symbols: PAYLOAD_SYMBOLS as f64 + 20.0,
        lead_in_symbols: 4.0,
        base_power_dbm: -43.0,
        power_spread_db: 1.5,
        max_cfo_hz: 500.0,
        seed: 0xBE9C,
    });
    let (trace, _) = generate_multichannel_trace(&cfg, &packets);
    (cfg, trace)
}

fn bench_channelizer(c: &mut Criterion) {
    let (cfg, trace) = four_channel_trace();
    let spec = analog::channelizer::ChannelizerSpec::for_channel(-750_000.0, 250_000.0, DECIMATION)
        .with_taps(64);
    c.bench_function("gateway/channelizer_64tap_d6", |b| {
        b.iter(|| {
            let mut state = spec.streaming(cfg.wideband_rate());
            let mut n = 0usize;
            for chunk in trace.samples.chunks(16_384) {
                n += state.process_chunk(chunk).len();
            }
            n
        })
    });
}

fn bench_four_channel_gateway(c: &mut Criterion) {
    let (cfg, trace) = four_channel_trace();
    // Both profiles: the exact analog chain with the noise model off (the
    // PR 3 configuration) and the production profile the gateway deploys
    // (additionally enabling the anchored-recurrence oscillator/phasor).
    for (label, production) in [
        ("four_channel_concurrent", false),
        ("four_channel_production", true),
    ] {
        let channels: Vec<GatewayChannel> = MultiChannelConfig::grid_offsets(N_CHANNELS)
            .iter()
            .enumerate()
            .map(|(i, &offset)| {
                let base = SaiyanConfig::narrowband_streaming(lora250(), Variant::Vanilla)
                    .with_analog_noise(false);
                GatewayChannel::new(
                    i as u8,
                    offset,
                    if production {
                        base.high_throughput()
                    } else {
                        base
                    },
                    PAYLOAD_SYMBOLS,
                )
            })
            .collect();
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(N_CHANNELS);
        let config = GatewayConfig::new(cfg.wideband_rate(), channels)
            .with_channelizer_taps(64)
            .with_worker_threads(workers);
        c.bench_function(format!("gateway/{label}"), |b| {
            b.iter(|| Gateway::run_trace(config.clone(), &trace, 16_384).len())
        });
    }
}

fn bench_passthrough_overhead(c: &mut Criterion) {
    // N = 1 passthrough gateway vs plain StreamingDemodulator on one channel.
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    );
    let cfg = MultiChannelConfig::new(lora, 1, vec![0.0]).with_noise(-85.0);
    let packets = hopping_traffic(&HoppingTrafficConfig {
        n_tags: 1,
        packets_per_tag: 2,
        n_channels: 1,
        payload_symbols: PAYLOAD_SYMBOLS,
        k: lora.bits_per_chirp,
        slot_symbols: PAYLOAD_SYMBOLS as f64 + 18.0,
        lead_in_symbols: 4.0,
        base_power_dbm: -50.0,
        power_spread_db: 0.0,
        max_cfo_hz: 0.0,
        seed: 0x90FF,
    });
    let (trace, _) = generate_multichannel_trace(&cfg, &packets);
    let demod_cfg = SaiyanConfig::paper_default(lora, Variant::Vanilla);
    c.bench_function("gateway/n1_passthrough", |b| {
        b.iter(|| {
            Gateway::run_trace(
                GatewayConfig::single_channel(demod_cfg.clone(), PAYLOAD_SYMBOLS),
                &trace,
                16_384,
            )
            .len()
        })
    });
    c.bench_function("gateway/n1_reference_streaming_demod", |b| {
        b.iter(|| {
            saiyan::StreamingDemodulator::new(demod_cfg.clone(), PAYLOAD_SYMBOLS)
                .run_to_end(&trace)
                .len()
        })
    });
}

criterion_group!(
    benches,
    bench_channelizer,
    bench_four_channel_gateway,
    bench_passthrough_overhead
);
criterion_main!(benches);
