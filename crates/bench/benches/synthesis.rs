//! Criterion benchmarks of the waveform synthesis fast path: template
//! packet assembly vs the oscillator-path modulator, the block AWGN fill vs
//! the per-sample draw loop, and slice-kernel emission mixing vs the
//! per-sample indexed reference.
//!
//! Sizes mirror the `exp_network_scale` 100-tag waveform row: SF7 /
//! 250 kHz / K = 2 packets modulated at the 3 Msps wideband rate
//! (oversampling 12 after the 4-channel grid maths), ~68 K samples per
//! packet, 16 Ki-sample chunks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lora_phy::iq::Iq;
use lora_phy::modulator::{Alphabet, Modulator};
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use lora_phy::templates::PacketTemplates;
use netsim::synthesis::EmissionMixer;
use rfsim::noise::AwgnSource;

/// The waveform-path wideband parameter set (3 Msps at SF7 / 250 kHz).
fn wideband_params() -> LoraParams {
    LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz250,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(12)
}

fn packet_symbols() -> Vec<u32> {
    (0..44).map(|i| (i * 7) % 4).collect()
}

fn bench_packet_assembly(c: &mut Criterion) {
    let p = wideband_params();
    let symbols = packet_symbols();
    let templates = PacketTemplates::new(p, Alphabet::Downlink);
    let modulator = Modulator::new(p);
    let n = templates.packet_samples(symbols.len());
    let scale = 0.003_162;

    c.bench_function("synthesis/assembly/oscillator_modulator", |b| {
        b.iter(|| {
            let (wave, _) = modulator.packet(&symbols, Alphabet::Downlink).unwrap();
            wave.scaled(scale)
        })
    });
    c.bench_function("synthesis/assembly/template_cache", |b| {
        b.iter_batched(
            || Vec::with_capacity(n),
            |mut out| {
                templates
                    .assemble_scaled_extend(&symbols, scale, &mut out)
                    .unwrap();
                out
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_block_awgn(c: &mut Criterion) {
    let n = 1 << 20;
    let variance = 3.16e-12;
    c.bench_function("synthesis/awgn/per_sample_add_1M", |b| {
        let mut src = AwgnSource::new(0x5A1A);
        b.iter_batched(
            || vec![Iq::ONE; n],
            |mut buf| {
                for s in buf.iter_mut() {
                    *s += src.sample(variance);
                }
                buf
            },
            BatchSize::LargeInput,
        )
    });
    c.bench_function("synthesis/awgn/block_add_1M", |b| {
        let mut src = AwgnSource::new(0x5A1A);
        b.iter_batched(
            || vec![Iq::ONE; n],
            |mut buf| {
                src.add_noise_in_place(&mut buf, variance);
                buf
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_emission_mixing(c: &mut Criterion) {
    let fs = 3.0e6;
    let chunk_len = 16_384usize;
    // Four overlapping emissions (one per channel), ~68 K samples each —
    // the saturated-cell mixing load of the 100-tag row.
    let offsets = [-750e3, -250e3, 250e3, 750e3];
    let emission_len = 68_000usize;
    let make_samples = |salt: f64| -> Vec<Iq> {
        (0..emission_len)
            .map(|i| Iq::phasor(salt + 0.0173 * i as f64).scale(1.6e-5))
            .collect()
    };

    c.bench_function("synthesis/mix/per_sample_phasor_4em_16k", |b| {
        let emissions: Vec<(u64, Vec<Iq>, f64)> = offsets
            .iter()
            .enumerate()
            .map(|(k, off)| {
                (
                    (k * 1000) as u64,
                    make_samples(k as f64),
                    2.0 * std::f64::consts::PI * off / fs,
                )
            })
            .collect();
        let mut chunk = vec![Iq::ZERO; chunk_len];
        b.iter(|| {
            chunk.fill(Iq::ZERO);
            let pos = 4000u64;
            let chunk_end = pos + chunk_len as u64;
            for (start, samples, step) in &emissions {
                let lo = (*start).max(pos);
                let hi = (start + samples.len() as u64).min(chunk_end);
                for i in lo..hi {
                    let s = samples[(i - start) as usize];
                    chunk[(i - pos) as usize] += s * Iq::phasor(step * i as f64);
                }
            }
            chunk[0]
        })
    });
    c.bench_function("synthesis/mix/anchored_kernels_4em_16k", |b| {
        b.iter_batched(
            || {
                let mut mixer = EmissionMixer::new();
                for (k, off) in offsets.iter().enumerate() {
                    mixer.push((k * 1000) as u64, make_samples(k as f64), 217.0, *off, fs);
                }
                (mixer, vec![Iq::ZERO; chunk_len])
            },
            |(mut mixer, mut chunk)| {
                mixer.mix_into(&mut chunk, 4000);
                chunk[0]
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_packet_assembly,
    bench_block_awgn,
    bench_emission_mixing
);
criterion_main!(benches);
