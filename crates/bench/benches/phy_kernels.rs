//! Criterion benchmarks of the LoRa PHY kernels: chirp modulation, FFT
//! demodulation, and the FEC coding chain.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lora_phy::fec::{decode_payload, encode_payload};
use lora_phy::modulator::{Alphabet, Modulator};
use lora_phy::params::{Bandwidth, BitsPerChirp, CodeRate, LoraParams, SpreadingFactor};
use lora_phy::{ChirpGenerator, StandardDemodulator};

fn params() -> LoraParams {
    LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
}

fn bench_chirp_generation(c: &mut Criterion) {
    let gen = ChirpGenerator::new(params());
    c.bench_function("chirp/base_upchirp_sf7_bw500", |b| {
        b.iter(|| gen.base_upchirp())
    });
    c.bench_function("chirp/downlink_symbol", |b| {
        b.iter(|| gen.downlink_chirp(3).unwrap())
    });
}

fn bench_packet_modulation(c: &mut Criterion) {
    let m = Modulator::new(params());
    let symbols: Vec<u32> = (0..32).map(|i| i % 4).collect();
    c.bench_function("modulator/packet_32_symbols", |b| {
        b.iter(|| m.packet(&symbols, Alphabet::Downlink).unwrap())
    });
}

fn bench_standard_demodulation(c: &mut Criterion) {
    let p = params();
    let m = Modulator::new(p);
    let d = StandardDemodulator::new(p);
    let symbols: Vec<u32> = (0..32).map(|i| i % 4).collect();
    let (wave, layout) = m.packet(&symbols, Alphabet::Downlink).unwrap();
    c.bench_function("standard_demod/payload_32_symbols", |b| {
        b.iter(|| {
            d.demodulate_payload(&wave, layout.payload_start, 32, Alphabet::Downlink)
                .unwrap()
        })
    });
    c.bench_function("standard_demod/preamble_detection", |b| {
        b.iter(|| d.detect_preamble(&wave).unwrap())
    });
}

fn bench_fec_chain(c: &mut Criterion) {
    let data: Vec<u8> = (0..64u8).collect();
    c.bench_function("fec/encode_64B_sf7_cr48", |b| {
        b.iter(|| encode_payload(&data, SpreadingFactor::Sf7, CodeRate::Cr48).unwrap())
    });
    let symbols = encode_payload(&data, SpreadingFactor::Sf7, CodeRate::Cr48).unwrap();
    c.bench_function("fec/decode_64B_sf7_cr48", |b| {
        b.iter_batched(
            || symbols.clone(),
            |s| decode_payload(&s, SpreadingFactor::Sf7, CodeRate::Cr48, data.len()).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_chirp_generation,
    bench_packet_modulation,
    bench_standard_demodulation,
    bench_fec_chain
);
criterion_main!(benches);
