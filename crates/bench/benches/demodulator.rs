//! Criterion benchmarks of the end-to-end Saiyan demodulator and the
//! link-abstraction evaluation path.

use criterion::{criterion_group, criterion_main, Criterion};
use lora_phy::modulator::{Alphabet, Modulator};
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::{paper_demodulation_range, run_link_trials, Scenario, TrialConfig};
use rfsim::channel::dbm_to_buffer_power;
use rfsim::units::{Dbm, Meters};
use saiyan::{SaiyanConfig, SaiyanDemodulator, Variant};

fn setup(variant: Variant) -> (SaiyanDemodulator, lora_phy::SampleBuffer, usize, Vec<u32>) {
    let lora = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(8);
    let cfg = SaiyanConfig::paper_default(lora, variant);
    let demod = SaiyanDemodulator::new(cfg);
    let symbols: Vec<u32> = (0..16).map(|i| i % 4).collect();
    let (wave, layout) = Modulator::new(lora)
        .packet_with_guard(&symbols, Alphabet::Downlink, 2)
        .unwrap();
    let rx = wave.scaled(dbm_to_buffer_power(Dbm(-50.0)).sqrt());
    (demod, rx, layout.payload_start, symbols)
}

fn bench_demodulator(c: &mut Criterion) {
    for variant in [Variant::Vanilla, Variant::WithShifting, Variant::Super] {
        let (demod, rx, payload_start, symbols) = setup(variant);
        c.bench_function(format!("saiyan/demod_aligned_16sym_{variant:?}"), |b| {
            b.iter(|| {
                demod
                    .demodulate_aligned(&rx, payload_start, symbols.len())
                    .unwrap()
            })
        });
    }
    let (demod, rx, _, symbols) = setup(Variant::WithShifting);
    c.bench_function("saiyan/demod_blind_with_preamble_detection", |b| {
        b.iter(|| demod.demodulate(&rx, symbols.len()).unwrap())
    });
}

fn bench_link_abstraction(c: &mut Criterion) {
    let scenario = Scenario::outdoor_default(Meters(120.0));
    c.bench_function("netsim/link_trials_1000_packets", |b| {
        b.iter(|| {
            run_link_trials(
                &scenario,
                &TrialConfig {
                    packets: 1000,
                    payload_symbols: 32,
                    seed: 1,
                },
            )
        })
    });
    let template = Scenario::outdoor_default(Meters(1.0));
    c.bench_function("netsim/demodulation_range_search", |b| {
        b.iter(|| paper_demodulation_range(&template))
    });
}

criterion_group!(benches, bench_demodulator, bench_link_abstraction);
criterion_main!(benches);
