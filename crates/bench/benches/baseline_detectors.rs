//! Criterion benchmarks of the baseline packet detectors (PLoRa, Aloba,
//! conventional envelope receiver) against the Saiyan detector.

use baselines::{AlobaDetector, EnvelopeReceiver, PLoRaDetector, PacketDetector};
use criterion::{criterion_group, criterion_main, Criterion};
use lora_phy::modulator::{Alphabet, Modulator};
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use rfsim::channel::dbm_to_buffer_power;
use rfsim::noise::AwgnSource;
use rfsim::units::Dbm;

fn capture() -> (lora_phy::SampleBuffer, LoraParams) {
    let params = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    );
    let (wave, _) = Modulator::new(params)
        .packet_with_guard(&[0, 1, 2, 3], Alphabet::Downlink, 8)
        .unwrap();
    let mut rx = wave.scaled(dbm_to_buffer_power(Dbm(-60.0)).sqrt());
    let mut awgn = AwgnSource::new(9);
    awgn.add_to(&mut rx, dbm_to_buffer_power(Dbm(-110.0)));
    (rx, params)
}

fn bench_detectors(c: &mut Criterion) {
    let (rx, params) = capture();
    let plora = PLoRaDetector::new(params);
    let aloba = AlobaDetector::new(params);
    let envelope = EnvelopeReceiver::new(params);
    c.bench_function("detect/plora_cross_correlation", |b| {
        b.iter(|| plora.detect(&rx))
    });
    c.bench_function("detect/aloba_rssi_pattern", |b| {
        b.iter(|| aloba.detect(&rx))
    });
    c.bench_function("detect/conventional_envelope", |b| {
        b.iter(|| envelope.detect(&rx))
    });
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
