//! Criterion benchmarks of the streaming receive chain: whole-pipeline
//! samples/sec and the per-stage cost of the analog front end.

use criterion::{criterion_group, criterion_main, Criterion};
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use netsim::longtrace::{generate_long_trace, random_payloads, LongTraceConfig, TracePacket};
use saiyan::config::{SaiyanConfig, Variant};
use saiyan::{Frontend, StreamingDemodulator};

fn lora() -> LoraParams {
    LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
}

fn trace(packets: usize) -> lora_phy::SampleBuffer {
    let payloads = random_payloads(packets, 8, lora().bits_per_chirp, 0xBE7C);
    let specs: Vec<TracePacket> = payloads
        .into_iter()
        .enumerate()
        .map(|(i, p)| TracePacket::new(p, -50.0, if i == 0 { 3.0 } else { 14.0 }))
        .collect();
    generate_long_trace(&LongTraceConfig::new(lora()).with_noise(-82.0), &specs).0
}

fn bench_streaming_demodulator(c: &mut Criterion) {
    let rx = trace(3);
    for variant in [Variant::Vanilla, Variant::Super] {
        for production in [false, true] {
            let base = SaiyanConfig::paper_default(lora(), variant);
            let (cfg, label) = if production {
                (base.high_throughput(), format!("{variant:?}_production"))
            } else {
                (base, format!("{variant:?}"))
            };
            c.bench_function(format!("streaming/demod_3pkt_{label}"), |b| {
                b.iter(|| {
                    let mut demod = StreamingDemodulator::new(cfg.clone(), 8);
                    let mut out = Vec::new();
                    for chunk in rx.samples.chunks(4096) {
                        out.extend(demod.push_samples(chunk));
                    }
                    out.extend(demod.finish());
                    out
                })
            });
        }
    }
}

fn bench_streaming_frontend(c: &mut Criterion) {
    let rx = trace(1);
    let cfg = SaiyanConfig::paper_default(lora(), Variant::WithShifting);
    c.bench_function("streaming/frontend_chunked_4096", |b| {
        b.iter(|| {
            let mut fe = Frontend::paper(&cfg).streaming(lora().sample_rate());
            let mut n = 0usize;
            for chunk in rx.samples.chunks(4096) {
                n += fe.process_chunk(chunk).len();
            }
            n
        })
    });
}

criterion_group!(
    benches,
    bench_streaming_demodulator,
    bench_streaming_frontend
);
criterion_main!(benches);
