//! Criterion benchmarks of the analog front-end models: SAW transformation,
//! envelope detection, the cyclic-frequency-shifting chain, and the
//! comparator.

use analog::comparator::DoubleThresholdComparator;
use analog::envelope::EnvelopeDetector;
use analog::saw::SawFilter;
use analog::shifting::{CyclicFrequencyShifter, ShiftingConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
use lora_phy::ChirpGenerator;
use rfsim::units::Hertz;

fn chirp() -> (lora_phy::SampleBuffer, LoraParams) {
    let params = LoraParams::new(
        SpreadingFactor::Sf7,
        Bandwidth::Khz500,
        BitsPerChirp::new(2).unwrap(),
    )
    .with_oversampling(8);
    (ChirpGenerator::new(params).base_upchirp(), params)
}

fn bench_saw(c: &mut Criterion) {
    let (chirp, params) = chirp();
    let saw = SawFilter::paper_b3790();
    c.bench_function("saw/apply_one_symbol", |b| {
        b.iter(|| saw.apply(&chirp, Hertz(params.carrier_hz)))
    });
    c.bench_function("saw/gain_lookup", |b| {
        b.iter(|| saw.gain_at(Hertz::from_mhz(433.75)))
    });
}

fn bench_envelope_and_shifting(c: &mut Criterion) {
    let (chirp, params) = chirp();
    let saw = SawFilter::paper_b3790();
    let transformed = saw.apply(&chirp, Hertz(params.carrier_hz));
    let detector = EnvelopeDetector::default();
    c.bench_function("envelope/detect_one_symbol", |b| {
        b.iter(|| detector.detect(&transformed))
    });
    let shifter = CyclicFrequencyShifter::new(
        ShiftingConfig::for_bandwidth(params.bw.hz()),
        EnvelopeDetector::default(),
    );
    c.bench_function("shifting/full_chain_one_symbol", |b| {
        b.iter(|| shifter.process(&transformed))
    });
}

fn bench_comparator(c: &mut Criterion) {
    let (chirp, params) = chirp();
    let saw = SawFilter::paper_b3790();
    let envelope = EnvelopeDetector::ideal().detect(&saw.apply(&chirp, Hertz(params.carrier_hz)));
    let peak = envelope.max();
    let cmp = DoubleThresholdComparator::new(peak * 0.7, peak * 0.3);
    c.bench_function("comparator/double_threshold_one_symbol", |b| {
        b.iter(|| cmp.compare(&envelope))
    });
}

criterion_group!(
    benches,
    bench_saw,
    bench_envelope_and_shifting,
    bench_comparator
);
criterion_main!(benches);
