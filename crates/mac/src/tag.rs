//! Tag-side MAC session state machine.
//!
//! Glues the individual feedback-loop mechanisms together on the tag: it
//! buffers outgoing uplink packets for retransmission, applies downlink
//! commands (retransmit / hop / rate / sensor control / ACK), and contends in
//! slotted-ALOHA rounds when a broadcast command solicits acknowledgements.

use lora_phy::params::BitsPerChirp;
use rand::Rng;

use crate::aloha::AlohaState;
use crate::error::MacError;
use crate::hopping::{ChannelTable, TagChannelState};
use crate::packet::{Addressing, Command, DownlinkPacket, TagId, UplinkPacket};
use crate::retransmission::RetransmissionBuffer;

/// Actions the tag wants the radio/backscatter layer to perform after
/// processing an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagAction {
    /// Transmit (backscatter) an uplink packet.
    Transmit(UplinkPacket),
    /// Switch the backscatter/listening channel to the given centre frequency (Hz).
    SwitchChannel(u64),
    /// Change the downlink data rate.
    ChangeRate(u8),
    /// Turn a sensor on or off.
    SetSensor {
        /// Sensor index.
        sensor: u8,
        /// Desired state.
        enable: bool,
    },
}

/// The tag-side MAC session.
#[derive(Debug, Clone)]
pub struct TagSession {
    /// This tag's identity.
    pub id: TagId,
    /// Retransmission buffer for recent uplink packets.
    buffer: RetransmissionBuffer,
    /// Channel state (table + current channel).
    channel: TagChannelState,
    /// Current downlink/uplink rate (bits per chirp).
    rate: BitsPerChirp,
    /// Sensors currently enabled (bitmask over sensor indices 0..8).
    sensors_enabled: u8,
    /// Pending slotted-ALOHA contention state, if an ACK is queued.
    aloha: Option<(AlohaState, UplinkPacket)>,
    /// Number of slots used for ALOHA contention.
    aloha_slots: u32,
}

impl TagSession {
    /// Creates a session on the given channel table.
    pub fn new(id: TagId, table: ChannelTable, initial_channel: u8) -> Result<Self, MacError> {
        Ok(TagSession {
            id,
            buffer: RetransmissionBuffer::new(8),
            channel: TagChannelState::new(id, table, initial_channel)?,
            rate: BitsPerChirp::new(1).expect("1 is valid"),
            sensors_enabled: 0xFF,
            aloha: None,
            aloha_slots: 16,
        })
    }

    /// The tag's current channel centre frequency (Hz).
    pub fn frequency(&self) -> f64 {
        self.channel.frequency()
    }

    /// The tag's current bits-per-chirp rate.
    pub fn rate(&self) -> BitsPerChirp {
        self.rate
    }

    /// Whether a given sensor is enabled.
    pub fn sensor_enabled(&self, sensor: u8) -> bool {
        sensor < 8 && (self.sensors_enabled >> sensor) & 1 == 1
    }

    /// Number of unacknowledged uplink packets buffered for retransmission.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Queues a new sensor reading for uplink transmission; returns the
    /// transmit action carrying its sequence number.
    pub fn send_reading(&mut self, payload: Vec<u8>) -> TagAction {
        let sequence = self.buffer.push(payload.clone());
        TagAction::Transmit(UplinkPacket {
            source: self.id,
            sequence,
            is_ack: false,
            payload,
        })
    }

    /// Whether a downlink packet is addressed to this tag.
    fn addressed_to_us(&self, packet: &DownlinkPacket) -> bool {
        match packet.addressing {
            Addressing::Unicast(id) => id == self.id,
            Addressing::Multicast { .. } | Addressing::Broadcast => true,
        }
    }

    /// Whether the command needs a contended (ALOHA) acknowledgement: anything
    /// that is not unicast and not itself an ACK.
    fn needs_contended_ack(&self, packet: &DownlinkPacket) -> bool {
        !matches!(packet.addressing, Addressing::Unicast(_))
            && !matches!(packet.command, Command::Ack { .. })
    }

    /// Processes a successfully demodulated downlink packet. Returns the
    /// immediate actions the radio layer should perform.
    pub fn on_downlink(
        &mut self,
        packet: &DownlinkPacket,
        rng: &mut impl Rng,
    ) -> Result<Vec<TagAction>, MacError> {
        if !self.addressed_to_us(packet) {
            return Ok(Vec::new());
        }
        let mut actions = Vec::new();
        match packet.command {
            Command::Retransmit { sequence } => {
                let payload = self.buffer.get(sequence)?.to_vec();
                actions.push(TagAction::Transmit(UplinkPacket {
                    source: self.id,
                    sequence,
                    is_ack: false,
                    payload,
                }));
            }
            Command::ChannelHop { channel } => {
                if self.channel.apply(packet)? {
                    actions.push(TagAction::SwitchChannel(self.channel.frequency() as u64));
                }
                let _ = channel;
            }
            Command::SetRate { bits_per_chirp } => {
                let rate = BitsPerChirp::new(bits_per_chirp)
                    .map_err(|_| MacError::InvalidRate(bits_per_chirp))?;
                if rate != self.rate {
                    self.rate = rate;
                    actions.push(TagAction::ChangeRate(bits_per_chirp));
                }
            }
            Command::SensorControl { sensor, enable } => {
                if sensor < 8 {
                    if enable {
                        self.sensors_enabled |= 1 << sensor;
                    } else {
                        self.sensors_enabled &= !(1 << sensor);
                    }
                }
                actions.push(TagAction::SetSensor { sensor, enable });
            }
            Command::Ack { sequence } => {
                self.buffer.acknowledge(sequence);
            }
        }

        // Multicast/broadcast commands are acknowledged through slotted ALOHA
        // (paper §4.4); unicast commands are answered directly where needed.
        if self.needs_contended_ack(packet) {
            let ack = UplinkPacket {
                source: self.id,
                sequence: 0,
                is_ack: true,
                payload: Vec::new(),
            };
            self.aloha = Some((AlohaState::new(self.id, self.aloha_slots, rng), ack));
        } else if matches!(packet.addressing, Addressing::Unicast(_))
            && !matches!(
                packet.command,
                Command::Ack { .. } | Command::Retransmit { .. }
            )
        {
            actions.push(TagAction::Transmit(UplinkPacket {
                source: self.id,
                sequence: 0,
                is_ack: true,
                payload: Vec::new(),
            }));
        }
        Ok(actions)
    }

    /// Called when the access point signals the start of an ALOHA slot with a
    /// carrier burst. Returns the ACK to transmit if this tag's slot came up.
    pub fn on_carrier(&mut self) -> Option<TagAction> {
        let (state, ack) = self.aloha.as_mut()?;
        if state.on_carrier() {
            let action = TagAction::Transmit(ack.clone());
            self.aloha = None;
            Some(action)
        } else {
            None
        }
    }

    /// Whether the tag is still waiting for its ALOHA slot.
    pub fn awaiting_slot(&self) -> bool {
        self.aloha.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn session() -> TagSession {
        TagSession::new(TagId(5), ChannelTable::paper_433mhz(), 2).unwrap()
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    #[test]
    fn readings_are_buffered_and_retransmittable() {
        let mut tag = session();
        let action = tag.send_reading(vec![1, 2, 3]);
        let seq = match &action {
            TagAction::Transmit(p) => p.sequence,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(tag.buffered(), 1);

        // The AP asks for a retransmission of that sequence.
        let retx = DownlinkPacket {
            addressing: Addressing::Unicast(TagId(5)),
            command: Command::Retransmit { sequence: seq },
        };
        let actions = tag.on_downlink(&retx, &mut rng()).unwrap();
        assert!(matches!(
            &actions[0],
            TagAction::Transmit(p) if p.payload == vec![1, 2, 3] && p.sequence == seq
        ));

        // An ACK clears the buffer entry.
        let ack = DownlinkPacket {
            addressing: Addressing::Unicast(TagId(5)),
            command: Command::Ack { sequence: seq },
        };
        tag.on_downlink(&ack, &mut rng()).unwrap();
        assert_eq!(tag.buffered(), 0);
    }

    #[test]
    fn unknown_sequence_retransmission_is_an_error() {
        let mut tag = session();
        let retx = DownlinkPacket {
            addressing: Addressing::Unicast(TagId(5)),
            command: Command::Retransmit { sequence: 9 },
        };
        assert!(matches!(
            tag.on_downlink(&retx, &mut rng()),
            Err(MacError::UnknownSequence(9))
        ));
    }

    #[test]
    fn commands_for_other_tags_are_ignored() {
        let mut tag = session();
        let other = DownlinkPacket {
            addressing: Addressing::Unicast(TagId(6)),
            command: Command::ChannelHop { channel: 0 },
        };
        assert!(tag.on_downlink(&other, &mut rng()).unwrap().is_empty());
        assert_eq!(tag.frequency(), 434.0e6);
    }

    #[test]
    fn hop_rate_and_sensor_commands_change_state() {
        let mut tag = session();
        let hop = DownlinkPacket {
            addressing: Addressing::Unicast(TagId(5)),
            command: Command::ChannelHop { channel: 4 },
        };
        let actions = tag.on_downlink(&hop, &mut rng()).unwrap();
        assert!(actions
            .iter()
            .any(|a| matches!(a, TagAction::SwitchChannel(_))));
        assert_eq!(tag.frequency(), 435.0e6);

        let rate = DownlinkPacket {
            addressing: Addressing::Unicast(TagId(5)),
            command: Command::SetRate { bits_per_chirp: 4 },
        };
        let actions = tag.on_downlink(&rate, &mut rng()).unwrap();
        assert!(actions
            .iter()
            .any(|a| matches!(a, TagAction::ChangeRate(4))));
        assert_eq!(tag.rate().bits(), 4);

        let sensor = DownlinkPacket {
            addressing: Addressing::Unicast(TagId(5)),
            command: Command::SensorControl {
                sensor: 2,
                enable: false,
            },
        };
        tag.on_downlink(&sensor, &mut rng()).unwrap();
        assert!(!tag.sensor_enabled(2));
        assert!(tag.sensor_enabled(3));
    }

    #[test]
    fn broadcast_commands_trigger_aloha_contention() {
        let mut tag = session();
        let broadcast = DownlinkPacket {
            addressing: Addressing::Broadcast,
            command: Command::SensorControl {
                sensor: 0,
                enable: false,
            },
        };
        tag.on_downlink(&broadcast, &mut rng()).unwrap();
        assert!(tag.awaiting_slot());
        // The ACK comes out after at most `aloha_slots` carrier bursts.
        let mut fired = false;
        for _ in 0..16 {
            if let Some(TagAction::Transmit(p)) = tag.on_carrier() {
                assert!(p.is_ack);
                fired = true;
                break;
            }
        }
        assert!(fired);
        assert!(!tag.awaiting_slot());
    }

    #[test]
    fn unicast_non_ack_commands_get_an_immediate_ack() {
        let mut tag = session();
        let unicast = DownlinkPacket {
            addressing: Addressing::Unicast(TagId(5)),
            command: Command::SetRate { bits_per_chirp: 3 },
        };
        let actions = tag.on_downlink(&unicast, &mut rng()).unwrap();
        assert!(actions
            .iter()
            .any(|a| matches!(a, TagAction::Transmit(p) if p.is_ack)));
        assert!(!tag.awaiting_slot());
    }
}
