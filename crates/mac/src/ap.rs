//! Access-point-side MAC session state machine.
//!
//! The access point owns the feedback loop: it tracks which uplink packets
//! arrived from each tag, issues retransmission requests for the missing
//! ones, monitors interference and commands channel hops, and runs the rate
//! adapter from per-tag link-margin reports.

use lora_phy::params::BitsPerChirp;

use crate::error::MacError;
use crate::hopping::{ChannelTable, HoppingController};
use crate::packet::{Addressing, Command, DownlinkPacket, TagId, UplinkPacket};
use crate::rate::RateAdapter;
use crate::retransmission::ArqTracker;

/// Per-tag bookkeeping at the access point.
#[derive(Debug, Clone)]
struct TagRecord {
    tracker: ArqTracker,
    /// Last link margin (dB above the K=1 threshold) reported for this tag.
    last_margin_db: Option<f64>,
    /// Payloads received in order of arrival.
    received: Vec<(u8, Vec<u8>)>,
}

/// The access-point MAC session.
#[derive(Debug, Clone)]
pub struct AccessPoint {
    /// Per-tag state, keyed by tag id.
    tags: Vec<(TagId, TagRecord)>,
    /// The hopping controller for the shared channel.
    pub hopping: HoppingController,
    /// The rate adapter.
    pub rate: RateAdapter,
    /// Maximum retransmission requests per lost packet.
    pub max_retries: u32,
}

impl AccessPoint {
    /// Creates an access point on the given channel table.
    pub fn new(
        table: ChannelTable,
        initial_channel: u8,
        max_retries: u32,
    ) -> Result<Self, MacError> {
        Ok(AccessPoint {
            tags: Vec::new(),
            hopping: HoppingController::new(table, initial_channel, -70.0)?,
            rate: RateAdapter::default(),
            max_retries,
        })
    }

    /// Registers a tag so losses can be tracked for it.
    pub fn register_tag(&mut self, tag: TagId) {
        if self.record(tag).is_none() {
            self.tags.push((
                tag,
                TagRecord {
                    tracker: ArqTracker::new(tag, self.max_retries),
                    last_margin_db: None,
                    received: Vec::new(),
                },
            ));
        }
    }

    fn record(&mut self, tag: TagId) -> Option<&mut TagRecord> {
        self.tags
            .iter_mut()
            .find(|(t, _)| *t == tag)
            .map(|(_, r)| r)
    }

    /// Number of registered tags.
    pub fn tag_count(&self) -> usize {
        self.tags.len()
    }

    /// Payloads successfully received from a tag.
    pub fn received_from(&self, tag: TagId) -> Vec<Vec<u8>> {
        self.tags
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, r)| r.received.iter().map(|(_, p)| p.clone()).collect())
            .unwrap_or_default()
    }

    /// Called when an uplink packet is decoded successfully.
    pub fn on_uplink(&mut self, packet: &UplinkPacket) {
        let tag = packet.source;
        self.register_tag(tag);
        let record = self.record(tag).expect("registered above");
        record.tracker.record_reception(packet.sequence);
        if !packet.is_ack
            && !record
                .received
                .iter()
                .any(|(seq, _)| *seq == packet.sequence)
        {
            record
                .received
                .push((packet.sequence, packet.payload.clone()));
        }
    }

    /// Called when an expected uplink packet (sequence `seq` from `tag`) was
    /// not decoded. Returns the retransmission request to send, if the retry
    /// budget allows one.
    pub fn on_uplink_loss(&mut self, tag: TagId, seq: u8) -> Option<DownlinkPacket> {
        self.register_tag(tag);
        let record = self.record(tag).expect("registered above");
        record.tracker.record_loss(seq);
        record
            .tracker
            .next_request()
            .map(|sequence| DownlinkPacket {
                addressing: Addressing::Unicast(tag),
                command: Command::Retransmit { sequence },
            })
    }

    /// Issues a follow-up retransmission request for a tag, if any packet is
    /// still missing and within budget.
    pub fn next_retransmission_request(&mut self, tag: TagId) -> Option<DownlinkPacket> {
        let record = self.record(tag)?;
        record
            .tracker
            .next_request()
            .map(|sequence| DownlinkPacket {
                addressing: Addressing::Unicast(tag),
                command: Command::Retransmit { sequence },
            })
    }

    /// Records a spectrum measurement and returns the hop command to broadcast
    /// if the current channel is jammed.
    pub fn on_spectrum_scan(&mut self, channel: u8, level_dbm: f64) -> Option<DownlinkPacket> {
        if self
            .hopping
            .record_interference(channel, level_dbm)
            .is_err()
        {
            return None;
        }
        self.hopping.maybe_hop()
    }

    /// Records a link-margin estimate for a tag and returns the rate command
    /// to send if the rate should change.
    pub fn on_link_measurement(&mut self, tag: TagId, margin_db: f64) -> Option<DownlinkPacket> {
        self.register_tag(tag);
        if let Some(record) = self.record(tag) {
            record.last_margin_db = Some(margin_db);
        }
        self.rate.update(tag, margin_db)
    }

    /// The rate currently commanded for a tag.
    pub fn commanded_rate(&self, tag: TagId) -> BitsPerChirp {
        self.rate.current_rate(tag)
    }

    /// Sequence numbers from a tag that were lost for good (retry budget spent).
    pub fn abandoned(&self, tag: TagId) -> Vec<u8> {
        self.tags
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, r)| r.tracker.given_up())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap() -> AccessPoint {
        AccessPoint::new(ChannelTable::paper_433mhz(), 2, 2).unwrap()
    }

    #[test]
    fn losses_trigger_bounded_retransmission_requests() {
        let mut ap = ap();
        let tag = TagId(3);
        let req = ap.on_uplink_loss(tag, 7).expect("first request");
        assert!(matches!(req.command, Command::Retransmit { sequence: 7 }));
        // One more request allowed, then the budget (2) is exhausted.
        assert!(ap.next_retransmission_request(tag).is_some());
        assert!(ap.next_retransmission_request(tag).is_none());
        assert_eq!(ap.abandoned(tag), vec![7]);
    }

    #[test]
    fn reception_clears_outstanding_losses_and_stores_payload() {
        let mut ap = ap();
        let tag = TagId(4);
        ap.on_uplink_loss(tag, 1);
        ap.on_uplink(&UplinkPacket {
            source: tag,
            sequence: 1,
            is_ack: false,
            payload: vec![9, 9],
        });
        assert!(ap.next_retransmission_request(tag).is_none());
        assert_eq!(ap.received_from(tag), vec![vec![9, 9]]);
        // Duplicate delivery is not stored twice.
        ap.on_uplink(&UplinkPacket {
            source: tag,
            sequence: 1,
            is_ack: false,
            payload: vec![9, 9],
        });
        assert_eq!(ap.received_from(tag).len(), 1);
    }

    #[test]
    fn spectrum_scans_drive_channel_hops() {
        let mut ap = ap();
        for ch in 0..5u8 {
            assert!(ap.on_spectrum_scan(ch, -95.0).is_none());
        }
        let hop = ap.on_spectrum_scan(2, -40.0).expect("should hop");
        assert!(matches!(hop.command, Command::ChannelHop { .. }));
        assert!(matches!(hop.addressing, Addressing::Broadcast));
    }

    #[test]
    fn link_measurements_drive_rate_commands() {
        let mut ap = ap();
        let tag = TagId(9);
        let cmd = ap.on_link_measurement(tag, 14.0).expect("rate upgrade");
        assert!(matches!(
            cmd.command,
            Command::SetRate { bits_per_chirp: 5 }
        ));
        assert_eq!(ap.commanded_rate(tag).bits(), 5);
        // No change on a repeat measurement.
        assert!(ap.on_link_measurement(tag, 14.0).is_none());
    }

    #[test]
    fn registering_twice_is_idempotent() {
        let mut ap = ap();
        ap.register_tag(TagId(1));
        ap.register_tag(TagId(1));
        assert_eq!(ap.tag_count(), 1);
    }
}
