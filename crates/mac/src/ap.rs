//! Access-point-side MAC session state machine.
//!
//! The access point owns the feedback loop: it tracks which uplink packets
//! arrived from each tag, issues retransmission requests for the missing
//! ones, monitors interference and commands channel hops, and runs the rate
//! adapter from per-tag link-margin reports.

use lora_phy::params::BitsPerChirp;

use crate::error::MacError;
use crate::hopping::{ChannelTable, HoppingController};
use crate::packet::{Addressing, Command, DownlinkPacket, TagId, UplinkPacket};
use crate::rate::RateAdapter;
use crate::retransmission::ArqTracker;

/// Per-tag bookkeeping at the access point.
#[derive(Debug, Clone)]
struct TagRecord {
    tracker: ArqTracker,
    /// Last link margin (dB above the K=1 threshold) reported for this tag.
    last_margin_db: Option<f64>,
    /// Payloads received in order of arrival.
    received: Vec<(u8, Vec<u8>)>,
    /// Sequence number the gateway ingest path expects next (None until the
    /// first frame arrives). Deliberately separate from the
    /// [`ArqTracker`]'s internal expectation: the tracker rewinds on every
    /// recorded loss/reception (its legacy callers feed it in order), while
    /// this expectation must only move *forward* — the ARQ loop itself
    /// delivers replayed old frames, which must not rewind it (see
    /// [`AccessPoint::ingest_frame`]).
    next_expected: Option<u8>,
    /// Delivery statistics maintained by the gateway ingest path.
    stats: TagStats,
}

/// Per-tag delivery statistics, updated by [`AccessPoint::ingest_frame`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TagStats {
    /// Well-formed frames ingested from this tag (data + ACKs, excluding
    /// duplicates).
    pub frames: u64,
    /// Duplicate data frames (same sequence seen again, e.g. after a
    /// retransmission raced the original).
    pub duplicates: u64,
    /// ACK frames among the ingested ones.
    pub acks: u64,
    /// Sequence numbers detected as skipped (each counted once when the gap
    /// behind it is first observed).
    pub losses_detected: u64,
    /// Channel the tag's most recent frame arrived on.
    pub last_channel: Option<u8>,
    /// Stream time (seconds) of the most recent frame.
    pub last_time: Option<f64>,
}

/// What [`AccessPoint::ingest_frame`] did with one decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// The tag the frame came from.
    pub tag: TagId,
    /// The frame's sequence number.
    pub sequence: u8,
    /// Whether this data frame repeated an already-received sequence.
    pub duplicate: bool,
    /// Retransmission requests to send for sequences the frame revealed as
    /// skipped (at most [`AccessPoint::MAX_SEQUENCE_GAP`], budget allowing).
    pub retransmission_requests: Vec<DownlinkPacket>,
}

/// The access-point MAC session.
#[derive(Debug, Clone)]
pub struct AccessPoint {
    /// Per-tag state, keyed by tag id.
    tags: Vec<(TagId, TagRecord)>,
    /// The hopping controller for the shared channel.
    pub hopping: HoppingController,
    /// The rate adapter.
    pub rate: RateAdapter,
    /// Maximum retransmission requests per lost packet.
    pub max_retries: u32,
}

impl AccessPoint {
    /// Creates an access point on the given channel table.
    pub fn new(
        table: ChannelTable,
        initial_channel: u8,
        max_retries: u32,
    ) -> Result<Self, MacError> {
        Ok(AccessPoint {
            tags: Vec::new(),
            hopping: HoppingController::new(table, initial_channel, -70.0)?,
            rate: RateAdapter::default(),
            max_retries,
        })
    }

    /// Registers a tag so losses can be tracked for it.
    pub fn register_tag(&mut self, tag: TagId) {
        if self.record(tag).is_none() {
            self.tags.push((
                tag,
                TagRecord {
                    tracker: ArqTracker::new(tag, self.max_retries),
                    last_margin_db: None,
                    received: Vec::new(),
                    next_expected: None,
                    stats: TagStats::default(),
                },
            ));
        }
    }

    fn record(&mut self, tag: TagId) -> Option<&mut TagRecord> {
        self.tags
            .iter_mut()
            .find(|(t, _)| *t == tag)
            .map(|(_, r)| r)
    }

    /// Number of registered tags.
    pub fn tag_count(&self) -> usize {
        self.tags.len()
    }

    /// Payloads successfully received from a tag.
    pub fn received_from(&self, tag: TagId) -> Vec<Vec<u8>> {
        self.tags
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, r)| r.received.iter().map(|(_, p)| p.clone()).collect())
            .unwrap_or_default()
    }

    /// Called when an uplink packet is decoded successfully.
    pub fn on_uplink(&mut self, packet: &UplinkPacket) {
        let tag = packet.source;
        self.register_tag(tag);
        let record = self.record(tag).expect("registered above");
        record.tracker.record_reception(packet.sequence);
        if !packet.is_ack
            && !record
                .received
                .iter()
                .any(|(seq, _)| *seq == packet.sequence)
        {
            record
                .received
                .push((packet.sequence, packet.payload.clone()));
        }
    }

    /// Called when an expected uplink packet (sequence `seq` from `tag`) was
    /// not decoded. Returns the retransmission request to send, if the retry
    /// budget allows one.
    pub fn on_uplink_loss(&mut self, tag: TagId, seq: u8) -> Option<DownlinkPacket> {
        self.register_tag(tag);
        let record = self.record(tag).expect("registered above");
        record.tracker.record_loss(seq);
        record
            .tracker
            .next_request()
            .map(|sequence| DownlinkPacket {
                addressing: Addressing::Unicast(tag),
                command: Command::Retransmit { sequence },
            })
    }

    /// Issues a follow-up retransmission request for a tag, if any packet is
    /// still missing and within budget.
    pub fn next_retransmission_request(&mut self, tag: TagId) -> Option<DownlinkPacket> {
        let record = self.record(tag)?;
        record
            .tracker
            .next_request()
            .map(|sequence| DownlinkPacket {
                addressing: Addressing::Unicast(tag),
                command: Command::Retransmit { sequence },
            })
    }

    /// Largest run of skipped sequence numbers [`Self::ingest_frame`] treats
    /// as losses. A forward jump beyond it reads as a tag reset, not a loss
    /// burst, and simply resynchronises the expectation.
    pub const MAX_SEQUENCE_GAP: u8 = 8;

    /// How far *behind* the expectation a frame may arrive and still be
    /// treated as a replay (retransmission or duplicate) rather than a tag
    /// reset. Covers the deepest retransmission backlog the gap window plus
    /// retry budget can produce.
    pub const REPLAY_WINDOW: u8 = 16;

    /// Ingests one decoded uplink frame delivered by the multi-channel
    /// gateway: parses the wire bytes, updates per-tag statistics, detects
    /// skipped sequence numbers and turns them into retransmission requests
    /// (budget allowing).
    ///
    /// `channel` is the gateway channel the frame arrived on and `time` its
    /// payload start in stream seconds — both recorded in [`TagStats`].
    ///
    /// ```
    /// use saiyan_mac::{AccessPoint, ChannelTable, Command, TagId, UplinkPacket};
    ///
    /// let mut ap = AccessPoint::new(ChannelTable::paper_433mhz(), 0, 2).unwrap();
    /// let frame = |seq| UplinkPacket {
    ///     source: TagId(7),
    ///     sequence: seq,
    ///     is_ack: false,
    ///     payload: vec![seq],
    /// };
    /// ap.ingest_frame(1, 0.10, &frame(0).to_bytes()).unwrap();
    /// // Sequence 1 never arrives; the jump to 2 reveals the loss.
    /// let report = ap.ingest_frame(1, 0.25, &frame(2).to_bytes()).unwrap();
    /// assert_eq!(report.retransmission_requests.len(), 1);
    /// assert!(matches!(
    ///     report.retransmission_requests[0].command,
    ///     Command::Retransmit { sequence: 1 }
    /// ));
    /// assert_eq!(ap.tag_stats(TagId(7)).unwrap().frames, 2);
    /// assert_eq!(ap.tag_stats(TagId(7)).unwrap().losses_detected, 1);
    /// ```
    pub fn ingest_frame(
        &mut self,
        channel: u8,
        time: f64,
        bytes: &[u8],
    ) -> Result<IngestReport, MacError> {
        let packet = UplinkPacket::from_bytes(bytes)?;
        let tag = packet.source;
        self.register_tag(tag);
        // Sequence-gap detection against the per-tag expectation. The
        // expectation only ever moves forward: a frame *behind* it (within
        // the replay window) is a retransmission or duplicate — exactly what
        // the ARQ requests this method issues will deliver — and must not
        // rewind it, or the next in-order frame would read as a fresh gap
        // and trigger spurious loss reports. Only a jump beyond both
        // windows (a tag reset) resynchronises.
        let record = self.record(tag).expect("registered above");
        let mut missing = Vec::new();
        match record.next_expected {
            None => record.next_expected = Some(packet.sequence.wrapping_add(1)),
            Some(expected) => {
                let forward = packet.sequence.wrapping_sub(expected);
                let backward = expected.wrapping_sub(packet.sequence);
                if forward <= Self::MAX_SEQUENCE_GAP {
                    for d in 0..forward {
                        missing.push(expected.wrapping_add(d));
                    }
                    record.next_expected = Some(packet.sequence.wrapping_add(1));
                } else if backward <= Self::REPLAY_WINDOW {
                    // An old frame replayed: keep the expectation.
                } else {
                    record.next_expected = Some(packet.sequence.wrapping_add(1));
                }
            }
        }
        let duplicate = !packet.is_ack
            && record
                .received
                .iter()
                .any(|(seq, _)| *seq == packet.sequence);
        record.stats.frames += 1;
        if duplicate {
            record.stats.frames -= 1;
            record.stats.duplicates += 1;
        }
        if packet.is_ack {
            record.stats.acks += 1;
        }
        record.stats.losses_detected += missing.len() as u64;
        record.stats.last_channel = Some(channel);
        record.stats.last_time = Some(time);
        // Record the reception (clears any outstanding loss on its sequence)
        // and raise one request per sequence the gap revealed as skipped.
        self.on_uplink(&packet);
        let record = self.record(tag).expect("registered above");
        let mut requests = Vec::new();
        for seq in missing {
            record.tracker.record_loss(seq);
            if record.tracker.request_for(seq) {
                requests.push(DownlinkPacket {
                    addressing: Addressing::Unicast(tag),
                    command: Command::Retransmit { sequence: seq },
                });
            }
        }
        Ok(IngestReport {
            tag,
            sequence: packet.sequence,
            duplicate,
            retransmission_requests: requests,
        })
    }

    /// Delivery statistics for a tag, if it has been seen.
    pub fn tag_stats(&self, tag: TagId) -> Option<&TagStats> {
        self.tags
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, r)| &r.stats)
    }

    /// Iterates over every known tag and its delivery statistics.
    pub fn all_tag_stats(&self) -> impl Iterator<Item = (TagId, &TagStats)> {
        self.tags.iter().map(|(t, r)| (*t, &r.stats))
    }

    /// Records a spectrum measurement and returns the hop command to broadcast
    /// if the current channel is jammed.
    pub fn on_spectrum_scan(&mut self, channel: u8, level_dbm: f64) -> Option<DownlinkPacket> {
        if self
            .hopping
            .record_interference(channel, level_dbm)
            .is_err()
        {
            return None;
        }
        self.hopping.maybe_hop()
    }

    /// Records a link-margin estimate for a tag and returns the rate command
    /// to send if the rate should change.
    pub fn on_link_measurement(&mut self, tag: TagId, margin_db: f64) -> Option<DownlinkPacket> {
        self.register_tag(tag);
        if let Some(record) = self.record(tag) {
            record.last_margin_db = Some(margin_db);
        }
        self.rate.update(tag, margin_db)
    }

    /// The rate currently commanded for a tag.
    pub fn commanded_rate(&self, tag: TagId) -> BitsPerChirp {
        self.rate.current_rate(tag)
    }

    /// Sequence numbers from a tag that were lost for good (retry budget spent).
    pub fn abandoned(&self, tag: TagId) -> Vec<u8> {
        self.tags
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, r)| r.tracker.given_up())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap() -> AccessPoint {
        AccessPoint::new(ChannelTable::paper_433mhz(), 2, 2).unwrap()
    }

    #[test]
    fn losses_trigger_bounded_retransmission_requests() {
        let mut ap = ap();
        let tag = TagId(3);
        let req = ap.on_uplink_loss(tag, 7).expect("first request");
        assert!(matches!(req.command, Command::Retransmit { sequence: 7 }));
        // One more request allowed, then the budget (2) is exhausted.
        assert!(ap.next_retransmission_request(tag).is_some());
        assert!(ap.next_retransmission_request(tag).is_none());
        assert_eq!(ap.abandoned(tag), vec![7]);
    }

    #[test]
    fn reception_clears_outstanding_losses_and_stores_payload() {
        let mut ap = ap();
        let tag = TagId(4);
        ap.on_uplink_loss(tag, 1);
        ap.on_uplink(&UplinkPacket {
            source: tag,
            sequence: 1,
            is_ack: false,
            payload: vec![9, 9],
        });
        assert!(ap.next_retransmission_request(tag).is_none());
        assert_eq!(ap.received_from(tag), vec![vec![9, 9]]);
        // Duplicate delivery is not stored twice.
        ap.on_uplink(&UplinkPacket {
            source: tag,
            sequence: 1,
            is_ack: false,
            payload: vec![9, 9],
        });
        assert_eq!(ap.received_from(tag).len(), 1);
    }

    #[test]
    fn spectrum_scans_drive_channel_hops() {
        let mut ap = ap();
        for ch in 0..5u8 {
            assert!(ap.on_spectrum_scan(ch, -95.0).is_none());
        }
        let hop = ap.on_spectrum_scan(2, -40.0).expect("should hop");
        assert!(matches!(hop.command, Command::ChannelHop { .. }));
        assert!(matches!(hop.addressing, Addressing::Broadcast));
    }

    #[test]
    fn link_measurements_drive_rate_commands() {
        let mut ap = ap();
        let tag = TagId(9);
        let cmd = ap.on_link_measurement(tag, 14.0).expect("rate upgrade");
        assert!(matches!(
            cmd.command,
            Command::SetRate { bits_per_chirp: 5 }
        ));
        assert_eq!(ap.commanded_rate(tag).bits(), 5);
        // No change on a repeat measurement.
        assert!(ap.on_link_measurement(tag, 14.0).is_none());
    }

    fn frame(tag: u16, seq: u8, is_ack: bool) -> Vec<u8> {
        UplinkPacket {
            source: TagId(tag),
            sequence: seq,
            is_ack,
            payload: vec![seq],
        }
        .to_bytes()
    }

    #[test]
    fn ingest_tracks_stats_and_requests_skipped_sequences() {
        let mut ap = ap();
        ap.ingest_frame(2, 0.1, &frame(5, 0, false)).unwrap();
        ap.ingest_frame(2, 0.2, &frame(5, 1, false)).unwrap();
        // Sequences 2 and 3 are lost; 4 reveals the gap.
        let report = ap.ingest_frame(3, 0.5, &frame(5, 4, false)).unwrap();
        assert_eq!(report.tag, TagId(5));
        assert!(!report.duplicate);
        let sequences: Vec<u8> = report
            .retransmission_requests
            .iter()
            .map(|r| match r.command {
                Command::Retransmit { sequence } => sequence,
                other => panic!("unexpected command {other:?}"),
            })
            .collect();
        assert_eq!(sequences, vec![2, 3]);
        let stats = ap.tag_stats(TagId(5)).unwrap();
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.losses_detected, 2);
        assert_eq!(stats.last_channel, Some(3));
        assert_eq!(stats.last_time, Some(0.5));
        assert_eq!(ap.all_tag_stats().count(), 1);
    }

    #[test]
    fn ingest_counts_duplicates_and_acks_separately() {
        let mut ap = ap();
        ap.ingest_frame(0, 0.1, &frame(9, 7, false)).unwrap();
        // The same data sequence again is a duplicate, not a new frame...
        let report = ap.ingest_frame(0, 0.2, &frame(9, 7, false)).unwrap();
        assert!(report.duplicate);
        // ...and an ACK counts as a frame but never as a duplicate.
        ap.ingest_frame(0, 0.3, &frame(9, 8, true)).unwrap();
        let stats = ap.tag_stats(TagId(9)).unwrap();
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.acks, 1);
        assert_eq!(ap.received_from(TagId(9)).len(), 1);
    }

    #[test]
    fn ingest_replayed_frames_do_not_rewind_the_expectation() {
        let mut ap = ap();
        ap.ingest_frame(0, 0.1, &frame(5, 0, false)).unwrap();
        ap.ingest_frame(0, 0.2, &frame(5, 1, false)).unwrap();
        // Sequence 2 is lost; 3 reveals the gap and requests it.
        let report = ap.ingest_frame(0, 0.3, &frame(5, 3, false)).unwrap();
        assert_eq!(report.retransmission_requests.len(), 1);
        // The tag replays sequence 2 — an old frame. It must be accepted
        // without rewinding the expectation.
        let report = ap.ingest_frame(0, 0.4, &frame(5, 2, false)).unwrap();
        assert!(!report.duplicate);
        assert!(report.retransmission_requests.is_empty());
        // The next in-order frame is NOT a fresh gap: no spurious losses.
        let report = ap.ingest_frame(0, 0.5, &frame(5, 4, false)).unwrap();
        assert!(report.retransmission_requests.is_empty());
        let stats = ap.tag_stats(TagId(5)).unwrap();
        assert_eq!(stats.losses_detected, 1);
        assert_eq!(stats.duplicates, 0);
        assert_eq!(ap.received_from(TagId(5)).len(), 5);
        assert!(ap.next_retransmission_request(TagId(5)).is_none());
    }

    #[test]
    fn ingest_treats_large_jumps_as_resets() {
        let mut ap = ap();
        ap.ingest_frame(0, 0.1, &frame(1, 0, false)).unwrap();
        // A jump past MAX_SEQUENCE_GAP resynchronises without loss reports.
        let report = ap.ingest_frame(0, 0.2, &frame(1, 200, false)).unwrap();
        assert!(report.retransmission_requests.is_empty());
        assert_eq!(ap.tag_stats(TagId(1)).unwrap().losses_detected, 0);
        // The expectation continues from the new sequence.
        let report = ap.ingest_frame(0, 0.3, &frame(1, 202, false)).unwrap();
        assert_eq!(report.retransmission_requests.len(), 1);
    }

    #[test]
    fn ingest_rejects_malformed_frames() {
        let mut ap = ap();
        assert!(ap.ingest_frame(0, 0.0, &[1, 2]).is_err());
        assert_eq!(ap.tag_count(), 0);
    }

    #[test]
    fn registering_twice_is_idempotent() {
        let mut ap = ap();
        ap.register_tag(TagId(1));
        ap.register_tag(TagId(1));
        assert_eq!(ap.tag_count(), 1);
    }
}
