//! Flat struct-of-arrays tag-session state for city-scale populations.
//!
//! [`TagSession`](crate::tag::TagSession) is the right shape for a handful
//! of tags under test — each session owns its channel table, ALOHA state
//! and retransmission buffer with heap-allocated payloads. At a million
//! tags that layout is cache-hostile and allocation-heavy, and the engine
//! needs none of the per-tag heap state: payloads are a pure function of
//! the tag id, so a replayable packet can be *regenerated* instead of
//! buffered. [`SessionTable`] keeps exactly the per-tag words the
//! discrete-event engine touches per transmission, in parallel arrays
//! indexed by a dense local id, and mirrors the session semantics it
//! replaces: wrapping sequence allocation and the
//! [`RetransmissionBuffer`](crate::retransmission::RetransmissionBuffer)'s
//! replay window (a tag can only replay its last
//! [`SessionTable::replay_depth`] sequences).

/// Struct-of-arrays session state for a dense population of tags.
#[derive(Debug, Clone)]
pub struct SessionTable {
    /// Next uplink sequence number per tag (wrapping `u8`).
    next_seq: Vec<u8>,
    /// Total sequences allocated per tag, saturating — bounds the replay
    /// window before a full wrap.
    sent: Vec<u8>,
    /// Current schedule base channel per tag.
    channel: Vec<u8>,
    /// Transmission counter per tag (drives hopping rotation).
    round: Vec<u32>,
    /// Radio-busy horizon per tag (a backscatter tag is half-duplex and
    /// serial).
    busy_until: Vec<f64>,
    replay_depth: u8,
}

impl SessionTable {
    /// How many recent sequences a tag can replay; matches the engine's
    /// `RetransmissionBuffer::new(8)` sizing.
    pub const DEFAULT_REPLAY_DEPTH: u8 = 8;

    /// Creates a table of `n` sessions; `initial_channel` gives each local
    /// id its starting channel.
    pub fn new(n: usize, mut initial_channel: impl FnMut(usize) -> u8) -> Self {
        SessionTable {
            next_seq: vec![0; n],
            sent: vec![0; n],
            channel: (0..n).map(&mut initial_channel).collect(),
            round: vec![0; n],
            busy_until: vec![f64::NEG_INFINITY; n],
            replay_depth: Self::DEFAULT_REPLAY_DEPTH,
        }
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.next_seq.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.next_seq.is_empty()
    }

    /// Allocates the next uplink sequence number for a tag (wrapping), as
    /// `RetransmissionBuffer::push` does.
    pub fn allocate_sequence(&mut self, tag: usize) -> u8 {
        let seq = self.next_seq[tag];
        self.next_seq[tag] = seq.wrapping_add(1);
        self.sent[tag] = self.sent[tag].saturating_add(1);
        seq
    }

    /// Whether the tag can still replay `sequence`: it was allocated, and
    /// it is one of the tag's last [`SessionTable::replay_depth`] sequences
    /// (older payloads have been evicted from the ring buffer this table
    /// models).
    pub fn can_replay(&self, tag: usize, sequence: u8) -> bool {
        let back = self.next_seq[tag].wrapping_sub(sequence);
        (1..=self.replay_depth.min(self.sent[tag])).contains(&back)
    }

    /// The replay-window depth.
    pub fn replay_depth(&self) -> u8 {
        self.replay_depth
    }

    /// The tag's current schedule base channel.
    pub fn channel(&self, tag: usize) -> u8 {
        self.channel[tag]
    }

    /// Moves the tag's schedule to a new base channel.
    pub fn set_channel(&mut self, tag: usize, channel: u8) {
        self.channel[tag] = channel;
    }

    /// Post-increments the tag's transmission round (hopping rotation).
    pub fn next_round(&mut self, tag: usize) -> u32 {
        let round = self.round[tag];
        self.round[tag] += 1;
        round
    }

    /// The time before which the tag's radio is busy.
    pub fn busy_until(&self, tag: usize) -> f64 {
        self.busy_until[tag]
    }

    /// Reserves the tag's radio until `until_s`.
    pub fn reserve(&mut self, tag: usize, until_s: f64) {
        self.busy_until[tag] = until_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopping::ChannelTable;
    use crate::packet::{Addressing, Command, DownlinkPacket, TagId};
    use crate::tag::{TagAction, TagSession};
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sequences_allocate_like_a_retransmission_buffer() {
        let mut table = SessionTable::new(2, |_| 0);
        for expect in 0..=255u8 {
            assert_eq!(table.allocate_sequence(0), expect);
        }
        assert_eq!(table.allocate_sequence(0), 0, "sequences wrap");
        assert_eq!(table.allocate_sequence(1), 0, "tags are independent");
    }

    #[test]
    fn replay_window_matches_the_real_session_buffer() {
        // Cross-check against TagSession: after k transmissions, the table
        // must report exactly the sequences the session's ring buffer can
        // still serve.
        let channels = ChannelTable {
            channels: vec![433.0e6, 433.5e6],
        };
        let mut session = TagSession::new(TagId(0), channels, 0).expect("channel exists");
        let mut table = SessionTable::new(1, |_| 0);
        for k in 0..40usize {
            for seq in 0..=255u8 {
                let real = session_can_replay(&mut session, seq);
                assert_eq!(table.can_replay(0, seq), real, "k={k} seq={seq}");
            }
            match session.send_reading(vec![k as u8]) {
                TagAction::Transmit(p) => assert_eq!(p.sequence, table.allocate_sequence(0)),
                other => panic!("send_reading returned {other:?}"),
            }
        }
    }

    /// Whether the real session can serve a retransmission request for
    /// `seq` — probed through the public downlink path.
    fn session_can_replay(session: &mut TagSession, seq: u8) -> bool {
        let request = DownlinkPacket {
            addressing: Addressing::Unicast(TagId(0)),
            command: Command::Retransmit { sequence: seq },
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        session.on_downlink(&request, &mut rng).is_ok()
    }

    #[test]
    fn channels_rounds_and_radio_reservations_are_per_tag() {
        let mut table = SessionTable::new(3, |i| i as u8);
        assert_eq!(table.channel(2), 2);
        table.set_channel(2, 0);
        assert_eq!(table.channel(2), 0);
        assert_eq!(table.next_round(1), 0);
        assert_eq!(table.next_round(1), 1);
        assert_eq!(table.next_round(0), 0);
        assert!(table.busy_until(0) < 0.0);
        table.reserve(0, 1.5);
        assert_eq!(table.busy_until(0), 1.5);
        assert!(table.busy_until(1) < 0.0);
    }
}
