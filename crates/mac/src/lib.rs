//! # saiyan-mac — the feedback-loop MAC layer
//!
//! The networking capabilities the Saiyan demodulator unlocks (paper §1, §4.4,
//! §5.3):
//!
//! * [`packet`] — tiny downlink command / uplink response formats;
//! * [`retransmission`] — on-demand ARQ (tag-side buffer, AP-side tracker,
//!   analytic PRR with retransmissions);
//! * [`hopping`] — interference-driven channel hopping;
//! * [`rate`] — margin-based rate adaptation;
//! * [`aloha`] — slotted ALOHA for multi-tag acknowledgements;
//! * [`tag`] / [`ap`] — the tag-side and access-point-side session state
//!   machines that tie the mechanisms together;
//! * [`session_table`] — flat struct-of-arrays session state, the same
//!   semantics compacted for city-scale simulated populations.

#![warn(missing_docs)]

pub mod aloha;
pub mod ap;
pub mod error;
pub mod hopping;
pub mod packet;
pub mod rate;
pub mod retransmission;
pub mod session_table;
pub mod tag;

pub use aloha::{analytic_success_probability, simulate_round, AlohaRound, AlohaState};
pub use ap::{AccessPoint, IngestReport, TagStats};
pub use error::MacError;
pub use hopping::{ChannelTable, HoppingController, TagChannelState};
pub use packet::{Addressing, Command, DownlinkPacket, TagId, UplinkPacket};
pub use rate::{apply_rate_command, RateAdapter};
pub use retransmission::{prr_with_retransmissions, ArqTracker, RetransmissionBuffer};
pub use session_table::SessionTable;
pub use tag::{TagAction, TagSession};
