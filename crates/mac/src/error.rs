//! MAC-layer error types.

use std::fmt;

/// Errors produced by the MAC layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MacError {
    /// A packet was shorter than its header requires.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// An unknown downlink command opcode was received.
    UnknownOpcode(u8),
    /// A channel index is outside the configured channel table.
    InvalidChannel(u8),
    /// A rate value is outside the valid bits-per-chirp range.
    InvalidRate(u8),
    /// A retransmission was requested for a sequence number the tag no longer buffers.
    UnknownSequence(u8),
}

impl fmt::Display for MacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacError::Truncated { needed, got } => {
                write!(f, "packet truncated: needed {needed} bytes, got {got}")
            }
            MacError::UnknownOpcode(op) => write!(f, "unknown downlink opcode {op}"),
            MacError::InvalidChannel(c) => write!(f, "invalid channel index {c}"),
            MacError::InvalidRate(r) => write!(f, "invalid bits-per-chirp {r}"),
            MacError::UnknownSequence(s) => write!(f, "no buffered packet with sequence {s}"),
        }
    }
}

impl std::error::Error for MacError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MacError::UnknownOpcode(9).to_string().contains('9'));
        assert!(MacError::Truncated { needed: 5, got: 2 }
            .to_string()
            .contains("truncated"));
    }
}
