//! On-demand retransmission through the ACK/feedback loop (paper §5.3.1).
//!
//! Without a downlink, a backscatter tag must blindly repeat every packet to
//! survive loss. With Saiyan, the access point asks for a retransmission only
//! when a packet is actually missing, and the tag replays it from a small
//! buffer. This module implements both sides' state machines.

use std::collections::VecDeque;

use crate::error::MacError;
use crate::packet::TagId;

/// Tag-side retransmission buffer: remembers the last few transmitted uplink
/// payloads so they can be replayed on request.
#[derive(Debug, Clone)]
pub struct RetransmissionBuffer {
    capacity: usize,
    entries: VecDeque<(u8, Vec<u8>)>,
    next_sequence: u8,
}

impl RetransmissionBuffer {
    /// Creates a buffer that retains the last `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        RetransmissionBuffer {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            next_sequence: 0,
        }
    }

    /// Registers a new outgoing payload and returns its sequence number.
    pub fn push(&mut self, payload: Vec<u8>) -> u8 {
        let seq = self.next_sequence;
        self.next_sequence = self.next_sequence.wrapping_add(1);
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((seq, payload));
        seq
    }

    /// Looks up the payload for a retransmission request.
    pub fn get(&self, sequence: u8) -> Result<&[u8], MacError> {
        self.entries
            .iter()
            .find(|(s, _)| *s == sequence)
            .map(|(_, p)| p.as_slice())
            .ok_or(MacError::UnknownSequence(sequence))
    }

    /// Drops a payload once the access point acknowledged it.
    pub fn acknowledge(&mut self, sequence: u8) {
        self.entries.retain(|(s, _)| *s != sequence);
    }

    /// Number of unacknowledged packets currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Access-point-side tracking of which uplink packets were received from a tag
/// and which need a retransmission request.
#[derive(Debug, Clone)]
pub struct ArqTracker {
    /// The tag being tracked.
    pub tag: TagId,
    /// Maximum number of retransmission requests per packet.
    pub max_retries: u32,
    expected_next: u8,
    outstanding: Vec<(u8, u32)>,
}

impl ArqTracker {
    /// Creates a tracker for a tag.
    pub fn new(tag: TagId, max_retries: u32) -> Self {
        ArqTracker {
            tag,
            max_retries,
            expected_next: 0,
            outstanding: Vec::new(),
        }
    }

    /// Records that the AP expected an uplink packet with sequence `seq` but
    /// did not decode it.
    pub fn record_loss(&mut self, seq: u8) {
        if !self.outstanding.iter().any(|(s, _)| *s == seq) {
            self.outstanding.push((seq, 0));
        }
        self.expected_next = seq.wrapping_add(1);
    }

    /// Records a successfully received packet.
    pub fn record_reception(&mut self, seq: u8) {
        self.outstanding.retain(|(s, _)| *s != seq);
        self.expected_next = seq.wrapping_add(1);
    }

    /// Returns the next retransmission request to send, if any packet is still
    /// missing and under its retry budget. Increments the retry counter.
    pub fn next_request(&mut self) -> Option<u8> {
        for (seq, tries) in self.outstanding.iter_mut() {
            if *tries < self.max_retries {
                *tries += 1;
                return Some(*seq);
            }
        }
        None
    }

    /// Requests a retransmission of one specific sequence: returns `true`
    /// (and increments its retry counter) if it is outstanding and under its
    /// retry budget. Used by the gateway ingest path, which learns about
    /// several distinct losses at once and wants one request per sequence.
    pub fn request_for(&mut self, seq: u8) -> bool {
        for (s, tries) in self.outstanding.iter_mut() {
            if *s == seq && *tries < self.max_retries {
                *tries += 1;
                return true;
            }
        }
        false
    }

    /// Sequence numbers that were lost and exhausted their retries.
    pub fn given_up(&self) -> Vec<u8> {
        self.outstanding
            .iter()
            .filter(|(_, tries)| *tries >= self.max_retries)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Number of packets still awaiting a successful (re)transmission.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }
}

/// Packet reception ratio achieved with up to `max_retransmissions` reactive
/// retransmissions when a single transmission succeeds with probability `p`
/// and each retransmission round is independent. Every retransmission also
/// requires the downlink request to get through, with probability
/// `downlink_success`.
pub fn prr_with_retransmissions(p: f64, max_retransmissions: u32, downlink_success: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let d = downlink_success.clamp(0.0, 1.0);
    let mut missing = 1.0 - p;
    for _ in 0..max_retransmissions {
        // A missing packet is recovered if the request arrives AND the
        // retransmission is received.
        missing *= 1.0 - d * p;
    }
    1.0 - missing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_push_get_ack() {
        let mut buf = RetransmissionBuffer::new(4);
        let s0 = buf.push(vec![1, 2, 3]);
        let s1 = buf.push(vec![4]);
        assert_eq!(buf.get(s0).unwrap(), &[1, 2, 3]);
        assert_eq!(buf.get(s1).unwrap(), &[4]);
        buf.acknowledge(s0);
        assert!(buf.get(s0).is_err());
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn buffer_evicts_oldest_when_full() {
        let mut buf = RetransmissionBuffer::new(2);
        let s0 = buf.push(vec![0]);
        let _s1 = buf.push(vec![1]);
        let _s2 = buf.push(vec![2]);
        assert!(buf.get(s0).is_err());
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn tracker_requests_until_budget_exhausted() {
        let mut t = ArqTracker::new(TagId(1), 2);
        t.record_loss(5);
        assert_eq!(t.next_request(), Some(5));
        assert_eq!(t.next_request(), Some(5));
        assert_eq!(t.next_request(), None);
        assert_eq!(t.given_up(), vec![5]);
        // A late reception clears the outstanding entry.
        t.record_reception(5);
        assert_eq!(t.outstanding(), 0);
        assert!(t.given_up().is_empty());
    }

    #[test]
    fn tracker_handles_multiple_losses() {
        let mut t = ArqTracker::new(TagId(2), 3);
        t.record_loss(1);
        t.record_loss(2);
        assert_eq!(t.outstanding(), 2);
        assert_eq!(t.next_request(), Some(1));
        t.record_reception(1);
        assert_eq!(t.next_request(), Some(2));
    }

    #[test]
    fn prr_grows_with_retransmissions() {
        // Matches the shape of Fig. 26: Aloba at ~45 % single-shot PRR climbs
        // towards ~95 % with three retransmissions.
        let p = 0.456;
        let prr0 = prr_with_retransmissions(p, 0, 1.0);
        let prr1 = prr_with_retransmissions(p, 1, 1.0);
        let prr3 = prr_with_retransmissions(p, 3, 1.0);
        assert!((prr0 - 0.456).abs() < 1e-9);
        assert!(prr1 > 0.65 && prr1 < 0.80, "prr1 {prr1}");
        assert!(prr3 > 0.90, "prr3 {prr3}");
        // A lossy downlink slows the recovery.
        let prr3_lossy = prr_with_retransmissions(p, 3, 0.5);
        assert!(prr3_lossy < prr3);
    }

    #[test]
    fn prr_is_clamped() {
        assert_eq!(prr_with_retransmissions(1.5, 2, 1.0), 1.0);
        assert_eq!(
            prr_with_retransmissions(-0.2, 2, 1.0),
            prr_with_retransmissions(0.0, 2, 1.0)
        );
    }
}
