//! Channel hopping under interference (paper §5.3.2).
//!
//! The unlicensed band is crowded; when the access point observes in-band
//! interference it commands tags to hop to a cleaner channel. The tag obeys
//! because — thanks to Saiyan — it can actually demodulate the command.

use crate::error::MacError;
use crate::packet::{Addressing, Command, DownlinkPacket, TagId};

/// A channel table shared by the access point and its tags.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelTable {
    /// Centre frequencies (Hz) of the available channels.
    pub channels: Vec<f64>,
}

impl ChannelTable {
    /// The 433 MHz-band table used by the case study: 433.0, 433.5, 434.0,
    /// 434.5 and 435.0 MHz.
    pub fn paper_433mhz() -> Self {
        ChannelTable {
            channels: vec![433.0e6, 433.5e6, 434.0e6, 434.5e6, 435.0e6],
        }
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Looks up a channel's centre frequency.
    pub fn frequency(&self, index: u8) -> Result<f64, MacError> {
        self.channels
            .get(index as usize)
            .copied()
            .ok_or(MacError::InvalidChannel(index))
    }
}

/// Access-point-side hopping controller: tracks the interference level per
/// channel and decides when and where to hop.
///
/// The channel-hopping case study (`examples/channel_hopping.rs`): a jammer
/// appears on the tag's channel, the access point notices and broadcasts a
/// hop command, and the tag — able to demodulate it thanks to Saiyan —
/// follows:
///
/// ```
/// use saiyan_mac::{ChannelTable, Command, HoppingController, TagChannelState, TagId};
///
/// let table = ChannelTable::paper_433mhz();
/// let mut controller = HoppingController::new(table.clone(), 2, -70.0).unwrap();
/// let mut tag = TagChannelState::new(TagId(1), table, 2).unwrap();
/// assert_eq!(tag.frequency(), 434.0e6);
///
/// for ch in 0..5u8 {
///     controller.record_interference(ch, -95.0).unwrap();
/// }
/// controller.record_interference(2, -42.0).unwrap(); // jammer appears
/// let packet = controller.maybe_hop().expect("current channel is jammed");
/// assert!(matches!(packet.command, Command::ChannelHop { .. }));
/// assert!(tag.apply(&packet).unwrap());
/// assert_ne!(tag.frequency(), 434.0e6);
/// assert_eq!(tag.current, controller.current);
/// ```
#[derive(Debug, Clone)]
pub struct HoppingController {
    /// The channel table.
    pub table: ChannelTable,
    /// The channel currently in use.
    pub current: u8,
    /// Measured interference (dBm) per channel, updated by spectrum scans.
    pub interference_dbm: Vec<f64>,
    /// Interference level above which the controller hops away.
    pub hop_threshold_dbm: f64,
}

impl HoppingController {
    /// Creates a controller starting on `initial` with no measured interference.
    pub fn new(table: ChannelTable, initial: u8, hop_threshold_dbm: f64) -> Result<Self, MacError> {
        if initial as usize >= table.len() {
            return Err(MacError::InvalidChannel(initial));
        }
        let n = table.len();
        Ok(HoppingController {
            table,
            current: initial,
            interference_dbm: vec![f64::NEG_INFINITY; n],
            hop_threshold_dbm,
        })
    }

    /// Records a spectrum measurement for one channel.
    pub fn record_interference(&mut self, channel: u8, level_dbm: f64) -> Result<(), MacError> {
        let idx = channel as usize;
        if idx >= self.interference_dbm.len() {
            return Err(MacError::InvalidChannel(channel));
        }
        self.interference_dbm[idx] = level_dbm;
        Ok(())
    }

    /// Whether the current channel is jammed.
    pub fn current_channel_jammed(&self) -> bool {
        self.interference_dbm[self.current as usize] > self.hop_threshold_dbm
    }

    /// Picks the cleanest channel other than the current one.
    pub fn best_alternative(&self) -> Option<u8> {
        self.interference_dbm
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.current as usize)
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite interference"))
            .map(|(i, _)| i as u8)
    }

    /// If the current channel is jammed, returns the hop command to broadcast
    /// (and updates the controller's own channel).
    pub fn maybe_hop(&mut self) -> Option<DownlinkPacket> {
        if !self.current_channel_jammed() {
            return None;
        }
        let target = self.best_alternative()?;
        if target == self.current {
            return None;
        }
        self.current = target;
        Some(DownlinkPacket {
            addressing: Addressing::Broadcast,
            command: Command::ChannelHop { channel: target },
        })
    }
}

/// Tag-side hopping state: applies hop commands addressed to the tag.
#[derive(Debug, Clone)]
pub struct TagChannelState {
    /// The tag's identity.
    pub tag: TagId,
    /// The channel table.
    pub table: ChannelTable,
    /// The channel the tag currently listens/backscatters on.
    pub current: u8,
}

impl TagChannelState {
    /// Creates tag channel state.
    pub fn new(tag: TagId, table: ChannelTable, initial: u8) -> Result<Self, MacError> {
        if initial as usize >= table.len() {
            return Err(MacError::InvalidChannel(initial));
        }
        Ok(TagChannelState {
            tag,
            table,
            current: initial,
        })
    }

    /// Applies a received downlink packet; returns `true` if the tag hopped.
    pub fn apply(&mut self, packet: &DownlinkPacket) -> Result<bool, MacError> {
        let addressed_to_us = match packet.addressing {
            Addressing::Unicast(id) => id == self.tag,
            Addressing::Multicast { .. } | Addressing::Broadcast => true,
        };
        if !addressed_to_us {
            return Ok(false);
        }
        if let Command::ChannelHop { channel } = packet.command {
            if channel as usize >= self.table.len() {
                return Err(MacError::InvalidChannel(channel));
            }
            let hopped = channel != self.current;
            self.current = channel;
            return Ok(hopped);
        }
        Ok(false)
    }

    /// The tag's current centre frequency.
    pub fn frequency(&self) -> f64 {
        self.table.channels[self.current as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_hops_away_from_jammed_channel() {
        let mut c = HoppingController::new(ChannelTable::paper_433mhz(), 2, -70.0).unwrap();
        for ch in 0..5u8 {
            c.record_interference(ch, -95.0).unwrap();
        }
        assert!(c.maybe_hop().is_none());
        // Jam the current channel (434 MHz).
        c.record_interference(2, -40.0).unwrap();
        let cmd = c.maybe_hop().expect("should hop");
        match cmd.command {
            Command::ChannelHop { channel } => {
                assert_ne!(channel, 2);
                assert_eq!(c.current, channel);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn controller_picks_the_cleanest_alternative() {
        let mut c = HoppingController::new(ChannelTable::paper_433mhz(), 0, -70.0).unwrap();
        c.record_interference(0, -30.0).unwrap();
        c.record_interference(1, -60.0).unwrap();
        c.record_interference(2, -100.0).unwrap();
        c.record_interference(3, -80.0).unwrap();
        c.record_interference(4, -50.0).unwrap();
        assert_eq!(c.best_alternative(), Some(2));
    }

    #[test]
    fn tag_applies_hop_commands() {
        let mut tag = TagChannelState::new(TagId(3), ChannelTable::paper_433mhz(), 2).unwrap();
        assert_eq!(tag.frequency(), 434.0e6);
        let cmd = DownlinkPacket {
            addressing: Addressing::Broadcast,
            command: Command::ChannelHop { channel: 3 },
        };
        assert!(tag.apply(&cmd).unwrap());
        assert_eq!(tag.frequency(), 434.5e6);
        // A command addressed to a different tag is ignored.
        let other = DownlinkPacket {
            addressing: Addressing::Unicast(TagId(9)),
            command: Command::ChannelHop { channel: 0 },
        };
        assert!(!tag.apply(&other).unwrap());
        assert_eq!(tag.current, 3);
    }

    #[test]
    fn invalid_channels_are_rejected() {
        assert!(HoppingController::new(ChannelTable::paper_433mhz(), 9, -70.0).is_err());
        let mut tag = TagChannelState::new(TagId(1), ChannelTable::paper_433mhz(), 0).unwrap();
        let bad = DownlinkPacket {
            addressing: Addressing::Broadcast,
            command: Command::ChannelHop { channel: 42 },
        };
        assert!(tag.apply(&bad).is_err());
        assert!(ChannelTable::paper_433mhz().frequency(42).is_err());
    }
}
