//! Rate adaptation driven by the feedback loop.
//!
//! The access point measures the quality of each backscatter link and, through
//! the downlink, tells the tag which data rate (bits per chirp) to use so the
//! link is neither wasted (rate too low) nor unreliable (rate too high). The
//! paper motivates this as one of the PHY-layer operations the feedback loop
//! unlocks; the policy here is a margin-based ladder over the calibrated
//! sensitivity model.

use lora_phy::params::BitsPerChirp;

use crate::error::MacError;
use crate::packet::{Addressing, Command, DownlinkPacket, TagId};

/// A margin-based rate-adaptation policy.
///
/// For each candidate K (bits per chirp) the policy knows the minimum SNR-like
/// margin (dB above the K=1 sensitivity) the link must have; it picks the
/// fastest rate whose requirement is met, with `hysteresis_db` of slack before
/// stepping back down.
#[derive(Debug, Clone, PartialEq)]
pub struct RateAdapter {
    /// Extra margin (dB) each additional bit per chirp requires.
    pub per_bit_margin_db: f64,
    /// Hysteresis (dB) before downgrading the rate.
    pub hysteresis_db: f64,
    /// The rate currently commanded for each known tag.
    current: Vec<(TagId, BitsPerChirp)>,
}

impl Default for RateAdapter {
    fn default() -> Self {
        RateAdapter {
            // Matches the calibrated per-bit sensitivity penalty in
            // `saiyan::sensitivity` (≈ 2.8 dB per extra bit per chirp).
            per_bit_margin_db: 2.8,
            hysteresis_db: 1.5,
            current: Vec::new(),
        }
    }
}

impl RateAdapter {
    /// The highest K whose margin requirement is met by `margin_db` (the
    /// link's measured margin above the K=1 demodulation threshold).
    pub fn rate_for_margin(&self, margin_db: f64) -> BitsPerChirp {
        let mut best = 1u8;
        for k in 2..=5u8 {
            let required = self.per_bit_margin_db * (k - 1) as f64;
            if margin_db >= required {
                best = k;
            }
        }
        BitsPerChirp::new(best).expect("1..=5 is always valid")
    }

    /// The rate currently assigned to a tag (defaults to K=1).
    pub fn current_rate(&self, tag: TagId) -> BitsPerChirp {
        self.current
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, k)| *k)
            .unwrap_or_else(|| BitsPerChirp::new(1).expect("valid"))
    }

    /// Processes a new link-margin measurement for `tag`. Returns the rate
    /// command to send if the rate should change.
    pub fn update(&mut self, tag: TagId, margin_db: f64) -> Option<DownlinkPacket> {
        let target = self.rate_for_margin(margin_db);
        let current = self.current_rate(tag);
        let should_change = if target.bits() > current.bits() {
            true
        } else if target.bits() < current.bits() {
            // Only downgrade once the margin is below the requirement minus
            // the hysteresis band.
            let required_for_current = self.per_bit_margin_db * (current.bits() - 1) as f64;
            margin_db < required_for_current - self.hysteresis_db
        } else {
            false
        };
        if !should_change {
            return None;
        }
        self.set_rate(tag, target);
        Some(DownlinkPacket {
            addressing: Addressing::Unicast(tag),
            command: Command::SetRate {
                bits_per_chirp: target.bits(),
            },
        })
    }

    /// Records the rate assigned to a tag.
    fn set_rate(&mut self, tag: TagId, rate: BitsPerChirp) {
        if let Some(entry) = self.current.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = rate;
        } else {
            self.current.push((tag, rate));
        }
    }
}

/// Tag-side application of a rate command.
pub fn apply_rate_command(
    packet: &DownlinkPacket,
    tag: TagId,
) -> Result<Option<BitsPerChirp>, MacError> {
    let addressed = match packet.addressing {
        Addressing::Unicast(id) => id == tag,
        Addressing::Multicast { .. } | Addressing::Broadcast => true,
    };
    if !addressed {
        return Ok(None);
    }
    if let Command::SetRate { bits_per_chirp } = packet.command {
        let k =
            BitsPerChirp::new(bits_per_chirp).map_err(|_| MacError::InvalidRate(bits_per_chirp))?;
        return Ok(Some(k));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_ladder_is_monotone_in_margin() {
        let adapter = RateAdapter::default();
        let mut prev = 0u8;
        for margin in [0.0, 2.0, 3.0, 6.0, 9.0, 12.0, 20.0] {
            let k = adapter.rate_for_margin(margin).bits();
            assert!(k >= prev, "margin {margin}: K {k} < previous {prev}");
            prev = k;
        }
        assert_eq!(adapter.rate_for_margin(0.0).bits(), 1);
        assert_eq!(adapter.rate_for_margin(20.0).bits(), 5);
    }

    #[test]
    fn update_issues_command_only_on_change() {
        let mut adapter = RateAdapter::default();
        let tag = TagId(4);
        // Strong link: upgrade to the top rate.
        let cmd = adapter.update(tag, 15.0).expect("should upgrade");
        assert!(matches!(
            cmd.command,
            Command::SetRate { bits_per_chirp: 5 }
        ));
        // Same margin again: no new command.
        assert!(adapter.update(tag, 15.0).is_none());
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut adapter = RateAdapter::default();
        let tag = TagId(1);
        adapter.update(tag, 6.0); // K=3 (requires 5.6 dB)
        assert_eq!(adapter.current_rate(tag).bits(), 3);
        // Margin dips slightly below the K=3 requirement but within hysteresis:
        // the adapter holds the rate.
        assert!(adapter.update(tag, 5.0).is_none());
        assert_eq!(adapter.current_rate(tag).bits(), 3);
        // A deep dip forces the downgrade.
        let cmd = adapter.update(tag, 1.0).expect("should downgrade");
        assert!(matches!(
            cmd.command,
            Command::SetRate { bits_per_chirp: 1 }
        ));
    }

    #[test]
    fn tag_applies_rate_commands() {
        let tag = TagId(2);
        let cmd = DownlinkPacket {
            addressing: Addressing::Unicast(tag),
            command: Command::SetRate { bits_per_chirp: 4 },
        };
        assert_eq!(apply_rate_command(&cmd, tag).unwrap().unwrap().bits(), 4);
        // Addressed elsewhere: ignored.
        let other = DownlinkPacket {
            addressing: Addressing::Unicast(TagId(9)),
            command: Command::SetRate { bits_per_chirp: 4 },
        };
        assert!(apply_rate_command(&other, tag).unwrap().is_none());
        // Invalid rate: error.
        let bad = DownlinkPacket {
            addressing: Addressing::Unicast(tag),
            command: Command::SetRate { bits_per_chirp: 0 },
        };
        assert!(apply_rate_command(&bad, tag).is_err());
    }
}
