//! MAC-layer packet formats.
//!
//! The feedback loop Saiyan enables carries small downlink commands from the
//! access point to tags (retransmission requests, channel-hop orders, rate
//! updates, sensor on/off) and short uplink responses (data and ACKs). The
//! wire format is deliberately tiny — a few bytes — because every downlink
//! byte costs the tag demodulation energy.

use crate::error::MacError;

/// Address of a tag. `BROADCAST` addresses every tag in range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u16);

impl TagId {
    /// The broadcast address.
    pub const BROADCAST: TagId = TagId(0xFFFF);

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

/// How a downlink packet is addressed (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Addressing {
    /// A single tag; only that tag responds, so no collisions occur.
    Unicast(TagId),
    /// A named group of tags; responders contend via slotted ALOHA.
    Multicast {
        /// Group identifier.
        group: u8,
    },
    /// Every tag in range; responders contend via slotted ALOHA.
    Broadcast,
}

/// Commands the access point can issue over the downlink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Ask the tag to retransmit the uplink packet with the given sequence number.
    Retransmit {
        /// Sequence number of the lost packet.
        sequence: u8,
    },
    /// Ask the tag to hop to another channel.
    ChannelHop {
        /// Index into the channel table.
        channel: u8,
    },
    /// Ask the tag to change its data rate (bits per chirp).
    SetRate {
        /// New bits-per-chirp value (1–8).
        bits_per_chirp: u8,
    },
    /// Turn an on-board sensor on or off remotely.
    SensorControl {
        /// Sensor index.
        sensor: u8,
        /// Desired state.
        enable: bool,
    },
    /// Acknowledge receipt of an uplink packet.
    Ack {
        /// Sequence number being acknowledged.
        sequence: u8,
    },
}

impl Command {
    fn opcode(&self) -> u8 {
        match self {
            Command::Retransmit { .. } => 1,
            Command::ChannelHop { .. } => 2,
            Command::SetRate { .. } => 3,
            Command::SensorControl { .. } => 4,
            Command::Ack { .. } => 5,
        }
    }
}

/// A downlink packet from the access point to tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownlinkPacket {
    /// How the packet is addressed.
    pub addressing: Addressing,
    /// The command carried.
    pub command: Command,
}

impl DownlinkPacket {
    /// Serialises to wire bytes: `[addr_hi, addr_lo, opcode, arg0, arg1]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (addr, group_flag) = match self.addressing {
            Addressing::Unicast(id) => (id.0, 0u8),
            Addressing::Multicast { group } => (0xFF00 | group as u16, 1),
            Addressing::Broadcast => (TagId::BROADCAST.0, 0),
        };
        let (a0, a1) = match self.command {
            Command::Retransmit { sequence } => (sequence, 0),
            Command::ChannelHop { channel } => (channel, 0),
            Command::SetRate { bits_per_chirp } => (bits_per_chirp, 0),
            Command::SensorControl { sensor, enable } => (sensor, enable as u8),
            Command::Ack { sequence } => (sequence, 0),
        };
        vec![
            (addr >> 8) as u8,
            (addr & 0xFF) as u8,
            (self.command.opcode() << 1) | group_flag,
            a0,
            a1,
        ]
    }

    /// Parses wire bytes produced by [`DownlinkPacket::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MacError> {
        if bytes.len() < 5 {
            return Err(MacError::Truncated {
                needed: 5,
                got: bytes.len(),
            });
        }
        let addr = ((bytes[0] as u16) << 8) | bytes[1] as u16;
        let group_flag = bytes[2] & 1;
        let opcode = bytes[2] >> 1;
        let addressing = if group_flag == 1 {
            Addressing::Multicast {
                group: (addr & 0xFF) as u8,
            }
        } else if addr == TagId::BROADCAST.0 {
            Addressing::Broadcast
        } else {
            Addressing::Unicast(TagId(addr))
        };
        let command = match opcode {
            1 => Command::Retransmit { sequence: bytes[3] },
            2 => Command::ChannelHop { channel: bytes[3] },
            3 => Command::SetRate {
                bits_per_chirp: bytes[3],
            },
            4 => Command::SensorControl {
                sensor: bytes[3],
                enable: bytes[4] != 0,
            },
            5 => Command::Ack { sequence: bytes[3] },
            other => return Err(MacError::UnknownOpcode(other)),
        };
        Ok(DownlinkPacket {
            addressing,
            command,
        })
    }
}

/// An uplink packet from a tag to the access point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UplinkPacket {
    /// The sending tag.
    pub source: TagId,
    /// Sequence number of this packet.
    pub sequence: u8,
    /// Whether this packet acknowledges a downlink command.
    pub is_ack: bool,
    /// Sensor payload bytes.
    pub payload: Vec<u8>,
}

impl UplinkPacket {
    /// Serialises to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![
            (self.source.0 >> 8) as u8,
            (self.source.0 & 0xFF) as u8,
            self.sequence,
            self.is_ack as u8,
            self.payload.len() as u8,
        ];
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses wire bytes produced by [`UplinkPacket::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MacError> {
        if bytes.len() < 5 {
            return Err(MacError::Truncated {
                needed: 5,
                got: bytes.len(),
            });
        }
        let len = bytes[4] as usize;
        if bytes.len() < 5 + len {
            return Err(MacError::Truncated {
                needed: 5 + len,
                got: bytes.len(),
            });
        }
        Ok(UplinkPacket {
            source: TagId(((bytes[0] as u16) << 8) | bytes[1] as u16),
            sequence: bytes[2],
            is_ack: bytes[3] != 0,
            payload: bytes[5..5 + len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downlink_round_trip_all_commands() {
        let commands = [
            Command::Retransmit { sequence: 7 },
            Command::ChannelHop { channel: 3 },
            Command::SetRate { bits_per_chirp: 5 },
            Command::SensorControl {
                sensor: 2,
                enable: false,
            },
            Command::Ack { sequence: 200 },
        ];
        let addressings = [
            Addressing::Unicast(TagId(42)),
            Addressing::Multicast { group: 9 },
            Addressing::Broadcast,
        ];
        for &command in &commands {
            for &addressing in &addressings {
                let p = DownlinkPacket {
                    addressing,
                    command,
                };
                let back = DownlinkPacket::from_bytes(&p.to_bytes()).unwrap();
                assert_eq!(back, p);
            }
        }
    }

    #[test]
    fn uplink_round_trip() {
        let p = UplinkPacket {
            source: TagId(7),
            sequence: 19,
            is_ack: true,
            payload: vec![1, 2, 3, 4],
        };
        let back = UplinkPacket::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn truncated_packets_are_rejected() {
        assert!(DownlinkPacket::from_bytes(&[1, 2, 3]).is_err());
        assert!(UplinkPacket::from_bytes(&[0, 7, 1, 0, 10, 1, 2]).is_err());
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let mut bytes = DownlinkPacket {
            addressing: Addressing::Broadcast,
            command: Command::Ack { sequence: 0 },
        }
        .to_bytes();
        bytes[2] = 0b1111_0000;
        assert!(matches!(
            DownlinkPacket::from_bytes(&bytes),
            Err(MacError::UnknownOpcode(_))
        ));
    }

    #[test]
    fn broadcast_address() {
        assert!(TagId::BROADCAST.is_broadcast());
        assert!(!TagId(3).is_broadcast());
    }
}
