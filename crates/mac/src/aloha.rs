//! Slotted ALOHA for multi-tag acknowledgements (paper §4.4, Fig. 15).
//!
//! When a multicast or broadcast downlink command solicits responses from
//! several tags, each tag draws a random slot number, counts carrier signals
//! from the access point (one per slot), and transmits when its counter
//! reaches zero. Randomising the slot choice keeps the collision probability
//! low without any coordination.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::packet::TagId;

/// Per-tag slotted-ALOHA state.
#[derive(Debug, Clone)]
pub struct AlohaState {
    /// The tag this state belongs to.
    pub tag: TagId,
    /// Remaining slots before this tag transmits.
    pub counter: u32,
}

impl AlohaState {
    /// Draws a fresh random slot in `0..num_slots`.
    pub fn new(tag: TagId, num_slots: u32, rng: &mut impl Rng) -> Self {
        AlohaState {
            tag,
            counter: rng.gen_range(0..num_slots.max(1)),
        }
    }

    /// Called when the access point signals the start of a slot with a carrier
    /// burst. Returns `true` when the tag transmits in this slot.
    pub fn on_carrier(&mut self) -> bool {
        if self.counter == 0 {
            true
        } else {
            self.counter -= 1;
            false
        }
    }
}

/// Outcome of one slotted-ALOHA round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlohaRound {
    /// Tags that transmitted alone in their slot (successful).
    pub successes: Vec<TagId>,
    /// Tags that collided with another tag.
    pub collisions: Vec<TagId>,
    /// Number of slots that went unused.
    pub idle_slots: u32,
}

impl AlohaRound {
    /// Fraction of participating tags whose response got through.
    pub fn success_ratio(&self) -> f64 {
        let total = self.successes.len() + self.collisions.len();
        if total == 0 {
            return 0.0;
        }
        self.successes.len() as f64 / total as f64
    }
}

/// Simulates one slotted-ALOHA acknowledgement round: `tags` respond within
/// `num_slots` slots, each choosing a slot uniformly at random.
pub fn simulate_round(tags: &[TagId], num_slots: u32, seed: u64) -> AlohaRound {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut states: Vec<AlohaState> = tags
        .iter()
        .map(|&t| AlohaState::new(t, num_slots, &mut rng))
        .collect();

    let mut successes = Vec::new();
    let mut collisions = Vec::new();
    let mut idle_slots = 0u32;
    for _slot in 0..num_slots {
        let mut transmitters = Vec::new();
        for s in &mut states {
            if s.on_carrier() {
                transmitters.push(s.tag);
            }
        }
        // Tags that transmitted are done; remove them from future slots.
        states.retain(|s| !transmitters.contains(&s.tag));
        match transmitters.len() {
            0 => idle_slots += 1,
            1 => successes.push(transmitters[0]),
            _ => collisions.extend(transmitters),
        }
    }
    AlohaRound {
        successes,
        collisions,
        idle_slots,
    }
}

/// Analytic probability that a given tag's response survives a round with
/// `tags` contenders and `slots` slots: `(1 - 1/slots)^(tags-1)`.
pub fn analytic_success_probability(tags: u32, slots: u32) -> f64 {
    if tags == 0 || slots == 0 {
        return 0.0;
    }
    (1.0 - 1.0 / slots as f64).powi(tags as i32 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tag_never_collides() {
        let round = simulate_round(&[TagId(1)], 8, 42);
        assert_eq!(round.successes, vec![TagId(1)]);
        assert!(round.collisions.is_empty());
        assert_eq!(round.success_ratio(), 1.0);
    }

    #[test]
    fn all_tags_either_succeed_or_collide() {
        let tags: Vec<TagId> = (0..10).map(TagId).collect();
        let round = simulate_round(&tags, 16, 7);
        assert_eq!(round.successes.len() + round.collisions.len(), 10);
        assert!(round.idle_slots < 16);
    }

    #[test]
    fn more_slots_reduce_collisions() {
        let tags: Vec<TagId> = (0..12).map(TagId).collect();
        let mut few_slot_successes = 0usize;
        let mut many_slot_successes = 0usize;
        for seed in 0..200 {
            few_slot_successes += simulate_round(&tags, 4, seed).successes.len();
            many_slot_successes += simulate_round(&tags, 64, seed + 10_000).successes.len();
        }
        assert!(many_slot_successes > few_slot_successes);
    }

    #[test]
    fn simulation_matches_analytic_probability() {
        let tags: Vec<TagId> = (0..8).map(TagId).collect();
        let slots = 16;
        let rounds = 2000;
        let mut successes = 0usize;
        for seed in 0..rounds {
            successes += simulate_round(&tags, slots, seed).successes.len();
        }
        let empirical = successes as f64 / (rounds as usize * tags.len()) as f64;
        let analytic = analytic_success_probability(tags.len() as u32, slots);
        assert!(
            (empirical - analytic).abs() < 0.03,
            "empirical {empirical:.3} vs analytic {analytic:.3}"
        );
    }

    #[test]
    fn counter_decrements_on_carrier() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut s = AlohaState::new(TagId(5), 4, &mut rng);
        let initial = s.counter;
        let mut fired_at = None;
        for slot in 0..5 {
            if s.on_carrier() {
                fired_at = Some(slot);
                break;
            }
        }
        assert_eq!(fired_at, Some(initial));
    }

    #[test]
    fn analytic_bounds() {
        assert_eq!(analytic_success_probability(1, 8), 1.0);
        assert_eq!(analytic_success_probability(0, 8), 0.0);
        assert!(analytic_success_probability(10, 2) < analytic_success_probability(2, 2));
    }
}
