//! Chunked streaming demodulation.
//!
//! The batch [`crate::demodulator::SaiyanDemodulator`] assumes a complete,
//! pre-cut capture: it calibrates thresholds over the whole buffer, detects a
//! single preamble, and decodes one packet. Real Saiyan hardware is a
//! continuously-running analog chain — the tag never sees buffer boundaries.
//! This module models that: a [`StreamingDemodulator`] accepts arbitrary-size
//! sample chunks (down to one sample, including empty chunks), carries every
//! piece of analog and digital state across chunk boundaries, and emits a
//! [`DemodResult`] whenever a packet completes inside the stream.
//!
//! ## Chunk invariance
//!
//! The pipeline is built so its output is a function of the sample *stream*
//! only, never of where the chunks are cut:
//!
//! * every analog stage is causal and carries its state (FIR delay line, LNA
//!   noise RNG, clock phase, detector flicker integrator, filter memories);
//! * threshold calibration is a causal tracker updated per waveform sample
//!   (the streaming equivalent of [`crate::calibration::auto_calibrate`]);
//! * the MCU sampler latches at tick positions fixed on the global sample
//!   index;
//! * all detection/decode decisions advance strictly per low-rate sample.
//!
//! Consequently, demodulating a trace in chunks of 1 sample, 7 samples, or
//! the whole buffer at once produces bit-identical results — the equivalence
//! property `tests/streaming_equivalence.rs` checks.

use std::collections::VecDeque;

use analog::signal::RealBuffer;
use lora_phy::iq::{Iq, SampleBuffer};
use lora_phy::params::{PREAMBLE_UPCHIRPS, SYNC_SYMBOLS};

use crate::calibration::Thresholds;
use crate::config::SaiyanConfig;
use crate::correlator::Correlator;
use crate::decoder::{PeakDecoder, PreambleTiming};
use crate::demodulator::DemodResult;
use crate::frontend::{Frontend, StreamingFrontend};
use crate::sampler::SampledStream;

/// Causal comparator-threshold calibration: the streaming stand-in for
/// [`crate::calibration::auto_calibrate`], which needs the whole buffer.
///
/// The peak amplitude `A_max` is tracked with an exponentially decaying peak
/// hold (the decay lets the thresholds re-adapt to the next packet's power).
/// The detector floor is tracked as a running *median* of the envelope
/// magnitude, via a sign-driven stochastic update whose step is tied to the
/// held peak. An order statistic is the one robust discriminator here: inside
/// a packet the SAW-transformed chirp spends almost all of each symbol far
/// below its peak (the median sits ~30 dB down), while in plain noise the
/// median sits within a few dB of the maxima. A mean-based floor cannot make
/// that call — the chirp ramp drags the mean up until the packet itself looks
/// like floor. While no signal stands out, `U_H` is parked strictly *above*
/// the running peak so the comparator stays silent: the batch calibration
/// parks it just below the global maximum instead, which is safe there
/// because the maximum includes the packet, but on a live stream it would
/// chatter on every new noise maximum and flood the edge detector.
#[derive(Debug, Clone)]
struct ThresholdTracker {
    peak: f64,
    median: f64,
    /// Remaining samples of the seeding phase, during which the median is a
    /// fast EMA of `|v|` rather than a slow sign-stepper. Without it, a
    /// single unluckily small first sample under-seeds the median and the
    /// onset ratio fires on plain noise for the next several symbols.
    seed_remaining: u64,
    /// Remaining samples of the onset dwell (see [`Self::update`]).
    dwell_remaining: u64,
    dwell_samples: u64,
    peak_decay: f64,
    median_alpha: f64,
    seed_alpha: f64,
    gap_amp: f64,
    quiet_gap_amp: f64,
    /// Cap on the hysteresis span `U_H − U_L` as a fraction of the held peak
    /// (see [`crate::config::SaiyanConfig::comparator_hysteresis`]).
    hysteresis: f64,
    /// Peak/median multiple that declares a packet onset (see
    /// [`crate::config::SaiyanConfig::activity_ratio`]).
    activity_ratio: f64,
}

impl ThresholdTracker {
    /// Peak-hold time constant, in symbol durations. Long enough to bridge
    /// the one-symbol spacing of preamble peaks, short enough to re-adapt in
    /// the gap between packets of different receive power.
    const PEAK_TAU_SYMBOLS: f64 = 8.0;
    /// Median step size as a fraction of the held peak, per symbol of
    /// samples. Deliberately slow: after a packet lands, the rising chirp
    /// envelope drags the median up, and the onset ratio below must stay
    /// above threshold until the preamble's fifth peak has fired the live
    /// candidate search (which then holds the comparator active). One
    /// percent of the peak per symbol keeps that window ~10 symbols wide.
    const MEDIAN_STEP_PER_SYMBOL: f64 = 0.01;
    fn new(
        gap_db: f64,
        hysteresis: f64,
        activity_ratio: f64,
        sample_rate: f64,
        symbol_duration: f64,
    ) -> Self {
        let samples_per_symbol = sample_rate * symbol_duration;
        ThresholdTracker {
            peak: 0.0,
            median: 0.0,
            seed_remaining: samples_per_symbol.round() as u64,
            dwell_remaining: 0,
            dwell_samples: ((PREAMBLE_UPCHIRPS as f64 + SYNC_SYMBOLS + 2.0) * samples_per_symbol)
                .round() as u64,
            peak_decay: (-1.0 / (Self::PEAK_TAU_SYMBOLS * samples_per_symbol)).exp(),
            median_alpha: Self::MEDIAN_STEP_PER_SYMBOL / samples_per_symbol,
            seed_alpha: 0.01,
            gap_amp: 10f64.powf(gap_db / 20.0),
            quiet_gap_amp: 10f64.powf(1.0 / 20.0),
            hysteresis,
            activity_ratio,
        }
    }

    /// Updates the tracker with one envelope sample. `hold_active` is the
    /// receiver's packet-in-flight signal: while a preamble has been detected
    /// and the payload is still streaming in, the comparator is held in its
    /// active regime regardless of the onset ratio — the streaming analogue
    /// of an AGC freeze — because mid-packet the envelope median inevitably
    /// catches up with the peak and the onset test alone would go quiet.
    fn update(&mut self, v: f64, hold_active: bool) -> Thresholds {
        self.peak = v.max(self.peak * self.peak_decay);
        // Sign-driven median tracker over |v| (the shifting chain's output is
        // zero-mean between packets; its magnitude is the right noise scale).
        let magnitude = v.abs();
        if self.seed_remaining > 0 {
            self.seed_remaining -= 1;
            self.median += self.seed_alpha * (magnitude - self.median);
        } else {
            let step = self.peak * self.median_alpha;
            if magnitude > self.median {
                self.median += step;
            } else {
                self.median = (self.median - step).max(0.0);
            }
        }
        // A single onset crossing arms the comparator for a preamble's worth
        // of symbols (the dwell): at narrow bandwidths the chirp's amplitude
        // gap is small enough that the envelope median catches up with the
        // peak within a couple of symbols, so the instantaneous ratio alone
        // cannot stay up for the five peaks the live candidate search needs.
        // A noise-triggered dwell is benign — the spike that armed it also
        // set the peak hold, so `U_H` sits far above the noise it came from.
        // While the median is still being seeded it is not a valid noise
        // reference, so no onset can be declared.
        // A packet onset is declared once the held peak exceeds the
        // configured multiple of the median envelope magnitude. At onset the
        // ratio jumps well clear of it (the median still sits at the
        // pre-packet floor); for noise it stays within a few dB.
        let onset = self.seed_remaining == 0 && self.peak > self.activity_ratio * self.median;
        if onset {
            self.dwell_remaining = self.dwell_samples;
        } else {
            self.dwell_remaining = self.dwell_remaining.saturating_sub(1);
        }
        let active = hold_active || onset || self.dwell_remaining > 0;
        let high = if active {
            self.peak / self.gap_amp
        } else {
            // Parked strictly above the running peak: silent by construction.
            self.peak * self.quiet_gap_amp
        };
        let floor_param = (self.peak - self.median)
            .min(self.peak * self.hysteresis)
            .max(0.0);
        let low = (high - floor_param).max(high * 0.1);
        Thresholds { high, low }
    }

    /// Block form of the recurrence half of [`Self::update`]: advances the
    /// tracker over a whole chunk, recording the post-update peak, median,
    /// and base activity (`onset || dwell`) per sample. None of these depend
    /// on the receiver's `hold_active` input — only the threshold mapping
    /// does, and that is deferred to [`Self::fill_thresholds`] so the caller
    /// can redo it cheaply when the packet-hold signal flips at a sampler
    /// tick. Every expression matches `update` operation for operation, so
    /// the arrays are bit-identical to per-sample calls.
    fn fill_arrays(
        &mut self,
        env: &[f64],
        peaks: &mut Vec<f64>,
        medians: &mut Vec<f64>,
        active: &mut Vec<bool>,
    ) {
        let n = env.len();
        peaks.clear();
        peaks.reserve(n);
        medians.clear();
        medians.reserve(n);
        active.clear();
        active.reserve(n);
        let mut i = 0;
        // Median seeding phase: the EMA branch, including the onset check
        // firing on the very sample the seed count reaches zero.
        while i < n && self.seed_remaining > 0 {
            let v = env[i];
            self.peak = v.max(self.peak * self.peak_decay);
            let magnitude = v.abs();
            self.seed_remaining -= 1;
            self.median += self.seed_alpha * (magnitude - self.median);
            let onset = self.seed_remaining == 0 && self.peak > self.activity_ratio * self.median;
            if onset {
                self.dwell_remaining = self.dwell_samples;
            } else {
                self.dwell_remaining = self.dwell_remaining.saturating_sub(1);
            }
            peaks.push(self.peak);
            medians.push(self.median);
            active.push(onset || self.dwell_remaining > 0);
            i += 1;
        }
        // Steady state: branch-reduced recurrences. Both median outcomes are
        // computed and selected, which keeps the loop free of unpredictable
        // branches while reproducing the original expressions bit for bit
        // (the untaken arm has no side effects).
        let mut peak = self.peak;
        let mut median = self.median;
        let mut dwell = self.dwell_remaining;
        for &v in &env[i..] {
            peak = v.max(peak * self.peak_decay);
            let magnitude = v.abs();
            let step = peak * self.median_alpha;
            let up = median + step;
            let down = (median - step).max(0.0);
            median = if magnitude > median { up } else { down };
            let onset = peak > self.activity_ratio * median;
            dwell = if onset {
                self.dwell_samples
            } else {
                dwell.saturating_sub(1)
            };
            peaks.push(peak);
            medians.push(median);
            active.push(onset || dwell > 0);
        }
        self.peak = peak;
        self.median = median;
        self.dwell_remaining = dwell;
    }

    /// Threshold half of [`Self::update`] over arrays filled by
    /// [`Self::fill_arrays`], recomputing entries from index `from` on with
    /// the packet-hold signal fixed at `hold` (entries before `from` keep
    /// their values). Expressions match `update` exactly.
    #[allow(clippy::too_many_arguments)]
    fn fill_thresholds(
        &self,
        peaks: &[f64],
        medians: &[f64],
        active: &[bool],
        hold: bool,
        from: usize,
        highs: &mut Vec<f64>,
        lows: &mut Vec<f64>,
    ) {
        let n = peaks.len();
        highs.resize(n, 0.0);
        lows.resize(n, 0.0);
        for i in from..n {
            let peak = peaks[i];
            let high = if hold || active[i] {
                peak / self.gap_amp
            } else {
                peak * self.quiet_gap_amp
            };
            let floor_param = (peak - medians[i]).min(peak * self.hysteresis).max(0.0);
            highs[i] = high;
            lows[i] = (high - floor_param).max(high * 0.1);
        }
    }
}

/// Reusable buffers of the block tracking path
/// ([`StreamingDemodulator::track_and_sample_block`]); their capacity
/// survives across chunks so steady-state demodulation allocates nothing.
#[derive(Debug, Clone, Default)]
struct BlockScratch {
    peaks: Vec<f64>,
    medians: Vec<f64>,
    active: Vec<bool>,
    highs: Vec<f64>,
    lows: Vec<f64>,
    words: Vec<u64>,
}

/// Receiver state: hunting for a preamble, or waiting for a detected packet's
/// payload to finish streaming in.
#[derive(Debug, Clone, Copy)]
enum RxState {
    Searching,
    Collecting {
        candidate: PreambleTiming,
        /// Stream time at which the payload (plus one symbol of slack) is
        /// fully buffered and the packet can be decoded.
        deadline: f64,
    },
}

/// A continuously-running Saiyan receiver fed by arbitrary-size sample chunks.
///
/// All times inside emitted [`DemodResult`]s are seconds from the start of the
/// *stream* (not of any individual chunk). The expected payload length is
/// fixed per stream, as in the paper's evaluation (the downlink has no length
/// field — the tag knows its frame format).
///
/// ```
/// use lora_phy::modulator::{Alphabet, Modulator};
/// use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
/// use rfsim::channel::dbm_to_buffer_power;
/// use rfsim::units::Dbm;
/// use saiyan::{SaiyanConfig, StreamingDemodulator, Variant};
///
/// let lora = LoraParams::new(
///     SpreadingFactor::Sf7,
///     Bandwidth::Khz500,
///     BitsPerChirp::new(2).unwrap(),
/// );
/// let config = SaiyanConfig::paper_default(lora, Variant::WithShifting);
/// let symbols = vec![3u32, 1, 0, 2];
/// let (trace, _) = Modulator::new(lora)
///     .packet_with_guard(&symbols, Alphabet::Downlink, 3)
///     .unwrap();
/// let trace = trace.scaled(dbm_to_buffer_power(Dbm(-50.0)).sqrt());
///
/// // Push the stream in arbitrary chunks; packets fall out as they complete.
/// let mut demod = StreamingDemodulator::new(config, symbols.len());
/// let mut packets = Vec::new();
/// for chunk in trace.samples.chunks(777) {
///     packets.extend(demod.push_samples(chunk));
/// }
/// packets.extend(demod.finish()); // flush a packet cut at stream end
/// assert_eq!(packets.len(), 1);
/// assert_eq!(packets[0].symbols, symbols);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingDemodulator {
    config: SaiyanConfig,
    payload_symbols: usize,
    sample_rate: f64,
    sampler_rate: f64,
    frontend: StreamingFrontend,
    tracker: ThresholdTracker,
    comparator_high: bool,
    warmup_remaining: u64,
    current_thresholds: Thresholds,
    /// Global index of the next waveform sample to process.
    hi_index: u64,
    /// Global index of the next sampler tick to emit.
    next_tick: u64,
    /// Waveform-sample index at which that tick latches.
    next_tick_target: u64,
    /// Retained low-rate window (comparator bits and envelope values).
    bits: VecDeque<bool>,
    env: VecDeque<f64>,
    /// Global tick index of the window's first retained sample.
    window_start_tick: u64,
    prev_bit: bool,
    /// Falling-edge times (stream seconds) within the retained window.
    edges: VecDeque<f64>,
    /// Maximum ticks to retain while searching (one packet plus slack).
    keep_ticks: usize,
    decoder: PeakDecoder,
    correlator: Option<Correlator>,
    state: RxState,
    /// Reusable envelope buffer the front end writes each chunk into; its
    /// capacity survives across chunks so steady-state demodulation performs
    /// no per-chunk allocation.
    env_scratch: Vec<f64>,
    /// Reusable buffers of the block tracking path.
    scratch: BlockScratch,
}

impl StreamingDemodulator {
    /// Builds a streaming demodulator expecting packets of `payload_symbols`
    /// payload chirps.
    pub fn new(config: SaiyanConfig, payload_symbols: usize) -> Self {
        assert!(payload_symbols > 0, "payload_symbols must be positive");
        let sample_rate = config.lora.sample_rate();
        let sampler_rate = config.sampler_rate();
        assert!(
            sample_rate > 2.0 * sampler_rate,
            "waveform rate {sample_rate} must exceed twice the sampler rate {sampler_rate}"
        );
        let t_sym = config.lora.symbol_duration();
        let keep_ticks = ((PREAMBLE_UPCHIRPS as f64 + SYNC_SYMBOLS + payload_symbols as f64 + 8.0)
            * t_sym
            * sampler_rate)
            .ceil() as usize;
        let saw_taps = config
            .streaming_saw_taps
            .unwrap_or(Frontend::STREAMING_SAW_TAPS);
        let frontend = Frontend::paper(&config).streaming_with_taps(sample_rate, saw_taps);
        let tracker = ThresholdTracker::new(
            config.threshold_gap_db,
            config.comparator_hysteresis,
            config.activity_ratio,
            sample_rate,
            t_sym,
        );
        let decoder = PeakDecoder::new(config.lora);
        let correlator = if config.variant.uses_correlation() {
            Some(Correlator::from_config(&config))
        } else {
            None
        };
        let warmup = config.lora.samples_per_symbol() as u64;
        StreamingDemodulator {
            config,
            payload_symbols,
            sample_rate,
            sampler_rate,
            frontend,
            tracker,
            comparator_high: false,
            warmup_remaining: warmup,
            current_thresholds: Thresholds {
                high: f64::MAX,
                low: f64::MAX / 2.0,
            },
            hi_index: 0,
            next_tick: 0,
            next_tick_target: 0,
            bits: VecDeque::new(),
            env: VecDeque::new(),
            window_start_tick: 0,
            prev_bit: false,
            edges: VecDeque::new(),
            keep_ticks,
            decoder,
            correlator,
            state: RxState::Searching,
            env_scratch: Vec::new(),
            scratch: BlockScratch::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SaiyanConfig {
        &self.config
    }

    /// Returns the demodulator to its pristine just-constructed state so it
    /// can serve a new, unrelated stream: all carried analog state (FIR delay
    /// lines, noise RNGs, clock phase), the threshold tracker, and the
    /// retained detection window are discarded. After `reset` the instance
    /// decodes any stream bit-identically to a freshly built one — the
    /// property pooled serving relies on (`tests/receiver_reset.rs`).
    pub fn reset(&mut self) {
        *self = StreamingDemodulator::new(self.config.clone(), self.payload_symbols);
    }

    /// Point-in-time SNR estimate (dB) from the threshold tracker: the held
    /// envelope peak over the running envelope-floor median. Between packets
    /// this sits near 0 dB (noise peaks over noise floor decay together);
    /// while a packet is on the air it approaches the comparator's actual
    /// operating margin. Exposed as a telemetry gauge — it feeds decisions
    /// about *observability*, never the decode path itself.
    pub fn snr_estimate_db(&self) -> f64 {
        if self.tracker.median <= f64::MIN_POSITIVE || self.tracker.peak <= 0.0 {
            return 0.0;
        }
        20.0 * (self.tracker.peak / self.tracker.median).log10()
    }

    /// The expected payload length in chirp symbols.
    pub fn payload_symbols(&self) -> usize {
        self.payload_symbols
    }

    /// Total waveform samples consumed so far.
    pub fn samples_consumed(&self) -> u64 {
        self.hi_index
    }

    /// Pushes one chunk of the stream, returning any packets that completed
    /// within it. Empty chunks are a no-op.
    pub fn push_chunk(&mut self, chunk: &SampleBuffer) -> Vec<DemodResult> {
        if chunk.is_empty() {
            return Vec::new();
        }
        assert!(
            (chunk.sample_rate - self.sample_rate).abs() < 1e-6,
            "chunk sample rate {} does not match the stream rate {}",
            chunk.sample_rate,
            self.sample_rate
        );
        self.push_samples(&chunk.samples)
    }

    /// Pushes raw samples (assumed to be at the stream's sample rate).
    pub fn push_samples(&mut self, samples: &[Iq]) -> Vec<DemodResult> {
        // Temporarily take the scratch so the tracking loops below can
        // borrow `self` mutably while reading the envelope.
        let mut envelope = std::mem::take(&mut self.env_scratch);
        self.frontend.process_chunk_into(samples, &mut envelope);
        let mut out = Vec::new();
        match analog::simd::active_backend() {
            analog::simd::Backend::Scalar => self.track_and_sample(&envelope, &mut out),
            wide => self.track_and_sample_block(wide, &envelope, &mut out),
        }
        self.env_scratch = envelope;
        out
    }

    /// Per-sample tracking, comparison, and sampling — the scalar reference
    /// the block path below must match bit for bit.
    fn track_and_sample(&mut self, envelope: &[f64], out: &mut Vec<DemodResult>) {
        for &v in envelope {
            let hold_active = matches!(self.state, RxState::Collecting { .. });
            let thresholds = self.tracker.update(v, hold_active);
            self.current_thresholds = thresholds;
            let bit = if self.warmup_remaining > 0 {
                self.warmup_remaining -= 1;
                false
            } else if self.comparator_high {
                v >= thresholds.low
            } else {
                v >= thresholds.high
            };
            self.comparator_high = bit;
            while self.next_tick_target == self.hi_index {
                self.append_tick(bit, v, out);
                self.next_tick += 1;
                self.next_tick_target = self.tick_target(self.next_tick);
            }
            self.hi_index += 1;
        }
    }

    /// Block tracking path: splits the per-sample loop into array passes so
    /// the comparator can run through the branch-reduced word kernel and the
    /// sampler only touches the ~1-in-40 samples where a tick latches.
    ///
    /// The key observation is that the tracker's recurrences (peak hold,
    /// median stepper, dwell counter) never depend on the receiver state —
    /// only the *threshold mapping* reads the packet-hold signal, and that
    /// signal can only flip at a sampler tick. So: (A) advance the tracker
    /// over the whole chunk into per-sample arrays, (B) map them to
    /// thresholds under the current hold, (C) scan the comparator into packed
    /// bit words, (D) walk the sparse ticks. When a tick flips the receiver
    /// state (packet found / packet decoded), passes B–C are redone from the
    /// next sample — flips happen at most a few times per packet, so the cost
    /// is negligible. The original per-sample loop processes a tick *after*
    /// updating tracker and comparator for that sample, so a flip only ever
    /// affects later samples and the replay is exact: every output is
    /// bit-identical to [`Self::track_and_sample`].
    fn track_and_sample_block(
        &mut self,
        backend: analog::simd::Backend,
        envelope: &[f64],
        out: &mut Vec<DemodResult>,
    ) {
        // The comparator warm-up (during which bits are forced low) is a
        // one-time startup region of a symbol — run it, and the tracker
        // seeding that spans the same samples, through the per-sample loop.
        let warmup = self.warmup_remaining.min(envelope.len() as u64) as usize;
        if warmup > 0 {
            self.track_and_sample(&envelope[..warmup], out);
        }
        let env = &envelope[warmup..];
        let n = env.len();
        if n == 0 {
            return;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        self.tracker.fill_arrays(
            env,
            &mut scratch.peaks,
            &mut scratch.medians,
            &mut scratch.active,
        );
        let hold = matches!(self.state, RxState::Collecting { .. });
        self.tracker.fill_thresholds(
            &scratch.peaks,
            &scratch.medians,
            &scratch.active,
            hold,
            0,
            &mut scratch.highs,
            &mut scratch.lows,
        );
        self.comparator_high = analog::simd::hysteresis_words(
            backend,
            env,
            &scratch.highs,
            &scratch.lows,
            self.comparator_high,
            &mut scratch.words,
        );
        // Sample index corresponding to bit 0 of `scratch.words[0]`; advanced
        // when a state flip forces a partial rescan.
        let mut words_base = 0usize;
        let bit_at = |words: &[u64], words_base: usize, i: usize| {
            let j = i - words_base;
            (words[j >> 6] >> (j & 63)) & 1 != 0
        };
        let base = self.hi_index;
        let end = base + n as u64;
        while self.next_tick_target < end {
            let idx = (self.next_tick_target - base) as usize;
            let bit = bit_at(&scratch.words, words_base, idx);
            self.current_thresholds = Thresholds {
                high: scratch.highs[idx],
                low: scratch.lows[idx],
            };
            let held_before = matches!(self.state, RxState::Collecting { .. });
            self.append_tick(bit, env[idx], out);
            self.next_tick += 1;
            self.next_tick_target = self.tick_target(self.next_tick);
            let held_after = matches!(self.state, RxState::Collecting { .. });
            if held_before != held_after && idx + 1 < n {
                // The packet-hold signal flipped at this tick. Thresholds —
                // and through them comparator bits — change from the next
                // sample on; replay passes B–C for the remaining suffix,
                // restarting the comparator from this sample's (final) bit.
                self.tracker.fill_thresholds(
                    &scratch.peaks,
                    &scratch.medians,
                    &scratch.active,
                    held_after,
                    idx + 1,
                    &mut scratch.highs,
                    &mut scratch.lows,
                );
                words_base = idx + 1;
                self.comparator_high = analog::simd::hysteresis_words(
                    backend,
                    &env[words_base..],
                    &scratch.highs[words_base..],
                    &scratch.lows[words_base..],
                    bit,
                    &mut scratch.words,
                );
            }
        }
        self.hi_index = end;
        self.current_thresholds = Thresholds {
            high: scratch.highs[n - 1],
            low: scratch.lows[n - 1],
        };
        self.scratch = scratch;
    }

    /// Flushes the stream: if a detected packet's payload is (essentially)
    /// fully buffered but its decode slack had not elapsed yet, decode it
    /// now. Up to half a symbol of trailing tail may be missing — the SAW
    /// FIR's group delay pushes the estimated payload end slightly past a
    /// hard-cut trace — while a packet genuinely cut off mid-payload is
    /// discarded (its symbols never arrived).
    pub fn finish(&mut self) -> Vec<DemodResult> {
        let mut out = Vec::new();
        if let RxState::Collecting { candidate, .. } = self.state {
            let t_sym = self.config.lora.symbol_duration();
            let payload_end = candidate.payload_start + self.payload_symbols as f64 * t_sym;
            let last_tick_time = if self.next_tick == 0 {
                f64::NEG_INFINITY
            } else {
                (self.next_tick - 1) as f64 / self.sampler_rate
            };
            if last_tick_time + 0.5 * t_sym >= payload_end {
                if let Some(result) = self.decode_packet() {
                    out.push(result);
                }
            } else {
                self.state = RxState::Searching;
            }
        }
        out
    }

    /// Convenience: streams an entire trace through this demodulator (one
    /// chunk) and flushes. With a fresh instance this is the whole-buffer
    /// reference the chunked runs are compared against.
    pub fn run_to_end(mut self, trace: &SampleBuffer) -> Vec<DemodResult> {
        let mut out = self.push_chunk(trace);
        out.extend(self.finish());
        out
    }

    /// Waveform index at which sampler tick `k` latches (the same nearest-
    /// sample rule as the batch [`crate::sampler::VoltageSampler`]).
    fn tick_target(&self, k: u64) -> u64 {
        (k as f64 / self.sampler_rate * self.sample_rate).round() as u64
    }

    /// Appends one low-rate sample and advances the detection state machine.
    fn append_tick(&mut self, bit: bool, env: f64, out: &mut Vec<DemodResult>) {
        let tick = self.next_tick;
        let t = tick as f64 / self.sampler_rate;
        if self.prev_bit && !bit {
            // Falling edge: the previous tick was the tail of a high run.
            let edge_time = (tick - 1) as f64 / self.sampler_rate;
            self.edges.push_back(edge_time);
            if matches!(self.state, RxState::Searching) {
                self.try_candidate();
            }
        }
        self.prev_bit = bit;
        self.bits.push_back(bit);
        self.env.push_back(env);
        match self.state {
            RxState::Searching => self.prune_window(),
            RxState::Collecting { deadline, .. } => {
                if t >= deadline {
                    if let Some(result) = self.decode_packet() {
                        out.push(result);
                    }
                }
            }
        }
    }

    /// On a new falling edge while searching: look for a regular preamble
    /// train among the buffered edges and, if found, start collecting the
    /// packet it announces.
    fn try_candidate(&mut self) {
        if self.edges.len() < self.decoder.min_preamble_peaks() {
            return;
        }
        let edges: Vec<f64> = self.edges.iter().copied().collect();
        if let Some((anchor, count)) = self.decoder.preamble_anchor(&edges) {
            if count >= self.decoder.min_preamble_peaks() {
                let timing = self.decoder.timing_from_first_peak(anchor, count);
                let t_sym = self.config.lora.symbol_duration();
                // Two symbols of slack: one for the decode itself, one for
                // the refinement in `decode_packet` shifting the payload
                // window later than this live estimate.
                let deadline = timing.payload_start + (self.payload_symbols as f64 + 2.0) * t_sym;
                self.state = RxState::Collecting {
                    candidate: timing,
                    deadline,
                };
            }
        }
    }

    /// While searching, cap the retained window to one packet's worth so a
    /// quiet stream does not grow memory without bound.
    fn prune_window(&mut self) {
        while self.bits.len() > self.keep_ticks {
            self.bits.pop_front();
            self.env.pop_front();
            self.window_start_tick += 1;
        }
        let start_time = self.window_start_tick as f64 / self.sampler_rate;
        while let Some(&e) = self.edges.front() {
            if e < start_time {
                self.edges.pop_front();
            } else {
                break;
            }
        }
    }

    /// The retained window as a [`SampledStream`] with stream-global times.
    fn window_stream(&self) -> SampledStream {
        SampledStream {
            bits: self.bits.iter().copied().collect(),
            sample_rate: self.sampler_rate,
            start_time: self.window_start_tick as f64 / self.sampler_rate,
        }
    }

    /// Decodes the packet being collected, emits its result, and consumes the
    /// window past its payload.
    fn decode_packet(&mut self) -> Option<DemodResult> {
        let candidate = match self.state {
            RxState::Collecting { candidate, .. } => candidate,
            RxState::Searching => return None,
        };
        let stream = self.window_stream();
        let t_sym = self.config.lora.symbol_duration();
        // Refine the candidate timing against the *preamble region* of the
        // retained edges: the live candidate fired after the minimum five
        // peaks, and the full train sharpens both the timing and the peak
        // count. The refinement must not re-search the whole window — a
        // payload with repeated symbols peaks at exact symbol spacing and
        // can form a regular train at least as long as the preamble's, which
        // would hijack the timing by several symbols.
        let refined = {
            let lo = candidate.preamble_start - 0.5 * t_sym;
            // The sync down-chirps start at full amplitude, so their falling
            // edges trail the last preamble peak; stop short of them.
            let hi = candidate.payload_start - 1.75 * t_sym;
            let preamble_edges: Vec<f64> = self
                .edges
                .iter()
                .copied()
                .filter(|&e| e >= lo && e <= hi)
                .collect();
            self.decoder
                .preamble_anchor(&preamble_edges)
                .filter(|(_, count)| *count >= self.decoder.min_preamble_peaks())
                .map(|(anchor, count)| self.decoder.timing_from_first_peak(anchor, count))
        };
        let timing = refined.unwrap_or(candidate);
        let n_symbols = self.payload_symbols;
        let peak_decisions = self
            .decoder
            .decode_payload(&stream, timing.payload_start, n_symbols);
        let (symbols, correlation_scores) = if let Some(correlator) = &self.correlator {
            let env_buf = RealBuffer::new(self.env.iter().copied().collect(), self.sampler_rate);
            let relative_start = timing.payload_start - stream.start_time;
            let decisions = correlator.decode_payload(&env_buf, relative_start, t_sym, n_symbols);
            (
                decisions.iter().map(|(s, _)| *s).collect::<Vec<u32>>(),
                decisions.iter().map(|(_, c)| *c).collect::<Vec<f64>>(),
            )
        } else {
            (
                peak_decisions.iter().map(|d| d.symbol).collect(),
                Vec::new(),
            )
        };
        let result = DemodResult {
            symbols,
            peak_times: peak_decisions.iter().map(|d| d.peak_time).collect(),
            correlation_scores,
            payload_start_time: timing.payload_start,
            preamble_peaks: timing.supporting_peaks,
            thresholds: self.current_thresholds,
        };
        let payload_end = timing.payload_start + n_symbols as f64 * t_sym;
        self.consume_until(payload_end);
        self.state = RxState::Searching;
        Some(result)
    }

    /// Drops retained window content (and edges) before stream time `t`.
    fn consume_until(&mut self, t: f64) {
        while !self.bits.is_empty() {
            let front_time = self.window_start_tick as f64 / self.sampler_rate;
            if front_time < t {
                self.bits.pop_front();
                self.env.pop_front();
                self.window_start_tick += 1;
            } else {
                break;
            }
        }
        while let Some(&e) = self.edges.front() {
            if e < t {
                self.edges.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use lora_phy::modulator::{Alphabet, Modulator};
    use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
    use rfsim::channel::dbm_to_buffer_power;
    use rfsim::noise::AwgnSource;
    use rfsim::units::Dbm;

    fn config(variant: Variant) -> SaiyanConfig {
        let lora = LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(2).unwrap(),
        );
        SaiyanConfig::paper_default(lora, variant)
    }

    /// A trace holding one packet at `rx_power_dbm`, padded with
    /// `guard_symbols` of silence on both sides.
    fn packet_trace(
        cfg: &SaiyanConfig,
        symbols: &[u32],
        rx_power_dbm: f64,
        guard_symbols: usize,
        noise_power_dbm: Option<f64>,
    ) -> SampleBuffer {
        let m = Modulator::new(cfg.lora);
        let (wave, _) = m
            .packet_with_guard(symbols, Alphabet::Downlink, guard_symbols)
            .unwrap();
        let target = dbm_to_buffer_power(Dbm(rx_power_dbm));
        let mut rx = wave.scaled(target.sqrt());
        if let Some(np) = noise_power_dbm {
            let mut awgn = AwgnSource::new(0x57EA);
            awgn.add_to(&mut rx, dbm_to_buffer_power(Dbm(np)));
        }
        rx
    }

    #[test]
    fn single_packet_is_decoded_from_a_stream() {
        let symbols = vec![3u32, 1, 0, 2, 1, 1, 3, 0];
        for variant in Variant::ALL {
            let cfg = config(variant);
            let trace = packet_trace(&cfg, &symbols, -50.0, 3, None);
            let results = StreamingDemodulator::new(cfg, symbols.len()).run_to_end(&trace);
            assert_eq!(results.len(), 1, "variant {variant:?}");
            assert_eq!(results[0].symbols, symbols, "variant {variant:?}");
            assert!(results[0].preamble_peaks >= 5);
        }
    }

    #[test]
    fn chunked_and_whole_buffer_runs_are_identical() {
        let symbols = vec![2u32, 0, 3, 1, 2, 2];
        let cfg = config(Variant::WithShifting);
        let trace = packet_trace(&cfg, &symbols, -52.0, 3, Some(-80.0));
        let whole = StreamingDemodulator::new(cfg.clone(), symbols.len()).run_to_end(&trace);
        assert_eq!(whole.len(), 1);
        for chunk_size in [1usize, 7, 1024] {
            let mut demod = StreamingDemodulator::new(cfg.clone(), symbols.len());
            let mut results = Vec::new();
            for chunk in trace.samples.chunks(chunk_size) {
                results.extend(demod.push_samples(chunk));
            }
            results.extend(demod.finish());
            assert_eq!(results, whole, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn empty_chunks_are_harmless() {
        let symbols = vec![1u32, 2, 3, 0];
        let cfg = config(Variant::Vanilla);
        let trace = packet_trace(&cfg, &symbols, -50.0, 3, None);
        let mut demod = StreamingDemodulator::new(cfg.clone(), symbols.len());
        let mut results = Vec::new();
        for chunk in trace.samples.chunks(777) {
            results.extend(demod.push_samples(&[]));
            results.extend(demod.push_chunk(&SampleBuffer::new(Vec::new(), trace.sample_rate)));
            results.extend(demod.push_samples(chunk));
        }
        results.extend(demod.finish());
        let whole = StreamingDemodulator::new(cfg, symbols.len()).run_to_end(&trace);
        assert_eq!(results, whole);
    }

    #[test]
    fn noise_only_stream_emits_nothing_and_bounds_memory() {
        let cfg = config(Variant::Vanilla);
        let mut demod = StreamingDemodulator::new(cfg.clone(), 8);
        let mut awgn = AwgnSource::new(99);
        let mut results = Vec::new();
        for _ in 0..6 {
            let noise = awgn.noise_buffer(
                20_000,
                cfg.lora.sample_rate(),
                dbm_to_buffer_power(Dbm(-70.0)),
            );
            results.extend(demod.push_chunk(&noise));
        }
        results.extend(demod.finish());
        assert!(results.is_empty());
        assert!(demod.bits.len() <= demod.keep_ticks + 1);
    }

    #[test]
    fn truncated_payload_does_not_panic_and_is_dropped() {
        let symbols = vec![0u32, 1, 2, 3, 0, 1, 2, 3];
        let cfg = config(Variant::Vanilla);
        let trace = packet_trace(&cfg, &symbols, -50.0, 2, None);
        // Cut the trace three symbols before the payload ends.
        let cut = trace.len() - 5 * cfg.lora.samples_per_symbol();
        let truncated = SampleBuffer::new(trace.samples[..cut].to_vec(), trace.sample_rate);
        let results = StreamingDemodulator::new(cfg, symbols.len()).run_to_end(&truncated);
        assert!(results.is_empty());
    }

    #[test]
    fn trace_ending_at_payload_end_still_decodes_via_finish() {
        let symbols = vec![3u32, 2, 1, 0, 3, 2];
        let cfg = config(Variant::Vanilla);
        let m = Modulator::new(cfg.lora);
        let (wave, layout) = m
            .packet_with_guard(&symbols, Alphabet::Downlink, 2)
            .unwrap();
        // Keep the leading guard but drop everything after the payload's
        // final sample (the trailing guard).
        let payload_end = layout.payload_start + symbols.len() * cfg.lora.samples_per_symbol();
        let target = dbm_to_buffer_power(Dbm(-50.0));
        let cut = SampleBuffer::new(wave.samples[..payload_end].to_vec(), wave.sample_rate)
            .scaled(target.sqrt());
        let results = StreamingDemodulator::new(cfg, symbols.len()).run_to_end(&cut);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].symbols, symbols);
    }
}
