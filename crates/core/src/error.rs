//! Error types for the Saiyan demodulator.

use std::fmt;

/// Errors produced by the Saiyan receive chain.
#[derive(Debug, Clone, PartialEq)]
pub enum SaiyanError {
    /// No preamble (regular train of amplitude peaks) was found.
    PreambleNotFound,
    /// The provided waveform is too short for the requested operation.
    BufferTooShort {
        /// Samples required.
        needed: usize,
        /// Samples available.
        got: usize,
    },
    /// The payload window extends past the end of the captured waveform.
    PayloadTruncated {
        /// Symbols requested.
        requested: usize,
        /// Symbols actually available.
        available: usize,
    },
    /// A PHY-layer error bubbled up from the `lora-phy` crate.
    Phy(lora_phy::PhyError),
}

impl fmt::Display for SaiyanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaiyanError::PreambleNotFound => write!(f, "no LoRa preamble found"),
            SaiyanError::BufferTooShort { needed, got } => {
                write!(f, "waveform too short: needed {needed} samples, got {got}")
            }
            SaiyanError::PayloadTruncated {
                requested,
                available,
            } => write!(
                f,
                "payload truncated: requested {requested} symbols, only {available} available"
            ),
            SaiyanError::Phy(e) => write!(f, "PHY error: {e}"),
        }
    }
}

impl std::error::Error for SaiyanError {}

impl From<lora_phy::PhyError> for SaiyanError {
    fn from(e: lora_phy::PhyError) -> Self {
        SaiyanError::Phy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert!(SaiyanError::PreambleNotFound
            .to_string()
            .contains("preamble"));
        let e: SaiyanError = lora_phy::PhyError::PreambleNotFound.into();
        assert!(matches!(e, SaiyanError::Phy(_)));
        let b: Box<dyn std::error::Error> = Box::new(e);
        assert!(!b.to_string().is_empty());
    }
}
