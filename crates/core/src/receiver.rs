//! The unified receiver backend interface.
//!
//! Every receive backend in the workspace — the single-channel
//! [`StreamingDemodulator`], the multi-channel [`Gateway`], and (via the
//! `baselines` crate's adapter) the detection-only baseline receivers — is
//! driven the same way: feed IQ chunks in, drain decoded packets out, flush
//! at end of stream. [`Receiver`] captures that contract so harnesses like
//! `netsim::engine` and the `exp_*` experiment binaries can swap backends
//! without bespoke glue.
//!
//! A packet is a [`GatewayPacket`]: a [`DemodResult`] attributed to the
//! channel it arrived on (single-channel backends report channel 0).
//! Detection-only backends emit packets with empty `symbols` — a "something
//! was on the air here" marker rather than a decode.
//!
//! ## Contract
//!
//! * `feed` consumes one chunk at [`Receiver::input_rate`] and returns the
//!   packets whose position in the output stream is settled. Chunk
//!   boundaries must not change *what* is eventually emitted, only the
//!   batching (every implementation in this workspace is chunk invariant).
//! * `flush` ends the stream and returns the remainder; the receiver must
//!   not be fed afterwards — until `reset` returns it to its pristine state.
//! * `reset` discards every piece of carried state (FIR delay lines, noise
//!   RNGs, threshold trackers, detection windows, pending packets) so the
//!   instance decodes a new stream bit-identically to a freshly constructed
//!   one. This is what lets a serving layer pool receiver instances across
//!   sequential streams instead of rebuilding them.
//! * Packets are emitted in non-decreasing `payload_start_time` order.

use lora_phy::iq::Iq;

use crate::demodulator::DemodResult;
use crate::gateway::{Gateway, GatewayPacket};
use crate::streaming::StreamingDemodulator;

/// A streaming receive backend: feed chunks, drain decoded packets.
///
/// See the [module docs](self) for the contract.
pub trait Receiver {
    /// Human-readable backend name used in experiment reports.
    fn backend_name(&self) -> &'static str;

    /// Sample rate (Hz) the input chunks must be at.
    fn input_rate(&self) -> f64;

    /// Feeds one chunk of the input stream; returns the packets whose place
    /// in the output stream is now settled. Empty chunks are a no-op.
    fn feed(&mut self, chunk: &[Iq]) -> Vec<GatewayPacket>;

    /// Flushes the stream and returns the remaining packets. The receiver
    /// must not be fed again afterwards (until [`Receiver::reset`]).
    fn flush(&mut self) -> Vec<GatewayPacket>;

    /// Returns the receiver to its pristine just-constructed state so it can
    /// serve a new stream, discarding all carried state. Afterwards the
    /// instance must decode any stream bit-identically to a freshly built
    /// one (`tests/receiver_reset.rs` pins this for every backend).
    fn reset(&mut self);

    /// Per-channel point-in-time SNR estimates (dB) — telemetry gauges, one
    /// entry per served channel (single-channel backends report one entry).
    /// Backends without an estimate may return an empty vector.
    fn channel_snr_db(&self) -> Vec<f64> {
        Vec::new()
    }
}

impl Receiver for StreamingDemodulator {
    fn backend_name(&self) -> &'static str {
        "streaming-demodulator"
    }

    fn input_rate(&self) -> f64 {
        self.config().lora.sample_rate()
    }

    fn feed(&mut self, chunk: &[Iq]) -> Vec<GatewayPacket> {
        wrap_single_channel(self.push_samples(chunk))
    }

    fn flush(&mut self) -> Vec<GatewayPacket> {
        wrap_single_channel(self.finish())
    }

    fn reset(&mut self) {
        StreamingDemodulator::reset(self);
    }

    fn channel_snr_db(&self) -> Vec<f64> {
        vec![self.snr_estimate_db()]
    }
}

impl Receiver for Gateway {
    fn backend_name(&self) -> &'static str {
        "gateway"
    }

    fn input_rate(&self) -> f64 {
        self.wideband_rate()
    }

    fn feed(&mut self, chunk: &[Iq]) -> Vec<GatewayPacket> {
        self.push_chunk(chunk)
    }

    fn flush(&mut self) -> Vec<GatewayPacket> {
        self.flush_in_place()
    }

    fn reset(&mut self) {
        Gateway::reset(self);
    }

    fn channel_snr_db(&self) -> Vec<f64> {
        Gateway::channel_snr_db(self).to_vec()
    }
}

/// Attributes a single-channel backend's results to channel 0.
fn wrap_single_channel(results: Vec<DemodResult>) -> Vec<GatewayPacket> {
    results
        .into_iter()
        .map(|result| GatewayPacket { channel: 0, result })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SaiyanConfig, Variant};
    use crate::gateway::GatewayConfig;
    use lora_phy::modulator::{Alphabet, Modulator};
    use lora_phy::params::{Bandwidth, BitsPerChirp, LoraParams, SpreadingFactor};
    use rfsim::channel::dbm_to_buffer_power;
    use rfsim::units::Dbm;

    fn config() -> SaiyanConfig {
        let lora = LoraParams::new(
            SpreadingFactor::Sf7,
            Bandwidth::Khz500,
            BitsPerChirp::new(2).unwrap(),
        );
        SaiyanConfig::paper_default(lora, Variant::Vanilla)
    }

    fn run_receiver(rx: &mut dyn Receiver, samples: &[Iq], chunk: usize) -> Vec<GatewayPacket> {
        let mut out = Vec::new();
        for c in samples.chunks(chunk) {
            out.extend(rx.feed(c));
        }
        out.extend(rx.flush());
        out
    }

    #[test]
    fn streaming_and_gateway_backends_agree_through_the_trait() {
        let cfg = config();
        let symbols = vec![1u32, 3, 0, 2, 2, 1];
        let (wave, _) = Modulator::new(cfg.lora)
            .packet_with_guard(&symbols, Alphabet::Downlink, 3)
            .unwrap();
        let trace = wave.scaled(dbm_to_buffer_power(Dbm(-50.0)).sqrt());

        let reference = StreamingDemodulator::new(cfg.clone(), symbols.len()).run_to_end(&trace);
        assert_eq!(reference.len(), 1);

        let mut demod = StreamingDemodulator::new(cfg.clone(), symbols.len());
        let via_demod = run_receiver(&mut demod, &trace.samples, 777);
        let mut gateway = Gateway::new(GatewayConfig::single_channel(cfg, symbols.len()));
        let via_gateway = run_receiver(&mut gateway, &trace.samples, 777);

        for packets in [&via_demod, &via_gateway] {
            assert_eq!(packets.len(), 1);
            assert_eq!(packets[0].channel, 0);
            assert_eq!(packets[0].result, reference[0]);
        }
    }

    #[test]
    fn flush_is_idempotent_on_the_gateway() {
        let mut gateway = Gateway::new(GatewayConfig::single_channel(config(), 4));
        assert!(Receiver::flush(&mut gateway).is_empty());
        assert!(Receiver::flush(&mut gateway).is_empty());
    }
}
